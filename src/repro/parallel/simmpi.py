"""Simulated MPI: logical ranks on threads, message-passing semantics.

Provides the MPI subset the paper's implementation uses — blocking
send/recv, buffered isend, ``Allreduce``, ``Allgather`` and barriers —
with per-rank traffic accounting so tests and the performance model can
inspect communication volumes.  Point-to-point messages go through
per-``(src, dst, tag)`` queues; collectives use a generation-safe
two-phase barrier protocol.

This is the DESIGN.md substitution for the paper's MPI/Quadrics stack:
the algorithm exchanges real messages between ranks, only the transport
is in-process.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass
class CommStats:
    """Per-rank communication accounting."""

    messages_sent: int = 0
    bytes_sent: int = 0
    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    by_phase: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_send(self, nbytes: int, phase: str | None) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if phase:
            self.by_phase[phase] += nbytes

    def record_allreduce(self, nbytes: int) -> None:
        self.allreduce_calls += 1
        self.allreduce_bytes += nbytes


def _payload_bytes(obj: Any) -> int:
    """Approximate wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(k) + _payload_bytes(v) for k, v in obj.items())
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    return 8  # scalars and small objects


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.mailbox: dict[tuple[int, int, Any], queue.Queue] = {}
        self._mailbox_lock = threading.Lock()
        self.slots: list[Any] = [None] * size
        self.reduced: Any = None
        self.failure: BaseException | None = None

    def box(self, src: int, dst: int, tag: Any) -> queue.Queue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            q = self.mailbox.get(key)
            if q is None:
                q = self.mailbox[key] = queue.Queue()
            return q


class SimComm:
    """Communicator handle passed to each rank's SPMD function."""

    #: Default receive timeout (seconds); a deadlocked exchange raises
    #: instead of hanging the test suite.
    TIMEOUT = 120.0

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size
        self.stats = CommStats()

    # -- point to point ----------------------------------------------------

    def send(self, dst: int, obj: Any, tag: Any = 0, phase: str | None = None) -> None:
        """Buffered send (MPI_Isend semantics: never blocks)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"invalid destination rank {dst}")
        self.stats.record_send(_payload_bytes(obj), phase)
        self._world.box(self.rank, dst, tag).put(obj)

    isend = send  # buffered sends complete immediately

    def recv(self, src: int, tag: Any = 0) -> Any:
        """Blocking receive from a specific source and tag."""
        if not 0 <= src < self.size:
            raise ValueError(f"invalid source rank {src}")
        try:
            return self._world.box(src, self.rank, tag).get(timeout=self.TIMEOUT)
        except queue.Empty:
            raise TimeoutError(
                f"rank {self.rank} timed out receiving from {src} tag {tag!r}"
            ) from None

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        self._world.barrier.wait()

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """MPI_Allreduce over numpy arrays (sum/max/min).

        This is the collective the paper's level-by-level tree
        construction relies on ("an MPI_Allreduce is used over all local
        copies of the global tree array", Section 3.1).
        """
        array = np.asarray(array)
        self.stats.record_allreduce(array.nbytes)
        w = self._world
        w.slots[self.rank] = array
        idx = w.barrier.wait()
        if idx == 0:
            stack = np.stack(w.slots)
            if op == "sum":
                w.reduced = stack.sum(axis=0)
            elif op == "max":
                w.reduced = stack.max(axis=0)
            elif op == "min":
                w.reduced = stack.min(axis=0)
            else:
                w.failure = ValueError(f"unknown allreduce op {op!r}")
                w.reduced = None
        w.barrier.wait()
        if w.failure is not None:
            raise w.failure
        return np.array(w.reduced, copy=True)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank, everywhere."""
        w = self._world
        w.slots[self.rank] = obj
        w.barrier.wait()
        out = list(w.slots)
        w.barrier.wait()
        return out


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 600.0,
) -> list[Any]:
    """Run ``fn(comm, rank_args...)`` on ``nranks`` logical ranks.

    ``args`` may contain per-rank sequences wrapped in :class:`PerRank`;
    other arguments are broadcast.  Returns the per-rank return values.
    Any rank exception is re-raised in the caller.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    world = _World(nranks)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int) -> None:
        comm = SimComm(world, rank)
        rank_args = [a.values[rank] if isinstance(a, PerRank) else a for a in args]
        try:
            results[rank] = fn(comm, *rank_args)
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            errors[rank] = exc
            world.barrier.abort()  # release ranks blocked in collectives

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.barrier.abort()
            raise TimeoutError(f"SPMD run exceeded {timeout}s ({t.name} alive)")
    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, threading.BrokenBarrierError):
            raise err
    broken = [r for r, e in enumerate(errors) if e is not None]
    if broken:
        raise RuntimeError(f"ranks {broken} failed with broken barriers")
    return results


@dataclass
class PerRank:
    """Wrapper marking an argument as per-rank in :func:`run_spmd`."""

    values: list[Any]
