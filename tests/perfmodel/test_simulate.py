"""Scalability simulation tests."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel import (
    TCS1,
    project_scaling,
    simulate_run,
    simulate_tree_time,
    tree_top_model,
)
from repro.perfmodel.costs import compute_work
from repro.perfmodel.experiments import fixed_size_scaling, isogranular_scaling
from repro.perfmodel.metrics import (
    cycles_per_particle,
    flop_rate_efficiency,
    mflops_per_processor,
    work_efficiency,
)

from tests.conftest import clustered_cloud, uniform_cloud


@pytest.fixture(scope="module")
def setup_tree():
    rng = np.random.default_rng(42)
    pts = rng.uniform(-1, 1, size=(4000, 3))
    tree = build_tree(pts, max_points=40)
    lists = build_lists(tree)
    kernel = LaplaceKernel()
    work = compute_work(tree, lists, kernel, 4)
    return tree, lists, kernel, work


class TestSimulateRun:
    def test_flop_conservation_p1(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r = simulate_run(tree, lists, kernel, 4, 1, TCS1, work=work)
        assert r.total_flops == pytest.approx(work.total)
        assert r.comm == 0.0
        assert r.ratio == pytest.approx(1.0)

    def test_redundant_work_grows_with_p(self, setup_tree):
        """Shared near-root boxes are recomputed by each contributor."""
        tree, lists, kernel, work = setup_tree
        r1 = simulate_run(tree, lists, kernel, 4, 1, TCS1, work=work)
        r8 = simulate_run(tree, lists, kernel, 4, 8, TCS1, work=work)
        assert r8.total_flops > r1.total_flops
        assert r8.total_flops < 1.5 * r1.total_flops  # but only mildly

    def test_speedup(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        totals = [
            simulate_run(tree, lists, kernel, 4, P, TCS1, work=work).total
            for P in (1, 4, 16)
        ]
        assert totals[0] > totals[1] > totals[2]
        assert totals[0] / totals[1] > 3.0  # decent parallel efficiency

    def test_communication_appears(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r = simulate_run(tree, lists, kernel, 4, 8, TCS1, work=work)
        assert r.comm > 0.0

    def test_grain_scale(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r1 = simulate_run(tree, lists, kernel, 4, 4, TCS1, work=work)
        r2 = simulate_run(tree, lists, kernel, 4, 4, TCS1, work=work,
                          grain_scale=2.0)
        assert r2.total_flops == pytest.approx(2 * r1.total_flops)

    def test_report_properties(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r = simulate_run(tree, lists, kernel, 4, 4, TCS1, work=work)
        assert r.ratio >= 1.0
        assert r.total == pytest.approx(r.rank_seconds.mean())
        assert r.gflops_peak >= r.gflops_avg > 0
        assert r.up + r.down == pytest.approx(
            sum(r.phase_seconds[p] for p in
                ("up", "down_u", "down_v", "down_w", "down_x", "eval"))
        )

    def test_rejects_bad_args(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        with pytest.raises(ValueError):
            simulate_run(tree, lists, kernel, 4, 0, TCS1, work=work)
        with pytest.raises(ValueError):
            simulate_run(tree, lists, kernel, 4, 2, TCS1, work=work,
                         grain_scale=0.0)

    def test_nonuniform_has_higher_ratio(self):
        rng = np.random.default_rng(7)
        kernel = LaplaceKernel()
        uni = build_tree(uniform_cloud(rng, 3000), max_points=40)
        clu = build_tree(clustered_cloud(rng, 3000), max_points=40)
        r_uni = simulate_run(uni, build_lists(uni), kernel, 4, 32, TCS1)
        r_clu = simulate_run(clu, build_lists(clu), kernel, 4, 32, TCS1)
        assert r_clu.ratio > r_uni.ratio  # the paper's load-imbalance effect


class TestTreeTime:
    def test_serial_has_no_gather(self, setup_tree):
        tree, _, _, _ = setup_tree
        t1 = simulate_tree_time(tree, 1, TCS1)
        assert t1 == pytest.approx(
            TCS1.tree_local_per_particle * tree.sources.shape[0]
        )

    def test_local_work_parallelises(self, setup_tree):
        tree, _, _, _ = setup_tree
        t2 = simulate_tree_time(tree, 2, TCS1)
        t64 = simulate_tree_time(tree, 64, TCS1)
        assert t64 < t2

    def test_gather_floor_at_scale(self, setup_tree):
        """The serial patch gather bounds tree time from below (the
        paper's 'does not scale beyond 1024 processors')."""
        tree, _, _, _ = setup_tree
        n = tree.sources.shape[0]
        gather = n * 24.0 / TCS1.bandwidth
        t4096 = simulate_tree_time(tree, 4096, TCS1)
        assert t4096 >= gather


class TestTreeTopModel:
    def test_message_total_conserved(self, setup_tree):
        """A binomial tree over C participants has exactly C-1 edges, so
        both schemes move the same number of messages in total."""
        tree, lists, kernel, work = setup_tree
        for P in (8, 64, 512):
            pt = tree_top_model(tree, lists, kernel, 4, P, TCS1, work=work)
            assert pt.total_msgs > 0
            assert pt.shared_boxes > 0

    def test_fanin_flat_linear_tree_logarithmic(self, setup_tree):
        """Worst per-rank message count: O(P) flat vs a log P plateau."""
        tree, lists, kernel, work = setup_tree
        pts = [
            tree_top_model(tree, lists, kernel, 4, P, TCS1, work=work)
            for P in (64, 256, 1024, 4096)
        ]
        flat = [pt.flat_max_rank_msgs for pt in pts]
        hier = [pt.tree_max_rank_msgs for pt in pts]
        # flat fan-in grows like P (64x more ranks -> >10x more
        # messages on the critical rank); tree fan-in stays near-flat
        assert flat[-1] > 10 * flat[0]
        assert hier[-1] < 4 * hier[0]
        assert hier[-1] < flat[-1] / 5

    def test_split_levels_appear_at_scale(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        small = tree_top_model(tree, lists, kernel, 4, 2, TCS1, work=work)
        big = tree_top_model(tree, lists, kernel, 4, 1024, TCS1, work=work)
        assert len(big.split_levels) > len(small.split_levels)
        # the split replaces redundant coarse V work with one compute +
        # a log-depth broadcast: strictly cheaper once the redundant
        # compute on the critical rank outweighs the broadcast latency
        assert big.v_redundant_seconds > 0
        assert big.v_split_seconds < big.v_redundant_seconds

    def test_point_totals_consistent(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        pt = tree_top_model(tree, lists, kernel, 4, 128, TCS1, work=work)
        assert pt.flat_total == pytest.approx(
            pt.flat_seconds + pt.v_redundant_seconds
        )
        assert pt.tree_total == pytest.approx(
            pt.tree_seconds + pt.v_split_seconds
        )
        assert pt.speedup == pytest.approx(pt.flat_total / pt.tree_total)

    def test_serial_is_trivial(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        pt = tree_top_model(tree, lists, kernel, 4, 1, TCS1, work=work)
        assert pt.shared_boxes == 0
        assert pt.flat_total == 0.0 and pt.tree_total == 0.0

    def test_rejects_bad_p(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        with pytest.raises(ValueError):
            tree_top_model(tree, lists, kernel, 4, 0, TCS1, work=work)


class TestProjectScaling:
    def test_report_structure_and_acceptance(self, setup_tree):
        tree, lists, kernel, _ = setup_tree
        rep = project_scaling(tree, lists, kernel, 4, TCS1, max_ranks=4096)
        Ps = [pt["P"] for pt in rep["points"]]
        assert Ps == [2 ** k for k in range(1, 13)]
        # hierarchical must win well before the top of the sweep...
        assert rep["crossover_rank"] is not None
        assert rep["crossover_rank"] <= 256
        # ...and by the paper-scale margin at the top (the acceptance
        # criterion: >= 5x modelled tree-top improvement at 4096 ranks)
        assert rep["speedup_at_max"] >= 5.0
        assert rep["msgs_tree_at_max"] < rep["msgs_flat_at_max"]

    def test_monotone_speedup_trend(self, setup_tree):
        tree, lists, kernel, _ = setup_tree
        rep = project_scaling(tree, lists, kernel, 4, TCS1, max_ranks=1024)
        sp = [pt["speedup"] for pt in rep["points"]]
        # not required to be strictly monotone, but the tail must beat
        # the head decisively
        assert sp[-1] > sp[0]

    def test_rejects_bad_max_ranks(self, setup_tree):
        tree, lists, kernel, _ = setup_tree
        with pytest.raises(ValueError):
            project_scaling(tree, lists, kernel, 4, TCS1, max_ranks=1)


class TestMetrics:
    def test_cycles_per_particle(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r = simulate_run(tree, lists, kernel, 4, 4, TCS1, work=work)
        c = cycles_per_particle(r, TCS1)
        assert c["total"] > 0
        assert c["total"] == pytest.approx(
            sum(v for k, v in c.items() if k not in ("total",)), rel=1e-6
        )

    def test_efficiencies(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r1 = simulate_run(tree, lists, kernel, 4, 1, TCS1, work=work)
        r8 = simulate_run(tree, lists, kernel, 4, 8, TCS1, work=work)
        we = work_efficiency(r1, r8)
        fe = flop_rate_efficiency(r1, r8)
        assert 0.0 < we <= 1.01
        assert 0.0 < fe <= 1.3
        with pytest.raises(ValueError):
            work_efficiency(r8, r1)

    def test_mflops_per_processor(self, setup_tree):
        tree, lists, kernel, work = setup_tree
        r = simulate_run(tree, lists, kernel, 4, 4, TCS1, work=work)
        rates = mflops_per_processor(r)
        assert rates["max"] >= rates["min"] > 0
        assert rates["peak"] >= rates["avg"]


class TestExperiments:
    def test_fixed_size_driver(self, rng):
        pts = uniform_cloud(rng, 2000)
        reports = fixed_size_scaling(
            LaplaceKernel(), pts, [1, 4, 16], p=4, max_points=40
        )
        assert [r.P for r in reports] == [1, 4, 16]
        assert reports[0].total > reports[2].total

    def test_isogranular_driver(self, rng):
        reports = isogranular_scaling(
            StokesKernel(),
            lambda n: np.random.default_rng(1).uniform(-1, 1, (n, 3)),
            grain=2000,
            P_list=[1, 4],
            p=4,
            max_points=40,
            model_cap=4000,
        )
        assert reports[0].N == 2000
        assert reports[1].N == 8000
        # isogranular: per-rank time bounded (at these tiny sizes the tree
        # depth jump still changes per-particle work noticeably)
        assert 0.2 < reports[1].total / reports[0].total < 8.0
