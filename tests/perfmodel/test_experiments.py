"""Experiment-driver and report-formatting tests."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel
from repro.perfmodel.experiments import (
    ScalingRow,
    TABLE_HEADERS,
    fixed_size_scaling,
)
from repro.util.tables import format_table


class TestScalingRow:
    def test_from_report_roundtrip(self, rng):
        reports = fixed_size_scaling(
            LaplaceKernel(), rng.uniform(-1, 1, (1500, 3)), [1, 4],
            p=4, max_points=40,
        )
        row = ScalingRow.from_report(reports[0])
        assert row.P == 1
        assert row.total == pytest.approx(reports[0].total)
        t = row.as_tuple()
        assert len(t) == len(TABLE_HEADERS)

    def test_rows_render(self, rng):
        reports = fixed_size_scaling(
            LaplaceKernel(), rng.uniform(-1, 1, (1000, 3)), [1],
            p=4, max_points=40,
        )
        rows = [ScalingRow.from_report(r).as_tuple() for r in reports]
        text = format_table(TABLE_HEADERS, rows, title="t")
        assert "Gen/Comm" in text
        assert len(text.splitlines()) == 4

    def test_monotone_p_sweep_reuses_tree(self, rng):
        """The fixed-size driver must produce decreasing totals."""
        reports = fixed_size_scaling(
            LaplaceKernel(), rng.uniform(-1, 1, (2000, 3)),
            [1, 2, 4, 8], p=4, max_points=40,
        )
        totals = [r.total for r in reports]
        assert totals == sorted(totals, reverse=True)
        # all reports share the same flop volume at P=1 scale (no
        # redundancy) vs small growth at P=8
        assert reports[3].total_flops >= reports[0].total_flops
