"""Workload generator tests: spheres, distributions, patches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    SurfacePatch,
    corner_clusters,
    partition_weights,
    sample_sphere,
    sphere_grid_patches,
    sphere_grid_points,
    uniform_cube,
)


class TestSphereSampling:
    @pytest.mark.parametrize("method", ["latlon", "fibonacci"])
    def test_points_on_surface(self, method):
        c = np.array([1.0, -2.0, 0.5])
        pts = sample_sphere(c, 0.7, 200, method=method)
        assert pts.shape == (200, 3)
        r = np.linalg.norm(pts - c, axis=1)
        assert np.allclose(r, 0.7, atol=1e-12)

    def test_latlon_nonuniform(self):
        """The paper's sampling is non-uniform (denser near poles)."""
        pts = sample_sphere(np.zeros(3), 1.0, 2000, method="latlon")
        z = np.abs(pts[:, 2])
        polar = (z > 0.9).sum()
        equatorial = (z < 0.1).sum()
        # a uniform sampling would put ~2.3x more points near the equator
        # band than the polar caps; latlon flips that
        assert polar > equatorial

    def test_fibonacci_quasi_uniform(self):
        pts = sample_sphere(np.zeros(3), 1.0, 2000, method="fibonacci")
        z = pts[:, 2]
        # z-coordinates uniformly distributed for uniform sphere sampling
        hist, _ = np.histogram(z, bins=10, range=(-1, 1))
        assert hist.min() > 0.7 * hist.max()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            sample_sphere(np.zeros(3), -1.0, 10)
        with pytest.raises(ValueError):
            sample_sphere(np.zeros(3), 1.0, 0)
        with pytest.raises(ValueError):
            sample_sphere(np.zeros(3), 1.0, 10, method="nope")


class TestSphereGrid:
    def test_point_count_and_bounds(self):
        pts = sphere_grid_points(10_000, grid=8)
        assert abs(pts.shape[0] - 10_000) <= 512
        assert np.all(pts >= -1.0) and np.all(pts <= 1.0)

    def test_patch_structure(self):
        patches = sphere_grid_patches(4096, grid=4)
        assert len(patches) == 64
        for p in patches:
            assert p.weight == p.points.shape[0]

    def test_spheres_disjoint(self):
        """Sphere radius < half grid spacing, so spheres never touch."""
        patches = sphere_grid_patches(2048, grid=4)
        c0 = patches[0].centroid
        c1 = patches[1].centroid
        spacing = np.abs(c1 - c0).max()
        r = np.linalg.norm(patches[0].points[0] - patches[0].centroid)
        assert 2 * r < spacing


class TestDistributions:
    def test_uniform_cube_bounds(self, rng):
        pts = uniform_cube(1000, rng, low=-2.0, high=3.0)
        assert pts.shape == (1000, 3)
        assert pts.min() >= -2.0 and pts.max() <= 3.0

    def test_corner_clusters_count_and_bounds(self, rng):
        pts = corner_clusters(999, rng)
        assert pts.shape == (999, 3)
        assert pts.min() >= -2.0 and pts.max() <= 2.0

    def test_corner_clusters_are_clustered(self, rng):
        pts = corner_clusters(4000, rng, spread=0.05)
        # most points within 0.5 of some corner
        corners = np.array(
            [[x, y, z] for x in (-1, 1) for y in (-1, 1) for z in (-1, 1)],
            dtype=float,
        )
        d = np.min(
            np.linalg.norm(pts[:, None, :] - corners[None], axis=2), axis=1
        )
        assert (d < 0.5).mean() > 0.95

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_cube(-1, rng)
        with pytest.raises(ValueError):
            uniform_cube(5, rng, low=1.0, high=0.0)
        with pytest.raises(ValueError):
            corner_clusters(10, rng, spread=0.0)


class TestPatches:
    def test_patch_validation(self):
        with pytest.raises(ValueError):
            SurfacePatch(points=np.zeros((5, 2)), weight=1.0)
        with pytest.raises(ValueError):
            SurfacePatch(points=np.zeros((5, 3)), weight=-1.0)

    def test_centroid(self):
        p = SurfacePatch(points=np.array([[0.0, 0, 0], [2.0, 0, 0]]), weight=2)
        assert np.allclose(p.centroid, [1.0, 0, 0])


class TestPartitionWeights:
    def test_contiguous_and_complete(self, rng):
        w = rng.random(100)
        parts = partition_weights(w, 7)
        assert parts.min() == 0 and parts.max() == 6
        assert np.all(np.diff(parts) >= 0)  # contiguous runs

    def test_balance_uniform_weights(self):
        parts = partition_weights(np.ones(100), 4)
        counts = np.bincount(parts, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_single_part(self, rng):
        assert np.all(partition_weights(rng.random(10), 1) == 0)

    def test_more_parts_than_items(self):
        parts = partition_weights(np.ones(3), 10)
        assert len(parts) == 3
        assert parts.max() <= 9

    def test_zero_weights_handled(self):
        parts = partition_weights(np.zeros(10), 3)
        assert parts.min() >= 0 and parts.max() <= 2

    def test_empty(self):
        assert partition_weights(np.empty(0), 3).size == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition_weights(np.ones(5), 0)
        with pytest.raises(ValueError):
            partition_weights(np.array([-1.0]), 2)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_weight_balance(self, weights, nparts):
        w = np.array(weights)
        parts = partition_weights(w, nparts)
        assert len(parts) == len(w)
        assert np.all(np.diff(parts) >= 0)
        total = w.sum()
        if total > 0:
            ideal = total / nparts
            for r in range(nparts):
                # each part's weight differs from ideal by < the largest item
                part_w = w[parts == r].sum()
                assert part_w <= ideal + w.max() + 1e-9
