"""Simulated MPI: logical ranks on threads, message-passing semantics.

Provides the MPI subset the paper's implementation uses — blocking
send/recv, buffered isend, ``Allreduce``, ``Bcast``, ``Reduce_scatter``,
``Allgather`` and barriers — with per-rank traffic accounting so tests
and the performance model can inspect communication volumes.
Point-to-point messages go through per-``(src, dst, tag)`` queues.

Collectives are *hierarchical*: ``allreduce``, ``bcast`` and
``reduce_scatter`` move data along a deterministic binomial tree of
real point-to-point messages, so each rank sends and receives O(log P)
messages per call instead of the O(P) fan-in of a flat root-style
reduce — the tree-top pattern the paper needs at thousands of ranks.
Every internal message is a first-class traced/accounted send, so the
commcheck/racecheck analyzers certify the collectives like any other
traffic.  The segmented variants :meth:`SimComm.tree_reduce` /
:meth:`SimComm.tree_bcast` run the same binomial pattern over an
arbitrary rank *subset* rooted at a chosen rank (the owner of a box, in
the exchange layer) without any global synchronisation.

The binomial association is fixed (``_combine_tree`` reproduces it
locally), so reduction results are bitwise independent of the thread
schedule, and a flat code path that combines the same pieces with
:func:`combine_tree` matches the message-passing path bit for bit.

This is the DESIGN.md substitution for the paper's MPI/Quadrics stack:
the algorithm exchanges real messages between ranks, only the transport
is in-process.

Correctness tooling (see ``docs/architecture.md``):

- pass ``trace=CommTrace()`` to :func:`run_spmd` to record every
  communication event with Lamport/vector clocks for the offline
  analyzer in :mod:`repro.analysis.commcheck`;
- pass ``schedule_seed=`` to perturb the thread interleaving with
  seeded random yields, so tests can fuzz schedules reproducibly;
- at exit, :func:`run_spmd` asserts every mailbox is drained and raises
  :class:`MailboxLeakError` naming the leaked ``(src, dst, tag)`` keys —
  a dropped message is an algorithmic bug, never silent;
- pass ``race=RaceDetector()`` to install a per-rank access recorder
  (reachable from instrumented code via :func:`current_recorder`) for
  the happens-before race analysis in :mod:`repro.analysis.racecheck`.

Error propagation is deterministic: when any rank fails, the others are
aborted (their blocked receives raise :class:`RankAbortedError`, their
collectives ``BrokenBarrierError``), and the caller receives the first
*primary* exception in rank order — never a secondary abort artifact —
so racecheck/sanitizer failures reproduce identically across schedules.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.analysis.trace import CommTrace, Envelope, RankTracer

#: Thread-local context of the executing rank.  Lives here — not in the
#: analysis layer — because ``threading`` imports are confined to this
#: module (the ``thread-confinement`` lint rule); the race detector is
#: passed in duck-typed so this module never imports the analyzer.
_thread_ctx = threading.local()


def current_recorder():
    """The calling rank thread's race-access recorder, if installed.

    Instrumented code (``exchange.py``/``pfmm.py``) fetches the recorder
    through this accessor; outside a race-checked :func:`run_spmd` it
    returns ``None`` and instrumentation costs one attribute lookup.
    """
    return getattr(_thread_ctx, "recorder", None)


class RankAbortedError(RuntimeError):
    """A rank's blocked receive was interrupted because a peer failed.

    A *secondary* failure: :func:`run_spmd` never propagates it while
    any rank holds a primary exception, so the root cause wins
    deterministically regardless of which thread died first.
    """


# ---------------------------------------------------------------------------
# Message-tag registry.  Every point-to-point tag in the repo is a
# structured tuple ``(family, *discriminators)`` minted through
# :func:`mk_tag` from a family registered here — the communication
# analogue of the ``@plan_stage`` registry: a single source of truth the
# static verifier (:mod:`repro.analysis.commir`) introspects to know
# which tag families exist, how many discriminator fields each carries
# and which trace phases its messages appear in.  Ad-hoc literal tags
# are rejected statically by the ``tag-registry`` lint rule.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TagFamily:
    """One registered tag family (the first element of its tags)."""

    name: str
    #: Names of the discriminator fields following the family name
    #: (e.g. ``("box",)`` or ``("level", "box")``).
    fields: tuple[str, ...]
    #: Trace phases this family's messages are recorded under.
    phases: tuple[str, ...]
    #: ``"exchange"`` (owner-centric box exchange), ``"split"`` (coarse
    #: V-split broadcast) or ``"collective"`` (binomial collectives).
    kind: str = "exchange"


#: family name -> :class:`TagFamily`; populated by the modules that own
#: each protocol (this module for the collectives, ``exchange.py`` for
#: the box exchanges, ``pfmm.py`` for the coarse V split).
TAG_FAMILIES: dict[str, TagFamily] = {}


def register_tag_family(
    name: str,
    *,
    fields: Iterable[str],
    phases: Iterable[str] = (),
    kind: str = "exchange",
) -> TagFamily:
    """Register (idempotently) one tag family.

    Re-registration with an identical spec is a no-op so module reloads
    stay harmless; a *conflicting* re-registration is an error — two
    protocols silently sharing a family name is exactly the tag-space
    collision the static verifier exists to rule out.
    """
    fam = TagFamily(name, tuple(fields), tuple(phases), kind)
    existing = TAG_FAMILIES.get(name)
    if existing is not None:
        if existing != fam:
            raise ValueError(
                f"tag family {name!r} already registered with a "
                f"different spec: {existing} vs {fam}"
            )
        return existing
    TAG_FAMILIES[name] = fam
    return fam


def mk_tag(family: str, *ids) -> tuple:
    """Mint one structured message tag ``(family, *ids)``.

    The family must be registered and ``ids`` must match its declared
    field count — the runtime half of the ``tag-registry`` invariant.
    """
    fam = TAG_FAMILIES.get(family)
    if fam is None:
        raise KeyError(
            f"unregistered tag family {family!r} (known: "
            f"{sorted(TAG_FAMILIES)})"
        )
    if len(ids) != len(fam.fields):
        raise ValueError(
            f"tag family {family!r} takes {len(fam.fields)} field(s) "
            f"{fam.fields}, got {len(ids)}"
        )
    return (family, *ids)


def coll_scatter_tag(tag: tuple) -> tuple:
    """The scatter-leg tag derived from a collective's reduce-leg tag."""
    if not (isinstance(tag, tuple) and tag and tag[0] == "__coll__"):
        raise ValueError(f"not a collective tag: {tag!r}")
    return mk_tag("__coll_scatter__", *tag[1:])


register_tag_family(
    "__coll__", fields=("primitive", "seq"), kind="collective",
)
register_tag_family(
    "__coll_scatter__", fields=("primitive", "seq"), kind="collective",
)


@dataclass
class CommStats:
    """Per-rank communication accounting (both directions).

    Send- and receive-side counters are symmetric so the comm-trace
    analyzer can cross-check them against the event trace: over a whole
    world, ``sum(messages_sent) == sum(messages_received)`` exactly when
    no message was dropped.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    reduce_scatter_calls: int = 0
    reduce_scatter_bytes: int = 0
    tree_reduce_calls: int = 0
    tree_reduce_bytes: int = 0
    tree_bcast_calls: int = 0
    tree_bcast_bytes: int = 0
    #: Wall seconds this rank spent blocked waiting for messages (the
    #: receive side of :meth:`SimComm.recv` / :meth:`Request.wait`).
    #: Together with the ``pack``/``wait`` timer phases this makes
    #: overlap efficiency directly measurable.
    recv_wait_seconds: float = 0.0
    by_phase: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_send(self, nbytes: int, phase: str | None) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if phase:
            self.by_phase[phase] += nbytes

    def record_recv(self, nbytes: int, phase: str | None = None) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes
        if phase:
            self.by_phase[phase] += nbytes

    def record_wait(self, seconds: float) -> None:
        self.recv_wait_seconds += seconds

    def record_allreduce(self, nbytes: int) -> None:
        self.allreduce_calls += 1
        self.allreduce_bytes += nbytes

    def record_bcast(self, nbytes: int) -> None:
        self.bcast_calls += 1
        self.bcast_bytes += nbytes

    def record_reduce_scatter(self, nbytes: int) -> None:
        self.reduce_scatter_calls += 1
        self.reduce_scatter_bytes += nbytes

    def record_tree_reduce(self, nbytes: int) -> None:
        self.tree_reduce_calls += 1
        self.tree_reduce_bytes += nbytes

    def record_tree_bcast(self, nbytes: int) -> None:
        self.tree_bcast_calls += 1
        self.tree_bcast_bytes += nbytes

    #: Counter fields accumulated by :meth:`merge` — every integer/float
    #: counter above except the ``by_phase`` dict.  Enumerated once so a
    #: newly added collective counter cannot be silently dropped from
    #: :meth:`total` aggregation again.
    _SUM_FIELDS = (
        "messages_sent", "bytes_sent", "messages_received",
        "bytes_received", "allreduce_calls", "allreduce_bytes",
        "bcast_calls", "bcast_bytes",
        "reduce_scatter_calls", "reduce_scatter_bytes",
        "tree_reduce_calls", "tree_reduce_bytes",
        "tree_bcast_calls", "tree_bcast_bytes",
        "recv_wait_seconds",
    )

    def merge(self, other: "CommStats") -> None:
        """Accumulate ``other`` into this instance."""
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for phase, nbytes in other.by_phase.items():
            self.by_phase[phase] += nbytes

    @classmethod
    def total(cls, per_rank: Iterable["CommStats"]) -> "CommStats":
        """Aggregate per-rank stats into world totals."""
        out = cls()
        for stats in per_rank:
            out.merge(stats)
        return out


class MailboxLeakError(RuntimeError):
    """A run left undelivered messages in mailboxes at exit.

    ``leaked`` holds ``((src, dst, tag), count)`` for every non-empty
    mailbox — the exact channels whose messages were dropped.
    """

    def __init__(self, leaked: list[tuple[tuple[int, int, Any], int]]) -> None:
        self.leaked = leaked
        keys = ", ".join(
            f"{src}->{dst} tag={tag!r} x{n}" for (src, dst, tag), n in leaked
        )
        super().__init__(
            f"{sum(n for _, n in leaked)} message(s) left undelivered at "
            f"exit: {keys}"
        )


def _payload_bytes(obj: Any) -> int:
    """Approximate wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(k) + _payload_bytes(v) for k, v in obj.items())
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    return 8  # scalars and small objects


#: Supported allreduce reductions (validated up front on every rank).
#: Pairwise operators: the collectives combine two accumulated partials
#: per binomial-tree round.
_ALLREDUCE_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda a, b: a + b,
    "max": np.maximum,
    "min": np.minimum,
}


# -- binomial-tree topology --------------------------------------------------
#
# All hierarchical collectives share one deterministic shape: the
# participants are laid out on *positions* 0..n-1 with the root at
# position 0, and position q is the child of q with its lowest set bit
# cleared.  A reduction runs rounds mask = 1, 2, 4, ...: positions with
# ``pos & mask`` send their partial to ``pos - mask`` and exit, the
# rest receive-and-combine.  A broadcast mirrors the same edges
# downward.  Each participant therefore touches at most ceil(log2 n)
# messages, and the association of the combines is a pure function of
# n — never of the thread schedule.


def tree_order(ranks: Iterable[int], root: int) -> list[int]:
    """Deterministic position layout of a participant set.

    Sorted ascending, then rotated so ``root`` sits at position 0 — the
    same layout on every rank, so all participants derive identical
    parent/child edges without communicating.
    """
    order = sorted({int(r) for r in ranks} | {int(root)})
    i = order.index(int(root))
    return order[i:] + order[:i]


def tree_parent(pos: int) -> int:
    """Parent position (lowest set bit cleared); position 0 is the root."""
    return pos & (pos - 1)


def tree_children(pos: int, n: int) -> list[int]:
    """Child positions of ``pos`` in an ``n``-participant binomial tree.

    Ascending-mask order — the order a reduction *receives* them.  A
    broadcast sends to ``reversed(tree_children(...))`` so the largest
    subtree is released first.
    """
    kids = []
    mask = 1
    while mask < n and not pos & mask:
        if pos + mask < n:
            kids.append(pos + mask)
        mask <<= 1
    return kids


def combine_tree(values: list, combine: Callable[[Any, Any], Any]):
    """Combine ``values`` (indexed by tree position) with the *exact*
    association of the binomial-tree message pattern.

    ``None`` entries mark absent contributions and are skipped.  A flat
    communication path that gathers the same pieces and folds them with
    this helper is bitwise identical to the hierarchical path, which is
    how the exchange layer keeps its two schemes interchangeable.
    """
    vals = list(values)
    n = len(vals)
    mask = 1
    while mask < n:
        for p in range(0, n, 2 * mask):
            q = p + mask
            if q < n:
                a, c = vals[p], vals[q]
                vals[p] = c if a is None else (a if c is None else combine(a, c))
        mask <<= 1
    return vals[0] if vals else None


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(
        self,
        size: int,
        trace: CommTrace | None = None,
        schedule_seed: int | None = None,
        recv_timeout: float | None = None,
        race=None,
    ) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.mailbox: dict[tuple[int, int, Any], queue.Queue] = {}
        self._mailbox_lock = threading.Lock()
        self.slots: list[Any] = [None] * size
        self.clock_slots: list[Any] = [None] * size
        self.trace = trace
        self.schedule_seed = schedule_seed
        self.recv_timeout = recv_timeout
        self.race = race
        #: Set when any rank fails; blocked receives poll it so they can
        #: abort promptly instead of timing out minutes later.
        self.aborted = threading.Event()

    def box(self, src: int, dst: int, tag: Any) -> queue.Queue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            q = self.mailbox.get(key)
            if q is None:
                q = self.mailbox[key] = queue.Queue()
            return q

    def leaked_messages(self) -> list[tuple[tuple[int, int, Any], int]]:
        """Non-empty mailboxes at exit, sorted for stable reporting."""
        with self._mailbox_lock:
            leaked = [
                (key, q.qsize()) for key, q in self.mailbox.items()
                if not q.empty()
            ]
        return sorted(leaked, key=lambda item: repr(item[0]))


class SimComm:
    """Communicator handle passed to each rank's SPMD function."""

    #: Default receive timeout (seconds); a deadlocked exchange raises
    #: instead of hanging the test suite.
    TIMEOUT = 120.0

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size
        self.stats = CommStats()
        #: Per-rank collective generation counter.  SPMD code calls
        #: collectives in the same order on every rank, so the counter
        #: values agree and the internal point-to-point tags they mint
        #: are generation unique (no cross-call mailbox mixing).
        self._coll_seq = 0
        self._timeout = (
            world.recv_timeout if world.recv_timeout is not None else self.TIMEOUT
        )
        self._tracer = (
            RankTracer(world.trace, rank, world.size)
            if world.trace is not None
            else None
        )
        if world.race is not None and self._tracer is not None:
            # Install this rank's access recorder in the thread context;
            # run_spmd guarantees a trace whenever a detector is given
            # (the vector clocks are what order the accesses).
            _thread_ctx.recorder = world.race.recorder_for(rank, self._tracer)
        if world.schedule_seed is not None:
            self._rng: random.Random | None = random.Random(
                world.schedule_seed * 1_000_003 + rank * 7_919
            )
        else:
            self._rng = None

    def _jitter(self) -> None:
        """Seeded schedule perturbation: yield or briefly sleep.

        Communication results must be schedule independent; tests fuzz
        interleavings by re-running with different ``schedule_seed``
        values and asserting bitwise-identical outputs.
        """
        if self._rng is None:
            return
        r = self._rng.random()
        if r < 0.5:
            time.sleep(r * 4e-4)  # push this thread behind its peers
        else:
            time.sleep(0)  # plain yield

    # -- point to point ----------------------------------------------------

    def send(self, dst: int, obj: Any, tag: Any = 0, phase: str | None = None) -> None:
        """Buffered send (MPI_Isend semantics: never blocks)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"invalid destination rank {dst}")
        self._jitter()
        nbytes = _payload_bytes(obj)
        self.stats.record_send(nbytes, phase)
        if self._tracer is not None:
            obj = self._tracer.on_send(dst, tag, obj, nbytes)
        self._world.box(self.rank, dst, tag).put(obj)

    isend = send  # buffered sends complete immediately

    def recv(self, src: int, tag: Any = 0, phase: str | None = None) -> Any:
        """Blocking receive from a specific source and tag."""
        if not 0 <= src < self.size:
            raise ValueError(f"invalid source rank {src}")
        self._jitter()
        if self._tracer is not None:
            self._tracer.on_recv_post(src, tag)
        return self._complete_recv(src, tag, phase)

    def _complete_recv(self, src: int, tag: Any, phase: str | None) -> Any:
        """Shared blocking tail of :meth:`recv` and :meth:`Request.wait`.

        Blocks in short slices so a peer failure (``world.aborted``)
        interrupts the wait promptly as :class:`RankAbortedError` — a
        classified *secondary* error — instead of a timeout minutes
        later that would mask the root cause.  A receive that exhausts
        ``recv_timeout`` with no failed peer is still a genuine
        :class:`TimeoutError` (the deadlock-detection contract).
        """
        t0 = time.perf_counter()
        box = self._world.box(src, self.rank, tag)
        deadline = t0 + self._timeout
        slice_s = min(0.05, self._timeout)
        while True:
            try:
                obj = box.get(timeout=slice_s)
                break
            except queue.Empty:
                if self._world.aborted.is_set():
                    raise RankAbortedError(
                        f"rank {self.rank} receive from {src} tag {tag!r} "
                        f"interrupted: a peer rank failed"
                    ) from None
                if time.perf_counter() >= deadline:
                    raise TimeoutError(
                        f"rank {self.rank} timed out receiving from {src} "
                        f"tag {tag!r}"
                    ) from None
        self.stats.record_wait(time.perf_counter() - t0)
        if isinstance(obj, Envelope):
            env, obj = obj, obj.payload
            nbytes = _payload_bytes(obj)
            if self._tracer is not None:
                self._tracer.on_recv(src, tag, env, nbytes)
        else:
            nbytes = _payload_bytes(obj)
        self.stats.record_recv(nbytes, phase)
        return obj

    def irecv(self, src: int, tag: Any = 0, phase: str | None = None) -> "Request":
        """Nonblocking receive: post now, complete later with ``wait()``.

        The receive is *posted* immediately (it appears at its program
        position in the event trace, like MPI_Irecv), but the message is
        only pulled from the mailbox — and counted in :class:`CommStats`
        — when :meth:`Request.wait` is called.  Waits on one
        ``(src, tag)`` channel must be issued in posting order (the
        mailbox is FIFO per channel).
        """
        if not 0 <= src < self.size:
            raise ValueError(f"invalid source rank {src}")
        self._jitter()
        if self._tracer is not None:
            self._tracer.on_recv_post(src, tag)
        return Request(self, src, tag, phase)

    # -- collectives ---------------------------------------------------------

    def _coll_clock_sync(self, coll: str) -> None:
        """Deposit/merge vector clocks across one extra barrier phase.

        Reading between the two waits is generation safe: a peer cannot
        overwrite its slot for the *next* collective until every rank
        (including this one) has passed the second wait.
        """
        w = self._world
        w.clock_slots[self.rank] = self._tracer.clock_snapshot()
        w.barrier.wait()
        peers = [w.clock_slots[r] for r in range(self.size) if r != self.rank]
        self._tracer.on_coll_exit(coll, peers)
        w.barrier.wait()

    def barrier(self) -> None:
        self._jitter()
        if self._tracer is not None:
            self._tracer.on_coll_enter("barrier")
            self._coll_clock_sync("barrier")
            return
        self._world.barrier.wait()

    def _next_coll_tag(self, name: str) -> tuple:
        tag = mk_tag("__coll__", name, self._coll_seq)
        self._coll_seq += 1
        return tag

    def _reduce_to_root(
        self, array: np.ndarray, op: str, tag: Any, coll: str
    ) -> np.ndarray | None:
        """Binomial reduce of ``array`` to rank 0; returns the total
        there, ``None`` elsewhere.  Shape agreement is verified edge by
        edge, so a mismatch surfaces at the first tree node that sees
        both shapes."""
        acc = array
        pos, n = self.rank, self.size
        mask = 1
        while mask < n:
            if pos & mask:
                self.send(pos - mask, acc, tag=tag)
                return None
            child = pos + mask
            if child < n:
                other = np.asarray(self.recv(child, tag=tag))
                if other.shape != acc.shape:
                    raise ValueError(
                        f"{coll} shape mismatch across ranks: rank "
                        f"{self.rank} contributed {acc.shape}, rank {child} "
                        f"contributed {other.shape} (every rank must "
                        f"contribute the same shape)"
                    )
                acc = _ALLREDUCE_OPS[op](acc, other)
            mask <<= 1
        return acc

    def _bcast_from_root(self, value: Any, root: int, tag: Any) -> Any:
        """Binomial broadcast over the full world from ``root``.

        Forwards the payload *by reference*; callers that hand the
        result to user code must copy mutable payloads first.
        """
        n = self.size
        pos = (self.rank - root) % n
        if pos != 0:
            value = self.recv((tree_parent(pos) + root) % n, tag=tag)
        for child in reversed(tree_children(pos, n)):
            self.send((child + root) % n, value, tag=tag)
        return value

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """MPI_Allreduce over numpy arrays (sum/max/min).

        This is the collective the paper's level-by-level tree
        construction relies on ("an MPI_Allreduce is used over all local
        copies of the global tree array", Section 3.1).  ``op`` is
        validated before any rank synchronisation so an unsupported
        reduction fails fast with a clear error on every rank.

        Runs as a binomial-tree reduce to rank 0 followed by a tree
        broadcast: O(log P) point-to-point messages per rank, each
        traced and accounted like ordinary traffic.  The combine
        association is fixed by the tree shape, so results are bitwise
        schedule independent.
        """
        if op not in _ALLREDUCE_OPS:
            raise ValueError(
                f"unsupported allreduce op {op!r}; supported ops: "
                f"{', '.join(sorted(_ALLREDUCE_OPS))}"
            )
        array = np.asarray(array)
        self._jitter()
        self.stats.record_allreduce(array.nbytes)
        if self._tracer is not None:
            self._tracer.on_coll_enter(
                "allreduce", nbytes=array.nbytes, op=op, shape=array.shape
            )
        tag = self._next_coll_tag("allreduce")
        total = self._reduce_to_root(array, op, tag, "allreduce")
        total = self._bcast_from_root(total, 0, tag)
        if self._tracer is not None:
            self._coll_clock_sync("allreduce")
        return np.array(total, copy=True)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """MPI_Bcast: every rank returns ``root``'s object.

        Binomial tree rooted at ``root`` — O(log P) messages per rank.
        Array payloads are copied on receiving ranks so no two ranks
        share a mutable buffer; other payload types are forwarded by
        reference and must be treated as read-only.
        """
        if not 0 <= root < self.size:
            raise ValueError(f"invalid bcast root {root}")
        self._jitter()
        if self._tracer is not None:
            self._tracer.on_coll_enter(
                "bcast", nbytes=_payload_bytes(obj) if self.rank == root else 0
            )
        tag = self._next_coll_tag("bcast")
        value = self._bcast_from_root(
            obj if self.rank == root else None, root, tag
        )
        self.stats.record_bcast(_payload_bytes(value))
        if self._tracer is not None:
            self._coll_clock_sync("bcast")
        if self.rank != root and isinstance(value, np.ndarray):
            value = np.array(value, copy=True)
        return value

    def reduce_scatter(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """MPI_Reduce_scatter_block: reduce a ``(P, ...)`` contribution
        elementwise across ranks, return row ``rank`` of the total.

        Tree-reduce of the full block to rank 0, then a binomial
        *scatter*: each tree edge carries only the rows of the child's
        subtree, so per-rank traffic stays O(log P) messages.
        """
        if op not in _ALLREDUCE_OPS:
            raise ValueError(
                f"unsupported reduce_scatter op {op!r}; supported ops: "
                f"{', '.join(sorted(_ALLREDUCE_OPS))}"
            )
        array = np.asarray(array)
        if array.shape[0] != self.size:
            raise ValueError(
                f"reduce_scatter needs a leading axis of length "
                f"{self.size} (one row per rank), got shape {array.shape}"
            )
        self._jitter()
        self.stats.record_reduce_scatter(array.nbytes)
        if self._tracer is not None:
            self._tracer.on_coll_enter(
                "reduce_scatter", nbytes=array.nbytes, op=op, shape=array.shape
            )
        tag = self._next_coll_tag("reduce_scatter")
        stag = coll_scatter_tag(tag)
        total = self._reduce_to_root(array, op, tag, "reduce_scatter")
        pos, n = self.rank, self.size
        if pos == 0:
            block, lo = total, 0
        else:
            block = self.recv(tree_parent(pos), tag=stag)
            lo = pos
        for child in reversed(tree_children(pos, n)):
            # The child's subtree spans positions [child, child + m)
            # where m is the mask that attached it (its lowest set bit).
            hi = min(child + (child & -child), n)
            self.send(child, block[child - lo: hi - lo], tag=stag)
        out = np.array(block[pos - lo], copy=True)
        if self._tracer is not None:
            self._coll_clock_sync("reduce_scatter")
        return out

    def tree_reduce(
        self,
        value: Any,
        root: int,
        ranks: Iterable[int],
        tag: Any,
        combine: Callable[[Any, Any], Any] | None = None,
        phase: str | None = None,
    ) -> Any:
        """Segmented binomial reduction over a rank *subset*.

        Every rank in ``ranks`` (plus ``root``) calls this with its
        contribution (``None`` for a participant with nothing to add —
        e.g. a box owner that holds no local data); the combined value
        is returned at ``root`` and ``None`` everywhere else.  The
        association is the fixed binomial-tree order of
        :func:`combine_tree`, so the result is bitwise identical to a
        flat gather folded with that helper.

        This is deliberately *not* a global collective: participation
        is data dependent (keyed by box owner in the exchange layer),
        so no collective trace events are emitted — the internal
        messages are ordinary traced sends on the caller's ``tag``.
        Callers must invoke per-key reductions in the same key order on
        every participant (the exchange iterates boxes ascending).
        """
        order = tree_order(ranks, root)
        n = len(order)
        pos = order.index(self.rank)  # ValueError for a non-participant
        if combine is None:
            combine = _ALLREDUCE_OPS["sum"]
        self.stats.record_tree_reduce(0)
        acc = value
        mask = 1
        while mask < n:
            if pos & mask:
                self.stats.tree_reduce_bytes += _payload_bytes(acc)
                self.send(order[pos - mask], acc, tag=tag, phase=phase)
                return None
            child = pos + mask
            if child < n:
                piece = self.recv(order[child], tag=tag, phase=phase)
                if acc is None:
                    acc = piece
                elif piece is not None:
                    acc = combine(acc, piece)
            mask <<= 1
        return acc

    def tree_bcast(
        self,
        value: Any,
        root: int,
        ranks: Iterable[int],
        tag: Any,
        phase: str | None = None,
    ) -> Any:
        """Segmented binomial broadcast over a rank subset (see
        :meth:`tree_reduce` for the participation contract).

        Interior participants forward the payload *by reference*, so
        the returned object must be treated as read-only on every rank
        except ``root``.
        """
        order = tree_order(ranks, root)
        n = len(order)
        pos = order.index(self.rank)  # ValueError for a non-participant
        if pos != 0:
            value = self.recv(order[tree_parent(pos)], tag=tag, phase=phase)
        self.stats.record_tree_bcast(
            _payload_bytes(value) if pos == 0 else 0
        )
        for child in reversed(tree_children(pos, n)):
            self.send(order[child], value, tag=tag, phase=phase)
        return value

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per rank, everywhere."""
        self._jitter()
        if self._tracer is not None:
            self._tracer.on_coll_enter("allgather", nbytes=_payload_bytes(obj))
        w = self._world
        w.slots[self.rank] = obj
        w.barrier.wait()
        out = list(w.slots)
        w.barrier.wait()
        if self._tracer is not None:
            self._coll_clock_sync("allgather")
        return out


class Request:
    """In-flight nonblocking receive returned by :meth:`SimComm.irecv`."""

    __slots__ = ("_comm", "_src", "_tag", "_phase", "_done", "_value")

    def __init__(
        self, comm: SimComm, src: int, tag: Any, phase: str | None
    ) -> None:
        self._comm = comm
        self._src = src
        self._tag = tag
        self._phase = phase
        self._done = False
        self._value: Any = None

    @property
    def source(self) -> int:
        return self._src

    @property
    def tag(self) -> Any:
        return self._tag

    def wait(self) -> Any:
        """Block until the message arrives; idempotent after completion."""
        if not self._done:
            self._value = self._comm._complete_recv(
                self._src, self._tag, self._phase
            )
            self._done = True
        return self._value


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 600.0,
    trace: CommTrace | None = None,
    schedule_seed: int | None = None,
    recv_timeout: float | None = None,
    race=None,
) -> list[Any]:
    """Run ``fn(comm, rank_args...)`` on ``nranks`` logical ranks.

    ``args`` may contain per-rank sequences wrapped in :class:`PerRank`;
    other arguments are broadcast.  Returns the per-rank return values.
    Any rank exception is re-raised in the caller.

    ``trace`` (a :class:`~repro.analysis.trace.CommTrace`) records every
    communication event for offline analysis; it is filled even when the
    run fails, which is when the analyzer matters most.
    ``schedule_seed`` enables seeded schedule perturbation (random
    yields before every communication call).  ``recv_timeout`` overrides
    :attr:`SimComm.TIMEOUT` — deadlock-detection tests use a small value
    so a wait-for cycle surfaces in milliseconds, not minutes.

    After a successful run every mailbox must be empty; leftover
    messages raise :class:`MailboxLeakError` naming the leaked
    ``(src, dst, tag)`` keys.

    ``race`` (a :class:`repro.analysis.racecheck.RaceDetector`) installs
    a per-rank shared-array access recorder for happens-before race
    analysis; a trace is created automatically if none was passed, since
    the detector orders accesses by the trace's vector clocks.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if race is not None and trace is None:
        trace = CommTrace()
    if trace is not None:
        trace.reset(nranks)
    if race is not None:
        race.reset(nranks, trace)
    world = _World(
        nranks, trace=trace, schedule_seed=schedule_seed,
        recv_timeout=recv_timeout, race=race,
    )
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int) -> None:
        comm = SimComm(world, rank)
        rank_args = [a.values[rank] if isinstance(a, PerRank) else a for a in args]
        try:
            results[rank] = fn(comm, *rank_args)
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            errors[rank] = exc
            world.aborted.set()  # interrupt peers blocked in receives
            world.barrier.abort()  # release ranks blocked in collectives
        finally:
            _thread_ctx.recorder = None

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    try:
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                world.aborted.set()
                world.barrier.abort()
                raise TimeoutError(f"SPMD run exceeded {timeout}s ({t.name} alive)")
    finally:
        leaked = world.leaked_messages()
        # Secondary failures (a peer aborted this rank's collective or
        # receive) never outrank the primary exception: propagation is
        # by rank order over primaries, so the same root cause surfaces
        # under every schedule.
        secondary = (threading.BrokenBarrierError, RankAbortedError)
        primary = next(
            (e for e in errors if e is not None
             and not isinstance(e, secondary)),
            None,
        )
        if trace is not None:
            trace.leaked = leaked
            first = primary if primary is not None else next(
                (e for e in errors if e is not None), None
            )
            trace.error = repr(first) if first is not None else None
            trace.completed = first is None and all(
                not t.is_alive() for t in threads
            )
    if primary is not None:
        raise primary
    broken = [r for r, e in enumerate(errors) if e is not None]
    if broken:
        raise RuntimeError(f"ranks {broken} failed with broken barriers")
    if leaked:
        if trace is not None:
            trace.completed = False
        raise MailboxLeakError(leaked)
    return results


@dataclass
class PerRank:
    """Wrapper marking an argument as per-rank in :func:`run_spmd`."""

    values: list[Any]
