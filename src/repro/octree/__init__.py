"""Adaptive hierarchical octree and adaptive-FMM interaction lists.

Implements the computation tree of Section 2.1 (boxes subdivided until no
box holds more than ``s`` points) and the four interaction lists of the
adaptive FMM (Section 3.1, following refs [4] and [7] of the paper):
U (near/dense), V (M2L), W and X (the adaptive lists).
"""

from repro.octree.box import Box
from repro.octree.lists import InteractionLists, build_lists
from repro.octree.morton import (
    anchor_to_key,
    decode_key,
    encode_points,
    key_to_anchor,
    MAX_DEPTH,
)
from repro.octree.tree import Octree, build_tree

__all__ = [
    "Box",
    "Octree",
    "build_tree",
    "InteractionLists",
    "build_lists",
    "anchor_to_key",
    "key_to_anchor",
    "decode_key",
    "encode_points",
    "MAX_DEPTH",
]
