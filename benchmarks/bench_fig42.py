"""Figure 4.2 — fixed-size scalability charts.

Left column: aggregate CPU cycles per particle, stacked by phase (Up,
Comm, DownU, DownV, DownW, DownX, Eval).  Right column: Mflops/s per
processor (average, peak, max/min) and the flop-rate/work efficiencies.
Printed as series tables (the repository is plot-free by design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import corner_clusters, sphere_grid_points
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel import TCS1, cycles_per_particle, simulate_run
from repro.perfmodel.costs import compute_work
from repro.perfmodel.metrics import (
    flop_rate_efficiency,
    mflops_per_processor,
    work_efficiency,
)
from repro.util.tables import format_table

PAPER_N = 3_200_000
P_LIST = (1, 4, 8, 16, 64, 256, 512, 1024)

_CASES = {
    "laplace_uniform": (LaplaceKernel(), "spheres"),
    "modified_laplace_uniform": (ModifiedLaplaceKernel(lam=1.0), "spheres"),
    "stokes_nonuniform": (StokesKernel(), "corners"),
}


def _series(kernel, workload, n_model):
    pts = (
        sphere_grid_points(n_model)
        if workload == "spheres"
        else corner_clusters(n_model, np.random.default_rng(42))
    )
    tree = build_tree(pts, max_points=60)
    lists = build_lists(tree)
    work = compute_work(tree, lists, kernel, 6)
    scale = PAPER_N / pts.shape[0]
    reports = [
        simulate_run(tree, lists, kernel, 6, P, TCS1, work=work,
                     grain_scale=scale, n_override=PAPER_N)
        for P in P_LIST
    ]
    cycle_rows, rate_rows = [], []
    serial = reports[0]
    for r in reports:
        c = cycles_per_particle(r, TCS1)
        cycle_rows.append(
            (r.P, c["up"] / 1e3, c["comm"] / 1e3, c["down_u"] / 1e3,
             c["down_v"] / 1e3, c["down_w"] / 1e3, c["down_x"] / 1e3,
             c["eval"] / 1e3, c["total"] / 1e3)
        )
        rates = mflops_per_processor(r)
        rate_rows.append(
            (r.P, rates["avg"], rates["peak"], rates["max"], rates["min"],
             work_efficiency(serial, r), flop_rate_efficiency(serial, r))
        )
    return cycle_rows, rate_rows


@pytest.mark.parametrize("case", list(_CASES))
def test_fig42(benchmark, case, bench_scale):
    kernel, workload = _CASES[case]
    cycle_rows, rate_rows = benchmark.pedantic(
        _series, args=(kernel, workload, bench_scale["N"]), rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("P", "Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval",
         "Total"),
        cycle_rows,
        title=f"Figure 4.2 / {case}: aggregate Kcycles per particle by phase",
    ))
    print()
    print(format_table(
        ("P", "Avg MF/s", "Peak MF/s", "Max", "Min", "WorkEff", "RateEff"),
        rate_rows,
        title=f"Figure 4.2 / {case}: per-processor rates and efficiencies",
    ))
    # shape assertions mirroring the paper's reading of the figure:
    # cycles/particle roughly flat through 256 procs ("only a small
    # increase in the total work per particle")
    totals = {row[0]: row[-1] for row in cycle_rows}
    assert totals[256] < 3.0 * totals[1]
    # work efficiency good at 64, degraded at 1024 (too fine a grain)
    eff = {row[0]: row[5] for row in rate_rows}
    assert eff[64] > 0.5
    assert eff[1024] < eff[64]
    if case == "stokes_nonuniform":
        # DownV (M2L) is a dominant downward phase for the paper's setup
        p1 = cycle_rows[0]
        assert p1[4] > p1[5] and p1[4] > p1[6]
