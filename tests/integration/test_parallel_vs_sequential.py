"""The parallel algorithm must reproduce the sequential FMM exactly.

This is the paper's implicit correctness claim: the three-stage
compute/communicate/compute structure with redundant near-root work and
owner-mediated exchanges computes the *same* potentials as a single
processor would.  Everything — Morton partitioning, the global tree
array, LETs, owners, Algorithm 1 — is on the line in these tests.
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel
from repro.kernels.direct import direct_evaluate, relative_error
from repro.parallel import run_parallel_fmm

from tests.conftest import clustered_cloud, uniform_cloud


@pytest.mark.parametrize("nranks", [2, 3, 6])
def test_laplace_clustered(rng, nranks):
    pts = clustered_cloud(rng, 600)
    phi = rng.standard_normal((600, 1))
    # plan="naive": the rank simulation mirrors the per-box evaluator;
    # the batched plan reorders accumulations and only matches to ~1e-12.
    opts = FMMOptions(p=4, max_points=25, plan="naive")
    seq = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(nranks, LaplaceKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq) < 1e-12


@pytest.mark.parametrize("nranks", [2, 4])
def test_stokes_uniform(rng, nranks):
    pts = uniform_cloud(rng, 400)
    phi = rng.standard_normal((400, 3))
    opts = FMMOptions(p=4, max_points=30, plan="naive")
    seq = KIFMM(StokesKernel(), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(nranks, StokesKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq) < 1e-12


def test_modified_laplace_dense_m2l(rng):
    pts = clustered_cloud(rng, 400)
    phi = rng.standard_normal((400, 1))
    opts = FMMOptions(p=4, max_points=25, m2l="dense", plan="naive")
    seq = KIFMM(ModifiedLaplaceKernel(2.0), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(3, ModifiedLaplaceKernel(2.0), pts, phi, opts)
    assert relative_error(par.potential, seq) < 1e-12


def test_single_rank_equals_sequential(rng):
    pts = uniform_cloud(rng, 300)
    phi = rng.standard_normal((300, 1))
    opts = FMMOptions(p=4, max_points=30, plan="naive")
    seq = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(1, LaplaceKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq) < 1e-14
    assert par.comm_stats[0].bytes_sent == 0  # nothing to exchange


def test_accuracy_against_direct(rng):
    """Parallel FMM vs O(N^2) truth, not just vs the sequential FMM."""
    pts = clustered_cloud(rng, 500)
    phi = rng.standard_normal((500, 1))
    par = run_parallel_fmm(
        4, LaplaceKernel(), pts, phi, FMMOptions(p=6, max_points=25)
    )
    exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
    assert relative_error(par.potential, exact) < 5e-4


def test_communication_happens_and_scales(rng):
    pts = uniform_cloud(rng, 600)
    phi = rng.standard_normal((600, 1))
    opts = FMMOptions(p=4, max_points=25)
    r2 = run_parallel_fmm(2, LaplaceKernel(), pts, phi, opts)
    r6 = run_parallel_fmm(6, LaplaceKernel(), pts, phi, opts)
    b2 = sum(s.bytes_sent for s in r2.comm_stats)
    b6 = sum(s.bytes_sent for s in r6.comm_stats)
    assert b2 > 0
    assert b6 > b2  # more ranks, more boundary


def test_timers_populated(rng):
    pts = uniform_cloud(rng, 300)
    phi = rng.standard_normal((300, 1))
    res = run_parallel_fmm(2, LaplaceKernel(), pts, phi,
                           FMMOptions(p=4, max_points=30))
    for t in res.timers:
        assert t["up"] > 0
        assert "pack" in t and "wait" in t
        assert any(k.startswith("down") for k in t)
