"""The communication stage between the upward and downward passes.

Implements Algorithm 1 of the paper (gather/scatter of leaf source
positions and densities) and its equivalent-density variant ("the
procedure ... is similar to Algorithm 1 with two modifications: (1) we
iterate over all boxes in the LET instead of just the leaf boxes, and
(2) the owner of a box sums up the received upward equivalent densities
to obtain the global upward equivalent densities for that box").

All sends are buffered (MPI_Isend semantics), and the gather and scatter
steps are fully phased — every rank posts all its sends for a step before
receiving — so the protocol is deadlock-free regardless of box ordering.

Two flavours live here:

- the blocking per-call exchanges (:func:`exchange_source_data`,
  :func:`exchange_equiv_densities`) used by the per-box
  ``parallel_evaluate`` path, now accounting their time under the
  ``pack`` (send side) and ``wait`` (receive side) phases;
- the persistent-operator machinery: :func:`exchange_source_geometry`
  runs once at setup (positions only), and :class:`ApplyExchange` runs
  the per-apply density / equivalent-density exchange with
  ``isend``/``irecv`` so the owner relay and the final ghost waits can
  be overlapped with owned-data computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import StageMeta, plan_stage
from repro.parallel.simmpi import Request, SimComm, current_recorder
from repro.util.timing import PhaseTimer


def exchange_source_data(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_src: np.ndarray,
    owner: np.ndarray,
    local_points: dict[int, np.ndarray],
    local_density: dict[int, np.ndarray],
    timer: PhaseTimer | None = None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Algorithm 1: ghost source positions/densities for U/X interactions.

    Parameters
    ----------
    boxes:
        Indices of the (leaf) boxes whose source data must circulate —
        the union over ranks of ``uses_source`` (identical everywhere).
    contrib_src, users_src:
        ``(nranks, nboxes)`` bool matrices.
    owner:
        ``(nboxes,)`` owner rank per box.
    local_points, local_density:
        This rank's local source points / densities per contributed box.

    Returns
    -------
    ``{box: (points, density)}`` with the *global* data for every box
    this rank uses (including boxes it owns or contributes to).
    """
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()
    ndof = None
    for d in local_density.values():
        ndof = d.shape[1] if d.ndim == 2 else 1
        break

    # STEP 1 GATHER — contributors send their local pieces to the owner.
    with timer.phase("pack"):
        for b in boxes:
            if contrib_src[me, b] and owner[b] != me:
                comm.send(
                    int(owner[b]),
                    (local_points[b], local_density[b]),
                    tag=("src", int(b)),
                    phase="ghost_gather",
                )
    combined: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    with timer.phase("wait"):
        for b in boxes:
            if owner[b] != me:
                continue
            pieces_p, pieces_d = [], []
            if contrib_src[me, b]:
                pieces_p.append(local_points[b])
                pieces_d.append(local_density[b])
            for r in np.nonzero(contrib_src[:, b])[0]:
                if r == me:
                    continue
                pts, dens = comm.recv(int(r), tag=("src", int(b)))
                pieces_p.append(pts)
                pieces_d.append(dens)
            if pieces_p:
                combined[int(b)] = (np.vstack(pieces_p), np.vstack(pieces_d))
            else:
                combined[int(b)] = (
                    np.empty((0, 3)),
                    np.empty((0, ndof if ndof else 1)),
                )

    # STEP 2 SCATTER — the owner sends the global data to every user.
    with timer.phase("pack"):
        for b in boxes:
            if owner[b] == me:
                for r in np.nonzero(users_src[:, b])[0]:
                    if r != me:
                        comm.send(
                            int(r), combined[int(b)], tag=("srcg", int(b)),
                            phase="ghost_scatter",
                        )
    result: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    with timer.phase("wait"):
        for b in boxes:
            if not users_src[me, b]:
                continue
            if owner[b] == me:
                result[int(b)] = combined[int(b)]
            else:
                result[int(b)] = comm.recv(int(owner[b]), tag=("srcg", int(b)))
    return result


def exchange_equiv_densities(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_equiv: np.ndarray,
    owner: np.ndarray,
    partial_ue: np.ndarray,
    has_ue: np.ndarray,
    timer: PhaseTimer | None = None,
) -> dict[int, np.ndarray]:
    """Reduce partial upward equivalent densities and scatter to users.

    Every contributor's upward pass produced a *partial* equivalent
    density (linear in its local sources); the owner sums the partials —
    linearity of equations (2.1)/(2.3) makes the sum the exact global
    density — and scatters to users.

    Returns ``{box: global_ue}`` for every box this rank uses.
    """
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()

    # GATHER + reduce at the owner.  A source contributor always has a
    # partial density (the upward pass covers every box with local
    # sources), so the send/recv pairing below is exact; ``has_ue`` only
    # guards against sending uninitialised storage.
    with timer.phase("pack"):
        for b in boxes:
            if contrib_src[me, b] and owner[b] != me:
                payload = (
                    partial_ue[b] if has_ue[b] else np.zeros_like(partial_ue[b])
                )
                comm.send(int(owner[b]), payload, tag=("ue", int(b)),
                          phase="equiv_gather")
    summed: dict[int, np.ndarray] = {}
    with timer.phase("wait"):
        for b in boxes:
            if owner[b] != me:
                continue
            total = (
                partial_ue[b].copy()
                if (contrib_src[me, b] and has_ue[b])
                else None
            )
            for r in np.nonzero(contrib_src[:, b])[0]:
                if r == me:
                    continue
                piece = comm.recv(int(r), tag=("ue", int(b)))
                total = piece.copy() if total is None else total + piece
            summed[int(b)] = (
                total if total is not None else np.zeros_like(partial_ue[b])
            )

    # SCATTER to users.
    with timer.phase("pack"):
        for b in boxes:
            if owner[b] == me:
                for r in np.nonzero(users_equiv[:, b])[0]:
                    if r != me:
                        comm.send(int(r), summed[int(b)], tag=("ueg", int(b)),
                                  phase="equiv_scatter")
    result: dict[int, np.ndarray] = {}
    with timer.phase("wait"):
        for b in boxes:
            if not users_equiv[me, b]:
                continue
            if owner[b] == me:
                result[int(b)] = summed[int(b)]
            else:
                result[int(b)] = comm.recv(int(owner[b]), tag=("ueg", int(b)))
    return result


def exchange_source_geometry(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_src: np.ndarray,
    owner: np.ndarray,
    local_points: dict[int, np.ndarray],
    timer: PhaseTimer | None = None,
) -> dict[int, np.ndarray]:
    """Setup-time Algorithm 1 over source *positions* only.

    The persistent operator exchanges ghost geometry once: positions
    never change between applies, so each :class:`ApplyExchange` moves
    only densities.  The owner concatenates contributor pieces with
    itself first and the remaining contributors in ascending rank order
    — :class:`ApplyExchange` reassembles densities in the identical
    order, so the combined points and the combined densities stay row
    aligned across applies.

    Returns ``{box: global_points}`` for every box this rank uses.
    """
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("pack"):
        for b in boxes:
            if contrib_src[me, b] and owner[b] != me:
                comm.send(int(owner[b]), local_points[b],
                          tag=("geo", int(b)), phase="geo_gather")
    combined: dict[int, np.ndarray] = {}
    with timer.phase("wait"):
        for b in boxes:
            if owner[b] != me:
                continue
            pieces = [local_points[b]] if contrib_src[me, b] else []
            for r in np.nonzero(contrib_src[:, b])[0]:
                if r != me:
                    pieces.append(comm.recv(int(r), tag=("geo", int(b))))
            combined[int(b)] = (
                np.vstack(pieces) if pieces else np.empty((0, 3))
            )
    with timer.phase("pack"):
        for b in boxes:
            if owner[b] == me:
                for r in np.nonzero(users_src[:, b])[0]:
                    if r != me:
                        comm.send(int(r), combined[int(b)],
                                  tag=("geog", int(b)), phase="geo_scatter")
    result: dict[int, np.ndarray] = {}
    with timer.phase("wait"):
        for b in boxes:
            if not users_src[me, b]:
                continue
            if owner[b] == me:
                result[int(b)] = combined[int(b)]
            else:
                result[int(b)] = comm.recv(int(owner[b]), tag=("geog", int(b)))
    return result


@plan_stage
@dataclass
class ExchangePlan:
    """One rank's role in the per-apply exchange of one payload kind.

    Precomputed at setup from the contributor/user matrices and the
    owner map; every list is in ascending box order and every rank list
    in ascending rank order, so message posting order — and therefore
    the owner-side reduction order — is schedule independent.
    """

    kind: str  # "phi" (source densities) or "pue" (partial equiv dens.)
    #: Boxes this rank contributes to but does not own: ``(box, owner)``.
    send_to_owner: list[tuple[int, int]]
    #: Boxes this rank owns:
    #: ``(box, peer_contributors, self_contributes, peer_users, self_uses)``.
    owned: list[tuple[int, list[int], bool, list[int], bool]]
    #: Boxes this rank uses but does not own: ``(box, owner)``.
    recv_from: list[tuple[int, int]]

    stage_meta = StageMeta(
        reads=("phi", "ue"), writes=("ue", "ext_phi"), dtype="float64"
    )


def build_exchange_plan(
    kind: str,
    me: int,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users: np.ndarray,
    owner: np.ndarray,
) -> ExchangePlan:
    """Split the circulating ``boxes`` by this rank's role."""
    send_to_owner: list[tuple[int, int]] = []
    owned: list[tuple[int, list[int], bool, list[int], bool]] = []
    recv_from: list[tuple[int, int]] = []
    for b in boxes:
        b = int(b)
        o = int(owner[b])
        if o == me:
            peers_c = [int(r) for r in np.nonzero(contrib_src[:, b])[0] if r != me]
            peers_u = [int(r) for r in np.nonzero(users[:, b])[0] if r != me]
            owned.append(
                (b, peers_c, bool(contrib_src[me, b]), peers_u,
                 bool(users[me, b]))
            )
        else:
            if contrib_src[me, b]:
                send_to_owner.append((b, o))
            if users[me, b]:
                recv_from.append((b, o))
    return ExchangePlan(kind, send_to_owner, owned, recv_from)


@dataclass
class GhostLayout:
    """Persistent layout of the per-apply exchange (one rank's view)."""

    phi: ExchangePlan  # combined source densities over ``uses_source`` boxes
    pue: ExchangePlan  # global upward equivalent densities over ``uses_equiv``
    ext_start: np.ndarray  # per-box rows into the combined source arrays
    ext_stop: np.ndarray


class ApplyExchange:
    """One apply's in-flight nonblocking exchange.

    ``start`` posts every send and receive of both sub-exchanges up
    front (buffered ``isend`` + posted ``irecv``, so the protocol cannot
    deadlock).  ``relay`` completes the gather side: owners reduce the
    contributor pieces — concatenation for densities, summation for
    partial equivalent densities (linearity of eq. 2.1/2.3) — scatter
    the combined data to users and store locally-owned data.  ``finish``
    completes the scatter side, filling the ghost rows.  Between
    ``relay`` and ``finish`` the receive queues fill while the caller
    computes on owned data — the communication/computation overlap
    window of the persistent operator.
    """

    def __init__(
        self,
        comm: SimComm,
        layout: GhostLayout,
        phi_sorted: np.ndarray,
        src_start: np.ndarray,
        src_stop: np.ndarray,
        ue: np.ndarray,
        ext_phi: np.ndarray,
        timer: PhaseTimer,
    ) -> None:
        self._comm = comm
        self._layout = layout
        self._phi_sorted = phi_sorted
        self._src_start = src_start
        self._src_stop = src_stop
        self._ue = ue
        self._ext_phi = ext_phi
        self._timer = timer
        #: Race-detector hook: the per-rank recorder installed by
        #: ``run_spmd(race=...)``, or None on uninstrumented runs.
        self._rec = current_recorder()
        self._gathers: list[tuple[ExchangePlan, int, list[Request],
                                  bool, list[int], bool]] = []
        self._scatters: list[tuple[ExchangePlan, int, Request]] = []

    def _piece(self, plan: ExchangePlan, b: int) -> np.ndarray:
        """This rank's local contribution to box ``b``.

        Equivalent-density rows are copied: the simulated MPI passes
        object references, and ``_store`` later overwrites ``ue[b]``
        with the *global* densities — an uncopied row view would let a
        slow receiver observe the mutated value.  ``phi`` slices are
        never written during an apply, so they ship as views.
        """
        if plan.kind == "phi":
            piece = self._phi_sorted[self._src_start[b]:self._src_stop[b]]
            if self._rec is not None:
                self._rec.read(piece, f"piece:phi box {b}")
            return piece
        if self._rec is not None:
            self._rec.read(self._ue[b], f"piece:pue box {b}")
        return self._ue[b].copy()

    def _store(self, plan: ExchangePlan, b: int, data: np.ndarray) -> None:
        """Place combined data for a used box into the apply arrays."""
        if self._rec is not None:
            self._rec.read(data, f"store:recv box {b}")
        if plan.kind == "phi":
            lay = self._layout
            dst = self._ext_phi[lay.ext_start[b]:lay.ext_stop[b]]
            if self._rec is not None:
                self._rec.write(dst, f"store:ghost-phi box {b}")
            dst[...] = data
        else:
            if self._rec is not None:
                self._rec.write(self._ue[b], f"store:global-ue box {b}")
            self._ue[b] = data

    def start(self) -> "ApplyExchange":
        """Post every send and receive of both sub-exchanges."""
        comm = self._comm
        with self._timer.phase("pack"):
            for plan in (self._layout.phi, self._layout.pue):
                gphase, sphase = f"{plan.kind}_gather", f"{plan.kind}_scatter"
                for b, o in plan.send_to_owner:
                    comm.isend(o, self._piece(plan, b), tag=(plan.kind, b),
                               phase=gphase)
                for b, peers_c, selfc, peers_u, selfu in plan.owned:
                    reqs = [
                        comm.irecv(r, tag=(plan.kind, b), phase=gphase)
                        for r in peers_c
                    ]
                    self._gathers.append(
                        (plan, b, reqs, selfc, peers_u, selfu)
                    )
                for b, o in plan.recv_from:
                    self._scatters.append(
                        (plan, b,
                         comm.irecv(o, tag=(plan.kind + "g", b), phase=sphase))
                    )
        return self

    def relay(self) -> None:
        """Complete gathers, reduce at the owner, scatter to users."""
        with self._timer.phase("wait"):
            gathered = [
                (plan, b, [r.wait() for r in reqs], selfc, peers_u, selfu)
                for plan, b, reqs, selfc, peers_u, selfu in self._gathers
            ]
        comm = self._comm
        with self._timer.phase("pack"):
            for plan, b, peer_pieces, selfc, peers_u, selfu in gathered:
                if self._rec is not None:
                    # Contributor pieces arrive by reference: reading
                    # them here is a cross-rank access on the sender's
                    # arrays, ordered (or not) by the gather message.
                    for p in peer_pieces:
                        self._rec.read(p, f"relay:piece box {b}")
                pieces = (
                    [self._piece(plan, b)] if selfc else []
                ) + peer_pieces
                if plan.kind == "phi":
                    data = (
                        np.vstack(pieces) if pieces
                        else np.empty((0, self._phi_sorted.shape[1]))
                    )
                else:
                    data = pieces[0].copy()
                    for p in pieces[1:]:
                        data += p
                if self._rec is not None:
                    self._rec.write(data, f"relay:combine box {b}")
                for r in peers_u:
                    comm.isend(r, data, tag=(plan.kind + "g", b),
                               phase=f"{plan.kind}_scatter")
                if selfu:
                    self._store(plan, b, data)

    def finish(self) -> None:
        """Complete the scatter side: fill the ghost rows."""
        with self._timer.phase("wait"):
            for plan, b, req in self._scatters:
                self._store(plan, b, req.wait())
