"""Runtime sanitizers for the planned evaluation path.

Enabled via the ``REPRO_SANITIZE=1`` environment variable or the
``FMMOptions.sanitize`` flag, three checkers run inside the core and
parallel evaluators (see ``docs/architecture.md`` § "Race detection &
sanitizers"):

- **BufferPool lifecycle** — :class:`~repro.core.plan.BufferPool` gains
  explicit ``release``: released buffers are poisoned with NaN (so any
  stale read propagates into the finite checks below), double releases
  raise :class:`DoubleReleaseError`, reads guarded with ``check_live``
  raise :class:`UseAfterReleaseError`, and results are checked against
  every pool allocation at function exit (the dynamic complement of the
  ``bufferpool-escape`` lint rule).
- **Finite ingress checks** — :func:`check_finite` runs at every
  ExecutionPlan phase boundary and names the phase and the box range
  that first produced a NaN/Inf, instead of letting it surface as a
  wrong potential many phases later.
- **GEMM aliasing guards** — :func:`guard_gemm` verifies the output of
  a plan GEMM stack shares no memory with its inputs
  (``np.may_share_memory``); writing through an aliased output corrupts
  later rows of the same batched product.

All checkers raise subclasses of :class:`SanitizerError`, so callers
(and CI) can catch the whole family.  The module is dependency-free by
design: ``repro.core`` imports it without cycles.
"""

from __future__ import annotations

import os

import numpy as np

def enabled() -> bool:
    """Whether the environment requests sanitized runs."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class SanitizerError(RuntimeError):
    """Base class of every sanitizer diagnosis."""


class UseAfterReleaseError(SanitizerError):
    """A released (poisoned) pool buffer was used without reacquisition."""


class DoubleReleaseError(SanitizerError):
    """A pool buffer was released twice without reacquisition."""


class BufferEscapeError(SanitizerError):
    """A returned result aliases recycled pool scratch memory."""


class NonFiniteError(SanitizerError):
    """A NaN/Inf crossed an ExecutionPlan phase boundary."""


class GemmAliasError(SanitizerError):
    """A GEMM stack's output aliases one of its inputs."""


def check_finite(
    array: np.ndarray, phase: str, what: str, rows_are: str = "boxes"
) -> None:
    """Raise :class:`NonFiniteError` naming the phase and box range.

    ``rows_are`` documents what the leading axis indexes ("boxes" for
    the per-box equivalent/check stacks, "targets" for potentials,
    "points" for densities) so the report reads as a range of the
    offending entities.
    """
    finite = np.isfinite(array)
    if finite.all():
        return
    bad = ~finite
    rows = np.flatnonzero(bad.reshape(array.shape[0], -1).any(axis=1))
    raise NonFiniteError(
        f"{int(bad.sum())} non-finite value(s) in {what} at the "
        f"{phase!r} phase boundary ({rows_are} {int(rows[0])}..."
        f"{int(rows[-1])}, {rows.size} affected)"
    )


def guard_gemm(out: np.ndarray, *inputs: np.ndarray, site: str) -> None:
    """Raise :class:`GemmAliasError` if ``out`` aliases any input.

    Uses the bounds-level memory-overlap test (cheap and exact for the
    plan's sliced pool buffers, which are contiguous row ranges).
    """
    for i, arr in enumerate(inputs):
        if arr is None or arr.size == 0 or out.size == 0:
            continue
        if np.may_share_memory(out, arr):
            raise GemmAliasError(
                f"GEMM stack at {site}: output aliases input #{i} "
                f"(shape {arr.shape}); in-place accumulation through an "
                f"aliased operand corrupts later rows of the batch"
            )


def check_escape(result: np.ndarray, pool, context: str) -> None:
    """Raise :class:`BufferEscapeError` if ``result`` aliases ``pool``.

    Called on values returned across an apply boundary; anything backed
    by pool storage will be silently overwritten by the next apply.
    """
    for buf in pool.allocations():
        if np.may_share_memory(result, buf):
            raise BufferEscapeError(
                f"{context}: result aliases BufferPool scratch memory; "
                f"it will be overwritten by the next apply()"
            )
