"""The Figure 4.1 scenario: a sphere sedimenting past a rotating propeller.

A rigid sphere falls under gravity through a viscous Stokes fluid stirred
by a clockwise-rotating propeller (hub + three ellipsoid blades).  Every
time step solves a boundary integral equation with GMRES, and every GMRES
iteration's matvec is one FMM interaction evaluation — "tens of
interaction calculations" per step, exactly the workload the paper's
parallel FMM was built for.  The propeller geometry physically rotates
between steps.

Run:  python examples/stokes_sedimentation.py [nsteps]
Writes the trajectory to stokes_sedimentation_trajectory.csv and a
velocity slice (y=0 plane) to stokes_sedimentation_flowfield.csv.
"""

import sys

import numpy as np

from repro.bie import (
    RigidBody,
    SedimentationSimulation,
    SphereSurface,
    evaluate_velocity,
    propeller_surface,
    solve_single_layer,
)
from repro.core.fmm import FMMOptions


def main(nsteps: int = 5) -> None:
    falling = RigidBody(
        SphereSurface(center=np.array([0.6, 0.0, 2.2]), radius=0.4, n=260)
    )
    propeller = RigidBody(
        propeller_surface(np.zeros(3), nblades=3, blade_length=0.8,
                          n_per_blade=110, n_hub=90),
        angular_velocity=np.array([0.0, 0.0, -2.0]),  # clockwise, Fig 4.1
        prescribed=True,
    )
    sim = SedimentationSimulation(
        bodies=[falling, propeller],
        gravity_force=np.array([0.0, 0.0, -4.0]),
        mu=1.0,
        tol=1e-5,
        use_fmm=True,
        options=FMMOptions(p=6, max_points=70),
    )

    print(f"bodies: sphere ({falling.surface.n} quadrature points) + "
          f"3-blade propeller ({propeller.surface.n} points)")
    print("t      x       y       z       |U|     FMM matvecs (cumulative)")
    frames = []
    for _ in range(nsteps):
        f = sim.step(dt=0.05)
        x, y, z = f.positions[0]
        speed = np.linalg.norm(f.free_velocity)
        print(f"{f.time:5.2f} {x:7.4f} {y:7.4f} {z:7.4f} {speed:7.4f}   "
              f"{f.matvecs}")
        frames.append(f)

    with open("stokes_sedimentation_trajectory.csv", "w") as fh:
        fh.write("t,x,y,z,ux,uy,uz\n")
        for f in frames:
            x, y, z = f.positions[0]
            ux, uy, uz = f.free_velocity
            fh.write(f"{f.time},{x},{y},{z},{ux},{uy},{uz}\n")
    print("\ntrajectory written to stokes_sedimentation_trajectory.csv")

    # velocity field on the y=0 slice (the animation frame of Figure 4.1)
    print("computing flow-field slice (y = 0 plane)...")
    op = sim.operator
    u_bc = np.zeros((op.n, 3))
    slices = op.body_slices()
    for i, body in enumerate(sim.bodies):
        u_bc[slices[i]] = body.surface_velocity()
    phi = solve_single_layer(op, u_bc, tol=1e-5)
    xs = np.linspace(-2.0, 2.0, 24)
    zs = np.linspace(-1.5, 3.0, 24)
    grid = np.array([[x, 0.0, z] for x in xs for z in zs])
    # keep probes outside the bodies
    keep = np.ones(len(grid), dtype=bool)
    for body in sim.bodies:
        c = body.surface.center
        r = np.linalg.norm(grid - c, axis=1)
        keep &= r > 1.1
    field = evaluate_velocity(op, phi, grid[keep])
    with open("stokes_sedimentation_flowfield.csv", "w") as fh:
        fh.write("x,z,ux,uy,uz\n")
        for p, u in zip(grid[keep], field):
            fh.write(f"{p[0]},{p[2]},{u[0]},{u[1]},{u[2]}\n")
    print("flow field written to stokes_sedimentation_flowfield.csv")
    print("(the sphere descends; the rotating propeller entrains it "
          "azimuthally)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
