"""The sequential adaptive KIFMM evaluator.

Implements the classical FMM control flow (Section 2: "Our algorithm has
exactly the same structure as the original FMM") with the paper's density
representations:

Upward pass (bottom-up)
    leaves: sources -> upward check potential (eq. 2.1, arrow 1);
    non-leaves: children's upward equivalent densities -> upward check
    potential (eq. 2.3, arrow 1); then one inversion per box (arrow 2).

Downward pass (top-down)
    every box accumulates its downward *check potential* from the parent
    (L2L, eq. 2.5), its V list (M2L, eq. 2.4 — dense or FFT-accelerated)
    and its X list (direct sources -> check surface), then inverts once
    (the "one inversion per box" optimisation; same mathematics as
    performing it per translation).

Leaf evaluation
    targets receive the downward equivalent density (L2T), the dense
    U-list interactions, and the W-list upward equivalent densities
    evaluated directly.

Phase naming matches the legend of the paper's Figure 4.2: ``up``,
``down_u``, ``down_v``, ``down_w``, ``down_x`` and ``eval`` (L2L + L2T +
inversions).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import sanitize as _san
from repro.core.fftm2l import FFTM2L
from repro.core.m2lschedule import (
    M2LSchedule,
    resolve_m2l_schedule,
    v_stats_from_lists,
    v_stats_from_plan,
)
from repro.core.plan import MAX_BLOCK_ENTRIES, ExecutionPlan, chunk_segments
from repro.core.precompute import OperatorCache
from repro.core.surfaces import surface_grid
from repro.kernels.base import Kernel
from repro.octree.lists import InteractionLists
from repro.octree.tree import Octree
from repro.util.flops import FlopCounter
from repro.util.timing import PhaseTimer


def _matvec_flops(matrix_shape: tuple[int, int]) -> float:
    return 2.0 * matrix_shape[0] * matrix_shape[1]


def _rsvd_pair_flops(rank: int, n_surf: int, md: int, qd: int) -> float:
    """Real flops of one rsvd-compressed M2L pair (two stacked GEMMs).

    ``(ue @ vf.T) @ uf.T`` costs ``2 k (n_surf md) + 2 k (n_surf qd)``
    per density row.  Every factor is an integer, so the float product
    is integer-valued and the evaluator / plan-IR / cost-model totals
    stay a bitwise identity.
    """
    return 2.0 * rank * n_surf * (md + qd)


def coerce_density(
    density: np.ndarray, npts: int, dof: int
) -> tuple[np.ndarray, int, bool]:
    """Normalise a density to ``(npts, dof, nrhs)``; returns (phi, nrhs, single).

    Accepted forms: a single density as ``(npts, dof)`` or flat
    ``(npts * dof,)`` (``single=True``; callers squeeze the trailing RHS
    axis off their result), a stacked block ``(npts, dof, nrhs)``, or a
    flat block ``(npts * dof, nrhs)`` as produced by block Krylov
    solvers.  Blocks are reshaped, never copied, so a column-major
    caller pays nothing extra here.
    """
    arr = np.asarray(density, dtype=np.float64)
    if arr.ndim == 3 and arr.shape[:2] == (npts, dof):
        return arr, arr.shape[2], False
    if arr.ndim == 2 and arr.shape == (npts, dof):
        return arr.reshape(npts, dof, 1), 1, True
    if arr.ndim == 2 and arr.shape[0] == npts * dof:
        return arr.reshape(npts, dof, arr.shape[1]), arr.shape[1], False
    if arr.ndim == 1 and arr.size == npts * dof:
        return arr.reshape(npts, dof, 1), 1, True
    raise ValueError(
        f"density shape {arr.shape} does not match {npts} points of "
        f"{dof} components (accepted: (n, dof), flat (n*dof,), stacked "
        f"(n, dof, nrhs), flat block (n*dof, nrhs))"
    )


def resolve_kernels(
    kernel: Kernel,
    source_kernel: Kernel | None,
    target_kernel: Kernel | None,
    direct_kernel: Kernel | None,
) -> tuple[Kernel, Kernel, Kernel]:
    """Resolve and validate the (source, target, direct) kernel triple.

    Shared by the per-box and the planned evaluator; see
    :func:`evaluate` for the meaning of each kernel.
    """
    src_k = source_kernel if source_kernel is not None else kernel
    trg_k = target_kernel if target_kernel is not None else kernel
    if direct_kernel is not None:
        dir_k = direct_kernel
    elif src_k is kernel:
        dir_k = trg_k
    elif trg_k is kernel:
        dir_k = src_k
    else:
        raise ValueError(
            "direct_kernel is required when both source_kernel and "
            "target_kernel are custom"
        )
    if src_k.target_dof != kernel.target_dof:
        raise ValueError(
            f"source_kernel must produce {kernel.target_dof}-component "
            f"check potentials, got {src_k.target_dof}"
        )
    if trg_k.source_dof != kernel.source_dof:
        raise ValueError(
            f"target_kernel must consume {kernel.source_dof}-component "
            f"equivalent densities, got {trg_k.source_dof}"
        )
    if (dir_k.source_dof, dir_k.target_dof) != (
        src_k.source_dof,
        trg_k.target_dof,
    ):
        raise ValueError(
            f"direct_kernel must map {src_k.source_dof} -> "
            f"{trg_k.target_dof} components, got "
            f"{dir_k.source_dof} -> {dir_k.target_dof}"
        )
    return src_k, trg_k, dir_k


def evaluate(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    cache: OperatorCache,
    density: np.ndarray,
    m2l_mode: str | M2LSchedule = "fft",
    fft_m2l: FFTM2L | None = None,
    flops: FlopCounter | None = None,
    timer: PhaseTimer | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
) -> np.ndarray:
    """Evaluate ``u_i = sum_j G(x_i, y_j) phi_j`` with the KIFMM.

    Parameters
    ----------
    tree, lists:
        The computation tree and its interaction lists.
    kernel, cache:
        The *translation* kernel (builds and moves equivalent densities)
        and its operator cache (must share ``tree.root_side``).
    density:
        ``(ns, source_kernel.source_dof)`` or flat source densities in
        *original* (unsorted) point order; stacked blocks
        (``(ns, dof, nrhs)`` or ``(ns * dof, nrhs)``) are evaluated
        column by column on this reference path.
    m2l_mode:
        ``"fft"`` (default), ``"dense"``, ``"rsvd"``, ``"auto"`` — or an
        already-resolved :class:`~repro.core.m2lschedule.M2LSchedule`
        (strings resolve against this tree's gated V statistics).
    fft_m2l:
        Optional pre-built :class:`FFTM2L` (reused across evaluations).
    flops, timer:
        Optional instrumentation sinks.
    source_kernel:
        Kernel mapping the user's densities to check potentials (S2M and
        X-list evaluations); enables dipole/double-layer sources.  Must
        produce the translation kernel's potential type
        (``target_dof`` equal to ``kernel.target_dof``).  Defaults to
        the translation kernel.
    target_kernel:
        Kernel mapping single-layer densities of the translation kernel
        to the user's target quantity (L2T and W-list evaluations);
        enables gradient/force output.  Must consume the translation
        kernel's densities (``source_dof`` equal to
        ``kernel.source_dof``).  Defaults to the translation kernel.
    direct_kernel:
        Kernel for the near-field U-list (user density -> user target).
        Inferred when at most one of source/target kernel is custom;
        required when both are.

    Returns
    -------
    ``(nt, target_kernel.target_dof)`` values in original target order
    (trailing ``nrhs`` axis appended for stacked blocks).
    """
    if isinstance(m2l_mode, M2LSchedule):
        sched = m2l_mode
    else:
        sched = resolve_m2l_schedule(
            m2l_mode, "float64",
            stats=v_stats_from_lists(tree, lists), cache=cache, kernel=kernel,
        )
    src_k, trg_k, dir_k = resolve_kernels(
        kernel, source_kernel, target_kernel, direct_kernel
    )
    flops = flops if flops is not None else FlopCounter()
    timer = timer if timer is not None else PhaseTimer()
    md, qd = kernel.source_dof, kernel.target_dof
    out_dof = trg_k.target_dof
    ns, nt = tree.sources.shape[0], tree.targets.shape[0]
    phi3, nrhs, single = coerce_density(density, ns, src_k.source_dof)
    if not single:
        # The per-box reference path stays single-RHS: a stacked block
        # loops column by column (the planned path is the batched one).
        cols = [
            evaluate(
                tree, lists, kernel, cache,
                np.ascontiguousarray(phi3[:, :, r]),
                m2l_mode=sched, fft_m2l=fft_m2l, flops=flops,
                timer=timer, source_kernel=source_kernel,
                target_kernel=target_kernel, direct_kernel=direct_kernel,
            )
            for r in range(nrhs)
        ]
        return np.stack(cols, axis=-1)
    phi = phi3[:, :, 0]
    n_surf = cache.n_surf
    nb = tree.nboxes
    boxes = tree.boxes

    ue = np.zeros((nb, n_surf * md))
    has_ue = np.zeros(nb, dtype=bool)

    # ---------------- upward pass ----------------
    with timer.phase("up"):
        for level in range(tree.depth, -1, -1):
            for bi in tree.levels[level]:
                b = boxes[bi]
                if b.nsrc == 0:
                    continue
                center = tree.center(bi)
                if b.is_leaf:
                    K = src_k.matrix(
                        cache.up_check_points(center, level), tree.src_points(bi)
                    )
                    check = K @ phi[tree.src_indices(bi)].reshape(-1)
                    flops.add_pairs("up", n_surf * b.nsrc, src_k.flops_per_pair)
                else:
                    check = np.zeros(n_surf * qd)
                    for ci in b.children:
                        if not has_ue[ci]:
                            continue
                        child = boxes[ci]
                        octant = (
                            (child.anchor[0] & 1)
                            | ((child.anchor[1] & 1) << 1)
                            | ((child.anchor[2] & 1) << 2)
                        )
                        M = cache.m2m_check(child.level, octant)
                        check += M @ ue[ci]
                        flops.add("up", _matvec_flops(M.shape))
                U = cache.uc2ue(level)
                ue[bi] = U @ check
                has_ue[bi] = True
                flops.add("up", _matvec_flops(U.shape))

    # ---------------- downward pass ----------------
    dc = np.zeros((nb, n_surf * qd))
    has_dc = np.zeros(nb, dtype=bool)
    de = np.zeros((nb, n_surf * md))
    has_de = np.zeros(nb, dtype=bool)
    potential = np.zeros((nt, out_dof))

    fft = None
    if sched.needs_fft:
        fft = fft_m2l if fft_m2l is not None else FFTM2L(cache)
        _fft_v_list(
            tree, lists, fft, sched, ue, has_ue, dc, has_dc, flops, timer
        )

    for level in range(1, tree.depth + 1):
        for bi in tree.levels[level]:
            b = boxes[bi]
            if b.ntrg == 0:
                continue
            center = tree.center(bi)

            # L2L from the parent's downward equivalent density.
            if has_de[b.parent]:
                octant = (
                    (b.anchor[0] & 1)
                    | ((b.anchor[1] & 1) << 1)
                    | ((b.anchor[2] & 1) << 2)
                )
                with timer.phase("eval"):
                    L = cache.l2l_check(level, octant)
                    dc[bi] += L @ de[b.parent]
                    has_dc[bi] = True
                    flops.add("eval", _matvec_flops(L.shape))

            # V list (dense/rsvd backends; fft levels accumulated above).
            backend = sched.backend(level)
            if backend != "fft" and len(lists.V[bi]):
                with timer.phase("down_v"):
                    for ai in lists.V[bi]:
                        if not has_ue[ai]:
                            continue
                        a = boxes[ai]
                        offset = tuple(
                            b.anchor[d] - a.anchor[d] for d in range(3)
                        )
                        if backend == "dense":
                            T = cache.m2l_check(level, offset)
                            dc[bi] += T @ ue[ai]
                            flops.add("down_v", _matvec_flops(T.shape))
                        else:
                            uf, vf = cache.m2l_rsvd(
                                level, offset, sched.dtype
                            )
                            src = ue[ai]
                            if sched.dtype == "float32":
                                src = src.astype(np.float32)  # lint: allow(dtype-width)
                            # Factor precision may be float32; the +=
                            # upcasts, keeping the accumulator float64.
                            dc[bi] += uf @ (vf @ src)
                            flops.add(
                                "down_v",
                                _rsvd_pair_flops(
                                    vf.shape[0], n_surf, md, qd
                                ),
                            )
                        has_dc[bi] = True

            # X list: direct sources -> downward check surface.
            if len(lists.X[bi]):
                with timer.phase("down_x"):
                    check_pts = cache.down_check_points(center, level)
                    for ai in lists.X[bi]:
                        a = boxes[ai]
                        if a.nsrc == 0:
                            continue
                        K = src_k.matrix(check_pts, tree.src_points(ai))
                        dc[bi] += K @ phi[tree.src_indices(ai)].reshape(-1)
                        has_dc[bi] = True
                        flops.add_pairs(
                            "down_x", n_surf * a.nsrc, src_k.flops_per_pair
                        )

            # One inversion per box.
            if has_dc[bi]:
                with timer.phase("eval"):
                    D = cache.dc2de(level)
                    de[bi] = D @ dc[bi]
                    has_de[bi] = True
                    flops.add("eval", _matvec_flops(D.shape))

            if not b.is_leaf:
                continue

            trg_pts = tree.trg_points(bi)
            trg_idx = tree.trg_indices(bi)
            local = np.zeros(b.ntrg * out_dof)

            # L2T: downward equivalent density -> targets.
            if has_de[bi]:
                with timer.phase("eval"):
                    K = trg_k.matrix(trg_pts, cache.down_equiv_points(center, level))
                    local += K @ de[bi]
                    flops.add_pairs("eval", b.ntrg * n_surf, trg_k.flops_per_pair)

            # U list: dense near interactions.
            if len(lists.U[bi]):
                with timer.phase("down_u"):
                    for ai in lists.U[bi]:
                        a = boxes[ai]
                        if a.nsrc == 0:
                            continue
                        K = dir_k.matrix(trg_pts, tree.src_points(ai))
                        local += K @ phi[tree.src_indices(ai)].reshape(-1)
                        flops.add_pairs(
                            "down_u", b.ntrg * a.nsrc, dir_k.flops_per_pair
                        )

            # W list: far (smaller) boxes' upward equivalent densities.
            if len(lists.W[bi]):
                with timer.phase("down_w"):
                    for ai in lists.W[bi]:
                        if not has_ue[ai]:
                            continue
                        a = boxes[ai]
                        K = trg_k.matrix(
                            trg_pts, cache.up_equiv_points(tree.center(ai), a.level)
                        )
                        local += K @ ue[ai]
                        flops.add_pairs(
                            "down_w", b.ntrg * n_surf, trg_k.flops_per_pair
                        )

            potential[trg_idx] += local.reshape(b.ntrg, out_dof)

    # Degenerate single-box tree: root is a leaf, handled by its U list —
    # but the downward loop starts at level 1, so cover it here.
    root = boxes[0]
    if root.is_leaf and root.ntrg > 0 and root.nsrc > 0:
        with timer.phase("down_u"):
            K = dir_k.matrix(tree.trg_points(0), tree.src_points(0))
            potential[tree.trg_indices(0)] += (
                K @ phi[tree.src_indices(0)].reshape(-1)
            ).reshape(root.ntrg, out_dof)
            flops.add_pairs("down_u", root.ntrg * root.nsrc, dir_k.flops_per_pair)

    return potential


def _fft_v_list(
    tree: Octree,
    lists: InteractionLists,
    fft: FFTM2L,
    sched: M2LSchedule,
    ue: np.ndarray,
    has_ue: np.ndarray,
    dc: np.ndarray,
    has_dc: np.ndarray,
    flops: FlopCounter,
    timer: PhaseTimer,
) -> None:
    """Apply the fft-scheduled V-list levels in Fourier space."""
    boxes = tree.boxes
    with timer.phase("down_v"):
        for level in range(2, tree.depth + 1):
            if sched.backend(level) != "fft":
                continue
            level_boxes = tree.levels[level]
            # Which source boxes at this level feed some V list?
            needed: set[int] = set()
            for bi in level_boxes:
                if boxes[bi].ntrg == 0:
                    continue
                for ai in lists.V[bi]:
                    if has_ue[ai]:
                        needed.add(ai)
            if not needed:
                continue
            md = fft.kernel.source_dof
            phi_hat = {ai: fft.density_hat(ue[ai]) for ai in needed}
            flops.add("down_v", len(needed) * fft.flops_per_fft(md))
            npairs = 0
            nacc = 0
            for bi in level_boxes:
                b = boxes[bi]
                if b.ntrg == 0 or not len(lists.V[bi]):
                    continue
                acc = None
                for ai in lists.V[bi]:
                    if not has_ue[ai]:
                        continue
                    a = boxes[ai]
                    offset = tuple(b.anchor[d] - a.anchor[d] for d in range(3))
                    tensor = fft.kernel_tensor_hat(level, offset)
                    if acc is None:
                        nfreq = fft.m * fft.m * (fft.m // 2 + 1)
                        acc = np.zeros((tensor.shape[0], nfreq),
                                       dtype=np.complex128)
                    fft.accumulate(acc, tensor, phi_hat[ai])
                    npairs += 1
                if acc is not None:
                    dc[bi] += fft.check_potential(acc)
                    has_dc[bi] = True
                    nacc += 1
            # One add per (level, term) so the planned evaluator — which
            # performs the same three batched operations — accumulates a
            # bit-identical per-phase total.
            flops.add("down_v", npairs * fft.flops_per_pair())
            flops.add("down_v", nacc * fft.flops_per_fft(fft.kernel.target_dof))


def evaluate_planned(
    tree: Octree,
    plan: ExecutionPlan,
    kernel: Kernel,
    cache: OperatorCache,
    density: np.ndarray,
    m2l_mode: str | M2LSchedule = "fft",
    fft_m2l: FFTM2L | None = None,
    flops: FlopCounter | None = None,
    timer: PhaseTimer | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
    sanitize: bool = False,
) -> np.ndarray:
    """Level-batched KIFMM evaluation over a precomputed execution plan.

    Mathematically identical to :func:`evaluate` (same translations, same
    gating, same flop accounting) but organised around the plan's flat
    index arrays: per-level stacked GEMMs for M2M/L2L and the
    check-to-equivalent inversions, offset-class-grouped batched M2L, and
    per-target-box concatenated near-field blocks.  Requires translation
    invariant kernels (all constant-coefficient elliptic kernels are);
    :class:`~repro.core.fmm.KIFMM` falls back to :func:`evaluate` for
    kernels that declare otherwise.

    Stacked density blocks (see :func:`coerce_density`) ride the same
    plan in one pass: the box-major work arrays gain a *leading*
    ``nrhs`` axis, and every stage hoists its expensive shared factor —
    kernel-matrix assembly (S2M/U/W/X/L2T), the translation operators,
    the M2L mixing-tensor slab copies, the DFT operators — out of a
    per-column inner loop whose gathers/GEMMs/scatters run with exactly
    the single-RHS shapes.  Column ``r`` of a block apply is therefore
    *bit-identical* to the single-RHS apply of column ``r`` (same BLAS
    call shapes, same accumulation order — even through the round-off
    amplifying ``uc2ue``/``dc2de`` inversion chain), while the per-apply
    setup cost is paid once per block.

    ``sanitize`` (or ``REPRO_SANITIZE=1``) enables the runtime
    sanitizers of :mod:`repro.analysis.sanitize`: BufferPool lifecycle
    with NaN poisoning of released scratch, finite checks at every
    phase boundary (naming the phase and box range that first went
    non-finite), GEMM aliasing guards, and a pool-escape check on the
    returned potential.
    """
    if isinstance(m2l_mode, M2LSchedule):
        sched = m2l_mode
    else:
        sched = resolve_m2l_schedule(
            m2l_mode, "float64",
            stats=v_stats_from_plan(plan), cache=cache, kernel=kernel,
        )
    src_k, trg_k, dir_k = resolve_kernels(
        kernel, source_kernel, target_kernel, direct_kernel
    )
    flops = flops if flops is not None else FlopCounter()
    timer = timer if timer is not None else PhaseTimer()
    md, qd = kernel.source_dof, kernel.target_dof
    sdof, out_dof = src_k.source_dof, trg_k.target_dof
    ns, nt = tree.sources.shape[0], tree.targets.shape[0]
    phi3, nrhs, single = coerce_density(density, ns, sdof)
    # RHS-major sorted densities: phi_sorted[r] is a contiguous
    # (ns, sdof) array, shaped exactly like a single-RHS apply's input.
    phi_sorted = np.ascontiguousarray(
        phi3.transpose(2, 0, 1)[:, tree.src_perm]
    )
    n_surf = cache.n_surf
    nb = plan.nboxes
    pool = plan.buffers
    zero3 = np.zeros(3)
    san = sanitize or _san.enabled()
    pool.sanitize = san
    if san:
        _san.check_finite(phi3, "input", "density", rows_are="points")

    # RHS-major work arrays: ue[r] / dc[r] / de[r] are contiguous
    # (nbox, dof) views.  Every stage below assembles its shared factor
    # once and loops the right-hand sides over 2-D products with the
    # single-RHS shapes, so column r of a block apply is bit-identical
    # to the single-RHS apply of column r (this matters: the
    # uc2ue/dc2de inversions amplify round-off differences by ~1e6, so
    # merely "equivalent" batched arithmetic would not stay within the
    # 1e-12 column-parity budget).
    ue = pool.zeros("ue", (nrhs, nb, n_surf * md))
    with timer.phase("up"):
        for ul in plan.up_levels:
            check = pool.zeros("up_check", (nrhs, ul.boxes.size, n_surf * qd))
            if ul.s2m_rows.size:
                chk_pts = cache.up_check_points(zero3, ul.level)
                phi_cat = phi_sorted[:, ul.s2m_src_pos].reshape(nrhs, -1)
                max_pts = max(1, MAX_BLOCK_ENTRIES // (n_surf * qd * sdof))
                for lo, hi in chunk_segments(ul.s2m_seg, max_pts):
                    p0, p1 = int(ul.s2m_seg[lo]), int(ul.s2m_seg[hi])
                    K = src_k.matrix_local(chk_pts, ul.s2m_pts[p0:p1])
                    cols = (ul.s2m_seg[lo:hi] - p0) * sdof
                    rows = ul.s2m_rows[lo:hi]
                    for r in range(nrhs):
                        vals = K * phi_cat[r, p0 * sdof : p1 * sdof][None, :]
                        check[r][rows] += np.add.reduceat(
                            vals, cols, axis=1
                        ).T
                flops.add_pairs(
                    "up", n_surf * int(ul.s2m_seg[-1]) * nrhs,
                    src_k.flops_per_pair,
                )
            for octant, kids, rows in ul.m2m_groups:
                M = cache.m2m_check(ul.level + 1, octant)
                if san:
                    # Fancy-indexed operands materialise copies, so the
                    # aliasing hazard is between the backing stacks.
                    _san.guard_gemm(check, ue, M,
                                    site=f"m2m level {ul.level}")
                MT = M.T
                for r in range(nrhs):
                    check[r][rows] += ue[r][kids] @ MT
                flops.add("up", kids.size * nrhs * _matvec_flops(M.shape))
            U = cache.uc2ue(ul.level)
            if san:
                _san.guard_gemm(ue, check, U,
                                site=f"uc2ue level {ul.level}")
            UT = U.T
            for r in range(nrhs):
                ue[r][ul.boxes] = check[r] @ UT
            flops.add("up", ul.boxes.size * nrhs * _matvec_flops(U.shape))
            pool.release("up_check")
    if san:
        _san.check_finite(ue.transpose(1, 0, 2), "up",
                          "upward equivalent densities")

    # ---------------- V lists (all levels, before the level sweep) -----
    dc = pool.zeros("dc", (nrhs, nb, n_surf * qd))
    de = pool.zeros("de", (nrhs, nb, n_surf * md))
    pot_sorted = pool.zeros("pot", (nrhs, nt, out_dof))

    fft = None
    if sched.needs_fft:
        fft = fft_m2l if fft_m2l is not None else FFTM2L(cache)
    with timer.phase("down_v"):
        for vl in plan.v_levels:
            backend = sched.backend(vl.level)
            if backend == "fft":
                nfreq = fft.m * fft.m * (fft.m // 2 + 1)
                nsb, ntb = vl.src_boxes.size, vl.trg_boxes.size
                if vl.po_groups:
                    # Parent-pair-blocked Hadamard: an order of magnitude
                    # less DRAM traffic than the class-major stage on
                    # pair-rich deep trees.  Its spectra live
                    # frequency-leading so the forward GEMM-DFTs write,
                    # the Hadamard gathers/scatters, and the inverse
                    # GEMM-DFTs read with no transpose passes.
                    phi_ext = pool.empty(
                        "v_phi_ext", (nrhs, nfreq, nsb + 1, md),
                        np.complex128,
                    )
                    for r in range(nrhs):
                        fft.forward_rows_t(
                            ue[r][vl.src_boxes], phi_ext[r, :, :nsb]
                        )
                    acc_ext = pool.zeros(
                        "v_acc_ext", (nrhs, nfreq, ntb + 1, qd),
                        np.complex128,
                    )
                    fft.hadamard_blocked(
                        vl.level, vl.po_groups, phi_ext, acc_ext, pool
                    )
                    for r in range(nrhs):
                        dc[r][vl.trg_boxes] += fft.inverse_rows_t(
                            acc_ext[r, :, :ntb]
                        )
                else:
                    phi_ext = pool.empty(
                        "v_phi_ext", (nrhs, nsb, md, nfreq), np.complex128
                    )
                    for r in range(nrhs):
                        fft.forward_rows(ue[r][vl.src_boxes], phi_ext[r])
                    acc = pool.zeros(
                        "v_acc", (nrhs, ntb, qd, nfreq), np.complex128
                    )
                    for offset, src_pos, trg_pos in vl.classes:
                        tensor = fft.kernel_tensor_hat(vl.level, offset)
                        for r in range(nrhs):
                            fft.accumulate_many(
                                acc[r], tensor,
                                phi_ext[r][src_pos], trg_pos,
                            )
                    for r in range(nrhs):
                        dc[r][vl.trg_boxes] += fft.inverse_rows(acc[r])
                flops.add("down_v", nsb * nrhs * fft.flops_per_fft(md))
                flops.add("down_v", vl.npairs * nrhs * fft.flops_per_pair())
                flops.add("down_v", ntb * nrhs * fft.flops_per_fft(qd))
            elif backend == "dense":
                for offset, src_pos, trg_pos in vl.classes:
                    T = cache.m2l_check(vl.level, offset)
                    if san:
                        _san.guard_gemm(dc, ue, T,
                                        site=f"m2l level {vl.level}")
                    TT = T.T
                    sb = vl.src_boxes[src_pos]
                    tb = vl.trg_boxes[trg_pos]
                    for r in range(nrhs):
                        dc[r][tb] += ue[r][sb] @ TT
                    flops.add(
                        "down_v",
                        src_pos.size * nrhs * _matvec_flops(T.shape),
                    )
            else:
                # rsvd: each offset class applies as two stacked BLAS-3
                # GEMMs through the compressed factors.  Mixed precision
                # narrows the source block to the factor dtype; the +=
                # into the float64 check buffers upcasts, keeping the
                # accumulation double.
                for offset, src_pos, trg_pos in vl.classes:
                    uf, vf = cache.m2l_rsvd(vl.level, offset, sched.dtype)
                    if san:
                        _san.guard_gemm(dc, ue, uf,
                                        site=f"m2l-rsvd level {vl.level}")
                    ufT = uf.T
                    vfT = vf.T
                    sb = vl.src_boxes[src_pos]
                    tb = vl.trg_boxes[trg_pos]
                    for r in range(nrhs):
                        src = ue[r][sb]
                        if sched.dtype == "float32":
                            src = src.astype(np.float32)  # lint: allow(dtype-width)
                        dc[r][tb] += (src @ vfT) @ ufT
                    flops.add(
                        "down_v",
                        src_pos.size * nrhs
                        * _rsvd_pair_flops(vf.shape[0], n_surf, md, qd),
                    )
    if san:
        # The V scratch is dead until the next apply: poison it so a
        # stale read surfaces in the finite checks below.
        for scratch in ("v_phi_ext", "v_acc_ext", "v_acc", "v_r"):
            pool.release(scratch)
        _san.check_finite(dc.transpose(1, 0, 2), "down_v",
                          "downward check potentials")

    # ---------------- downward sweep ----------------
    for dl in plan.down_levels:
        with timer.phase("eval"):
            for octant, kids, parents in dl.l2l_groups:
                L = cache.l2l_check(dl.level, octant)
                if san:
                    _san.guard_gemm(dc, de, L,
                                    site=f"l2l level {dl.level}")
                LT = L.T
                for r in range(nrhs):
                    dc[r][kids] += de[r][parents] @ LT
                flops.add("eval", kids.size * nrhs * _matvec_flops(L.shape))

        if dl.x_boxes.size:
            with timer.phase("down_x"):
                chk_pts = cache.down_check_points(zero3, dl.level)
                for i, bi in enumerate(dl.x_boxes):
                    p0, p1 = int(dl.x_seg[i]), int(dl.x_seg[i + 1])
                    pos = dl.x_src_pos[p0:p1]
                    K = src_k.matrix_local(
                        chk_pts, plan.sources_sorted[pos] - plan.centers[bi]
                    )
                    for r in range(nrhs):
                        dc[r, bi] += K @ phi_sorted[r, pos].reshape(-1)
                flops.add_pairs(
                    "down_x", n_surf * int(dl.x_seg[-1]) * nrhs,
                    src_k.flops_per_pair,
                )

        with timer.phase("eval"):
            if dl.dc_boxes.size:
                D = cache.dc2de(dl.level)
                if san:
                    _san.guard_gemm(de, dc, D,
                                    site=f"dc2de level {dl.level}")
                DT = D.T
                for r in range(nrhs):
                    de[r][dl.dc_boxes] = dc[r][dl.dc_boxes] @ DT
                flops.add(
                    "eval", dl.dc_boxes.size * nrhs * _matvec_flops(D.shape)
                )
            if dl.l2t_boxes.size:
                eq_pts = cache.down_equiv_points(zero3, dl.level)
                # Box row of each L2T point (the repeat is equivalent to
                # np.repeat over the leaf segments, but gathers only the
                # chunk in flight for each right-hand side).
                row_box = np.repeat(
                    np.arange(dl.l2t_boxes.size), np.diff(dl.l2t_seg)
                )
                npts = int(dl.l2t_seg[-1])
                step = max(1, MAX_BLOCK_ENTRIES // (out_dof * n_surf * md))
                for p0 in range(0, npts, step):
                    p1 = min(npts, p0 + step)
                    K = trg_k.matrix_local(dl.l2t_pts[p0:p1], eq_pts)
                    K3 = K.reshape(p1 - p0, out_dof, n_surf * md)
                    boxes = dl.l2t_boxes[row_box[p0:p1]]
                    tp = dl.l2t_trg_pos[p0:p1]
                    for r in range(nrhs):
                        pot_sorted[r][tp] += np.einsum(
                            "tqm,tm->tq", K3, de[r][boxes]
                        )
                flops.add_pairs(
                    "eval", npts * n_surf * nrhs, trg_k.flops_per_pair
                )

    if san:
        _san.check_finite(de.transpose(1, 0, 2), "eval",
                          "downward equivalent densities")

    # ---------------- near field: U then W, per target leaf -----------
    with timer.phase("down_u"):
        u_pairs = 0
        for i, bi in enumerate(plan.u_boxes):
            t0, t1 = int(plan.u_trg_start[i]), int(plan.u_trg_stop[i])
            s0, s1 = int(plan.u_seg[i]), int(plan.u_seg[i + 1])
            pos = plan.u_src_pos[s0:s1]
            ctr = plan.centers[bi]
            trg_pts = plan.targets_sorted[t0:t1] - ctr
            ntr = t1 - t0
            step = max(1, MAX_BLOCK_ENTRIES // max(1, ntr * out_dof * sdof))
            for c0 in range(0, pos.size, step):
                c1 = min(pos.size, c0 + step)
                K = dir_k.matrix_local(
                    trg_pts, plan.sources_sorted[pos[c0:c1]] - ctr
                )
                # Direct to potentials (no ill-conditioned inverse
                # downstream), so the RHS axis folds into one GEMM that
                # streams K once; the ~1e-16 GEMM-vs-GEMV rounding gap
                # stays far below the 1e-12 column-parity bound.
                xs = phi_sorted[:, pos[c0:c1]].reshape(nrhs, -1)
                y = K @ xs.T
                pot_sorted[:, t0:t1] += y.reshape(
                    ntr, out_dof, nrhs
                ).transpose(2, 0, 1)
            u_pairs += ntr * pos.size
        flops.add_pairs("down_u", u_pairs * nrhs, dir_k.flops_per_pair)

    if plan.w_boxes.size:
        with timer.phase("down_w"):
            sgrid = surface_grid(cache.p)
            hw = cache.root_side / np.power(2.0, np.arange(plan.depth + 1)) / 2.0
            w_pairs = 0
            for i, bi in enumerate(plan.w_boxes):
                t0, t1 = int(plan.w_trg_start[i]), int(plan.w_trg_stop[i])
                s0, s1 = int(plan.w_seg[i]), int(plan.w_seg[i + 1])
                partners = plan.w_idx[s0:s1]
                ctr = plan.centers[bi]
                rad = cache.inner * hw[plan.levels[partners]]
                eq_pts = (
                    (plan.centers[partners] - ctr)[:, None, :]
                    + rad[:, None, None] * sgrid[None, :, :]
                ).reshape(-1, 3)
                K = trg_k.matrix_local(plan.targets_sorted[t0:t1] - ctr, eq_pts)
                # RHS-folded like the U list: W contributions go straight
                # to target potentials, so one GEMM serves every column.
                xs = ue[:, partners].reshape(nrhs, -1)
                y = K @ xs.T
                pot_sorted[:, t0:t1] += y.reshape(
                    t1 - t0, out_dof, nrhs
                ).transpose(2, 0, 1)
                w_pairs += (t1 - t0) * partners.size
            flops.add_pairs(
                "down_w", n_surf * w_pairs * nrhs, trg_k.flops_per_pair
            )

    if san:
        _san.check_finite(pot_sorted.transpose(1, 0, 2),
                          "down_w" if plan.w_boxes.size else
                          "down_u", "potentials", rows_are="targets")
    if single:
        potential = np.empty((nt, out_dof))
        potential[tree.trg_perm] = pot_sorted[0]
    else:
        potential = np.empty((nt, out_dof, nrhs))
        potential[tree.trg_perm] = pot_sorted.transpose(1, 2, 0)
    if san:
        _san.check_escape(potential, pool, "evaluate_planned")
    return potential
