"""The static plan verifier: clean on real plans, loud on seeded defects.

Two properties carry the certification's weight: every CI plan
configuration must certify with zero findings (there is no waiver
mechanism), and each seeded defect must be caught by *exactly* the
intended check — a checker that flags everything, or nothing, fails
here.  A third pillar ties statics to dynamics: the IR's flop totals
equal a real apply's measured counter bit for bit.
"""

import numpy as np
import pytest

from repro.analysis.plancheck import (
    SEEDS,
    certify_parallel,
    certify_sequential,
    rank_irs,
    run_checks,
    run_selftests,
    seed_dead_store,
    seed_narrowed_dtype,
    seed_reordered_wait,
    sequential_ir,
)
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.stokes import StokesKernel


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(3)
    return rng.random((600, 3))


@pytest.fixture(scope="module")
def parallel_ir(points):
    """One rank's IR (+expected flops) of an overlapped 2-rank setup."""
    opts = FMMOptions(p=4, max_points=40, m2l="fft")
    return rank_irs(LaplaceKernel(), points, opts, 2, overlap=True)[0]


@pytest.mark.parametrize(
    "m2l,dtype",
    [("fft", "float64"), ("dense", "float64"), ("rsvd", "float64"),
     ("rsvd", "float32"), ("auto", "float64")],
)
@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
def test_sequential_certifies_clean(kernel, points, m2l, dtype):
    opts = FMMOptions(p=4, max_points=40, m2l=m2l, dtype=dtype)
    for nrhs in (1, 8):
        report = certify_sequential(kernel, points, opts, nrhs=nrhs)
        assert report.ok, [str(f) for f in report.findings]
        assert set(report.counts) == {
            "dataflow", "types", "schedule", "flops", "metadata",
        }
        assert all(d == 0.0 for d in report.flop_deltas().values())


@pytest.mark.parametrize("overlap", [True, False], ids=["ov-on", "ov-off"])
@pytest.mark.parametrize("nranks", [2, 4])
def test_parallel_certifies_clean(points, nranks, overlap):
    opts = FMMOptions(p=4, max_points=40, m2l="fft")
    reports = certify_parallel(
        LaplaceKernel(), points, opts, nranks, overlap=overlap,
    )
    assert len(reports) == nranks
    for report in reports:
        assert report.ok, [str(f) for f in report.findings]


@pytest.mark.parametrize(
    "m2l,dtype", [("rsvd", "float64"), ("rsvd", "float32"),
                  ("auto", "float64")],
)
def test_parallel_certifies_rsvd_and_auto(points, m2l, dtype):
    """Compressed and mixed per-level schedules certify rank by rank."""
    opts = FMMOptions(p=4, max_points=40, m2l=m2l, dtype=dtype)
    reports = certify_parallel(LaplaceKernel(), points, opts, 2)
    assert len(reports) == 2
    for report in reports:
        assert report.ok, [str(f) for f in report.findings]


def test_ir_flops_match_measured_apply(points):
    """Static totals equal the dynamic FlopCounter of a real apply."""
    rng = np.random.default_rng(11)
    for kernel in (LaplaceKernel(), StokesKernel()):
        for m2l in ("fft", "dense", "rsvd", "auto"):
            opts = FMMOptions(p=4, max_points=40, m2l=m2l)
            fmm = KIFMM(kernel, opts).setup(points)
            fmm.apply(
                rng.standard_normal(points.shape[0] * kernel.source_dof)
            )
            ir, _ = sequential_ir(fmm, nrhs=1)
            measured = fmm.flops.by_phase()
            for phase, total in ir.flop_totals().items():
                assert total == measured.get(phase, 0.0)  # bitwise


def test_seeded_wait_reorder_caught_by_schedule_only(parallel_ir):
    ir, expected = parallel_ir
    report = run_checks(seed_reordered_wait(ir), expected)
    assert not report.ok
    assert {f.check for f in report.findings} == {"schedule"}
    assert any("happens-before" in f.message for f in report.findings)


def test_seeded_narrowing_caught_by_types_only(parallel_ir):
    ir, expected = parallel_ir
    report = run_checks(seed_narrowed_dtype(ir), expected)
    assert not report.ok
    assert {f.check for f in report.findings} == {"types"}
    assert any("narrowing" in f.message for f in report.findings)


def test_seeded_dead_store_caught_by_dataflow_only(parallel_ir):
    ir, expected = parallel_ir
    report = run_checks(seed_dead_store(ir), expected)
    assert not report.ok
    assert {f.check for f in report.findings} == {"dataflow"}
    assert any("dead store" in f.message for f in report.findings)


def test_seeding_does_not_mutate_the_original(parallel_ir):
    """Seeds deep-copy: the clean IR stays certifiable afterwards."""
    ir, expected = parallel_ir
    for seed, _ in SEEDS.values():
        seed(ir)
    assert run_checks(ir, expected).ok


def test_selftest_runner_passes_on_clean_ir(parallel_ir):
    results = run_selftests(*parallel_ir)
    assert len(results) == len(SEEDS)
    assert all(ok for _, ok, _ in results), results


def test_flop_check_detects_model_divergence(parallel_ir):
    """A perturbed expected budget is a finding, never absorbed."""
    ir, expected = parallel_ir
    skewed = dict(expected)
    skewed["down_v"] += 1.0
    report = run_checks(ir, skewed)
    assert {f.check for f in report.findings} == {"flops"}
