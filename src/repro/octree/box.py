"""The octree box (a cube in 3D, cf. footnote 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Box:
    """One node of the adaptive computation tree.

    Point membership is stored as *ranges into the Morton-sorted point
    permutations* held by the owning :class:`~repro.octree.tree.Octree`,
    so a box's sources/targets are always contiguous slices.

    Attributes
    ----------
    index:
        Position of this box in ``tree.boxes`` (level-by-level order, the
        same ordering the paper's "global tree array" uses).
    level:
        Depth in the tree; the root is level 0.
    anchor:
        Integer coordinates ``(ix, iy, iz)`` of the box at its level, each
        in ``[0, 2**level)``.
    parent:
        Index of the parent box, or ``-1`` for the root.
    children:
        Indices of existing (non-empty) children; empty tuple for leaves.
    src_start, src_stop:
        Slice of the tree's Morton-sorted *source* permutation.
    trg_start, trg_stop:
        Slice of the tree's Morton-sorted *target* permutation.
    """

    index: int
    level: int
    anchor: tuple[int, int, int]
    parent: int
    src_start: int
    src_stop: int
    trg_start: int
    trg_stop: int
    children: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def nsrc(self) -> int:
        return self.src_stop - self.src_start

    @property
    def ntrg(self) -> int:
        return self.trg_stop - self.trg_start

    def center(self, root_corner: np.ndarray, root_side: float) -> np.ndarray:
        """Center of the box in physical coordinates."""
        side = root_side / (1 << self.level)
        return root_corner + (np.asarray(self.anchor, dtype=np.float64) + 0.5) * side

    def half_width(self, root_side: float) -> float:
        """Half the side length (the ``r`` of Section 2.1)."""
        return root_side / (1 << self.level) / 2.0


def boxes_adjacent(a: Box, b: Box) -> bool:
    """Whether the *closed* cubes of two boxes touch or overlap.

    Works across levels by comparing integer extents at the finer level.
    A box is adjacent to itself and to its ancestors/descendants.
    """
    level = max(a.level, b.level)
    sa, sb = 1 << (level - a.level), 1 << (level - b.level)
    for d in range(3):
        lo_a, hi_a = a.anchor[d] * sa, (a.anchor[d] + 1) * sa
        lo_b, hi_b = b.anchor[d] * sb, (b.anchor[d] + 1) * sb
        if lo_a > hi_b or lo_b > hi_a:
            return False
    return True


def box_contains(outer: Box, inner: Box) -> bool:
    """Whether ``inner``'s cube lies (non-strictly) inside ``outer``'s."""
    if inner.level < outer.level:
        return False
    s = 1 << (inner.level - outer.level)
    return all(
        outer.anchor[d] * s <= inner.anchor[d] < (outer.anchor[d] + 1) * s
        for d in range(3)
    )
