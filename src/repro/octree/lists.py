"""The four interaction lists of the adaptive FMM (Section 3.1).

Quoting the paper's definitions for a box ``B``:

- **U list** — "contains B itself and the leaf boxes which are adjacent to
  B if B is leaf, and it is empty when B is non-leaf".  Handled by dense
  (direct) source-to-target interaction.
- **V list** — "contains the children of the neighbors of B's parent,
  which are not adjacent to B".  Handled by M2L translation.
- **W list** — "contains all the descendants of B's neighbors whose
  parents are adjacent to B but who are not adjacent to B themselves if B
  is leaf".  Handled by evaluating the W-box's upward equivalent density
  directly at B's targets.
- **X list** — "contains all boxes A such that B is in A's W list".
  Handled by evaluating A's sources onto B's downward check surface.

The construction walks, for every leaf ``C``, the subtrees rooted at C's
colleagues, descending only through boxes adjacent to ``C``:

- an adjacent leaf is a U partner (the relation is symmetric, so the
  coarser side of a level-jumping pair is recorded at the same time);
- a non-adjacent box whose parent was adjacent joins ``W(C)`` and,
  dually, ``C`` joins its X list.

This yields exactly the classical adaptive lists of Greengard [7] and
Cheng-Greengard-Rokhlin [4] without requiring a 2:1-balanced tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree.box import boxes_adjacent
from repro.octree.tree import Octree


@dataclass
class InteractionLists:
    """Per-box interaction lists; entries are box indices."""

    U: list[np.ndarray]
    V: list[np.ndarray]
    W: list[np.ndarray]
    X: list[np.ndarray]
    _flat: dict[str, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def flat(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        """CSR view ``(ptr, idx)`` of one list family, cached.

        ``idx[ptr[b] : ptr[b + 1]]`` are the partners of box ``b`` (each
        per-box list is already sorted ascending).  The flat form is what
        the execution plan's vectorized gating and grouping operate on.
        """
        if which not in ("U", "V", "W", "X"):
            raise ValueError(f"which must be one of U, V, W, X, got {which!r}")
        if which not in self._flat:
            per_box = getattr(self, which)
            counts = np.fromiter((len(x) for x in per_box), np.int64, len(per_box))
            ptr = np.zeros(len(per_box) + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            if ptr[-1]:
                idx = np.concatenate(per_box).astype(np.int64, copy=False)
            else:
                idx = np.empty(0, dtype=np.int64)
            self._flat[which] = (ptr, idx)
        return self._flat[which]

    def counts(self) -> dict[str, int]:
        """Total list entries, the raw material of the flop model."""
        return {
            "U": sum(len(u) for u in self.U),
            "V": sum(len(v) for v in self.V),
            "W": sum(len(w) for w in self.W),
            "X": sum(len(x) for x in self.X),
        }


def build_lists(tree: Octree) -> InteractionLists:
    """Construct U, V, W, X lists for every box of ``tree``."""
    nb = tree.nboxes
    U: list[set[int]] = [set() for _ in range(nb)]
    V: list[set[int]] = [set() for _ in range(nb)]
    W: list[set[int]] = [set() for _ in range(nb)]
    X: list[set[int]] = [set() for _ in range(nb)]
    boxes = tree.boxes

    for b in boxes:
        # V list: children of parent's colleagues not adjacent to B.
        if b.parent >= 0:
            for pc in tree.colleagues(b.parent, include_self=True):
                for child in boxes[pc].children:
                    if child != b.index and not boxes_adjacent(boxes[child], b):
                        V[b.index].add(child)

        if not b.is_leaf:
            continue

        # U and W lists by descending through adjacent colleagues.
        U[b.index].add(b.index)
        for col in tree.colleagues(b.index):
            stack = [col]
            while stack:
                a = stack.pop()
                abox = boxes[a]
                if boxes_adjacent(abox, b):
                    if abox.is_leaf:
                        U[b.index].add(a)
                        U[a].add(b.index)  # coarse side of a level jump
                    else:
                        stack.extend(abox.children)
                else:
                    # parent was adjacent to B (we descended through it),
                    # A itself is not: the definition of W membership.
                    W[b.index].add(a)
                    X[a].add(b.index)

    def _freeze(sets: list[set[int]]) -> list[np.ndarray]:
        return [np.array(sorted(s), dtype=np.int64) for s in sets]

    return InteractionLists(U=_freeze(U), V=_freeze(V), W=_freeze(W), X=_freeze(X))


def verify_lists(tree: Octree, lists: InteractionLists) -> None:
    """Check the structural invariants of Section 2.1 / 3.1.

    Raises ``AssertionError`` on the first violation.  Used by the test
    suite and available to users as a debugging aid.
    """
    boxes = tree.boxes
    for b in boxes:
        i = b.index
        if b.is_leaf:
            assert i in set(lists.U[i]), f"U list of leaf {i} must contain itself"
        else:
            assert len(lists.U[i]) == 0, f"U list of non-leaf {i} must be empty"
            assert len(lists.W[i]) == 0, f"W list of non-leaf {i} must be empty"
        for u in lists.U[i]:
            assert boxes[u].is_leaf, f"U list of {i} contains non-leaf {u}"
            assert boxes_adjacent(boxes[u], b), f"U box {u} not adjacent to {i}"
        for v in lists.V[i]:
            vb = boxes[v]
            assert vb.level == b.level, f"V box {v} not at level of {i}"
            assert not boxes_adjacent(vb, b), f"V box {v} adjacent to {i}"
            assert boxes_adjacent(boxes[vb.parent], boxes[b.parent]), (
                f"V box {v}'s parent not adjacent to {i}'s parent"
            )
        for w in lists.W[i]:
            wb = boxes[w]
            assert wb.level > b.level, f"W box {w} not finer than {i}"
            assert not boxes_adjacent(wb, b), f"W box {w} adjacent to {i}"
            assert boxes_adjacent(boxes[wb.parent], b), (
                f"W box {w}'s parent not adjacent to {i}"
            )
        for x in lists.X[i]:
            assert i in set(lists.W[x]), f"X/W duality violated for {i}, {x}"
