"""Regularised pseudo-inverse for the equivalent-density solves.

Equations (2.1)–(2.5) of the paper are first-kind integral equations —
matching potentials on a check surface to recover an equivalent density —
and their discretisations are severely ill-conditioned (the singular
values of the check-to-equivalent kernel matrix decay exponentially).
Following the sequential companion paper [25], we invert them with a
truncated-SVD pseudo-inverse: singular values below ``rcond * s_max`` are
discarded rather than amplified.
"""

from __future__ import annotations

import numpy as np


def regularized_pinv(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Moore-Penrose pseudo-inverse with relative singular-value cutoff.

    Parameters
    ----------
    matrix:
        ``(m, n)`` real matrix.
    rcond:
        Relative cutoff: singular values ``< rcond * max(s)`` are treated
        as zero.

    Returns
    -------
    ``(n, m)`` pseudo-inverse.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if rcond < 0:
        raise ValueError(f"rcond must be non-negative, got {rcond}")
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        return np.zeros((matrix.shape[1], matrix.shape[0]))
    keep = s >= rcond * s[0]
    inv_s = np.zeros_like(s)
    inv_s[keep] = 1.0 / s[keep]
    return (vt.T * inv_s) @ u.T
