"""Fixture: narrowing dtype constructor in the solver core."""

import numpy as np


def make_buffer(n):
    # seeded violation: dtype-width
    return np.zeros(n, dtype=np.float32)
