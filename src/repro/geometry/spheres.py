"""Sphere-surface sampling and the paper's 512-sphere workload.

The paper's first particle set is "produced by sampling 512 spheres
centered at an 8 x 8 x 8 Cartesian grid in the unit cube.  For relatively
low sampling rates ... a uniform particle distribution.  For higher
sampling rates the distribution per processor becomes non-uniform since
the sampling over a single sphere is non-uniform."

We reproduce that behaviour with a latitude-longitude parametric sampling
(denser near the poles, hence non-uniform at high rates); a quasi-uniform
Fibonacci-spiral sampling is also provided for controlled comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.patches import SurfacePatch


def sample_sphere(
    center: np.ndarray,
    radius: float,
    n: int,
    method: str = "latlon",
) -> np.ndarray:
    """Sample ``n`` points on a sphere surface.

    Parameters
    ----------
    method:
        ``"latlon"`` — parametric latitude/longitude grid, non-uniform
        (clusters near the poles), matching the paper's sampling;
        ``"fibonacci"`` — quasi-uniform spiral.
    """
    if n < 1:
        raise ValueError(f"need at least one sample, got {n}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    center = np.asarray(center, dtype=np.float64)
    if method == "fibonacci":
        i = np.arange(n, dtype=np.float64)
        golden = (1.0 + np.sqrt(5.0)) / 2.0
        z = 1.0 - (2.0 * i + 1.0) / n
        theta = 2.0 * np.pi * i / golden
        rho = np.sqrt(np.maximum(0.0, 1.0 - z * z))
        unit = np.stack([rho * np.cos(theta), rho * np.sin(theta), z], axis=1)
    elif method == "latlon":
        # parametric grid: n ~ nu * nv with nv = 2 nu
        nu = max(2, int(np.sqrt(n / 2.0)))
        nv = max(3, int(np.ceil(n / nu)))
        u = (np.arange(nu) + 0.5) / nu * np.pi          # polar angle
        v = np.arange(nv) / nv * 2.0 * np.pi            # azimuth
        uu, vv = np.meshgrid(u, v, indexing="ij")
        unit = np.stack(
            [
                np.sin(uu) * np.cos(vv),
                np.sin(uu) * np.sin(vv),
                np.cos(uu),
            ],
            axis=-1,
        ).reshape(-1, 3)[:n]
        if unit.shape[0] < n:  # grid rounded short: top up along the equator
            extra = n - unit.shape[0]
            phi = np.arange(extra) / extra * 2.0 * np.pi
            ring = np.stack([np.cos(phi), np.sin(phi), np.zeros(extra)], axis=1)
            unit = np.vstack([unit, ring])
    else:
        raise ValueError(f"unknown sampling method {method!r}")
    return center + radius * unit


def sphere_grid_points(
    total_points: int,
    grid: int = 8,
    method: str = "latlon",
) -> np.ndarray:
    """The paper's 512-sphere particle set.

    ``grid**3`` spheres centered on a Cartesian grid in ``[-1, 1]^3``,
    each sampled with ``total_points / grid**3`` surface points.
    """
    patches = sphere_grid_patches(total_points, grid=grid, method=method)
    return np.vstack([p.points for p in patches])


def sphere_grid_patches(
    total_points: int,
    grid: int = 8,
    method: str = "latlon",
) -> list[SurfacePatch]:
    """Same particle set, kept as per-sphere surface patches.

    The parallel partitioner of Section 3.1 operates on these patches
    ("we first gather all input surface patches ... and assign to each
    patch a weight which ... is equal to the number of particles").
    """
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    nspheres = grid**3
    per_sphere = max(1, total_points // nspheres)
    spacing = 2.0 / grid
    radius = 0.35 * spacing  # non-touching spheres, as in the paper's figure
    patches = []
    for ix in range(grid):
        for iy in range(grid):
            for iz in range(grid):
                center = np.array(
                    [
                        -1.0 + (ix + 0.5) * spacing,
                        -1.0 + (iy + 0.5) * spacing,
                        -1.0 + (iz + 0.5) * spacing,
                    ]
                )
                pts = sample_sphere(center, radius, per_sphere, method=method)
                patches.append(SurfacePatch(points=pts, weight=pts.shape[0]))
    return patches
