"""Fixture: concurrency import outside the simulated MPI runtime."""

# seeded violation: thread-confinement
import threading


def current():
    return threading.get_ident()
