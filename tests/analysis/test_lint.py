"""The repo-invariant AST lint: clean on the repo, loud on fixtures."""

from pathlib import Path

from repro.analysis.lint import RULES, main, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src"

#: Expected (rule, fixture file) pairs — exactly one seeded violation per rule.
EXPECTED = {
    ("flops-accounted", "bad_flops.py"),
    ("dtype-width", "bad_dtype.py"),
    ("bufferpool-escape", "bad_pool.py"),
    ("mutable-default", "bad_default.py"),
    ("thread-confinement", "bad_threading.py"),
    ("request-waited", "bad_request.py"),
    ("stage-metadata", "bad_stage.py"),
    ("tag-registry", "bad_tag.py"),
}


def test_repo_is_clean():
    """Acceptance: `python -m repro.analysis.lint src/` exits 0."""
    assert run_lint([SRC]) == []
    assert main([str(SRC)]) == 0


def test_every_rule_fires_on_its_fixture():
    violations = run_lint([FIXTURES])
    found = {(v.rule, v.path.name) for v in violations}
    assert found == EXPECTED


def test_cli_exits_nonzero_on_fixtures(capsys):
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    for rule, fname in EXPECTED:
        assert rule in out
        assert fname in out


def test_escape_hatch_waives_only_named_rule():
    waived = FIXTURES / "repro" / "core" / "waived.py"
    assert run_lint([waived]) == []
    # the same violation without the allow comment is reported
    bad = FIXTURES / "repro" / "core" / "bad_dtype.py"
    assert [v.rule for v in run_lint([bad])] == ["dtype-width"]


def test_cli_exits_nonzero_on_missing_path(capsys):
    """A named path that does not exist is a usage error, not a clean run."""
    assert main(["does/not/exist"]) == 2
    err = capsys.readouterr().err
    assert "does/not/exist" in err
    assert "does not exist" in err


def test_cli_missing_path_reported_even_with_valid_paths(capsys):
    """One bad path taints the run even if other paths lint clean."""
    assert main([str(SRC), "no/such/dir"]) == 2
    captured = capsys.readouterr()
    assert "no/such/dir" in captured.err


def test_cli_exits_nonzero_when_no_files_matched(tmp_path, capsys):
    """An existing directory with no Python files lints nothing — error."""
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 2
    assert "no Python files" in capsys.readouterr().err


def test_cli_reports_unparsable_file(tmp_path, capsys):
    """A syntax error is reported as a skip and fails the run."""
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    assert main([str(bad)]) == 2
    err = capsys.readouterr().err
    assert "broken.py" in err
    assert "skipped" in err


def test_rule_catalog_documented(capsys):
    """Every rule has a non-trivial rationale, printed by --list-rules."""
    for rule in RULES:
        assert len(rule.rationale) > 40, rule.name
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.name in out


def test_violations_carry_location():
    violations = run_lint([FIXTURES / "repro" / "core" / "bad_flops.py"])
    assert len(violations) == 1
    v = violations[0]
    assert v.line > 0
    assert "bad_flops.py" in str(v)
    assert "flops-accounted" in str(v)
