"""Hierarchical tree-top reduction tests.

Covers the two tentpole behaviours end to end:

- the ``comm`` option ("tree" binomial collectives vs "flat" direct
  owner gather/scatter) must be *bitwise* invisible in the potentials,
  for Laplace and Stokes, across rank counts, overlap modes and
  multi-RHS widths;
- the coarse-level V split (levels with fewer boxes than ranks) must
  activate on clustered distributions, partition the level's V targets
  exactly once across contributor ranks, and stay race-free and
  trace-clean.
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions
from repro.core.m2lschedule import coarse_split_levels
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import direct_evaluate
from repro.parallel import pfmm
from repro.parallel.partition import partition_points
from repro.parallel.pfmm import run_parallel_fmm
from repro.parallel.simmpi import run_spmd


def clustered_points(n_per_corner: int, rng) -> np.ndarray:
    """Two tight opposite-corner clusters: the adaptive tree keeps only
    a couple of boxes per coarse level, so the split levels (#boxes <
    nranks) appear already at 4-8 simulated ranks."""
    a = rng.uniform(0.0, 0.12, (n_per_corner, 3))
    b = rng.uniform(0.88, 1.0, (n_per_corner, 3))
    return np.vstack([a, b])


class TestCommSchemeParity:
    """comm="tree" and comm="flat" must agree to the bit."""

    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("overlap", [True, False])
    def test_laplace_bitwise(self, nranks, overlap, rng):
        pts = clustered_points(150, rng)
        dens = rng.standard_normal(len(pts))
        kern = LaplaceKernel()
        out = {}
        for scheme in ("tree", "flat"):
            opts = FMMOptions(p=4, max_points=20, comm=scheme)
            out[scheme] = run_parallel_fmm(
                nranks, kern, pts, dens, opts, overlap=overlap
            ).potential
        assert np.array_equal(out["tree"], out["flat"])

    @pytest.mark.parametrize("nrhs", [1, 8])
    def test_stokes_multirhs_bitwise(self, nrhs, rng):
        pts = clustered_points(90, rng)
        kern = StokesKernel()
        dens = (
            rng.standard_normal((len(pts), kern.source_dof))
            if nrhs == 1
            else rng.standard_normal((len(pts), kern.source_dof, nrhs))
        )
        out = {}
        for scheme in ("tree", "flat"):
            opts = FMMOptions(p=4, max_points=20, comm=scheme)
            out[scheme] = run_parallel_fmm(
                4, kern, pts, dens, opts
            ).potential
        assert np.array_equal(out["tree"], out["flat"])

    def test_comm_option_validated(self):
        with pytest.raises(ValueError, match="comm"):
            FMMOptions(comm="ring")


class TestCoarseSplitLevels:
    def test_levels_below_rank_count(self):
        assert coarse_split_levels([1, 8, 64], 16) == frozenset({0, 1})
        assert coarse_split_levels([1, 8, 64], 4) == frozenset({0})
        assert coarse_split_levels([1, 2, 2], 1) == frozenset()
        assert coarse_split_levels([0, 4], 8) == frozenset({1})


class TestCoarseSplitRuntime:
    """The split must engage on clustered inputs and stay correct."""

    def _states(self, rng, nranks=8):
        pts = clustered_points(150, rng)
        kern = LaplaceKernel()
        opts = FMMOptions(p=4, max_points=20)
        chunks = partition_points(pts, nranks)

        def worker(comm):
            return pfmm.rank_setup(
                comm, kern, pts[chunks[comm.rank]], opts
            )

        return pts, kern, opts, run_spmd(nranks, worker)

    def test_split_activates_and_partitions_exactly(self, rng):
        pts, kern, opts, states = self._states(rng)
        nranks = len(states)
        split = coarse_split_levels(
            [len(lv) for lv in states[0].tree.levels], nranks
        )
        assert split, "clustered fixture no longer has coarse levels"
        # Every rank's bcast schedule must agree box-by-box on the
        # assigned root, and each split box must be computed by exactly
        # that root (run_spmd returns states in rank order).
        box_root: dict[tuple[int, int], int] = {}
        computing: dict[tuple[int, int], list[int]] = {}
        saw_bcast = False
        for r, st in enumerate(states):
            for vl, sp in zip(st.plan.v_levels, st.v_splits):
                if vl.level not in split:
                    assert sp.inv_rows is None and not sp.bcast
                    continue
                assert sp.inv_rows is not None
                assert not sp.own_classes and not sp.own_rows.size
                for bx, root, parts in sp.bcast:
                    saw_bcast = True
                    assert root in parts
                    key = (vl.level, bx)
                    assert box_root.setdefault(key, root) == root
                for bx in vl.trg_boxes[sp.inv_rows].tolist():
                    computing.setdefault((vl.level, bx), []).append(r)
        assert saw_bcast, "clustered fixture no longer engages the split"
        for key, root in box_root.items():
            assert computing.get(key) == [root]

    def test_v_compute_mask_shape(self, rng):
        pts, kern, opts, states = self._states(rng)
        for st in states:
            assert st.v_compute is not None
            assert st.v_compute.shape == (st.tree.nboxes,)
            assert st.v_compute.dtype == np.bool_

    def test_split_result_matches_direct(self, rng):
        pts = clustered_points(120, rng)
        dens = rng.standard_normal(len(pts))
        kern = LaplaceKernel()
        opts = FMMOptions(p=4, max_points=20)
        res = run_parallel_fmm(8, kern, pts, dens, opts)
        ref = direct_evaluate(kern, pts, pts, dens)
        err = (
            np.abs(res.potential[:, 0] - ref[:, 0]).max()
            / np.abs(ref).max()
        )
        assert err < 5e-3

    def test_split_trace_and_race_clean(self, rng):
        from repro.analysis import CommTrace, RaceDetector, check_trace

        pts = clustered_points(120, rng)
        dens = rng.standard_normal(len(pts))
        kern = LaplaceKernel()
        opts = FMMOptions(p=4, max_points=20)
        for overlap in (True, False):
            trace = CommTrace()
            race = RaceDetector()
            res = run_parallel_fmm(
                8, kern, pts, dens, opts,
                trace=trace, overlap=overlap, race=race,
            )
            assert check_trace(trace, res.comm_stats).ok
            assert race.report().ok

    def test_split_certifies_statically(self, rng):
        from repro.analysis.plancheck import certify_parallel

        pts = clustered_points(120, rng)
        kern = LaplaceKernel()
        opts = FMMOptions(p=4, max_points=20)
        reports = certify_parallel(kern, pts, opts, 8, nrhs=2)
        assert all(r.ok for r in reports), [
            str(f) for r in reports for f in r.findings
        ]

    def test_split_ir_has_vsp_nodes(self, rng):
        from repro.analysis.plancheck import rank_states
        from repro.analysis.planir import extract_rank_ir

        pts = clustered_points(120, rng)
        kern = LaplaceKernel()
        opts = FMMOptions(p=4, max_points=20)
        states = rank_states(kern, pts, opts, 8)
        names = {
            n.name
            for st in states
            for n in extract_rank_ir(st, nrhs=1, overlap=True).nodes
        }
        assert any(n.startswith("post:vsp@") for n in names)
        assert any(n.startswith("wait:vsp@") for n in names)
