"""High-level drivers regenerating the paper's scalability experiments.

Each function returns the rows of one paper table (or the series of one
figure); the ``benchmarks/`` scripts print them alongside the paper's
reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.kernels.base import Kernel
from repro.octree.lists import build_lists
from repro.octree.tree import build_tree
from repro.perfmodel.costs import compute_work
from repro.perfmodel.machine import TCS1, MachineModel
from repro.perfmodel.simulate import RunReport, simulate_run


@dataclass
class ScalingRow:
    """One row of a Table 4.1/4.2/4.3-style scalability table."""

    P: int
    N: int
    total: float
    ratio: float
    comm: float
    up: float
    down: float
    gflops_avg: float
    gflops_peak: float
    tree: float

    @classmethod
    def from_report(cls, r: RunReport) -> "ScalingRow":
        return cls(
            P=r.P, N=r.N, total=r.total, ratio=r.ratio, comm=r.comm,
            up=r.up, down=r.down, gflops_avg=r.gflops_avg,
            gflops_peak=r.gflops_peak, tree=r.tree_seconds,
        )

    def as_tuple(self) -> tuple:
        return (
            self.P, self.total, round(self.ratio, 1), self.comm, self.up,
            self.down, self.gflops_avg, self.gflops_peak, self.tree,
        )


TABLE_HEADERS = (
    "P", "Total", "Ratio", "Comm", "Up", "Down", "Avg", "Peak", "Gen/Comm"
)


def fixed_size_scaling(
    kernel: Kernel,
    points: np.ndarray,
    P_list: Sequence[int],
    p: int = 6,
    max_points: int = 60,
    m2l: str = "fft",
    machine: MachineModel = TCS1,
) -> list[RunReport]:
    """Table 4.1: fixed problem size, increasing processor count.

    Builds the real tree once and simulates every P over it.
    """
    tree = build_tree(points, max_points=max_points)
    lists = build_lists(tree)
    work = compute_work(tree, lists, kernel, p, m2l=m2l)
    return [
        simulate_run(tree, lists, kernel, p, P, machine, m2l=m2l, work=work)
        for P in P_list
    ]


def isogranular_scaling(
    kernel: Kernel,
    workload: Callable[[int], np.ndarray],
    grain: int,
    P_list: Sequence[int],
    p: int = 6,
    max_points: int = 60,
    m2l: str = "fft",
    machine: MachineModel = TCS1,
    model_cap: int = 1_000_000,
) -> list[RunReport]:
    """Table 4.2: fixed grain (particles per processor), increasing P.

    For every P the target problem is ``N = grain * P``; the model tree
    is built at ``N_model = min(N, model_cap)`` and per-rank work/bytes
    are extrapolated by ``grain_scale`` (linear / two-thirds power — see
    :func:`repro.perfmodel.simulate.simulate_run`).
    """
    reports = []
    for P in P_list:
        n_target = grain * P
        n_model = min(n_target, model_cap)
        pts = workload(n_model)
        tree = build_tree(pts, max_points=max_points)
        lists = build_lists(tree)
        scale = n_target / pts.shape[0]
        reports.append(
            simulate_run(
                tree, lists, kernel, p, P, machine, m2l=m2l,
                grain_scale=scale, n_override=n_target,
            )
        )
    return reports
