"""Public KIFMM API.

Typical use::

    from repro import KIFMM, LaplaceKernel

    fmm = KIFMM(LaplaceKernel())
    fmm.setup(points)              # build tree, lists, operators
    u = fmm.apply(density)         # one interaction evaluation
    u = fmm.apply(density2)        # setup is reused, as in the paper's
                                   # Krylov loops ("tens of interaction
                                   # calculations" per time step)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import evaluate, evaluate_planned, resolve_kernels
from repro.core.fftm2l import FFTM2L
from repro.core.m2lschedule import (
    M2L_DTYPES,
    M2L_MODES,
    M2LSchedule,
    resolve_m2l_schedule,
    v_stats_from_lists,
    v_stats_from_plan,
)
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.precompute import OperatorCache
from repro.core.surfaces import INNER_RADIUS, OUTER_RADIUS
from repro.kernels.base import Kernel
from repro.octree.lists import InteractionLists, build_lists
from repro.octree.tree import Octree, build_tree
from repro.util.flops import FlopCounter
from repro.util.timing import PhaseTimer


@dataclass
class FMMOptions:
    """Tuning knobs of the method.

    Attributes
    ----------
    p:
        Surface discretisation order (points per cube edge).  Accuracy is
        controlled by ``p``; the paper's experiments target relative error
        1e-5 (p=6 reaches roughly that for the Laplace kernel — see
        ``benchmarks/bench_accuracy.py``).
    max_points:
        The ``s`` of the paper — maximum sources (or targets) per leaf.
    m2l:
        V-list translation backend: ``"fft"`` (the paper's accelerated
        scheme), ``"dense"``, ``"rsvd"`` (randomized-SVD-compressed
        operators applied as stacked BLAS-3 GEMMs), or ``"auto"``
        (default) which picks per tree level from the level's V-list
        statistics — see :mod:`repro.core.m2lschedule`.
    dtype:
        Arithmetic precision of the rsvd M2L factors: ``"float64"``
        (default) or ``"float32"`` (mixed precision — single-precision
        factors and multiplies, float64 accumulation into the downward
        check buffers).  Ignored by the fft and dense backends.
    inner, outer:
        Equivalent/check surface radius factors (Section 2.1 constraints
        require ``1 < inner < outer < 3``).
    rcond:
        SVD cutoff for the regularised inversions.
    max_depth:
        Tree refinement cut-off.
    balance:
        Apply 2:1 tree balancing after construction (optional; the
        adaptive lists handle unbalanced trees — see
        :mod:`repro.octree.balance`).
    plan:
        ``"batched"`` (default) precomputes a level-major execution plan
        in :meth:`KIFMM.setup` and evaluates with the vectorized
        :func:`~repro.core.evaluator.evaluate_planned`; ``"naive"`` keeps
        the per-box reference path.  Kernels that are not translation
        invariant always use the per-box path.
    comm:
        Parallel communication scheme for the owner gather/scatter of
        :mod:`repro.parallel.exchange`: ``"tree"`` (default, hierarchical
        binomial reduction — O(log P) messages per rank at the tree top)
        or ``"flat"`` (the paper's literal Algorithm 1 — O(P) at coarse
        boxes).  Bitwise-identical results; ignored by the serial path.
    sanitize:
        Run the planned evaluators under the runtime sanitizers
        (:mod:`repro.analysis.sanitize`): BufferPool lifecycle with
        NaN poisoning, finite checks at every plan phase boundary, and
        GEMM aliasing guards.  Equivalent to setting ``REPRO_SANITIZE=1``
        in the environment; intended for CI and debugging (bounded
        overhead, but not free).
    """

    p: int = 6
    max_points: int = 60
    m2l: str = "auto"
    dtype: str = "float64"
    inner: float = INNER_RADIUS
    outer: float = OUTER_RADIUS
    rcond: float = 1e-12
    max_depth: int = 21
    balance: bool = False
    plan: str = "batched"
    comm: str = "tree"
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.p < 2:
            raise ValueError(f"p must be >= 2, got {self.p}")
        if self.max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {self.max_points}")
        if self.m2l not in M2L_MODES:
            raise ValueError(
                f"m2l must be one of {M2L_MODES}, got {self.m2l!r}"
            )
        if self.dtype not in M2L_DTYPES:
            raise ValueError(
                f"dtype must be one of {M2L_DTYPES}, got {self.dtype!r}"
            )
        if not 1.0 < self.inner < self.outer < 3.0:
            raise ValueError(
                f"surface radii must satisfy 1 < inner < outer < 3, "
                f"got inner={self.inner}, outer={self.outer}"
            )
        if self.plan not in ("batched", "naive"):
            raise ValueError(
                f"plan must be 'batched' or 'naive', got {self.plan!r}"
            )
        if self.comm not in ("tree", "flat"):
            raise ValueError(
                f"comm must be 'tree' or 'flat', got {self.comm!r}"
            )


class KIFMM:
    """Kernel-independent fast multipole evaluator.

    Parameters
    ----------
    kernel:
        Any :class:`~repro.kernels.base.Kernel`; the algorithm uses only
        kernel evaluations (the paper's central claim).
    options:
        :class:`FMMOptions`; defaults follow the paper (s=60, 1e-5-ish
        accuracy, FFT M2L).
    """

    def __init__(
        self,
        kernel: Kernel,
        options: FMMOptions | None = None,
        source_kernel: Kernel | None = None,
        target_kernel: Kernel | None = None,
        direct_kernel: Kernel | None = None,
    ) -> None:
        self.kernel = kernel
        self.options = options or FMMOptions()
        self.source_kernel = source_kernel
        self.target_kernel = target_kernel
        self.direct_kernel = direct_kernel
        self.tree: Octree | None = None
        self.lists: InteractionLists | None = None
        self.cache: OperatorCache | None = None
        self.flops = FlopCounter()
        self.timer = PhaseTimer()
        self._fft: FFTM2L | None = None
        self._plan: ExecutionPlan | None = None
        self._m2l: M2LSchedule | None = None

    def setup(
        self,
        sources: np.ndarray,
        targets: np.ndarray | None = None,
        root: tuple[np.ndarray, float] | None = None,
        cache: OperatorCache | None = None,
    ) -> "KIFMM":
        """Build the tree, interaction lists and operator cache.

        Separated from :meth:`apply` because applications evaluate many
        interactions per geometry (Section 3: "our parallel implementation
        is designed to achieve maximum efficiency in the multiplication
        phase").  Returns ``self`` for chaining.

        ``cache`` reuses a caller-supplied :class:`OperatorCache` (its
        ``root_side`` must match the tree's — pin it via ``root``), so
        multi-kernel BIE runs and repeated setups skip the pseudoinverse
        recomputation.
        """
        opts = self.options
        with self.timer.phase("tree"):
            self.tree = build_tree(
                sources,
                targets,
                max_points=opts.max_points,
                max_depth=opts.max_depth,
                root=root,
            )
            if opts.balance:
                from repro.octree.balance import balance_tree

                self.tree = balance_tree(self.tree)
            self.lists = build_lists(self.tree)
        if cache is not None:
            if cache.root_side != self.tree.root_side:
                raise ValueError(
                    f"supplied cache root_side {cache.root_side} does not "
                    f"match tree root_side {self.tree.root_side}; pin the "
                    f"cube via the root argument"
                )
            self.cache = cache
        else:
            self.cache = OperatorCache(
                self.kernel,
                opts.p,
                self.tree.root_side,
                inner=opts.inner,
                outer=opts.outer,
                rcond=opts.rcond,
            )
        if opts.plan == "batched":
            with self.timer.phase("plan"):
                self._plan = build_plan(self.tree, self.lists)
        else:
            self._plan = None
        # Both evaluators resolve backends from the same gated V
        # statistics, so resolving once here fixes the schedule for
        # every apply (and for the plan verifier's flop model).
        stats = (
            v_stats_from_plan(self._plan)
            if self._plan is not None
            else v_stats_from_lists(self.tree, self.lists)
        )
        self._m2l = resolve_m2l_schedule(
            opts.m2l, opts.dtype,
            stats=stats, cache=self.cache, kernel=self.kernel,
        )
        self._fft = FFTM2L(self.cache) if self._m2l.needs_fft else None
        return self

    def _dispatch(
        self,
        density: np.ndarray,
        source_kernel: Kernel | None,
        target_kernel: Kernel | None,
        direct_kernel: Kernel | None,
    ) -> np.ndarray:
        """Route one evaluation through the planned or the per-box path."""
        assert self.tree is not None and self.lists is not None
        assert self.cache is not None
        kernels = resolve_kernels(
            self.kernel, source_kernel, target_kernel, direct_kernel
        )
        planned = self._plan is not None and all(
            k.translation_invariant for k in (self.kernel, *kernels)
        )
        common = dict(
            m2l_mode=self._m2l,
            fft_m2l=self._fft,
            flops=self.flops,
            timer=self.timer,
            source_kernel=source_kernel,
            target_kernel=target_kernel,
            direct_kernel=direct_kernel,
        )
        if planned:
            return evaluate_planned(
                self.tree, self._plan, self.kernel, self.cache, density,
                sanitize=self.options.sanitize, **common
            )
        return evaluate(
            self.tree, self.lists, self.kernel, self.cache, density, **common
        )

    def apply(self, density: np.ndarray) -> np.ndarray:
        """One interaction evaluation ``u = K phi``.

        Parameters
        ----------
        density:
            ``(ns, source_dof)`` or flat densities in input point order.
            Stacked blocks — ``(ns, source_dof, nrhs)`` or a flat block
            ``(ns * source_dof, nrhs)`` — evaluate all right-hand sides
            in one batched pass over the execution plan (the per-box
            path loops columns).

        Returns
        -------
        ``(nt, target_dof)`` potentials in input target order, with a
        trailing ``nrhs`` axis for stacked blocks.
        """
        if self.tree is None or self.lists is None or self.cache is None:
            raise RuntimeError("call setup() before apply()")
        return self._dispatch(
            density, self.source_kernel, self.target_kernel, self.direct_kernel
        )

    def apply_gradient(self, density: np.ndarray) -> np.ndarray:
        """Field gradient at the targets, ``grad u_i`` (forces in MD).

        Reuses this evaluator's tree/operators with the matching gradient
        target kernel; available for kernels registered in
        :func:`repro.kernels.derived.gradient_kernel_for`.  Returns
        ``(nt, 3 * target_dof)`` gradients.
        """
        from repro.kernels.derived import gradient_kernel_for

        if self.tree is None or self.cache is None:
            raise RuntimeError("call setup() before apply_gradient()")
        if self.source_kernel is not None or self.target_kernel is not None:
            raise RuntimeError(
                "apply_gradient() requires default source/target kernels; "
                "construct a dedicated KIFMM with explicit kernels instead"
            )
        return self._dispatch(
            density, None, gradient_kernel_for(self.kernel), None
        )

    def matvec(self, density: np.ndarray) -> np.ndarray:
        """Flat interface for Krylov solvers: ``apply`` raveled.

        A 2-D ``(ns * source_dof, nrhs)`` block (block Krylov solvers)
        maps to the stacked ``(nt * target_dof, nrhs)`` result; the
        block is reshaped into the batched apply without copies.
        """
        out = self.apply(density)
        if out.ndim == 3:
            return out.reshape(-1, out.shape[2])
        return out.ravel()

    @property
    def m2l_schedule(self) -> M2LSchedule:
        """The resolved per-level M2L backend schedule (after setup)."""
        if self._m2l is None:
            raise RuntimeError("call setup() first")
        return self._m2l

    def statistics(self) -> dict[str, object]:
        """Tree/list/instrumentation summary for reports and benchmarks."""
        if self.tree is None or self.lists is None:
            raise RuntimeError("call setup() first")
        stats: dict[str, object] = dict(self.tree.statistics())
        stats.update({f"{k}_list": v for k, v in self.lists.counts().items()})
        if self._plan is not None:
            stats.update(self._plan.statistics())
        if self._m2l is not None:
            stats["m2l_schedule"] = self._m2l.describe()
        stats["flops"] = self.flops.by_phase()
        stats["seconds"] = self.timer.by_phase()
        return stats
