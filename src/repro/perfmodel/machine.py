"""Machine model calibrated to the paper's TCS-1 AlphaServer.

Calibration sources (all from the paper):

- 1 GHz EV-68 processors ("Each node is equipped with four Alpha EV-68
  processors at 1 GHz");
- per-phase sustained flop rates: "M2L computations run at about 300
  Mflops/s, while all other parts run at about 400+ Mflops/s"
  (Figure 4.3 caption); per-processor rates in Figures 4.2/4.3 plateau
  near 300-480 Mflops/s;
- interconnect: "over 500 MB/s of message-passing bandwidth per node"
  (four processes per node share it) and a few microseconds of latency,
  typical for Quadrics QsNet;
- tree construction: 13.97 s for 3.2M particles on one processor
  (Table 4.1) gives ~4.4 us/particle of local work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math


@dataclass
class MachineModel:
    """Time conversion constants for the performance simulation."""

    clock_hz: float = 1.0e9
    #: sustained flop rate per processor, per interaction phase (flops/s)
    phase_rates: dict[str, float] = field(
        default_factory=lambda: {
            "up": 4.0e8,
            "down_u": 4.5e8,
            "down_v": 3.0e8,  # the paper's "M2L ... about 300 Mflops/s"
            "down_w": 4.0e8,
            "down_x": 4.0e8,
            "eval": 4.2e8,
        }
    )
    #: point-to-point message latency (s) and per-process bandwidth (B/s)
    latency: float = 6.0e-6
    bandwidth: float = 1.25e8  # 500 MB/s per 4-process node
    #: local tree-construction work per particle (s)
    tree_local_per_particle: float = 4.4e-6
    #: bytes per global-tree-array entry (count + child indices)
    tree_entry_bytes: int = 16
    #: fraction of the owned-data near-field/V/W compute window usable to
    #: hide the receive wait (the persistent apply overlaps the in-flight
    #: equivalent-density exchange with owned-data work; the hidden time
    #: is min(wait, overlap_fraction * that window))
    overlap_fraction: float = 0.5
    #: per-kernel flop-rate factors: the paper observes higher sustained
    #: rates for the arithmetically denser Stokes kernel ("we get better
    #: performance for the Stokes kernel") and ~280 Mflops/s average for
    #: the scalar kernels at P=1 (Tables 4.1/4.2).
    kernel_rate_factors: dict[str, float] = field(
        default_factory=lambda: {
            "laplace": 0.75,
            "modified_laplace": 0.75,
            "stokes": 1.15,
            "navier": 1.10,
        }
    )

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("machine constants must be positive")
        for phase, rate in self.phase_rates.items():
            if rate <= 0:
                raise ValueError(f"rate for phase {phase!r} must be positive")

    def rate(self, phase: str, kernel_name: str | None = None) -> float:
        try:
            base = self.phase_rates[phase]
        except KeyError:
            raise KeyError(f"no rate calibrated for phase {phase!r}") from None
        if kernel_name is None:
            return base
        return base * self.kernel_rate_factors.get(kernel_name, 1.0)

    def message_time(self, nbytes: float, nmessages: float = 1.0) -> float:
        """Latency-bandwidth cost of point-to-point traffic."""
        return nmessages * self.latency + nbytes / self.bandwidth

    def allreduce_time(self, nbytes: float, nprocs: int) -> float:
        """Tree-based Allreduce: log2(P) latency-bandwidth rounds."""
        if nprocs <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nprocs))
        return rounds * (self.latency + nbytes / self.bandwidth)

    def tree_collective_time(self, nbytes: float, nprocs: int) -> float:
        """Critical path of one binomial-tree reduce or broadcast.

        The segmented per-box collectives of the hierarchical tree-top
        exchange complete in ``ceil(log2(C))`` rounds over ``C``
        participants, each round one latency plus the payload; a rank's
        fan-in per box is bounded by the round count instead of ``C-1``.
        """
        if nprocs <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nprocs))
        return rounds * (self.latency + nbytes / self.bandwidth)

    def flat_fanin_time(self, nbytes: float, nprocs: int) -> float:
        """Critical path of a flat owner gather (or scatter).

        The owner serialises ``C-1`` point-to-point receives (sends),
        so its cost grows linearly in the participant count — the
        coarse-level scalability barrier the tree collectives remove.
        """
        if nprocs <= 1:
            return 0.0
        return (nprocs - 1) * (self.latency + nbytes / self.bandwidth)


#: The paper's platform.
TCS1 = MachineModel()
