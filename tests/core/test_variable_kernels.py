"""KIFMM with split source/target kernels: gradients and dipoles.

The decisive checks: the FMM with a gradient target kernel must match
the direct gradient summation, with a dipole source kernel the direct
dipole summation, and with both the combined sum — all using *only* the
translation kernel's equivalent densities internally.
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel
from repro.kernels.derived import (
    LaplaceDipoleKernel,
    LaplaceGradientKernel,
    ModifiedLaplaceDipoleKernel,
)
from repro.kernels.direct import direct_evaluate, relative_error

from tests.conftest import clustered_cloud, uniform_cloud


class TestGradientTargets:
    @pytest.mark.parametrize("cloud", ["uniform", "clustered"])
    def test_laplace_forces(self, rng, cloud):
        pts = (
            uniform_cloud(rng, 500)
            if cloud == "uniform"
            else clustered_cloud(rng, 500)
        )
        phi = rng.standard_normal((500, 1))
        grad_k = LaplaceGradientKernel()
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=6, max_points=30),
            target_kernel=grad_k,
        ).setup(pts)
        g = fmm.apply(phi)
        exact = direct_evaluate(grad_k, pts, pts, phi)
        assert g.shape == (500, 3)
        assert relative_error(g, exact) < 5e-4

    def test_apply_gradient_convenience(self, rng):
        pts = uniform_cloud(rng, 400)
        phi = rng.standard_normal((400, 1))
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=30)).setup(pts)
        g = fmm.apply_gradient(phi)
        exact = direct_evaluate(LaplaceGradientKernel(), pts, pts, phi)
        assert relative_error(g, exact) < 5e-4
        # the plain potential still works on the same evaluator
        u = fmm.apply(phi)
        assert u.shape == (400, 1)

    def test_gradient_consistent_with_potential(self, rng):
        """FD of the FMM potential field matches the FMM gradient."""
        src = uniform_cloud(rng, 400)
        phi = rng.standard_normal((400, 1))
        x0 = np.array([0.05, -0.1, 0.02])
        h = 1e-5
        probes = np.vstack(
            [x0] + [x0 + s * h * e for e in np.eye(3) for s in (1, -1)]
        )
        fmm_u = KIFMM(LaplaceKernel(), FMMOptions(p=8, max_points=30)).setup(
            src, probes
        )
        u = fmm_u.apply(phi).ravel()
        fd = np.array([(u[1 + 2 * i] - u[2 + 2 * i]) / (2 * h) for i in range(3)])
        fmm_g = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=8, max_points=30),
            target_kernel=LaplaceGradientKernel(),
        ).setup(src, x0.reshape(1, 3))
        g = fmm_g.apply(phi).ravel()
        assert np.allclose(g, fd, rtol=1e-4, atol=1e-6)


class TestDipoleSources:
    @pytest.mark.parametrize("cloud", ["uniform", "clustered"])
    def test_laplace_dipoles(self, rng, cloud):
        pts = (
            uniform_cloud(rng, 500)
            if cloud == "uniform"
            else clustered_cloud(rng, 500)
        )
        dipoles = rng.standard_normal((500, 3))
        dip_k = LaplaceDipoleKernel()
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=6, max_points=30),
            source_kernel=dip_k,
        ).setup(pts)
        u = fmm.apply(dipoles)
        exact = direct_evaluate(dip_k, pts, pts, dipoles)
        assert u.shape == (500, 1)
        assert relative_error(u, exact) < 5e-4

    def test_modified_laplace_dipoles(self, rng):
        pts = uniform_cloud(rng, 400)
        dipoles = rng.standard_normal((400, 3))
        lam = 1.2
        dip_k = ModifiedLaplaceDipoleKernel(lam)
        fmm = KIFMM(
            ModifiedLaplaceKernel(lam),
            FMMOptions(p=6, max_points=30),
            source_kernel=dip_k,
        ).setup(pts)
        u = fmm.apply(dipoles)
        exact = direct_evaluate(dip_k, pts, pts, dipoles)
        assert relative_error(u, exact) < 1e-3


class TestCombined:
    def test_dipole_sources_gradient_targets(self, rng):
        """Both custom: needs an explicit direct (hessian-style) kernel.

        For the test we use well-separated sources and targets so the U
        list is empty of cross terms... actually simpler: provide the
        true direct kernel via composition of finite differences is
        impractical, so we check the disjoint-sets case where the direct
        kernel is still required but exercised too.
        """

        class _DipoleToGradient(LaplaceDipoleKernel):
            """d . grad_y grad_x G: the Laplace Hessian contraction."""

            name = "laplace_dipole_gradient"
            source_dof = 3
            target_dof = 3
            flops_per_pair = 40

            def matrix(self, targets, sources):
                diff, inv_r = self._displacements(targets, sources)
                nt, ns = inv_r.shape
                inv_r3 = inv_r**3
                inv_r5 = inv_r**5
                # H_ij = d/dx_i d/dy_j G = (delta_ij r^2 - 3 r_i r_j)/(4 pi r^5)
                rr = np.einsum("tsi,tsj->tsij", diff, diff)
                H = -3.0 * rr * inv_r5[:, :, None, None]
                idx = np.arange(3)
                H[:, :, idx, idx] += inv_r3[:, :, None]
                H /= 4.0 * np.pi
                return H.transpose(0, 2, 1, 3).reshape(nt * 3, ns * 3)

        pts = uniform_cloud(rng, 400)
        dipoles = rng.standard_normal((400, 3))
        hess = _DipoleToGradient()
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=6, max_points=30),
            source_kernel=LaplaceDipoleKernel(),
            target_kernel=LaplaceGradientKernel(),
            direct_kernel=hess,
        ).setup(pts)
        g = fmm.apply(dipoles)
        exact = direct_evaluate(hess, pts, pts, dipoles)
        assert relative_error(g, exact) < 1e-3

    def test_both_custom_without_direct_raises(self, rng):
        pts = uniform_cloud(rng, 100)
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=3, max_points=30),
            source_kernel=LaplaceDipoleKernel(),
            target_kernel=LaplaceGradientKernel(),
        ).setup(pts)
        with pytest.raises(ValueError, match="direct_kernel"):
            fmm.apply(np.zeros((100, 3)))


class TestValidation:
    def test_incompatible_source_kernel(self, rng):
        pts = uniform_cloud(rng, 100)
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=3, max_points=30),
            source_kernel=LaplaceGradientKernel(),  # wrong: target_dof 3
        ).setup(pts)
        with pytest.raises(ValueError, match="source_kernel"):
            fmm.apply(np.zeros((100, 1)))

    def test_incompatible_target_kernel(self, rng):
        pts = uniform_cloud(rng, 100)
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=3, max_points=30),
            target_kernel=LaplaceDipoleKernel(),  # wrong: source_dof 3
        ).setup(pts)
        with pytest.raises(ValueError, match="target_kernel"):
            fmm.apply(np.zeros((100, 1)))

    def test_apply_gradient_with_custom_kernels_raises(self, rng):
        pts = uniform_cloud(rng, 50)
        fmm = KIFMM(
            LaplaceKernel(),
            FMMOptions(p=3, max_points=30),
            source_kernel=LaplaceDipoleKernel(),
        ).setup(pts)
        with pytest.raises(RuntimeError):
            fmm.apply_gradient(np.zeros((50, 3)))
