"""Equivalent and check surfaces (Section 2.1, Figure 2.1).

The equivalent densities live at prescribed locations on cube surfaces
surrounding each box ("usually chosen on a sphere or a cube"; we use
cubes, like the reference kifmm3d implementation, because a cube surface
sampled on a regular lattice makes the M2L translation a discrete
convolution amenable to FFT acceleration).

For a box with center ``c`` and half-width ``r`` the four surfaces are the
boundary nodes of a ``p x p x p`` lattice spanning the cube
``c + radius * r * [-1, 1]^3``:

- upward equivalent surface  — ``radius = inner`` (just outside the box);
- upward check surface       — ``radius = outer`` (just inside the far
  range boundary at ``3r``);
- downward equivalent surface— ``radius = outer``;
- downward check surface     — ``radius = inner``.

These satisfy every placement constraint in the paper's Section 2.1
summary (verified in the test suite), with the default
``inner = 1.05``, ``outer = 2.95``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Default surface radius factors (relative to the box half-width).
INNER_RADIUS = 1.05
OUTER_RADIUS = 2.95


def n_surface_points(p: int) -> int:
    """Number of boundary nodes of a ``p^3`` lattice: ``6p^2 - 12p + 8``."""
    if p < 2:
        raise ValueError(f"surface order p must be >= 2, got {p}")
    return p**3 - (p - 2) ** 3


@lru_cache(maxsize=32)
def surface_lattice_indices(p: int) -> np.ndarray:
    """Multi-indices of the boundary nodes of the ``p^3`` lattice.

    Returns an ``(n_surf, 3)`` int array of lattice coordinates in
    ``[0, p)^3``, ordered lexicographically (C order); this ordering is
    shared by :func:`surface_grid` and by the FFT M2L scatter/gather.
    """
    if p < 2:
        raise ValueError(f"surface order p must be >= 2, got {p}")
    idx = np.indices((p, p, p)).reshape(3, -1).T
    on_boundary = ((idx == 0) | (idx == p - 1)).any(axis=1)
    out = np.ascontiguousarray(idx[on_boundary])
    out.setflags(write=False)
    return out


@lru_cache(maxsize=32)
def surface_flat_indices(p: int) -> np.ndarray:
    """Flat (C-order) indices of the surface nodes within the ``p^3`` grid."""
    idx = surface_lattice_indices(p)
    out = np.ascontiguousarray(idx[:, 0] * p * p + idx[:, 1] * p + idx[:, 2])
    out.setflags(write=False)
    return out


@lru_cache(maxsize=32)
def surface_grid(p: int) -> np.ndarray:
    """Relative coordinates of the surface nodes on ``[-1, 1]^3``.

    ``(n_surf, 3)`` float array; node ``i`` sits at lattice multi-index
    ``surface_lattice_indices(p)[i]`` with coordinate
    ``2 * index / (p - 1) - 1``.
    """
    idx = surface_lattice_indices(p).astype(np.float64)
    out = np.ascontiguousarray(2.0 * idx / (p - 1) - 1.0)
    out.setflags(write=False)
    return out


def scaled_surface(
    p: int, center: np.ndarray, half_width: float, radius: float
) -> np.ndarray:
    """Surface nodes of the cube ``center + radius * half_width * [-1,1]^3``."""
    if half_width <= 0:
        raise ValueError(f"half_width must be positive, got {half_width}")
    if radius <= 0:
        raise ValueError(f"radius factor must be positive, got {radius}")
    return np.asarray(center, dtype=np.float64) + radius * half_width * surface_grid(p)
