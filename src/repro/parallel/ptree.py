"""Parallel level-by-level tree construction (Section 3.1).

"All processors begin at level 0 with the same box ... At every level l,
each processor puts its local number of points in boxes at level l ...
Then, an MPI_Allreduce is used over all local copies of the global tree
array to sum up the local number of points for each box at level l. ...
By comparing each box's global number of points with s ... each processor
can decide whether a box in level l should be further subdivided."

Every rank ends up with the *identical* global tree topology (the paper's
"global tree array": global counts + child indices) while its
:class:`~repro.octree.box.Box` point ranges refer only to its local
points.  Because splitting decisions use global counts, the topology is
bitwise identical to the sequential tree built over all points — an
invariant the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.octree.box import Box
from repro.octree.morton import MAX_DEPTH, anchor_to_key, encode_points
from repro.octree.tree import Octree
from repro.parallel.simmpi import SimComm

_U = np.uint64


@dataclass
class ParallelTree:
    """A rank's view of the global tree.

    ``tree`` is a standard :class:`~repro.octree.tree.Octree` whose box
    point ranges index the rank's *local* Morton-sorted points; the global
    per-box counts (identical on every rank) live alongside.
    """

    tree: Octree
    global_nsrc: np.ndarray
    global_ntrg: np.ndarray

    def local_contributes_src(self) -> np.ndarray:
        """Boxes holding local sources (rank is a source contributor)."""
        return np.array([b.nsrc > 0 for b in self.tree.boxes])

    def local_contributes_trg(self) -> np.ndarray:
        return np.array([b.ntrg > 0 for b in self.tree.boxes])


def agree_root_cube(
    comm: SimComm, local_points: np.ndarray, pad: float = 1e-6
) -> tuple[np.ndarray, float]:
    """Global bounding cube via min/max Allreduce (all ranks agree)."""
    if local_points.shape[0]:
        lo, hi = local_points.min(axis=0), local_points.max(axis=0)
    else:
        lo = np.full(3, np.inf)
        hi = np.full(3, -np.inf)
    lo = comm.allreduce(lo, op="min")
    hi = comm.allreduce(hi, op="max")
    if not np.all(np.isfinite(lo)):
        raise ValueError("no rank contributed any points")
    side = float((hi - lo).max())
    side = side * (1.0 + pad) if side > 0 else 1.0
    center = (lo + hi) / 2.0
    return center - side / 2.0, side


def parallel_build_tree(
    comm: SimComm,
    local_sources: np.ndarray,
    local_targets: np.ndarray | None = None,
    max_points: int = 60,
    max_depth: int = MAX_DEPTH,
    root: tuple[np.ndarray, float] | None = None,
) -> ParallelTree:
    """Build the global tree topology with local point ranges.

    Parameters mirror :func:`repro.octree.tree.build_tree`; ``root`` may
    be supplied (e.g. from :func:`agree_root_cube`), otherwise it is
    agreed collectively here.
    """
    local_sources = np.ascontiguousarray(local_sources, dtype=np.float64)
    shared = local_targets is None
    targets_arr = (
        local_sources if shared else np.ascontiguousarray(local_targets, np.float64)
    )
    if root is None:
        allpts = (
            local_sources if shared else np.vstack([local_sources, targets_arr])
        )
        corner, side = agree_root_cube(comm, allpts)
    else:
        corner = np.asarray(root[0], dtype=np.float64)
        side = float(root[1])

    src_keys = encode_points(local_sources, corner, side)
    src_perm = np.argsort(src_keys, kind="stable")
    src_sorted = src_keys[src_perm]
    if shared:
        trg_perm, trg_sorted = src_perm, src_sorted
    else:
        trg_keys = encode_points(targets_arr, corner, side)
        trg_perm = np.argsort(trg_keys, kind="stable")
        trg_sorted = trg_keys[trg_perm]

    tree = Octree(
        sources=local_sources,
        targets=targets_arr,
        root_corner=corner,
        root_side=side,
        max_points=max_points,
        shared_points=shared,
        src_perm=src_perm,
        trg_perm=trg_perm,
    )
    tree.boxes.append(
        Box(
            index=0,
            level=0,
            anchor=(0, 0, 0),
            parent=-1,
            src_start=0,
            src_stop=local_sources.shape[0],
            trg_start=0,
            trg_stop=targets_arr.shape[0],
        )
    )
    tree.index[(0, (0, 0, 0))] = 0
    tree.levels.append([0])

    # Global counts of the root: one Allreduce.
    root_counts = comm.allreduce(
        np.array([local_sources.shape[0], targets_arr.shape[0]], dtype=np.int64)
    )
    global_nsrc = [int(root_counts[0])]
    global_ntrg = [int(root_counts[1])]

    frontier = [0]
    level = 0
    while frontier and level < max_depth:
        shift = _U(3 * (MAX_DEPTH - level - 1))
        # Which boxes split is a *global* decision, identical on all ranks.
        splitting = [
            bi
            for bi in frontier
            if global_nsrc[bi] > max_points or global_ntrg[bi] > max_points
        ]
        if not splitting:
            break
        # Local counts for all 8 candidate octants of every splitting box,
        # in deterministic (box, octant) order: the level's slice of the
        # paper's global tree array.
        local_counts = np.zeros((len(splitting), 8, 2), dtype=np.int64)
        cuts_cache: list[tuple[np.ndarray, np.ndarray]] = []
        for si, bi in enumerate(splitting):
            box = tree.boxes[bi]
            ix, iy, iz = box.anchor
            base = _U(anchor_to_key(ix, iy, iz)) << _U(3)
            bounds = (base + np.arange(9, dtype=np.uint64)) << shift
            s_cuts = box.src_start + np.searchsorted(
                src_sorted[box.src_start : box.src_stop], bounds, side="left"
            )
            t_cuts = box.trg_start + np.searchsorted(
                trg_sorted[box.trg_start : box.trg_stop], bounds, side="left"
            )
            cuts_cache.append((s_cuts, t_cuts))
            local_counts[si, :, 0] = np.diff(s_cuts)
            local_counts[si, :, 1] = np.diff(t_cuts)
        global_counts = comm.allreduce(local_counts)

        next_frontier: list[int] = []
        for si, bi in enumerate(splitting):
            box = tree.boxes[bi]
            ix, iy, iz = box.anchor
            s_cuts, t_cuts = cuts_cache[si]
            kids = []
            for c in range(8):
                gs, gt = int(global_counts[si, c, 0]), int(global_counts[si, c, 1])
                if gs == 0 and gt == 0:
                    continue  # globally empty octant: pruned everywhere
                child_anchor = (
                    2 * ix + (c & 1),
                    2 * iy + ((c >> 1) & 1),
                    2 * iz + ((c >> 2) & 1),
                )
                child = Box(
                    index=len(tree.boxes),
                    level=level + 1,
                    anchor=child_anchor,
                    parent=bi,
                    src_start=int(s_cuts[c]),
                    src_stop=int(s_cuts[c + 1]),
                    trg_start=int(t_cuts[c]),
                    trg_stop=int(t_cuts[c + 1]),
                )
                tree.boxes.append(child)
                tree.index[(level + 1, child_anchor)] = child.index
                global_nsrc.append(gs)
                global_ntrg.append(gt)
                kids.append(child.index)
            box.children = tuple(kids)
            next_frontier.extend(kids)
        if next_frontier:
            tree.levels.append(next_frontier)
        frontier = next_frontier
        level += 1

    return ParallelTree(
        tree=tree,
        global_nsrc=np.array(global_nsrc, dtype=np.int64),
        global_ntrg=np.array(global_ntrg, dtype=np.int64),
    )
