"""The in-process parallel runtime, measured for real.

Runs the full three-stage SC'03 algorithm (Morton partitioning, global
tree array via Allreduce, LETs, owners, Algorithm 1 exchanges) on the
simulated-MPI runtime with actual logical ranks, reporting wall-clock
time, communication volumes and correctness against the sequential
evaluator.  This complements the machine-model benches: volumes here are
exchanged, not estimated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.geometry import corner_clusters
from repro.kernels import LaplaceKernel
from repro.kernels.direct import relative_error
from repro.parallel import run_parallel_fmm
from repro.util.tables import format_table

N = 4000
RANKS = (1, 2, 4, 8)


def _run_all():
    rng = np.random.default_rng(48)
    pts = corner_clusters(N, rng)
    phi = rng.standard_normal((N, 1))
    opts = FMMOptions(p=4, max_points=40)
    seq = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    rows, errs = [], []
    for nr in RANKS:
        res = run_parallel_fmm(nr, LaplaceKernel(), pts, phi, opts)
        total_bytes = sum(s.bytes_sent for s in res.comm_stats)
        total_msgs = sum(s.messages_sent for s in res.comm_stats)
        up = float(np.mean([t["up"] for t in res.timers]))
        down = float(np.mean([
            sum(v for k, v in t.items()
                if k.startswith("down") or k == "eval")
            for t in res.timers
        ]))
        comm = float(np.mean([
            t.get("pack", 0.0) + t.get("wait", 0.0) for t in res.timers
        ]))
        rows.append((nr, up, comm, down, total_msgs, total_bytes / 1e3))
        errs.append(relative_error(res.potential, seq))
    return rows, errs


def test_parallel_runtime(benchmark):
    rows, errs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ("ranks", "up sec", "pack+wait sec", "down sec", "messages", "KB sent"),
        rows,
        title=f"Simulated-MPI parallel runtime (N={N}, corner-clustered)",
    ))
    assert max(errs) < 1e-9, "parallel must equal sequential"
    bytes_sent = [r[5] for r in rows]
    assert bytes_sent[0] == 0.0
    assert all(b > 0 for b in bytes_sent[1:])
    assert bytes_sent[3] > bytes_sent[1], "more ranks exchange more ghosts"
