"""Offline analyzer for simulated-MPI communication traces.

Consumes the :class:`~repro.analysis.trace.CommTrace` recorded by
:func:`repro.parallel.simmpi.run_spmd` and reports, from the trace
alone:

- **unmatched sends** — messages put on a ``(src, dst, tag)`` channel
  and never received (cross-checked against the runtime's mailbox-leak
  report);
- **wait-for deadlock cycles** — ranks whose final event is a blocked
  receive or collective entry, with the cycle's blocked
  ``(src, dst, tag)`` edges named;
- **collective divergence** — ranks entering different collectives (or
  the same collective with different op/shape) at the same collective
  index;
- **channel-order violations** — receives consuming a channel out of
  FIFO send order, or two sends on one channel not ordered by
  happens-before (each channel has a single sending rank, so concurrent
  sends would mean the runtime's ordering guarantee is broken);
- **request leaks** — nonblocking receives posted but not completed
  before a barrier entry (or, on runs whose ranks all returned, never
  completed at all): the dynamic complement of the ``request-waited``
  lint rule;
- **stats mismatches** — event counts inconsistent with the
  :class:`~repro.parallel.simmpi.CommStats` send/receive accounting.

:func:`compare_traces` additionally checks *observable determinism*
across repeated runs under perturbed schedules: per-channel payload
digest sequences and per-rank collective sequences must be identical.

CLI::

    python -m repro.analysis.commcheck TRACE.jsonl [TRACE2.jsonl ...]

analyzes saved traces (and compares them when several are given).  The
live smoke — run a 4-rank parallel FMM under perturbed schedules and
verify the traces clean — is ``python -m repro commcheck``.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.trace import CommTrace, TraceEvent


@dataclass
class Finding:
    """One analyzer diagnosis."""

    rule: str
    message: str
    ranks: tuple[int, ...] = ()

    def __str__(self) -> str:
        where = f" (ranks {', '.join(map(str, self.ranks))})" if self.ranks else ""
        return f"[{self.rule}]{where} {self.message}"


@dataclass
class CommReport:
    """All findings for one trace (or one cross-trace comparison)."""

    findings: list[Finding] = field(default_factory=list)
    nevents: int = 0
    nranks: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def summary(self) -> str:
        head = (
            f"commcheck: {self.nevents} events over {self.nranks} ranks — "
            + ("clean" if self.ok else f"{len(self.findings)} finding(s)")
        )
        return "\n".join([head] + [f"  {f}" for f in self.findings])


def _channel_events(
    trace: CommTrace,
) -> tuple[dict[tuple, list[TraceEvent]], dict[tuple, list[TraceEvent]]]:
    """Per-channel send and completed-recv event lists, in rank order."""
    sends: dict[tuple, list[TraceEvent]] = defaultdict(list)
    recvs: dict[tuple, list[TraceEvent]] = defaultdict(list)
    for evs in trace.events_by_rank:
        for ev in evs:
            if ev.kind == "send":
                sends[ev.channel()].append(ev)
            elif ev.kind == "recv":
                recvs[ev.channel()].append(ev)
    return sends, recvs


def _happens_before(a: TraceEvent, b: TraceEvent) -> bool:
    """Vector-clock happens-before: ``a -> b``."""
    if not a.clock or not b.clock:
        return False
    return all(x <= y for x, y in zip(a.clock, b.clock)) and a.clock != b.clock


def _check_channels(trace: CommTrace, report: CommReport) -> None:
    sends, recvs = _channel_events(trace)
    runtime_leaks = {tuple(k) if isinstance(k, list) else k: n
                     for k, n in trace.leaked}
    for chan in sorted(set(sends) | set(recvs), key=repr):
        s, r = sends.get(chan, []), recvs.get(chan, [])
        src, dst, tag = chan
        if len(s) > len(r):
            report.findings.append(Finding(
                "unmatched-send",
                f"{len(s) - len(r)} message(s) on channel {src}->{dst} "
                f"tag={tag!r} sent but never received",
                ranks=(src, dst),
            ))
        elif len(r) > len(s):  # impossible unless the runtime itself is broken
            report.findings.append(Finding(
                "phantom-recv",
                f"channel {src}->{dst} tag={tag!r} completed {len(r)} recvs "
                f"for only {len(s)} sends",
                ranks=(src, dst),
            ))
        # FIFO matching: the i-th completed recv must consume the i-th send.
        for i, ev in enumerate(r):
            if i < len(s) and ev.match_seq is not None and ev.match_seq != s[i].seq:
                report.findings.append(Finding(
                    "channel-order",
                    f"recv #{i} on channel {src}->{dst} tag={tag!r} matched "
                    f"send seq {ev.match_seq}, expected seq {s[i].seq} "
                    f"(non-FIFO consumption)",
                    ranks=(src, dst),
                ))
                break
        # Sends on one channel come from a single rank, so they must form
        # a happens-before chain; a violation means recv order on this
        # channel is not determined by the program (nondeterminism).
        for a, b in zip(s, s[1:]):
            if not _happens_before(a, b):
                report.findings.append(Finding(
                    "channel-order",
                    f"two sends on channel {src}->{dst} tag={tag!r} are "
                    f"concurrent (seq {a.seq} and {b.seq}); receive order "
                    f"is nondeterministic",
                    ranks=(src,),
                ))
                break
    # Cross-check the runtime's own mailbox-leak report.
    for chan, count in sorted(runtime_leaks.items(), key=repr):
        s = sends.get(chan, [])
        r = recvs.get(chan, [])
        if len(s) - len(r) != count:
            report.findings.append(Finding(
                "trace-runtime-mismatch",
                f"runtime reports {count} leaked message(s) on channel "
                f"{chan!r} but the trace shows {len(s)} send(s) / "
                f"{len(r)} recv(s)",
            ))


def _pending_ops(trace: CommTrace) -> dict[int, TraceEvent | None]:
    """The blocking operation each rank was stuck in at exit, if any.

    A rank is blocked when its final event is a ``recv-post`` or
    ``coll-enter`` with no matching completion event.
    """
    pending: dict[int, TraceEvent | None] = {}
    for rank, evs in enumerate(trace.events_by_rank):
        pending[rank] = None
        if evs and evs[-1].kind in ("recv-post", "coll-enter"):
            pending[rank] = evs[-1]
    return pending


def _check_deadlock(trace: CommTrace, report: CommReport) -> None:
    if trace.completed:
        return
    pending = _pending_ops(trace)
    blocked = {r: ev for r, ev in pending.items() if ev is not None}
    if not blocked:
        return
    coll_counts = {
        r: sum(1 for e in evs if e.kind == "coll-exit")
        for r, evs in enumerate(trace.events_by_rank)
    }
    # Wait-for graph: rank -> ranks it cannot proceed without.
    waits: dict[int, dict[int, str]] = {}
    for r, ev in blocked.items():
        edges: dict[int, str] = {}
        if ev.kind == "recv-post":
            src, dst, tag = ev.channel()
            edges[src] = f"recv {src}->{dst} tag={tag!r}"
        else:
            # coll-enter: waits on every rank that has not reached this
            # collective.  A peer blocked in the *same* collective index
            # is a fellow waiter, not an obstacle — the collective would
            # complete if everyone were there.
            for q in range(trace.nranks):
                if q == r or coll_counts[q] > coll_counts[r]:
                    continue
                qev = blocked.get(q)
                if (
                    qev is not None
                    and qev.kind == "coll-enter"
                    and qev.coll_index == ev.coll_index
                ):
                    continue
                edges[q] = f"{ev.coll}[{ev.coll_index}]"
        waits[r] = edges

    # Cycle detection over the blocked subgraph.
    def find_cycle(start: int) -> list[int] | None:
        path, on_path = [], set()

        def dfs(u: int) -> list[int] | None:
            if u in on_path:
                return path[path.index(u):]
            if u not in waits:
                return None
            path.append(u)
            on_path.add(u)
            for v in waits[u]:
                cyc = dfs(v)
                if cyc is not None:
                    return cyc
            path.pop()
            on_path.discard(u)
            return None

        return dfs(start)

    reported: set[frozenset[int]] = set()
    for r in sorted(blocked):
        cycle = find_cycle(r)
        if cycle and frozenset(cycle) not in reported:
            reported.add(frozenset(cycle))
            edges = []
            for i, u in enumerate(cycle):
                v = cycle[(i + 1) % len(cycle)]
                label = waits[u].get(v, "?")
                edges.append(f"rank {u} blocked in {label} waiting on rank {v}")
            report.findings.append(Finding(
                "deadlock-cycle",
                "wait-for cycle: " + "; ".join(edges),
                ranks=tuple(cycle),
            ))
    # Blocked on a peer that terminated: no cycle, still a fatal wait.
    for r in sorted(blocked):
        if any(r in c for c in reported):
            continue
        ev = blocked[r]
        if ev.kind == "recv-post":
            src = ev.peer
            if pending.get(src) is None and src not in blocked:
                report.findings.append(Finding(
                    "orphan-wait",
                    f"rank {r} blocked in {ev.describe()} but rank {src} "
                    f"finished without sending",
                    ranks=(r, src),
                ))


def _check_collectives(trace: CommTrace, report: CommReport) -> None:
    seqs: list[list[TraceEvent]] = [
        [e for e in evs if e.kind == "coll-enter"]
        for evs in trace.events_by_rank
    ]
    if not seqs:
        return
    depth = max(len(s) for s in seqs)
    for i in range(depth):
        entries = {r: s[i] for r, s in enumerate(seqs) if i < len(s)}
        kinds = {(e.coll, e.op) for e in entries.values()}
        if len(kinds) > 1:
            desc = ", ".join(
                f"rank {r}: {e.coll}" + (f"(op={e.op})" if e.op else "")
                for r, e in sorted(entries.items())
            )
            report.findings.append(Finding(
                "collective-divergence",
                f"collective #{i}: ranks entered different collectives — {desc}",
                ranks=tuple(sorted(entries)),
            ))
            return  # later indices are meaningless after a divergence
        if trace.completed and len(entries) != trace.nranks:
            missing = sorted(set(range(trace.nranks)) - set(entries))
            report.findings.append(Finding(
                "collective-divergence",
                f"collective #{i}: ranks {missing} never entered it",
                ranks=tuple(missing),
            ))
            return
        shapes = {e.shape for e in entries.values() if e.coll == "allreduce"}
        if len(shapes) > 1:
            report.findings.append(Finding(
                "collective-divergence",
                f"collective #{i}: allreduce contributions disagree on "
                f"shape: {sorted(shapes, key=repr)}",
                ranks=tuple(sorted(entries)),
            ))
            return


def _check_clocks(trace: CommTrace, report: CommReport) -> None:
    """Happens-before sanity: every recv follows its matching send."""
    for evs in trace.events_by_rank:
        last = 0
        for ev in evs:
            if ev.lamport < last:
                report.findings.append(Finding(
                    "clock-regression",
                    f"rank {ev.rank} Lamport clock went backwards at "
                    f"event #{ev.seq} ({ev.describe()})",
                    ranks=(ev.rank,),
                ))
                return
            last = ev.lamport
    sends, recvs = _channel_events(trace)
    for chan, r in recvs.items():
        s = sends.get(chan, [])
        by_seq = {ev.seq: ev for ev in s}
        for ev in r:
            if ev.match_seq is None:
                continue
            send_ev = by_seq.get(ev.match_seq)
            if send_ev is not None and not _happens_before(send_ev, ev):
                report.findings.append(Finding(
                    "clock-regression",
                    f"{ev.describe()} does not happen-after its matching "
                    f"send (seq {ev.match_seq})",
                    ranks=(send_ev.rank, ev.rank),
                ))
                return


def _check_requests(trace: CommTrace, report: CommReport) -> None:
    """Every posted nonblocking receive must complete before a barrier.

    Walks each rank's event stream counting outstanding ``recv-post``
    events per channel (a ``recv`` completes the oldest post on its
    channel — FIFO, matching the runtime).  Outstanding posts at a
    collective entry mean a ``Request`` crossed the apply's final
    barrier un-waited; outstanding posts at the end of a run whose ranks
    all returned (``completed``, or failed only by the exit-time mailbox
    leak check — no per-rank ``error``) mean a request was posted and
    never waited at all.  Runs where a rank died are left to the
    deadlock checker: a rank blocked in its last ``recv-post`` is a
    wait, not a leak.
    """
    ranks_returned = trace.completed or trace.error is None
    for rank, evs in enumerate(trace.events_by_rank):
        outstanding: dict[tuple, int] = defaultdict(int)
        for ev in evs:
            if ev.kind == "recv-post":
                outstanding[ev.channel()] += 1
            elif ev.kind == "recv":
                outstanding[ev.channel()] -= 1
            elif ev.kind == "coll-enter":
                open_chans = {c: n for c, n in outstanding.items() if n > 0}
                if open_chans:
                    desc = ", ".join(
                        f"{src}->{dst} tag={tag!r} ({n} open)"
                        for (src, dst, tag), n in sorted(
                            open_chans.items(), key=repr
                        )
                    )
                    report.findings.append(Finding(
                        "request-leak",
                        f"rank {rank} entered {ev.coll}[{ev.coll_index}] "
                        f"with un-waited receive request(s) on channel(s) "
                        f"{desc}",
                        ranks=(rank,),
                    ))
                    break
        else:
            if ranks_returned and any(n > 0 for n in outstanding.values()):
                desc = ", ".join(
                    f"{src}->{dst} tag={tag!r} ({n} open)"
                    for (src, dst, tag), n in sorted(
                        outstanding.items(), key=repr
                    )
                    if n > 0
                )
                report.findings.append(Finding(
                    "request-leak",
                    f"rank {rank} finished with receive request(s) never "
                    f"waited on channel(s) {desc}",
                    ranks=(rank,),
                ))


def _check_stats(
    trace: CommTrace, stats: Sequence[Any], report: CommReport
) -> None:
    n_send_ev = sum(
        1 for evs in trace.events_by_rank for e in evs if e.kind == "send"
    )
    n_recv_ev = sum(
        1 for evs in trace.events_by_rank for e in evs if e.kind == "recv"
    )
    sent = sum(s.messages_sent for s in stats)
    received = sum(s.messages_received for s in stats)
    if sent != n_send_ev:
        report.findings.append(Finding(
            "stats-mismatch",
            f"CommStats counted {sent} sends but the trace has {n_send_ev} "
            f"send events",
        ))
    if received != n_recv_ev:
        report.findings.append(Finding(
            "stats-mismatch",
            f"CommStats counted {received} receives but the trace has "
            f"{n_recv_ev} recv events",
        ))


def check_trace(trace: CommTrace, stats: Sequence[Any] | None = None) -> CommReport:
    """Run every single-trace analysis; optionally cross-check ``stats``.

    ``stats`` is the per-rank :class:`~repro.parallel.simmpi.CommStats`
    list of the same run (e.g. ``ParallelFMMResult.comm_stats``).
    """
    report = CommReport(nevents=trace.nevents(), nranks=trace.nranks)
    _check_channels(trace, report)
    _check_deadlock(trace, report)
    _check_collectives(trace, report)
    _check_clocks(trace, report)
    _check_requests(trace, report)
    if stats is not None:
        _check_stats(trace, stats, report)
    return report


def _channel_digests(trace: CommTrace) -> dict[tuple, tuple[str, ...]]:
    sends, _ = _channel_events(trace)
    return {
        chan: tuple(e.digest or "" for e in evs) for chan, evs in sends.items()
    }


def _coll_signature(trace: CommTrace) -> list[tuple]:
    return [
        [(e.coll, e.op, e.shape) for e in evs if e.kind == "coll-enter"]
        for evs in trace.events_by_rank
    ]


def compare_traces(traces: Sequence[CommTrace]) -> CommReport:
    """Cross-run determinism check over perturbed-schedule executions.

    Every trace must exhibit the same per-channel payload digest
    sequences and the same per-rank collective sequences; a difference
    means the communication pattern (not just its interleaving) depends
    on the schedule — recv-order nondeterminism made observable.
    """
    report = CommReport(
        nevents=sum(t.nevents() for t in traces),
        nranks=traces[0].nranks if traces else 0,
    )
    if len(traces) < 2:
        return report
    ref = traces[0]
    ref_digests = _channel_digests(ref)
    ref_colls = _coll_signature(ref)
    for i, other in enumerate(traces[1:], start=1):
        if other.nranks != ref.nranks:
            report.findings.append(Finding(
                "schedule-divergence",
                f"trace #{i} ran {other.nranks} ranks, reference ran "
                f"{ref.nranks}",
            ))
            continue
        digests = _channel_digests(other)
        for chan in sorted(set(ref_digests) | set(digests), key=repr):
            a, b = ref_digests.get(chan, ()), digests.get(chan, ())
            if a != b:
                report.findings.append(Finding(
                    "schedule-divergence",
                    f"trace #{i}: channel {chan!r} carried a different "
                    f"message sequence than the reference run "
                    f"({len(b)} vs {len(a)} messages)",
                ))
        if _coll_signature(other) != ref_colls:
            report.findings.append(Finding(
                "schedule-divergence",
                f"trace #{i}: collective sequence differs from the "
                f"reference run",
            ))
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """Analyze saved trace files: non-zero exit on any finding.

    Arguments are trace files, or directories which expand to their
    ``*.jsonl`` files (sorted).  A missing path, or a directory holding
    no trace files, exits 2 with a diagnostic — an empty input must
    never read as "certified".
    """
    import os

    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if args else 2
    files: list[str] = []
    for path in args:
        if os.path.isdir(path):
            found = sorted(
                os.path.join(path, f) for f in os.listdir(path)
                if f.endswith(".jsonl")
            )
            if not found:
                print(
                    f"commcheck: no *.jsonl trace files in directory "
                    f"{path!r} — nothing to certify"
                )
                return 2
            files.extend(found)
        elif os.path.exists(path):
            files.append(path)
        else:
            print(f"commcheck: trace path {path!r} does not exist")
            return 2
    traces = []
    failed = False
    for path in files:
        trace = CommTrace.from_jsonl(path)
        traces.append(trace)
        report = check_trace(trace)
        print(f"== {path}")
        print(report.summary())
        failed |= not report.ok
    if len(traces) > 1:
        report = compare_traces(traces)
        print("== cross-trace determinism")
        print(report.summary())
        failed |= not report.ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests/CLI
    sys.exit(main())
