"""The two-dimensional kernel-independent FMM.

Section 2 of the paper poses the method for ``R^d (d = 2, 3)``; the
experiments are 3D, but the algorithm is dimension-generic.  This
subpackage is the complete 2D instantiation: quadtree, square
equivalent/check surfaces, the adaptive U/V/W/X lists, and the dense
M2L evaluator, with the 2D kernels of the same PDE family:

- Laplace:          ``-log(r) / (2 pi)``
- modified Laplace: ``K_0(lam r) / (2 pi)`` (modified Bessel)
- Stokes:           ``(1/4 pi mu) (-log(r) I + r (x) r / r^2)``

Note the 2D kernels are *not* homogeneous (the logarithm shifts under
scaling), so translation operators are precomputed per level — the
machinery handles this exactly like the 3D modified Laplace case.
"""

from repro.twod.kernels import (
    Kernel2D,
    Laplace2DKernel,
    ModifiedLaplace2DKernel,
    Stokes2DKernel,
)
from repro.twod.fmm import KIFMM2D, FMM2DOptions
from repro.twod.quadtree import Quadtree, build_quadtree
from repro.twod.lists import build_lists_2d
from repro.twod.direct import direct_evaluate_2d

__all__ = [
    "Kernel2D",
    "Laplace2DKernel",
    "ModifiedLaplace2DKernel",
    "Stokes2DKernel",
    "KIFMM2D",
    "FMM2DOptions",
    "Quadtree",
    "build_quadtree",
    "build_lists_2d",
    "direct_evaluate_2d",
]
