"""Morton-curve partitioning tests."""

import numpy as np

from repro.geometry import sphere_grid_patches
from repro.parallel.partition import (
    morton_order_patches,
    partition_patches,
    partition_points,
    points_for_ranks,
)


class TestPatchPartition:
    def test_all_patches_assigned_once(self):
        patches = sphere_grid_patches(4096, grid=4)
        parts = partition_patches(patches, 5)
        seen = np.concatenate(parts)
        assert sorted(seen.tolist()) == list(range(len(patches)))

    def test_weight_balance(self):
        patches = sphere_grid_patches(8192, grid=4)
        parts = partition_patches(patches, 8)
        weights = [sum(patches[i].weight for i in p) for p in parts]
        total = sum(weights)
        assert max(weights) < 2 * total / 8

    def test_single_rank_gets_everything(self):
        patches = sphere_grid_patches(512, grid=2)
        parts = partition_patches(patches, 1)
        assert len(parts[0]) == len(patches)

    def test_morton_order_deterministic(self):
        patches = sphere_grid_patches(1024, grid=4)
        o1 = morton_order_patches(patches)
        o2 = morton_order_patches(patches)
        assert np.array_equal(o1, o2)

    def test_morton_order_is_spatially_local(self):
        """Consecutive patches along the curve are near each other."""
        patches = sphere_grid_patches(4096, grid=8)
        order = morton_order_patches(patches)
        centroids = np.array([patches[i].centroid for i in order])
        jumps = np.linalg.norm(np.diff(centroids, axis=0), axis=1)
        # median hop is one grid cell (0.25), not a random jump (~1)
        assert np.median(jumps) < 0.5


class TestPointPartition:
    def test_disjoint_cover(self, rng):
        pts = rng.random((500, 3))
        parts = partition_points(pts, 7)
        seen = np.concatenate(parts)
        assert sorted(seen.tolist()) == list(range(500))

    def test_balanced_counts(self, rng):
        parts = partition_points(rng.random((1000, 3)), 8)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        parts = partition_points(np.empty((0, 3)), 3)
        assert all(len(p) == 0 for p in parts)


class TestPointsForRanks:
    def test_index_mapping_consistent(self):
        patches = sphere_grid_patches(2048, grid=4)
        allpts = np.vstack([p.points for p in patches])
        pts, idx = points_for_ranks(patches, 4)
        for r in range(4):
            assert np.allclose(pts[r], allpts[idx[r]])
        combined = np.concatenate(idx)
        assert sorted(combined.tolist()) == list(range(allpts.shape[0]))
