"""Quadtree construction and 2D list tests."""

import numpy as np
import pytest

from repro.twod.lists import build_lists_2d
from repro.twod.quadtree import (
    anchor_to_key_2d,
    boxes_adjacent_2d,
    build_quadtree,
    encode_points_2d,
)


def _cloud(rng, n, clustered=False):
    if clustered:
        corners = np.array([[0.0, 0], [1, 0], [0, 1], [1, 1]])
        per = -(-n // 4)
        pts = np.vstack(
            [c + 0.05 * np.abs(rng.standard_normal((per, 2))) for c in corners]
        )[:n]
        return pts
    return rng.uniform(-1, 1, size=(n, 2))


class TestMorton2D:
    def test_unit_steps(self):
        assert int(anchor_to_key_2d(1, 0)) == 1
        assert int(anchor_to_key_2d(0, 1)) == 2
        assert int(anchor_to_key_2d(1, 1)) == 3

    def test_roundtrip_monotone_blocks(self, rng):
        pts = rng.random((300, 2))
        keys = encode_points_2d(pts, np.zeros(2), 1.0)
        order = np.argsort(keys)
        quad = (pts[order, 0] >= 0.5).astype(int) + 2 * (
            pts[order, 1] >= 0.5
        ).astype(int)
        assert np.all(np.diff(quad) >= 0)

    def test_outside_raises(self):
        with pytest.raises(ValueError):
            encode_points_2d(np.array([[2.0, 0.0]]), np.zeros(2), 1.0)


class TestQuadtree:
    @pytest.mark.parametrize("clustered", [False, True])
    def test_invariants(self, rng, clustered):
        pts = _cloud(rng, 600, clustered)
        tree = build_quadtree(pts, max_points=25)
        # leaves partition the points
        leaf_src = np.concatenate([tree.src_indices(i) for i in tree.leaves()])
        assert sorted(leaf_src.tolist()) == list(range(pts.shape[0]))
        for b in tree.boxes:
            if not b.is_leaf:
                kids = [tree.boxes[c] for c in b.children]
                assert sum(k.nsrc for k in kids) == b.nsrc
            if b.is_leaf:
                assert b.nsrc <= 25
            assert tree.index[(b.level, b.anchor)] == b.index

    def test_colleagues_brute_force(self, rng):
        tree = build_quadtree(_cloud(rng, 400), max_points=20)
        for b in tree.boxes:
            expected = {
                o.index
                for o in tree.boxes
                if o.level == b.level
                and o.index != b.index
                and all(abs(o.anchor[d] - b.anchor[d]) <= 1 for d in range(2))
            }
            assert set(tree.colleagues(b.index)) == expected

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((5, 2)), max_points=0)


class TestLists2D:
    def test_structure(self, rng):
        tree = build_quadtree(_cloud(rng, 500, clustered=True), max_points=15)
        lists = build_lists_2d(tree)
        for b in tree.boxes:
            i = b.index
            if b.is_leaf:
                assert i in set(lists.U[i])
            else:
                assert len(lists.U[i]) == 0
            for v in lists.V[i]:
                vb = tree.boxes[v]
                assert vb.level == b.level
                assert not boxes_adjacent_2d(vb, b)
            for w in lists.W[i]:
                wb = tree.boxes[w]
                assert wb.level > b.level
                assert not boxes_adjacent_2d(wb, b)
                assert boxes_adjacent_2d(tree.boxes[wb.parent], b)
        counts = lists.counts()
        assert counts["W"] == counts["X"]

    def test_v_list_bound(self, rng):
        tree = build_quadtree(_cloud(rng, 2000), max_points=15)
        lists = build_lists_2d(tree)
        assert max((len(v) for v in lists.V), default=0) <= 27

    def test_completeness_via_potential(self, rng):
        """End-to-end list correctness: checked in test_fmm_2d by
        comparing against direct summation; here check U symmetry."""
        tree = build_quadtree(_cloud(rng, 400, clustered=True), max_points=15)
        lists = build_lists_2d(tree)
        for i in tree.leaves():
            for j in lists.U[i]:
                assert i in set(lists.U[j])
