"""M2L backend parity — dense, fft and rsvd must agree.

The three V-list translation backends implement the same operator: the
dense per-class GEMM is the reference, the FFT path is the paper's
accelerated scheme, and the rsvd path applies randomized-SVD-compressed
factors as two stacked BLAS-3 GEMMs.  These tests pin the seam: every
backend (and the per-level ``auto`` mix) reproduces the dense potentials
on Laplace and Stokes problems across tree depths 3-5, the float32
mixed-precision mode stays within single-precision roundoff of the
float64 result, and repeated setups produce bitwise identical rsvd
potentials (the factorisation is deterministically seeded).
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.core.m2lschedule import (
    M2LSchedule,
    resolve_m2l_schedule,
    v_stats_from_lists,
    v_stats_from_plan,
)
from repro.kernels.direct import relative_error
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.stokes import StokesKernel

DEPTHS = (3, 4, 5)


@pytest.fixture(scope="module")
def points():
    """Clustered + uniform cloud whose tree depth is pinned by max_depth."""
    rng = np.random.default_rng(7)
    cluster = 0.5 + 1e-4 * rng.random((300, 3))
    return np.vstack([cluster, rng.random((300, 3))])


def _apply(kernel, points, depth, m2l, dtype="float64", plan="batched"):
    opts = FMMOptions(p=3, max_points=20, max_depth=depth, m2l=m2l,
                      dtype=dtype, plan=plan)
    fmm = KIFMM(kernel, opts).setup(points)
    assert fmm.tree.depth == depth
    rng = np.random.default_rng(13)
    phi = rng.standard_normal((points.shape[0], kernel.source_dof))
    return fmm, fmm.apply(phi)


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
@pytest.mark.parametrize("m2l", ["fft", "rsvd", "auto"])
def test_backend_parity_with_dense(kernel, points, depth, m2l):
    _, ref = _apply(kernel, points, depth, "dense")
    _, u = _apply(kernel, points, depth, m2l)
    # fft agrees to roundoff; rsvd to its compression tolerance
    # (sqrt(rcond) ~ 1e-6 relative), both far below discretisation error
    assert relative_error(u, ref) < 1e-6


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("m2l", ["dense", "rsvd"])
def test_naive_and_planned_paths_agree(points, depth, m2l):
    kernel = LaplaceKernel()
    _, batched = _apply(kernel, points, depth, m2l, plan="batched")
    _, naive = _apply(kernel, points, depth, m2l, plan="naive")
    # same operators, different GEMM shapes: roundoff-level agreement
    assert relative_error(batched, naive) < 1e-10


@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
def test_float32_mixed_precision_close_to_float64(kernel, points):
    _, u64 = _apply(kernel, points, 4, "rsvd", dtype="float64")
    _, u32 = _apply(kernel, points, 4, "rsvd", dtype="float32")
    # float32 factors/multiplies with float64 accumulation: the error is
    # single-precision roundoff through one compressed translation
    assert relative_error(u32, u64) < 1e-5
    assert relative_error(u32, u64) > 0.0  # it genuinely narrowed


def test_rsvd_bitwise_reproducible_across_setups(points):
    """Fresh operators, fresh caches: identical potentials, bit for bit.

    The compression sketch is seeded per (level, offset) class, so
    independent setups — e.g. different MPI ranks building their own
    caches — factor every translation operator identically.
    """
    kernel = LaplaceKernel()
    runs = [_apply(kernel, points, 4, "rsvd")[1] for _ in range(2)]
    assert np.array_equal(runs[0], runs[1])


def test_schedule_reporting_and_modes(points):
    fmm, _ = _apply(LaplaceKernel(), points, 4, "rsvd")
    sched = fmm.m2l_schedule
    assert isinstance(sched, M2LSchedule)
    desc = sched.describe()
    assert desc["mode"] == "rsvd"
    assert all(b == "rsvd" for b in desc["levels"].values())
    assert not sched.needs_fft
    assert fmm.statistics()["m2l_schedule"] == desc

    auto, _ = _apply(LaplaceKernel(), points, 4, "auto")
    levels = auto.m2l_schedule.describe()["levels"]
    assert set(levels) == set(desc["levels"])  # same V levels
    assert all(b in ("fft", "dense", "rsvd") for b in levels.values())


def test_auto_uses_gated_stats_consistently(points):
    """Plan-derived and list-derived V statistics agree.

    Both evaluators must resolve the identical schedule, so the stats
    the picker sees cannot depend on which path computes them.
    """
    kernel = LaplaceKernel()
    opts = FMMOptions(p=3, max_points=20, max_depth=4, m2l="auto")
    fmm = KIFMM(kernel, opts).setup(points)
    from_plan = v_stats_from_plan(fmm._plan)
    from_lists = v_stats_from_lists(fmm.tree, fmm.lists)
    assert from_plan == from_lists
    s1 = resolve_m2l_schedule("auto", "float64", stats=from_plan,
                              cache=fmm.cache, kernel=kernel)
    s2 = resolve_m2l_schedule("auto", "float64", stats=from_lists,
                              cache=fmm.cache, kernel=kernel)
    assert s1.backends == s2.backends


def test_rejects_unknown_mode_and_dtype(points):
    with pytest.raises(ValueError, match="m2l"):
        FMMOptions(m2l="svd")
    with pytest.raises(ValueError, match="dtype"):
        FMMOptions(dtype="float16")
    with pytest.raises(ValueError):
        resolve_m2l_schedule("nope", "float64", stats={}, cache=None,
                             kernel=None)


def test_rsvd_compression_actually_compresses(points):
    """The kept ranks sit well below the full operator width."""
    kernel = LaplaceKernel()
    fmm, _ = _apply(kernel, points, 4, "rsvd")
    cache = fmm.cache
    full = cache.n_surf  # square operator for a scalar kernel
    ranks = [
        cache.m2l_rsvd_rank(vl.level, offset)
        for vl in fmm._plan.v_levels
        for offset, _, _ in vl.classes
    ]
    assert ranks
    assert max(ranks) < full
    assert min(ranks) >= 1
