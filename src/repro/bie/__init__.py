"""Boundary integral equation application layer.

The paper's FMM is "used in the context of fluid-structure interaction
calculations" (Section 4, Figure 4.1): Stokes flow around rigid bodies is
formulated as a first-kind single-layer boundary integral equation, the
linear systems are solved with a Krylov method, and every Krylov
iteration's matrix-vector product is one FMM interaction evaluation.

This package provides that stack: surface discretisations, the
FMM-accelerated single-layer operator, rigid-body resistance/mobility
solves, and the sedimentation time-stepper reproducing the Figure 4.1
scenario (a sphere falling under gravity while a driven rotating body
stirs the fluid).
"""

from repro.bie.surfaces import (
    CompositeSurface,
    EllipsoidSurface,
    RigidBody,
    SphereSurface,
    propeller_surface,
    rotation_matrix,
)
from repro.bie.stokes_bie import (
    StokesSingleLayer,
    evaluate_velocity,
    solve_single_layer,
)
from repro.bie.mobility import drag_force, resistance_matrix, stokes_drag_analytic
from repro.bie.timestepper import SedimentationSimulation, SimulationFrame

__all__ = [
    "SphereSurface",
    "EllipsoidSurface",
    "CompositeSurface",
    "propeller_surface",
    "rotation_matrix",
    "evaluate_velocity",
    "RigidBody",
    "StokesSingleLayer",
    "solve_single_layer",
    "resistance_matrix",
    "drag_force",
    "stokes_drag_analytic",
    "SedimentationSimulation",
    "SimulationFrame",
]
