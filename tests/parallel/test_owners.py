"""Owner assignment tests (the Section 3.2 three-step procedure)."""

import numpy as np
import pytest

from repro.parallel.owners import assign_owners, gather_contributors
from repro.parallel.simmpi import PerRank, run_spmd


class TestAssignOwners:
    def test_sole_contributor_owns(self):
        contrib = np.array(
            [[True, False, True], [False, True, True]]
        )  # 2 ranks, 3 boxes
        owner = assign_owners(contrib)
        assert owner[0] == 0
        assert owner[1] == 1
        assert owner[2] in (0, 1)

    def test_owner_is_a_contributor(self, rng):
        contrib = rng.random((4, 50)) < 0.4
        contrib[0, contrib.sum(axis=0) == 0] = True  # no orphan boxes
        owner = assign_owners(contrib)
        for b in range(50):
            assert contrib[owner[b], b]

    def test_deterministic(self, rng):
        contrib = rng.random((3, 30)) < 0.5
        contrib[0] = True
        assert np.array_equal(assign_owners(contrib), assign_owners(contrib))

    def test_balances_load(self):
        """All-shared boxes spread across contributors."""
        contrib = np.ones((4, 100), dtype=bool)
        owner = assign_owners(contrib)
        counts = np.bincount(owner, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_orphan_box_falls_to_rank_zero(self):
        contrib = np.zeros((2, 1), dtype=bool)
        assert assign_owners(contrib)[0] == 0


class TestGatherContributors:
    def test_matrices_identical_on_all_ranks(self):
        def main(comm):
            local_src = np.array([comm.rank == 0, True, False])
            local_trg = np.array([True, comm.rank == 1, False])
            return gather_contributors(comm, local_src, local_trg)

        results = run_spmd(2, main)
        src0, trg0 = results[0]
        src1, trg1 = results[1]
        assert np.array_equal(src0, src1)
        assert np.array_equal(trg0, trg1)
        assert src0[0, 0] and not src0[1, 0]
        assert trg0[0, 0] and trg0[1, 0]
