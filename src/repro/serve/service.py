"""The micro-batching evaluation service.

A serving scenario evaluates the same persistent operator for many
independent densities arriving at unpredictable times.  Applying them
one by one runs every stage at BLAS-2 intensity and pays full
per-request amortisation cost; stacking them into multi-RHS blocks is
exactly the batched apply the evaluator provides.  The service bridges
the two: requests enqueue per operator, a per-operator batcher drains
up to ``max_batch`` requests — waiting at most ``max_delay`` seconds
after the first — and issues ONE blocked apply whose columns answer
the individual requests.

Everything is single-threaded asyncio: the apply itself runs inline on
the event loop (the repo's thread-confinement invariant bans worker
threads outside the simulated MPI), so batching wins by amortising the
per-apply overhead across the batch, not by parallelism.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels.base import Kernel

_SHUTDOWN = object()


def percentile_summary(latencies: list[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample, in the sample's units."""
    if not latencies:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


class OperatorRegistry:
    """Shared persistent operators keyed ``(kernel, level, p)``.

    One setup per geometry; every request against the same key reuses
    the operator's tree, plan and precomputed translation operators.
    Keys collide only for identical (kernel name, tree depth, surface
    order) triples — registering a second geometry under an existing
    key replaces the operator (the key identifies the operator class a
    request wants, not a particular point set).
    """

    def __init__(self) -> None:
        self._ops: dict[tuple[str, int, int], KIFMM] = {}

    def register(
        self,
        kernel: Kernel,
        points: np.ndarray,
        options: FMMOptions | None = None,
    ) -> tuple[str, int, int]:
        opts = options or FMMOptions()
        op = KIFMM(kernel, opts).setup(np.asarray(points, dtype=np.float64))
        key = (kernel.name, op.tree.depth, opts.p)
        self._ops[key] = op
        return key

    def get(self, key: tuple[str, int, int]) -> KIFMM:
        try:
            return self._ops[key]
        except KeyError:
            raise KeyError(
                f"no operator registered under {key!r}; known keys: "
                f"{sorted(self._ops)}"
            ) from None

    def keys(self) -> list[tuple[str, int, int]]:
        return sorted(self._ops)


@dataclass
class ServiceStats:
    """Per-service counters and the raw latency sample."""

    requests: int = 0
    completed: int = 0
    dropped: int = 0
    batches: int = 0
    batched_requests: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        return percentile_summary(self.latencies)


class EvaluationService:
    """Asyncio front door: single-density requests, blocked applies.

    Parameters
    ----------
    registry:
        The shared operators requests address by key.
    max_batch:
        Largest number of requests folded into one multi-RHS apply.
    max_delay:
        Seconds the batcher waits for followers after the first request
        of a batch (the latency the first requester donates to let the
        batch fill).
    """

    def __init__(
        self,
        registry: OperatorRegistry,
        max_batch: int = 8,
        max_delay: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0.0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = ServiceStats()
        self._queues: dict[tuple[str, int, int], asyncio.Queue] = {}
        self._workers: dict[tuple[str, int, int], asyncio.Task] = {}
        self._running = False

    async def start(self) -> "EvaluationService":
        """Spawn one batcher task per registered operator."""
        if self._running:
            return self
        self._running = True
        for key in self.registry.keys():
            queue: asyncio.Queue = asyncio.Queue()
            self._queues[key] = queue
            self._workers[key] = asyncio.ensure_future(
                self._batcher(key, queue)
            )
        return self

    async def stop(self) -> None:
        """Drain the queues and retire the batcher tasks."""
        if not self._running:
            return
        self._running = False
        for queue in self._queues.values():
            await queue.put(_SHUTDOWN)
        for task in self._workers.values():
            await task
        self._queues.clear()
        self._workers.clear()

    async def evaluate(
        self, key: tuple[str, int, int], density: np.ndarray
    ) -> np.ndarray:
        """Evaluate one density; resolves when its batch completes."""
        if not self._running:
            raise RuntimeError("EvaluationService.evaluate before start()")
        queue = self._queues[key]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.stats.requests += 1
        t0 = loop.time()
        await queue.put((np.asarray(density, dtype=np.float64), future, t0))
        result = await future
        self.stats.latencies.append(loop.time() - t0)
        self.stats.completed += 1
        return result

    async def _collect(
        self, queue: asyncio.Queue, first
    ) -> tuple[list, bool]:
        """One batch: the first request plus followers within the policy."""
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                if queue.empty():
                    break
                item = queue.get_nowait()
            else:
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _apply_batch(self, key: tuple[str, int, int], batch: list) -> None:
        """One blocked apply; its columns resolve the batch's futures."""
        op = self.registry.get(key)
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        dof = op.kernel.source_dof
        n = op.tree.sources.shape[0]
        try:
            if len(batch) == 1:
                density, future, _ = batch[0]
                out = op.apply(density.reshape(n, dof))
                if not future.cancelled():
                    future.set_result(out)
                return
            block = np.stack(
                [d.reshape(n, dof) for d, _, _ in batch], axis=2
            )
            out = op.apply(block)
            for r, (_, future, _) in enumerate(batch):
                if not future.cancelled():
                    future.set_result(np.ascontiguousarray(out[:, :, r]))
        except Exception as exc:  # surface the failure on every waiter
            self.stats.dropped += len(batch)
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)

    async def _batcher(
        self, key: tuple[str, int, int], queue: asyncio.Queue
    ) -> None:
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                return
            batch, shutdown = await self._collect(queue, first)
            self._apply_batch(key, batch)
            if shutdown:
                return
            # With max_delay=0.0 and a non-empty queue, neither
            # _collect (get_nowait) nor queue.get (items ready) ever
            # suspends, so without an explicit yield this worker would
            # monopolise the event loop: resolved futures' waiters and
            # new producers would starve until the queue drained.
            await asyncio.sleep(0)
