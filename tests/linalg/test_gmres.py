"""Restarted GMRES tests."""

import numpy as np
import pytest

from repro.linalg import gmres


def _mv(A):
    return lambda x: A @ x


class TestConvergence:
    def test_identity(self, rng):
        b = rng.standard_normal(10)
        res = gmres(lambda x: x, b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, b)
        assert res.iterations <= 2

    def test_spd_system(self, rng):
        A = rng.standard_normal((20, 20))
        A = A @ A.T + 20 * np.eye(20)
        b = rng.standard_normal(20)
        res = gmres(_mv(A), b, tol=1e-10)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-7)

    def test_nonsymmetric_system(self, rng):
        A = rng.standard_normal((15, 15)) + 15 * np.eye(15)
        b = rng.standard_normal(15)
        res = gmres(_mv(A), b, tol=1e-10)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-7)

    def test_exact_in_n_iterations(self, rng):
        """Full GMRES converges in at most n steps."""
        n = 12
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        res = gmres(_mv(A), rng.standard_normal(n), tol=1e-12, restart=n)
        assert res.converged
        assert res.iterations <= n

    def test_restart_still_converges(self, rng):
        A = rng.standard_normal((30, 30))
        A = A @ A.T + 30 * np.eye(30)
        b = rng.standard_normal(30)
        res = gmres(_mv(A), b, tol=1e-8, restart=5, maxiter=300)
        assert res.converged

    def test_initial_guess(self, rng):
        A = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        b = rng.standard_normal(10)
        x_exact = np.linalg.solve(A, b)
        res = gmres(_mv(A), b, x0=x_exact, tol=1e-10)
        assert res.converged
        assert res.iterations == 0


class TestEdgeCases:
    def test_zero_rhs(self):
        res = gmres(lambda x: 2 * x, np.zeros(5))
        assert res.converged
        assert np.all(res.x == 0.0)

    def test_maxiter_reports_failure(self, rng):
        # a rotation-like, badly non-normal system with tiny budget
        A = np.triu(np.ones((40, 40))) - 0.99 * np.eye(40)
        res = gmres(_mv(A), rng.standard_normal(40), tol=1e-14, maxiter=3)
        assert not res.converged
        assert res.iterations <= 3
        assert res.residual > 0

    def test_history_tracks_residuals(self, rng):
        A = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        res = gmres(_mv(A), rng.standard_normal(10), tol=1e-10)
        assert len(res.history) == res.iterations
        # within one restart cycle the residual never increases
        assert all(b <= a * (1 + 1e-12) for a, b in zip(res.history, res.history[1:]))

    def test_matrix_free_counts_applications(self, rng):
        calls = []
        A = rng.standard_normal((8, 8)) + 8 * np.eye(8)

        def matvec(x):
            calls.append(1)
            return A @ x

        gmres(matvec, rng.standard_normal(8), tol=1e-10)
        assert len(calls) >= 1


class TestBlockGMRES:
    def test_block_matches_column_solves(self, rng):
        from repro.linalg import gmres_block

        A = rng.standard_normal((20, 20)) + 10 * np.eye(20)
        B = rng.standard_normal((20, 4))
        res = gmres_block(_mv(A), B, tol=1e-10)
        assert res.converged
        assert res.x.shape == (20, 4)
        assert np.all(res.residuals <= 1e-10)
        for c in range(4):
            single = gmres(_mv(A), B[:, c], tol=1e-10)
            assert np.linalg.norm(res.x[:, c] - single.x) < 1e-8

    def test_blocked_matvecs_amortize(self, rng):
        """One blocked apply per Arnoldi step, not one per column."""
        from repro.linalg import gmres_block

        A = rng.standard_normal((30, 30)) + 15 * np.eye(30)
        B = rng.standard_normal((30, 6))
        blocked_calls = []

        def matvec(x):
            blocked_calls.append(1)
            return A @ x

        res = gmres_block(matvec, B, tol=1e-10)
        assert res.converged
        assert res.matvecs == len(blocked_calls)
        single_calls = []

        def matvec1(x):
            single_calls.append(1)
            return A @ x

        for c in range(6):
            gmres(matvec1, B[:, c], tol=1e-10)
        assert len(blocked_calls) < len(single_calls)

    def test_single_column_vector_rhs(self, rng):
        from repro.linalg import gmres_block

        A = rng.standard_normal((12, 12)) + 8 * np.eye(12)
        b = rng.standard_normal(12)
        res = gmres_block(_mv(A), b, tol=1e-10)
        assert res.x.shape == (12, 1)
        assert res.converged

    def test_zero_column_stays_zero(self, rng):
        from repro.linalg import gmres_block

        A = rng.standard_normal((10, 10)) + 8 * np.eye(10)
        B = np.zeros((10, 2))
        B[:, 1] = rng.standard_normal(10)
        res = gmres_block(_mv(A), B, tol=1e-10)
        assert res.converged
        assert np.all(res.x[:, 0] == 0.0)

    def test_maxiter_reports_failure(self, rng):
        from repro.linalg import gmres_block

        A = np.triu(np.ones((40, 40))) - 0.99 * np.eye(40)
        res = gmres_block(_mv(A), rng.standard_normal((40, 3)),
                          tol=1e-14, maxiter=3)
        assert not res.converged
        assert np.all(res.residuals > 0)

    def test_restart_cycles_converge(self, rng):
        from repro.linalg import gmres_block

        A = rng.standard_normal((40, 40)) + 12 * np.eye(40)
        B = rng.standard_normal((40, 3))
        res = gmres_block(_mv(A), B, tol=1e-9, restart=5)
        assert res.converged
