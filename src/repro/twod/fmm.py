"""The 2D kernel-independent FMM: operators, evaluator, public API.

Same structure as the 3D core, with two simplifications appropriate to
2D: the kernels are inhomogeneous (logarithms), so every operator is
cached per level anyway; and the M2L translations use the dense
per-offset operators (27 offsets per level, each a small
``(4p-4) x (4p-4)`` matrix — the FFT route buys little in 2D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.pinv import regularized_pinv
from repro.twod.kernels import Kernel2D
from repro.twod.lists import InteractionLists2D, build_lists_2d
from repro.twod.quadtree import Quadtree, build_quadtree
from repro.twod.surfaces import (
    INNER_RADIUS_2D,
    OUTER_RADIUS_2D,
    n_surface_points_2d,
    scaled_surface_2d,
)
from repro.util.flops import FlopCounter
from repro.util.timing import PhaseTimer


@dataclass
class FMM2DOptions:
    """Tuning knobs of the 2D method (see :class:`FMMOptions`)."""

    p: int = 8
    max_points: int = 40
    inner: float = INNER_RADIUS_2D
    outer: float = OUTER_RADIUS_2D
    rcond: float = 1e-12
    max_depth: int = 16

    def __post_init__(self) -> None:
        if self.p < 2:
            raise ValueError(f"p must be >= 2, got {self.p}")
        if self.max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {self.max_points}")
        if not 1.0 < self.inner < self.outer < 3.0:
            raise ValueError(
                f"need 1 < inner < outer < 3, got {self.inner}, {self.outer}"
            )


class OperatorCache2D:
    """Per-level 2D translation operators (always per level: log kernels)."""

    def __init__(self, kernel: Kernel2D, p: int, root_side: float,
                 inner: float, outer: float, rcond: float) -> None:
        self.kernel = kernel
        self.p = p
        self.root_side = float(root_side)
        self.inner = float(inner)
        self.outer = float(outer)
        self.rcond = float(rcond)
        self.n_surf = n_surface_points_2d(p)
        self._uc2ue: dict[int, np.ndarray] = {}
        self._dc2de: dict[int, np.ndarray] = {}
        self._m2m: dict[tuple[int, int], np.ndarray] = {}
        self._l2l: dict[tuple[int, int], np.ndarray] = {}
        self._m2l: dict[tuple[int, tuple[int, int]], np.ndarray] = {}

    def half_width(self, level: int) -> float:
        return self.root_side / (1 << level) / 2.0

    def up_equiv(self, center, level):
        return scaled_surface_2d(self.p, center, self.half_width(level), self.inner)

    def up_check(self, center, level):
        return scaled_surface_2d(self.p, center, self.half_width(level), self.outer)

    def down_equiv(self, center, level):
        return scaled_surface_2d(self.p, center, self.half_width(level), self.outer)

    def down_check(self, center, level):
        return scaled_surface_2d(self.p, center, self.half_width(level), self.inner)

    def uc2ue(self, level: int) -> np.ndarray:
        if level not in self._uc2ue:
            z = np.zeros(2)
            K = self.kernel.matrix(self.up_check(z, level), self.up_equiv(z, level))
            self._uc2ue[level] = regularized_pinv(K, self.rcond)
        return self._uc2ue[level]

    def dc2de(self, level: int) -> np.ndarray:
        if level not in self._dc2de:
            z = np.zeros(2)
            K = self.kernel.matrix(
                self.down_check(z, level), self.down_equiv(z, level)
            )
            self._dc2de[level] = regularized_pinv(K, self.rcond)
        return self._dc2de[level]

    def m2m_check(self, child_level: int, quadrant: int) -> np.ndarray:
        key = (child_level, quadrant)
        if key not in self._m2m:
            parent_r = self.half_width(child_level - 1)
            off = np.array(
                [0.5 if quadrant & 1 else -0.5, 0.5 if quadrant & 2 else -0.5]
            ) * parent_r
            self._m2m[key] = self.kernel.matrix(
                self.up_check(np.zeros(2), child_level - 1),
                self.up_equiv(off, child_level),
            )
        return self._m2m[key]

    def l2l_check(self, child_level: int, quadrant: int) -> np.ndarray:
        key = (child_level, quadrant)
        if key not in self._l2l:
            parent_r = self.half_width(child_level - 1)
            off = np.array(
                [0.5 if quadrant & 1 else -0.5, 0.5 if quadrant & 2 else -0.5]
            ) * parent_r
            self._l2l[key] = self.kernel.matrix(
                self.down_check(off, child_level),
                self.down_equiv(np.zeros(2), child_level - 1),
            )
        return self._l2l[key]

    def m2l_check(self, level: int, offset: tuple[int, int]) -> np.ndarray:
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        key = (level, tuple(int(o) for o in offset))
        if key not in self._m2l:
            side = 2.0 * self.half_width(level)
            delta = np.asarray(offset, dtype=np.float64) * side
            self._m2l[key] = self.kernel.matrix(
                self.down_check(delta, level), self.up_equiv(np.zeros(2), level)
            )
        return self._m2l[key]


class KIFMM2D:
    """Public 2D evaluator (API parallel to :class:`repro.KIFMM`)."""

    def __init__(self, kernel: Kernel2D, options: FMM2DOptions | None = None):
        self.kernel = kernel
        self.options = options or FMM2DOptions()
        self.tree: Quadtree | None = None
        self.lists: InteractionLists2D | None = None
        self.cache: OperatorCache2D | None = None
        self.flops = FlopCounter()
        self.timer = PhaseTimer()

    def setup(self, sources: np.ndarray, targets: np.ndarray | None = None):
        opts = self.options
        with self.timer.phase("tree"):
            self.tree = build_quadtree(
                sources, targets, max_points=opts.max_points,
                max_depth=opts.max_depth,
            )
            self.lists = build_lists_2d(self.tree)
        self.cache = OperatorCache2D(
            self.kernel, opts.p, self.tree.root_side,
            opts.inner, opts.outer, opts.rcond,
        )
        return self

    def apply(self, density: np.ndarray) -> np.ndarray:
        """One interaction evaluation in the plane."""
        if self.tree is None:
            raise RuntimeError("call setup() before apply()")
        tree, lists, cache, kernel = self.tree, self.lists, self.cache, self.kernel
        md, qd = kernel.source_dof, kernel.target_dof
        ns, nt = tree.sources.shape[0], tree.targets.shape[0]
        phi = np.asarray(density, dtype=np.float64).reshape(ns, md)
        n_surf = cache.n_surf
        nb = tree.nboxes
        boxes = tree.boxes

        ue = np.zeros((nb, n_surf * md))
        has_ue = np.zeros(nb, dtype=bool)
        with self.timer.phase("up"):
            for level in range(tree.depth, -1, -1):
                for bi in tree.levels[level]:
                    b = boxes[bi]
                    if b.nsrc == 0:
                        continue
                    center = tree.center(bi)
                    if b.is_leaf:
                        K = kernel.matrix(
                            cache.up_check(center, level), tree.src_points(bi)
                        )
                        check = K @ phi[tree.src_indices(bi)].reshape(-1)
                    else:
                        check = np.zeros(n_surf * qd)
                        for ci in b.children:
                            if not has_ue[ci]:
                                continue
                            child = boxes[ci]
                            quad = (child.anchor[0] & 1) | (
                                (child.anchor[1] & 1) << 1
                            )
                            check += cache.m2m_check(child.level, quad) @ ue[ci]
                    ue[bi] = cache.uc2ue(level) @ check
                    has_ue[bi] = True

        dc = np.zeros((nb, n_surf * qd))
        has_dc = np.zeros(nb, dtype=bool)
        de = np.zeros((nb, n_surf * md))
        has_de = np.zeros(nb, dtype=bool)
        potential = np.zeros((nt, qd))
        with self.timer.phase("down"):
            for level in range(1, tree.depth + 1):
                for bi in tree.levels[level]:
                    b = boxes[bi]
                    if b.ntrg == 0:
                        continue
                    center = tree.center(bi)
                    if has_de[b.parent]:
                        quad = (b.anchor[0] & 1) | ((b.anchor[1] & 1) << 1)
                        dc[bi] += cache.l2l_check(level, quad) @ de[b.parent]
                        has_dc[bi] = True
                    for ai in self.lists.V[bi]:
                        if not has_ue[ai]:
                            continue
                        a = boxes[ai]
                        offset = (
                            b.anchor[0] - a.anchor[0],
                            b.anchor[1] - a.anchor[1],
                        )
                        dc[bi] += cache.m2l_check(level, offset) @ ue[ai]
                        has_dc[bi] = True
                    if len(lists.X[bi]):
                        check_pts = cache.down_check(center, level)
                        for ai in lists.X[bi]:
                            a = boxes[ai]
                            if a.nsrc == 0:
                                continue
                            K = kernel.matrix(check_pts, tree.src_points(ai))
                            dc[bi] += K @ phi[tree.src_indices(ai)].reshape(-1)
                            has_dc[bi] = True
                    if has_dc[bi]:
                        de[bi] = cache.dc2de(level) @ dc[bi]
                        has_de[bi] = True
                    if not b.is_leaf:
                        continue
                    trg_pts = tree.trg_points(bi)
                    trg_idx = tree.trg_indices(bi)
                    local = np.zeros(b.ntrg * qd)
                    if has_de[bi]:
                        K = kernel.matrix(trg_pts, cache.down_equiv(center, level))
                        local += K @ de[bi]
                    for ai in lists.U[bi]:
                        a = boxes[ai]
                        if a.nsrc == 0:
                            continue
                        K = kernel.matrix(trg_pts, tree.src_points(ai))
                        local += K @ phi[tree.src_indices(ai)].reshape(-1)
                    for ai in lists.W[bi]:
                        if not has_ue[ai]:
                            continue
                        a = boxes[ai]
                        K = kernel.matrix(
                            trg_pts, cache.up_equiv(tree.center(ai), a.level)
                        )
                        local += K @ ue[ai]
                    potential[trg_idx] += local.reshape(b.ntrg, qd)

            root = boxes[0]
            if root.is_leaf and root.ntrg > 0 and root.nsrc > 0:
                K = kernel.matrix(tree.trg_points(0), tree.src_points(0))
                potential[tree.trg_indices(0)] += (
                    K @ phi[tree.src_indices(0)].reshape(-1)
                ).reshape(root.ntrg, qd)
        return potential
