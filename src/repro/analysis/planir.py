"""Plan IR: compiled execution plans as a static dataflow graph.

The planned evaluators (:func:`repro.core.evaluator.evaluate_planned`
and :meth:`repro.parallel.pfmm.RankFMM.apply`) run a *fixed* sequence of
batched stages over precompiled index arrays — the program is data, so
it can be verified without being run.  This module extracts that
program: every stage of an :class:`~repro.core.plan.ExecutionPlan` (and,
for a rank of the parallel algorithm, every communication step of its
:class:`~repro.parallel.exchange.ApplyExchange`) becomes a
:class:`StageNode` that records which buffer *regions* it reads, writes
and releases, the dtype of the values it produces, and the exact flop
count the evaluator's :class:`~repro.util.flops.FlopCounter` would
charge for it.

Regions are level-granular slices of the apply-time buffers, named
``family@level`` (``"ue@3"``, ``"dc@2"``) or, on the parallel path,
``family:split`` for the exchange-defined parts (``"ue:own"``,
``"ue:ghost"``, ``"ext_phi:ghost"``); ``"phi"`` and ``"pot"`` are the
sorted input densities and output potentials.  Communication appears as
explicit ``post``/``relay``/``wait`` nodes, so the overlap schedule —
which reads may run before the scatter wait — is part of the graph.

The checks themselves live in :mod:`repro.analysis.plancheck`; this
module only defines the IR and the two extractors, plus
:func:`rebuild_deps`, which recomputes the dependency edges from node
order and the read/write sets (used after seeding defects for the
verifier's self-tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluator import _rsvd_pair_flops, resolve_kernels
from repro.core.m2lschedule import M2LSchedule, as_schedule, v_stats_from_plan
from repro.core.plan import ExecutionPlan
from repro.core.precompute import OperatorCache
from repro.kernels.base import Kernel

#: Flop phases compared against the performance model (the evaluator's
#: FlopCounter phases; ``comm``/``io`` nodes carry no flops).
FLOP_PHASES = ("up", "down_u", "down_v", "down_w", "down_x", "eval")

#: Node kinds whose writes *define* data in program order.  Regions
#: written by communication nodes (``relay``/``wait``) are defined by
#: the exchange instead — ordering reads after them is the schedule
#: check's job, not the dataflow check's.
COMPUTE_KINDS = ("input", "compute")
COMM_KINDS = ("post", "relay", "wait")


@dataclass(frozen=True)
class BufferSpec:
    """Shape and dtype of one buffer region (rows, row width)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass
class StageNode:
    """One stage instance of a compiled plan.

    ``deps`` are indices of nodes this one depends on — reads-from and
    accumulation-order edges derived from the region sets, plus the
    ``post → relay/wait`` chain of each exchange kind.  ``dtype`` is the
    dtype of the values the node writes; a node whose output is of lower
    precision than its inputs must set ``narrowing`` explicitly (the
    static half of the mixed-precision guardrail — no plan stage does
    today, so any narrowing is a certification failure).
    """

    index: int
    name: str
    phase: str
    kind: str  # "input" | "compute" | "output" | "post" | "relay" | "wait"
    stage: str | None  # registered plan-stage class name, if any
    reads: tuple[str, ...]
    writes: tuple[str, ...]
    releases: tuple[str, ...]
    flops: float
    dtype: str
    narrowing: bool = False
    deps: tuple[int, ...] = ()


@dataclass
class PlanIR:
    """The extracted dataflow program of one compiled plan."""

    buffers: dict[str, BufferSpec]
    nodes: list[StageNode]
    #: Regions legitimately written but never read (the output potential
    #: and, sequentially, the root upward density nothing consumes).
    live_out: frozenset[str]
    meta: dict = field(default_factory=dict)

    def flop_totals(self) -> dict[str, float]:
        totals = {p: 0.0 for p in FLOP_PHASES}
        for n in self.nodes:
            if n.phase in totals:
                totals[n.phase] += n.flops
        return totals


def rebuild_deps(ir: PlanIR) -> PlanIR:
    """Recompute ``index``/``deps`` of every node from the node order.

    Dependency edges are reads-from (every prior writer of a read
    region), accumulation order (every prior writer of a written
    region), and the communication chain (``relay:K``/``wait:K`` depend
    on ``post:K``).  Used at extraction time and again after a seeded
    reordering — a node moved *before* a region's writer genuinely loses
    the edge, which is exactly what the schedule check then reports.
    """
    writers: dict[str, list[int]] = {}
    posts: dict[str, int] = {}
    for idx, n in enumerate(ir.nodes):
        n.index = idx
        deps: set[int] = set()
        for r in n.reads:
            deps.update(writers.get(r, ()))
        for w in n.writes:
            deps.update(writers.get(w, ()))
        if n.kind == "post":
            posts[n.name.split(":", 1)[1]] = idx
        elif n.kind in ("relay", "wait"):
            kind_key = n.name.split(":", 1)[1]
            if kind_key in posts:
                deps.add(posts[kind_key])
        n.deps = tuple(sorted(deps))
        for w in n.writes:
            writers.setdefault(w, []).append(idx)
    return ir


def region_family(region: str) -> str:
    """Base buffer family of a region (``"ue:own"``/``"ue@3"`` → ``"ue"``)."""
    return region.split("@", 1)[0].split(":", 1)[0]


class _IRBuilder:
    """Accumulates buffers and nodes; deps are rebuilt at the end."""

    def __init__(self, meta: dict) -> None:
        self.buffers: dict[str, BufferSpec] = {}
        self.nodes: list[StageNode] = []
        self.live_out: set[str] = set()
        self.meta = meta

    def buffer(self, name: str, shape: tuple[int, ...], dtype: str) -> None:
        self.buffers[name] = BufferSpec(
            name=name, shape=tuple(int(s) for s in shape), dtype=dtype
        )

    def node(
        self,
        name: str,
        *,
        phase: str,
        kind: str = "compute",
        stage: str | None = None,
        reads: tuple[str, ...] = (),
        writes: tuple[str, ...] = (),
        releases: tuple[str, ...] = (),
        flops: float = 0.0,
        dtype: str = "float64",
        narrowing: bool = False,
    ) -> StageNode:
        node = StageNode(
            index=len(self.nodes), name=name, phase=phase, kind=kind,
            stage=stage, reads=tuple(reads), writes=tuple(writes),
            releases=tuple(releases), flops=float(flops), dtype=dtype,
            narrowing=narrowing,
        )
        self.nodes.append(node)
        return node

    def build(self) -> PlanIR:
        return rebuild_deps(
            PlanIR(
                buffers=self.buffers, nodes=self.nodes,
                live_out=frozenset(self.live_out), meta=self.meta,
            )
        )


def _fft_constants(p: int, n_surf: int, md: int, qd: int):
    """The FFT M2L flop formulas (mirrors ``FFTM2L.flops_per_*``)."""
    grid = 2 * p
    nfreq = grid * grid * (grid // 2 + 1)
    pair = 8.0 * qd * md * nfreq

    def per_fft(dof: int) -> float:
        return 4.0 * nfreq * n_surf * dof

    return nfreq, pair, per_fft


def _emit_up_levels(
    b: _IRBuilder, plan: ExecutionPlan, *, n_surf, qd, md, mv2, nrhs,
    src_fpp, region, stage="UpLevel",
) -> None:
    """Upward-pass nodes, shared verbatim by both extractors.

    ``region(level)`` names the per-level upward-density region —
    ``"ue@L"`` sequentially, ``"ue:partial@L"`` on a rank (where the
    partial densities are consumed by the exchange, not by V/W).
    """
    for ul in plan.up_levels:
        lvl = ul.level
        chk = f"check@{lvl}"
        b.buffer(chk, (ul.boxes.size, n_surf * qd), "float64")
        b.buffer(region(lvl), (ul.boxes.size, n_surf * md), "float64")
        if ul.s2m_rows.size:
            b.node(
                f"s2m@{lvl}", phase="up", stage=stage,
                reads=("phi",), writes=(chk,),
                flops=n_surf * int(ul.s2m_seg[-1]) * nrhs * src_fpp,
            )
        if ul.m2m_groups:
            nkids = sum(kids.size for _, kids, _ in ul.m2m_groups)
            b.node(
                f"m2m@{lvl}", phase="up", stage=stage,
                reads=(region(lvl + 1),), writes=(chk,),
                flops=nkids * nrhs * mv2,
            )
        b.node(
            f"uc2ue@{lvl}", phase="up", stage=stage,
            reads=(chk,), writes=(region(lvl),), releases=(chk,),
            flops=ul.boxes.size * nrhs * mv2,
        )


def _emit_down_level(
    b: _IRBuilder, dl, *, n_surf, mv2, nrhs, src_fpp, trg_fpp, x_reads,
) -> None:
    """One DownLevel's l2l/x/dc2de/l2t nodes (both extractors)."""
    lvl = dl.level
    if dl.l2l_groups:
        nkids = sum(kids.size for _, kids, _ in dl.l2l_groups)
        b.node(
            f"l2l@{lvl}", phase="eval", stage="DownLevel",
            reads=(f"de@{lvl - 1}",), writes=(f"dc@{lvl}",),
            flops=nkids * nrhs * mv2,
        )
    if dl.x_boxes.size:
        b.node(
            f"x@{lvl}", phase="down_x", stage="DownLevel",
            reads=x_reads, writes=(f"dc@{lvl}",),
            flops=n_surf * int(dl.x_seg[-1]) * nrhs * src_fpp,
        )
    if dl.dc_boxes.size:
        b.node(
            f"dc2de@{lvl}", phase="eval", stage="DownLevel",
            reads=(f"dc@{lvl}",), writes=(f"de@{lvl}",),
            flops=dl.dc_boxes.size * nrhs * mv2,
        )
    if dl.l2t_boxes.size:
        b.node(
            f"l2t@{lvl}", phase="eval", stage="DownLevel",
            reads=(f"de@{lvl}",), writes=("pot",),
            flops=int(dl.l2t_seg[-1]) * n_surf * nrhs * trg_fpp,
        )


def _near_pairs(blocks) -> int:
    """Total (target point × partner) count of a near-field block set."""
    if blocks.boxes.size == 0:
        return 0
    return int(
        ((blocks.trg_stop - blocks.trg_start) * np.diff(blocks.seg)).sum()
    )


def _declare_levelwise(
    b: _IRBuilder, plan: ExecutionPlan, *, n_surf, qd, md
) -> None:
    """Declare the per-level dc/de regions of the downward buffers."""
    counts = np.bincount(plan.levels, minlength=plan.depth + 1)
    levels = {dl.level for dl in plan.down_levels}
    levels |= {vl.level for vl in plan.v_levels}
    levels |= {dl.level - 1 for dl in plan.down_levels if dl.l2l_groups}
    for lvl in sorted(levels):
        b.buffer(f"dc@{lvl}", (int(counts[lvl]), n_surf * qd), "float64")
        b.buffer(f"de@{lvl}", (int(counts[lvl]), n_surf * md), "float64")


def extract_plan_ir(
    plan: ExecutionPlan,
    kernel: Kernel,
    cache: OperatorCache,
    *,
    m2l_mode: str | M2LSchedule = "fft",
    nrhs: int = 1,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
) -> PlanIR:
    """The dataflow IR of one sequential execution plan.

    Mirrors the stage order, buffer lifecycle and flop accounting of
    :func:`repro.core.evaluator.evaluate_planned` exactly — the per-phase
    flop totals of the returned IR are bit-identical to the counter of a
    real apply (asserted by ``tests/analysis/test_plancheck.py``).
    ``m2l_mode`` accepts a mode string or a resolved
    :class:`~repro.core.m2lschedule.M2LSchedule`; rsvd-scheduled levels
    emit ``RsvdLevel`` nodes whose dtype records the factor precision,
    with ``narrowing=True`` for the declared float32 mixed-precision
    mode (accumulation stays float64, so the ``dc`` buffers keep their
    dtype).
    """
    sched = as_schedule(
        m2l_mode, stats=v_stats_from_plan(plan), cache=cache, kernel=kernel
    )
    src_k, trg_k, dir_k = resolve_kernels(
        kernel, source_kernel, target_kernel, direct_kernel
    )
    n_surf = cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    sdof, out_dof = src_k.source_dof, trg_k.target_dof
    ns = int(plan.sources_sorted.shape[0])
    nt = int(plan.targets_sorted.shape[0])
    mv2 = 2.0 * (n_surf * md) * (n_surf * qd)
    _, fft_pair, per_fft = _fft_constants(cache.p, n_surf, md, qd)

    b = _IRBuilder(
        meta={
            "mode": "sequential", "kernel": type(kernel).__name__,
            "p": cache.p, "depth": plan.depth, "m2l": sched.mode,
            "m2l_schedule": sched.describe(),
            "nrhs": nrhs, "n_surf": n_surf, "md": md, "qd": qd,
        }
    )
    b.buffer("phi", (ns, sdof), "float64")
    b.buffer("pot", (nt, out_dof), "float64")
    b.live_out.add("pot")
    b.node("input", phase="io", kind="input", writes=("phi",))

    ue_region = "ue@{}".format
    _emit_up_levels(
        b, plan, n_surf=n_surf, qd=qd, md=md, mv2=mv2, nrhs=nrhs,
        src_fpp=src_k.flops_per_pair, region=lambda lvl: ue_region(lvl),
    )
    if plan.up_levels:
        # The root-level upward density has no consumer (no V/W partners
        # exist at the tree top) — it is computed-but-dead by design.
        b.live_out.add(ue_region(min(ul.level for ul in plan.up_levels)))

    _declare_levelwise(b, plan, n_surf=n_surf, qd=qd, md=md)
    for vl in plan.v_levels:
        lvl = vl.level
        nsb, ntb = vl.src_boxes.size, vl.trg_boxes.size
        backend = sched.backend(lvl)
        if backend == "fft":
            vhat = f"vhat@{lvl}"
            nfreq, _, _ = _fft_constants(cache.p, n_surf, md, qd)
            b.buffer(vhat, (nsb * md + ntb * qd, nfreq), "complex128")
            b.node(
                f"vfwd@{lvl}", phase="down_v", stage="VLevel",
                reads=(ue_region(lvl),), writes=(vhat,),
                dtype="complex128", flops=nsb * nrhs * per_fft(md),
            )
            b.node(
                f"vhad@{lvl}", phase="down_v", stage="VLevel",
                reads=(vhat,), writes=(vhat,), dtype="complex128",
                flops=vl.npairs * nrhs * fft_pair,
            )
            b.node(
                f"vinv@{lvl}", phase="down_v", stage="VLevel",
                reads=(vhat,), writes=(f"dc@{lvl}",), releases=(vhat,),
                flops=ntb * nrhs * per_fft(qd),
            )
        elif backend == "dense":
            b.node(
                f"v@{lvl}", phase="down_v", stage="VLevel",
                reads=(ue_region(lvl),), writes=(f"dc@{lvl}",),
                flops=vl.npairs * nrhs * mv2,
            )
        else:
            # rsvd: the per-pair cost is the offset class's numerical
            # rank, so the node sums class by class, mirroring the
            # evaluator's per-class flop adds term for term.
            rflops = sum(
                len(src_pos) * nrhs
                * _rsvd_pair_flops(
                    cache.m2l_rsvd_rank(lvl, offset), n_surf, md, qd
                )
                for offset, src_pos, _ in vl.classes
            )
            b.node(
                f"v@{lvl}", phase="down_v", stage="RsvdLevel",
                reads=(ue_region(lvl),), writes=(f"dc@{lvl}",),
                dtype="float32" if sched.dtype == "float32" else "float64",
                narrowing=sched.dtype == "float32",
                flops=rflops,
            )

    for dl in plan.down_levels:
        _emit_down_level(
            b, dl, n_surf=n_surf, mv2=mv2, nrhs=nrhs,
            src_fpp=src_k.flops_per_pair, trg_fpp=trg_k.flops_per_pair,
            x_reads=("phi",),
        )

    if plan.u_boxes.size:
        u_pairs = int(
            ((plan.u_trg_stop - plan.u_trg_start) * np.diff(plan.u_seg)).sum()
        )
        b.node(
            "near_u", phase="down_u", stage="NearBlocks",
            reads=("phi",), writes=("pot",),
            flops=u_pairs * nrhs * dir_k.flops_per_pair,
        )
    if plan.w_boxes.size:
        w_pairs = int(
            ((plan.w_trg_stop - plan.w_trg_start) * np.diff(plan.w_seg)).sum()
        )
        w_levels = sorted({int(lv) for lv in plan.levels[plan.w_idx]})
        b.node(
            "near_w", phase="down_w", stage="NearBlocks",
            reads=tuple(ue_region(lv) for lv in w_levels), writes=("pot",),
            flops=n_surf * w_pairs * nrhs * trg_k.flops_per_pair,
        )
    b.node("output", phase="io", kind="output", reads=("pot",))
    return b.build()


def extract_rank_ir(state, *, nrhs: int = 1, overlap: bool = True) -> PlanIR:
    """The dataflow IR of one rank's LET-local plan plus its exchange.

    Mirrors :meth:`repro.parallel.pfmm.RankFMM.apply` in program order:
    partial upward pass, ``post``/``relay`` of both exchange kinds, the
    owned-data passes (U/W/V over owner-relayed data), the scatter
    ``wait`` — *after* the owned passes when ``overlap`` is on, before
    them otherwise — then the ghost passes and the downward sweep.
    Exchange-delivered data lives in the split regions ``"ue:own"`` /
    ``"ue:ghost"`` / ``"ext_phi:own"`` / ``"ext_phi:ghost"``, written by
    the ``relay``/``wait`` nodes; every compute read of those regions
    must be ordered after its communication writer, which is precisely
    the happens-before condition the schedule check certifies.
    """
    plan, cache, lay = state.plan, state.cache, state.layout
    kernel = state.kernel
    src_k, trg_k, dir_k = state.src_k, state.trg_k, state.dir_k
    sched = getattr(state, "m2l_schedule", None)
    if sched is None:
        # The rank's plan was built with global partner gating, so its
        # V statistics resolve the same schedule every rank (and the
        # sequential reference) sees.
        sched = as_schedule(
            state.options.m2l, dtype=state.options.dtype,
            stats=v_stats_from_plan(plan), cache=cache, kernel=kernel,
        )
    n_surf = cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    sdof, out_dof = src_k.source_dof, trg_k.target_dof
    ns = int(state.tree.sources.shape[0])
    nt = int(state.tree.targets.shape[0])
    mv2 = 2.0 * (n_surf * md) * (n_surf * qd)
    nfreq, fft_pair, per_fft = _fft_constants(cache.p, n_surf, md, qd)

    b = _IRBuilder(
        meta={
            "mode": "parallel", "kernel": type(kernel).__name__,
            "p": cache.p, "depth": plan.depth, "m2l": sched.mode,
            "m2l_schedule": sched.describe(),
            "nrhs": nrhs, "overlap": overlap, "n_surf": n_surf,
            "md": md, "qd": qd,
        }
    )
    b.buffer("phi", (ns, sdof), "float64")
    b.buffer("pot", (nt, out_dof), "float64")
    b.live_out.add("pot")
    b.node("input", phase="io", kind="input", writes=("phi",))

    pr = "ue:partial@{}".format
    _emit_up_levels(
        b, plan, n_surf=n_surf, qd=qd, md=md, mv2=mv2, nrhs=nrhs,
        src_fpp=src_k.flops_per_pair, region=lambda lvl: pr(lvl),
    )
    partial_regions = tuple(pr(ul.level) for ul in plan.up_levels)

    # Exchange-defined regions: owner-relayed data (own) and the scatter
    # (ghost), per payload kind.  Row counts come from the plans.
    own_phi = [bx for bx, _, _, _, selfu in lay.phi.owned if selfu]
    ghost_phi = [bx for bx, _ in lay.phi.recv_from]
    own_ue = [bx for bx, _, _, _, selfu in lay.pue.owned if selfu]
    ghost_ue = [bx for bx, _ in lay.pue.recv_from]

    def ext_rows(boxes_):
        return int(
            sum(lay.ext_stop[bx] - lay.ext_start[bx] for bx in boxes_)
        )

    if own_phi:
        b.buffer("ext_phi:own", (ext_rows(own_phi), sdof), "float64")
    if ghost_phi:
        b.buffer("ext_phi:ghost", (ext_rows(ghost_phi), sdof), "float64")
    if own_ue:
        b.buffer("ue:own", (len(own_ue), n_surf * md), "float64")
    if ghost_ue:
        b.buffer("ue:ghost", (len(ghost_ue), n_surf * md), "float64")

    b.node(
        "post:phi", phase="comm", kind="post", stage="ExchangePlan",
        reads=("phi",),
    )
    b.node(
        "post:pue", phase="comm", kind="post", stage="ExchangePlan",
        reads=partial_regions,
    )
    b.node(
        "relay:phi", phase="comm", kind="relay", stage="ExchangePlan",
        reads=("phi",), writes=("ext_phi:own",) if own_phi else (),
    )
    b.node(
        "relay:pue", phase="comm", kind="relay", stage="ExchangePlan",
        reads=partial_regions, writes=("ue:own",) if own_ue else (),
    )

    def emit_waits() -> None:
        b.node(
            "wait:phi", phase="comm", kind="wait", stage="ExchangePlan",
            writes=("ext_phi:ghost",) if ghost_phi else (),
        )
        b.node(
            "wait:pue", phase="comm", kind="wait", stage="ExchangePlan",
            writes=("ue:ghost",) if ghost_ue else (),
        )

    if not overlap:
        emit_waits()

    def emit_near(blocks, split: str, tag: str) -> None:
        pairs = _near_pairs(blocks)
        if not pairs:
            return
        if tag == "u":
            b.node(
                f"near_u:{split}", phase="down_u", stage="NearBlocks",
                reads=(f"ext_phi:{split}",), writes=("pot",),
                flops=pairs * nrhs * dir_k.flops_per_pair,
            )
        else:
            b.node(
                f"near_w:{split}", phase="down_w", stage="NearBlocks",
                reads=(f"ue:{split}",), writes=("pot",),
                flops=n_surf * pairs * nrhs * trg_k.flops_per_pair,
            )

    _declare_levelwise(b, plan, n_surf=n_surf, qd=qd, md=md)

    def emit_v_split(split: str) -> None:
        for vl, sp in zip(plan.v_levels, state.v_splits):
            lvl = vl.level
            backend = sched.backend(lvl)
            rows = sp.own_rows if split == "own" else sp.ghost_rows
            classes = sp.own_classes if split == "own" else sp.ghost_classes
            npairs = sum(len(s) for _, s, _ in classes)
            if backend == "fft":
                vhat = f"vhat@{lvl}"
                if vhat not in b.buffers:
                    nsb, ntb = vl.src_boxes.size, vl.trg_boxes.size
                    b.buffer(
                        vhat, (nsb * md + ntb * qd, nfreq), "complex128"
                    )
                if rows.size:
                    b.node(
                        f"vfwd:{split}@{lvl}", phase="down_v",
                        stage="_VSplit", reads=(f"ue:{split}",),
                        writes=(vhat,), dtype="complex128",
                        flops=rows.size * nrhs * per_fft(md),
                    )
                if npairs:
                    b.node(
                        f"vhad:{split}@{lvl}", phase="down_v",
                        stage="_VSplit", reads=(vhat,), writes=(vhat,),
                        dtype="complex128", flops=npairs * nrhs * fft_pair,
                    )
            elif backend == "dense" and npairs:
                b.node(
                    f"v:{split}@{lvl}", phase="down_v", stage="_VSplit",
                    reads=(f"ue:{split}",), writes=(f"dc@{lvl}",),
                    flops=npairs * nrhs * mv2,
                )
            elif npairs:
                rflops = sum(
                    len(src_sel) * nrhs
                    * _rsvd_pair_flops(
                        cache.m2l_rsvd_rank(lvl, offset), n_surf, md, qd
                    )
                    for offset, src_sel, _ in classes
                )
                b.node(
                    f"v:{split}@{lvl}", phase="down_v", stage="_VSplit",
                    reads=(f"ue:{split}",), writes=(f"dc@{lvl}",),
                    dtype="float32" if sched.dtype == "float32"
                    else "float64",
                    narrowing=sched.dtype == "float32",
                    flops=rflops,
                )

    # Owned-data passes (the overlap window's compute).
    emit_near(state.u_own, "own", "u")
    emit_near(state.w_own, "own", "w")
    emit_v_split("own")

    if overlap:
        emit_waits()

    # Ghost-dependent passes.  At coarse split levels the inverse
    # transform covers only this rank's assigned boxes (``inv_rows``)
    # and the level ends with the split exchange: ``post:vsp`` ships the
    # locally-computed downward-check rows, ``wait:vsp`` delivers the
    # remotely-computed ones into the same per-level region.
    emit_v_split("ghost")
    for vl, sp in zip(plan.v_levels, state.v_splits):
        lvl = vl.level
        if sched.backend(lvl) == "fft":
            ninv = (
                int(sp.inv_rows.size) if sp.inv_rows is not None
                else int(vl.trg_boxes.size)
            )
            if ninv:
                b.node(
                    f"vinv@{lvl}", phase="down_v", stage="VLevel",
                    reads=(f"vhat@{lvl}",), writes=(f"dc@{lvl}",),
                    releases=(f"vhat@{lvl}",),
                    flops=ninv * nrhs * per_fft(qd),
                )
        if getattr(sp, "bcast", None):
            b.node(
                f"post:vsp@{lvl}", phase="comm", kind="post",
                stage="CoarseSplit", reads=(f"dc@{lvl}",),
            )
            b.node(
                f"wait:vsp@{lvl}", phase="comm", kind="wait",
                stage="CoarseSplit", writes=(f"dc@{lvl}",),
            )

    x_reads = tuple(
        r for r, have in (
            ("ext_phi:own", bool(own_phi)), ("ext_phi:ghost", bool(ghost_phi))
        ) if have
    )
    for dl in plan.down_levels:
        _emit_down_level(
            b, dl, n_surf=n_surf, mv2=mv2, nrhs=nrhs,
            src_fpp=src_k.flops_per_pair, trg_fpp=trg_k.flops_per_pair,
            x_reads=x_reads,
        )

    emit_near(state.u_ghost, "ghost", "u")
    emit_near(state.w_ghost, "ghost", "w")
    b.node("output", phase="io", kind="output", reads=("pot",))
    return b.build()
