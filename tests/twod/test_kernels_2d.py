"""2D kernel tests."""

import numpy as np
import pytest

from repro.twod import (
    Laplace2DKernel,
    ModifiedLaplace2DKernel,
    Stokes2DKernel,
)


class TestLaplace2D:
    def test_point_value(self):
        k = Laplace2DKernel()
        x = np.array([[np.e, 0.0]])  # r = e -> -log r / 2pi = -1/2pi
        y = np.zeros((1, 2))
        assert k.matrix(x, y)[0, 0] == pytest.approx(-1.0 / (2 * np.pi))

    def test_unit_circle_zero(self):
        k = Laplace2DKernel()
        x = np.array([[1.0, 0.0]])
        assert k.matrix(x, np.zeros((1, 2)))[0, 0] == pytest.approx(0.0)

    def test_harmonic(self):
        """FD Laplacian of -log(r)/2pi vanishes off the pole."""
        k = Laplace2DKernel()
        y = np.zeros((1, 2))
        x0 = np.array([0.7, 0.4])
        h = 1e-5

        def u(p):
            return k.matrix(p.reshape(1, 2), y)[0, 0]

        lap = sum(
            u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0) for e in np.eye(2)
        ) / h**2
        assert abs(lap) < 1e-4

    def test_coincident_zero(self):
        pts = np.array([[0.3, 0.4]])
        assert Laplace2DKernel().matrix(pts, pts)[0, 0] == 0.0

    def test_symmetry(self, rng):
        x = rng.standard_normal((4, 2))
        y = rng.standard_normal((5, 2)) + 3.0
        k = Laplace2DKernel()
        assert np.allclose(k.matrix(x, y), k.matrix(y, x).T)


class TestModifiedLaplace2D:
    def test_pde(self):
        """FD check of lam^2 u - Delta u = 0 for K0(lam r)/2pi."""
        lam = 1.4
        k = ModifiedLaplace2DKernel(lam)
        y = np.zeros((1, 2))
        x0 = np.array([0.8, -0.3])
        h = 1e-4

        def u(p):
            return k.matrix(p.reshape(1, 2), y)[0, 0]

        lap = sum(
            u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0) for e in np.eye(2)
        ) / h**2
        assert lam**2 * u(x0) - lap == pytest.approx(0.0, abs=1e-4)

    def test_exponential_decay(self):
        k = ModifiedLaplace2DKernel(1.0)
        y = np.zeros((1, 2))
        near = k.matrix(np.array([[1.0, 0]]), y)[0, 0]
        far = k.matrix(np.array([[10.0, 0]]), y)[0, 0]
        assert far < near * 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            ModifiedLaplace2DKernel(lam=-1.0)


class TestStokes2D:
    def test_incompressibility(self):
        k = Stokes2DKernel()
        y = np.zeros((1, 2))
        f = np.array([0.6, -0.8])
        x0 = np.array([0.9, 0.5])
        h = 1e-5

        def u(p):
            return k.matrix(p.reshape(1, 2), y) @ f

        div = sum(
            (u(x0 + h * e)[i] - u(x0 - h * e)[i]) / (2 * h)
            for i, e in enumerate(np.eye(2))
        )
        assert abs(div) < 1e-6

    def test_block_shape_and_symmetry(self, rng):
        k = Stokes2DKernel()
        x = rng.standard_normal((3, 2))
        y = rng.standard_normal((4, 2)) + 3.0
        K = k.matrix(x, y)
        assert K.shape == (6, 8)
        single = k.matrix(x[:1], y[:1])
        assert np.allclose(single, single.T)

    def test_viscosity_scaling(self, rng):
        x = rng.standard_normal((2, 2))
        y = rng.standard_normal((2, 2)) + 2.0
        K1 = Stokes2DKernel(mu=1.0).matrix(x, y)
        K2 = Stokes2DKernel(mu=2.0).matrix(x, y)
        assert np.allclose(K2, K1 / 2.0)


class TestInterface:
    def test_apply_matches_matrix(self, rng):
        k = Stokes2DKernel()
        x = rng.standard_normal((6, 2))
        y = rng.standard_normal((5, 2))
        phi = rng.standard_normal((5, 2))
        assert np.allclose(
            k.apply(x, y, phi, block=2).ravel(), k.matrix(x, y) @ phi.ravel()
        )

    def test_rejects_3d_points(self):
        with pytest.raises(ValueError):
            Laplace2DKernel().matrix(np.zeros((3, 3)), np.zeros((3, 2)))
