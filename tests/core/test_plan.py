"""The planned (batched) evaluator must reproduce the per-box path.

The execution plan reorganises the exact same translations into
level-major batches; nothing about the mathematics changes.  These tests
pin that equivalence: potentials agree to ~1e-12 and the phase flop
counts are *bit-identical* (the plan executes the same matvecs, only in
a different order).

Parity tolerance note: stacked GEMMs accumulate in a different order
than per-box matvecs, and that rounding noise is amplified by the
regularised inversions (roughly by ``1/rcond``).  The parity tests use
``rcond=1e-5`` so the comparison isolates the reordering itself; the
accuracy-vs-direct test runs at the default ``rcond``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.core.plan import BufferPool, build_plan, chunk_segments, multi_arange
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.derived import LaplaceDipoleKernel, LaplaceGradientKernel
from repro.kernels.direct import direct_evaluate, relative_error

from tests.conftest import uniform_cloud


def ellipse_surface(rng: np.random.Generator, n: int) -> np.ndarray:
    """Points on a 1 x 0.6 x 0.3 ellipsoid surface.

    Surface distributions are the paper's hard case (Section 4, the
    "nonuniform distribution on a sphere"): deep adaptive trees with
    populated W and X lists.
    """
    d = rng.standard_normal((n, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    return d * np.array([1.0, 0.6, 0.3])


def _run_both(kernel, pts, phi, m2l, **kernel_roles):
    """Apply with plan='batched' and plan='naive'; return both results."""
    out = {}
    for plan in ("batched", "naive"):
        opts = FMMOptions(
            p=4, max_points=25, m2l=m2l, rcond=1e-5, plan=plan
        )
        fmm = KIFMM(kernel, opts, **kernel_roles).setup(pts)
        out[plan] = (fmm.apply(phi), fmm.flops.by_phase())
    return out


def _assert_parity(out):
    u_b, flops_b = out["batched"]
    u_n, flops_n = out["naive"]
    assert relative_error(u_b, u_n) < 1e-12
    # Same translations, same per-pair flop model: identical accounting.
    assert flops_b == flops_n


@pytest.mark.parametrize("m2l", ["fft", "dense"])
@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel(mu=0.7)], ids=["laplace", "stokes"]
)
@pytest.mark.parametrize("cloud", ["uniform", "ellipse"])
def test_planned_matches_naive(rng, cloud, kernel, m2l):
    n = 900
    pts = uniform_cloud(rng, n) if cloud == "uniform" else ellipse_surface(rng, n)
    phi = rng.standard_normal((n, kernel.source_dof))
    _assert_parity(_run_both(kernel, pts, phi, m2l))


def test_planned_matches_naive_gradient_target(rng):
    """Custom target role: gradients read out of a Laplace evaluator."""
    n = 700
    pts = ellipse_surface(rng, n)
    phi = rng.standard_normal((n, 1))
    _assert_parity(
        _run_both(
            LaplaceKernel(),
            pts,
            phi,
            "fft",
            target_kernel=LaplaceGradientKernel(),
        )
    )


def test_planned_matches_naive_dipole_source(rng):
    """Custom source role: dipole densities feeding a Laplace evaluator."""
    n = 700
    pts = ellipse_surface(rng, n)
    phi = rng.standard_normal((n, 3))  # dipole vectors
    _assert_parity(
        _run_both(
            LaplaceKernel(),
            pts,
            phi,
            "dense",
            source_kernel=LaplaceDipoleKernel(),
        )
    )


def test_planned_matches_naive_custom_stokes_roles(rng):
    """Stokes with a rescaled-viscosity source kernel (custom role path)."""
    n = 600
    pts = ellipse_surface(rng, n)
    phi = rng.standard_normal((n, 3))
    _assert_parity(
        _run_both(
            StokesKernel(mu=1.0),
            pts,
            phi,
            "fft",
            source_kernel=StokesKernel(mu=2.0),
        )
    )


def test_non_invariant_kernel_falls_back_to_per_box(rng):
    """plan='batched' must route non-invariant kernels to the per-box path.

    The planned evaluator shares translation operators across same-offset
    box pairs, which is only valid for translation-invariant kernels.
    The fallback runs the identical per-box code, so the potentials are
    bitwise equal to an explicit plan='naive' run.
    """

    class PinnedLaplace(LaplaceKernel):
        translation_invariant = False

    pts = uniform_cloud(rng, 400)
    phi = rng.standard_normal((400, 1))
    opts_b = FMMOptions(p=4, max_points=30, plan="batched")
    opts_n = FMMOptions(p=4, max_points=30, plan="naive")
    u_b = KIFMM(PinnedLaplace(), opts_b).setup(pts).apply(phi)
    u_n = KIFMM(PinnedLaplace(), opts_n).setup(pts).apply(phi)
    assert np.array_equal(u_b, u_n)


def test_planned_accuracy_against_direct(rng):
    """The planned path at default rcond vs O(N^2) truth."""
    n = 700
    pts = ellipse_surface(rng, n)
    phi = rng.standard_normal((n, 1))
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=40)).setup(pts)
    u = fmm.apply(phi)
    exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
    assert relative_error(u, exact) < 5e-4


def test_plan_statistics_exposed(rng):
    pts = ellipse_surface(rng, 800)
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=25)).setup(pts)
    stats = fmm.statistics()
    assert stats["plan_v_pairs"] > 0
    assert stats["plan_v_classes"] > 0
    assert stats["plan_v_parent_pairs"] > 0
    # Blocking groups pairs under parent pairs: strictly coarser.
    assert stats["plan_v_parent_pairs"] <= stats["plan_v_pairs"]


def test_po_groups_structure(rng):
    """Parent-pair rows index the extended (sentinel-padded) slabs."""
    pts = ellipse_surface(rng, 800)
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=25)).setup(pts)
    plan = fmm._plan
    assert plan is not None
    saw_group = False
    for vl in plan.v_levels:
        nsrc, ntrg = vl.src_boxes.size, vl.trg_boxes.size
        for po, src_rows, trg_rows in vl.po_groups:
            saw_group = True
            assert all(-1 <= c <= 1 for c in po)
            assert src_rows.shape == trg_rows.shape
            assert src_rows.shape[1] == 8
            # Row nsrc / ntrg is the zero/discard sentinel.
            assert src_rows.min() >= 0 and src_rows.max() <= nsrc
            assert trg_rows.min() >= 0 and trg_rows.max() <= ntrg
            # Each target parent appears once per offset direction, so a
            # real target child row appears at most once in the group.
            real = trg_rows[trg_rows < ntrg]
            assert np.unique(real).size == real.size
    assert saw_group


def test_multi_arange():
    starts = np.array([0, 5, 9, 9])
    stops = np.array([3, 8, 9, 12])
    got = multi_arange(starts, stops)
    want = np.array([0, 1, 2, 5, 6, 7, 9, 10, 11])
    assert np.array_equal(got, want)
    assert multi_arange(np.array([4]), np.array([4])).size == 0
    assert multi_arange(np.array([]), np.array([])).size == 0


def test_chunk_segments():
    seg = np.array([0, 10, 25, 30, 90, 95])
    runs = chunk_segments(seg, 40)
    # Runs cover all segments exactly once, in order.
    assert runs[0][0] == 0 and runs[-1][1] == len(seg) - 1
    assert all(a[1] == b[0] for a, b in zip(runs, runs[1:]))
    for lo, hi in runs:
        if hi - lo > 1:  # multi-segment runs respect the cap
            assert seg[hi] - seg[lo] <= 40
    # An oversized single segment still gets its own run.
    assert (3, 4) in runs


def test_buffer_pool_reuse():
    pool = BufferPool()
    a = pool.zeros("x", (4, 5))
    a[...] = 7.0
    b = pool.zeros("x", (2, 3))  # smaller request reuses the same storage
    assert b.shape == (2, 3) and not b.any()
    c = pool.empty("x", (4, 5))
    assert np.shares_memory(b, c)
    d = pool.zeros("x", (8, 8))  # grow
    assert d.shape == (8, 8) and not d.any()
    # Distinct dtypes are distinct buffers.
    z = pool.zeros("x", (4,), np.complex128)
    assert z.dtype == np.complex128
    assert pool.nbytes() >= 8 * 8 * 8 + 4 * 16


def test_plan_builds_for_single_leaf(rng):
    """Degenerate tree (root is a leaf): empty V/W/X, U covers everything."""
    pts = uniform_cloud(rng, 20)
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=64)).setup(pts)
    plan = fmm._plan
    assert plan is not None
    assert not plan.v_levels or all(vl.npairs == 0 for vl in plan.v_levels)
    phi = rng.standard_normal((20, 1))
    u = fmm.apply(phi)
    exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
    assert relative_error(u, exact) < 1e-12  # pure U-list: direct sums


def test_options_validation():
    with pytest.raises(ValueError, match="inner"):
        FMMOptions(inner=1.0)  # must be strictly > 1
    with pytest.raises(ValueError, match="inner"):
        FMMOptions(inner=2.9, outer=2.9)  # inner < outer strictly
    with pytest.raises(ValueError, match="inner"):
        FMMOptions(outer=3.0)  # must be strictly < 3
    with pytest.raises(ValueError, match="plan"):
        FMMOptions(plan="vectorised")
    # The defaults and a legal custom pair survive.
    FMMOptions()
    FMMOptions(inner=1.2, outer=2.8)


def test_build_plan_matches_lists(rng):
    """Total V pairs in the plan == the V-list census from the tree."""
    pts = ellipse_surface(rng, 600)
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=25)).setup(pts)
    plan = build_plan(fmm.tree, fmm.lists)
    nv = fmm.lists.counts()["V"]
    assert sum(vl.npairs for vl in plan.v_levels) == nv
