"""Fixture: BufferPool scratch buffer escaping its plan-stage scope."""


def leaky_stage(pool, n):
    buf = pool.zeros("scratch", (n,))
    view = buf.reshape(1, -1)
    # seeded violation: bufferpool-escape (view of a pooled buffer returned)
    return view
