"""2D Stokes flow — a vortex-sheet-like interaction in the plane.

Section 2 of the paper poses the method for d = 2, 3; this example runs
the 2D instantiation (`repro.twod`): point forces arranged on concentric
rings (a discretised rotor wake) interacting through the 2D Stokeslet,
plus a screened-interaction comparison with the Bessel-K0 kernel — a
kernel no analytic FMM expansion ships for.

Run:  python examples/vortex_sheet_2d.py
"""

import time

import numpy as np

from repro.twod import (
    FMM2DOptions,
    KIFMM2D,
    Laplace2DKernel,
    ModifiedLaplace2DKernel,
    Stokes2DKernel,
    direct_evaluate_2d,
)


def ring_wake(n: int, rng: np.random.Generator) -> np.ndarray:
    """Points on concentric perturbed rings (a rolled-up sheet)."""
    nrings = 12
    per = n // nrings
    blocks = []
    for k in range(nrings):
        radius = 0.15 + 0.07 * k
        theta = np.linspace(0, 2 * np.pi, per, endpoint=False)
        theta += 0.3 * k  # spiral offset
        ring = radius * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        ring += 0.004 * rng.standard_normal(ring.shape)
        blocks.append(ring)
    return np.vstack(blocks)


def main() -> None:
    rng = np.random.default_rng(17)
    n = 12_000
    points = ring_wake(n, rng)
    n = points.shape[0]

    # tangential point forces (the sheet's traction)
    radial = points / np.linalg.norm(points, axis=1, keepdims=True)
    forces = np.stack([-radial[:, 1], radial[:, 0]], axis=1)

    kernel = Stokes2DKernel(mu=1.0)
    fmm = KIFMM2D(kernel, FMM2DOptions(p=8, max_points=40)).setup(points)
    t0 = time.perf_counter()
    velocity = fmm.apply(forces)
    t_fmm = time.perf_counter() - t0

    sample = rng.choice(n, size=300, replace=False)
    exact = direct_evaluate_2d(kernel, points[sample], points, forces)
    err = np.linalg.norm(velocity[sample] - exact) / np.linalg.norm(exact)
    print(f"2D Stokes, {n} sheet points: FMM {t_fmm:.2f}s, "
          f"rel error {err:.2e}")
    swirl = np.mean(
        velocity[:, 0] * (-radial[:, 1]) + velocity[:, 1] * radial[:, 0]
    )
    print(f"mean swirl velocity: {swirl:+.4f} (the wake co-rotates)")

    # kernel independence in 2D: swap in the Bessel-K0 screened kernel
    for kern in (Laplace2DKernel(), ModifiedLaplace2DKernel(lam=8.0)):
        phi = rng.random((n, 1))
        f2 = KIFMM2D(kern, FMM2DOptions(p=8, max_points=40)).setup(points)
        t0 = time.perf_counter()
        u = f2.apply(phi)
        dt = time.perf_counter() - t0
        ex = direct_evaluate_2d(kern, points[sample], points, phi)
        e = np.linalg.norm(u[sample] - ex) / np.linalg.norm(ex)
        print(f"{kern.name:22s} FMM {dt:.2f}s, rel error {e:.2e}")


if __name__ == "__main__":
    main()
