"""Screened Coulombic interactions — the molecular-dynamics use case.

The paper's introduction motivates kernel independence with "screened
Coulombic interactions for molecular dynamics": the modified Laplace
(Yukawa) kernel exp(-lambda r) / (4 pi r) had no production-quality
analytic FMM until Greengard-Huang 2002, yet here it is just another
kernel object.

The workload mimics an ionic solution: charge-neutral clusters of ions
with Debye screening.  We compute per-ion electrostatic potentials and
the total screened Coulomb energy, FMM vs direct.

Run:  python examples/screened_coulomb.py
"""

import time

import numpy as np

from repro import KIFMM, FMMOptions, ModifiedLaplaceKernel
from repro.kernels.direct import direct_evaluate, relative_error


def ionic_clusters(n_ions: int, rng: np.random.Generator) -> np.ndarray:
    """Ion positions: solvated clusters around scattered macromolecules."""
    n_clusters = 24
    centers = rng.uniform(-1.0, 1.0, size=(n_clusters, 3))
    per = n_ions // n_clusters
    blocks = [
        c + 0.06 * rng.standard_normal((per, 3)) for c in centers
    ]
    return np.vstack(blocks)


def main() -> None:
    rng = np.random.default_rng(11)
    n = 24_000
    debye_length = 0.1  # lambda = 1 / debye_length
    kernel = ModifiedLaplaceKernel(lam=1.0 / debye_length)

    positions = ionic_clusters(n, rng)
    n = positions.shape[0]
    charges = rng.choice([-1.0, 1.0], size=(n, 1))  # charge-neutral mix

    print(f"{n} ions in {24} clusters, Debye length {debye_length}")
    fmm = KIFMM(kernel, FMMOptions(p=6, max_points=60)).setup(positions)

    t0 = time.perf_counter()
    potential = fmm.apply(charges)
    t_fmm = time.perf_counter() - t0

    energy = 0.5 * float((charges * potential).sum())
    print(f"FMM evaluation: {t_fmm:.2f}s")
    print(f"total screened Coulomb energy: {energy:+.6f}")

    sample = rng.choice(n, size=300, replace=False)
    exact = direct_evaluate(kernel, positions[sample], positions, charges)
    err = relative_error(potential[sample], exact)
    print(f"relative error vs direct summation (300 samples): {err:.2e}")

    # screening sanity check: with stronger screening the energy shrinks
    strong = ModifiedLaplaceKernel(lam=4.0 / debye_length)
    fmm2 = KIFMM(strong, FMMOptions(p=6, max_points=60)).setup(positions)
    pot2 = fmm2.apply(charges)
    energy2 = 0.5 * float((charges * pot2).sum())
    print(f"energy with 4x screening: {energy2:+.6f} "
          f"(|E| shrinks: {abs(energy2) < abs(energy)})")


if __name__ == "__main__":
    main()
