"""2:1 tree balancing tests."""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel
from repro.kernels.direct import direct_evaluate, relative_error
from repro.octree import build_lists, build_tree
from repro.octree.balance import (
    balance_tree,
    balanced_split_set,
    max_adjacent_level_jump,
)
from repro.octree.lists import verify_lists

from tests.conftest import clustered_cloud, uniform_cloud


@pytest.fixture
def unbalanced(rng):
    """A strongly clustered cloud producing level jumps > 1."""
    pts = np.vstack(
        [
            np.zeros(3) + 1e-4 * np.abs(rng.standard_normal((120, 3))),
            rng.uniform(0, 1, size=(120, 3)),
        ]
    )
    return build_tree(pts, max_points=20)


class TestBalance:
    def test_unbalanced_input_has_jumps(self, unbalanced):
        assert max_adjacent_level_jump(unbalanced) > 1

    def test_balanced_tree_is_balanced(self, unbalanced):
        balanced = balance_tree(unbalanced)
        assert max_adjacent_level_jump(balanced) <= 1

    def test_split_set_is_superset(self, unbalanced):
        split = balanced_split_set(unbalanced)
        for b in unbalanced.boxes:
            if not b.is_leaf:
                assert (b.level, b.anchor) in split

    def test_points_preserved(self, unbalanced):
        balanced = balance_tree(unbalanced)
        seq = np.concatenate(
            [balanced.src_indices(i) for i in balanced.leaves()]
        )
        assert sorted(seq.tolist()) == list(range(unbalanced.sources.shape[0]))

    def test_more_boxes_smaller_lists(self, rng):
        """The balance trade-off: box count up, W/X lists bounded."""
        pts = clustered_cloud(rng, 800)
        tree = build_tree(pts, max_points=15)
        balanced = balance_tree(tree)
        assert balanced.nboxes >= tree.nboxes
        lists_b = build_lists(balanced)
        # with 2:1 balance every W box is exactly one level finer
        for i, w in enumerate(lists_b.W):
            for a in w:
                assert balanced.boxes[a].level == balanced.boxes[i].level + 1

    def test_lists_valid_on_balanced_tree(self, unbalanced):
        balanced = balance_tree(unbalanced)
        verify_lists(balanced, build_lists(balanced))

    def test_already_balanced_is_stable(self, rng):
        pts = uniform_cloud(rng, 500)
        tree = build_tree(pts, max_points=30)
        if max_adjacent_level_jump(tree) <= 1:
            balanced = balance_tree(tree)
            # no forced refinements beyond the original splits
            assert balanced.nboxes >= tree.nboxes
            assert max_adjacent_level_jump(balanced) <= 1


class TestFMMWithBalance:
    def test_same_potentials(self, rng):
        pts = clustered_cloud(rng, 500)
        phi = rng.standard_normal((500, 1))
        exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
        u_plain = KIFMM(
            LaplaceKernel(), FMMOptions(p=6, max_points=25)
        ).setup(pts).apply(phi)
        u_bal = KIFMM(
            LaplaceKernel(), FMMOptions(p=6, max_points=25, balance=True)
        ).setup(pts).apply(phi)
        assert relative_error(u_plain, exact) < 5e-4
        assert relative_error(u_bal, exact) < 5e-4

    def test_balance_flag_changes_tree(self, rng):
        pts = np.vstack(
            [
                np.zeros(3) + 1e-4 * np.abs(rng.standard_normal((120, 3))),
                rng.uniform(0, 1, size=(120, 3)),
            ]
        )
        fmm = KIFMM(
            LaplaceKernel(), FMMOptions(p=3, max_points=20, balance=True)
        ).setup(pts)
        assert max_adjacent_level_jump(fmm.tree) <= 1
