"""2D surface discretisation tests."""

import numpy as np
import pytest

from repro.twod.surfaces import (
    INNER_RADIUS_2D,
    OUTER_RADIUS_2D,
    n_surface_points_2d,
    scaled_surface_2d,
    surface_grid_2d,
)


class TestCounts:
    @pytest.mark.parametrize("p", [2, 4, 8, 12])
    def test_node_count(self, p):
        assert n_surface_points_2d(p) == 4 * p - 4
        assert surface_grid_2d(p).shape == (4 * p - 4, 2)

    def test_rejects_small_p(self):
        with pytest.raises(ValueError):
            n_surface_points_2d(1)


class TestGeometry:
    def test_nodes_on_square_boundary(self):
        g = surface_grid_2d(6)
        assert np.isclose(np.abs(g), 1.0).any(axis=1).all()

    def test_scaled_surface(self):
        c = np.array([2.0, -1.0])
        pts = scaled_surface_2d(4, c, half_width=0.5, radius=2.0)
        assert np.abs(pts - c).max() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_surface_2d(4, np.zeros(2), half_width=-1.0, radius=1.0)

    def test_constraints(self):
        # the same Section 2.1 placement constraints as 3D
        assert 1.0 < INNER_RADIUS_2D < OUTER_RADIUS_2D < 3.0
        assert 0.5 + 0.5 * INNER_RADIUS_2D < INNER_RADIUS_2D
        assert INNER_RADIUS_2D + INNER_RADIUS_2D < 4.0

    def test_cached_readonly(self):
        g = surface_grid_2d(5)
        with pytest.raises(ValueError):
            g[0, 0] = 7.0


class TestOperators2D:
    def test_uc2ue_reconstructs_far_field(self, rng):
        """Equation (2.1) end to end in the plane."""
        from repro.twod.fmm import OperatorCache2D
        from repro.twod.kernels import Laplace2DKernel

        kernel = Laplace2DKernel()
        cache = OperatorCache2D(kernel, p=10, root_side=2.0,
                                inner=1.05, outer=2.95, rcond=1e-12)
        level = 1
        r = cache.half_width(level)
        src = rng.uniform(-r, r, size=(15, 2))
        phi = rng.standard_normal(15)
        phi -= phi.mean()  # zero total charge: no far log-growth mismatch
        check = kernel.matrix(cache.up_check(np.zeros(2), level), src) @ phi
        ue = cache.uc2ue(level) @ check
        theta = np.linspace(0, 2 * np.pi, 12, endpoint=False)
        far = 6 * r * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        exact = kernel.matrix(far, src) @ phi
        approx = kernel.matrix(far, cache.up_equiv(np.zeros(2), level)) @ ue
        assert np.allclose(approx, exact, atol=1e-8)

    def test_m2l_rejects_adjacent(self):
        from repro.twod.fmm import OperatorCache2D
        from repro.twod.kernels import Laplace2DKernel

        cache = OperatorCache2D(Laplace2DKernel(), 4, 1.0, 1.05, 2.95, 1e-12)
        with pytest.raises(ValueError):
            cache.m2l_check(2, (1, 0))
