"""Regularised pseudo-inverse for the equivalent-density solves.

Equations (2.1)–(2.5) of the paper are first-kind integral equations —
matching potentials on a check surface to recover an equivalent density —
and their discretisations are severely ill-conditioned (the singular
values of the check-to-equivalent kernel matrix decay exponentially).
Following the sequential companion paper [25], we invert them with a
truncated-SVD pseudo-inverse: singular values strictly below
``rcond * s_max`` are discarded rather than amplified.  The cutoff
boundary is *inclusive-keep*: a singular value exactly equal to
``rcond * s_max`` survives truncation (see :func:`svd_rank`).

Dtype contract: every function here computes in and returns float64.
Inputs are coerced up front with ``np.asarray(..., dtype=np.float64)``
and every result — including the degenerate fallbacks for empty or
exactly-zero matrices — is explicitly float64; the dtype of an
un-coerced input never leaks into a return value.
"""

from __future__ import annotations

import numpy as np


def svd_rank(s: np.ndarray, rcond: float) -> int:
    """Number of singular values kept at relative cutoff ``rcond``.

    The truncation boundary is inclusive: ``s[i] >= rcond * s[0]`` is
    kept, so a singular value *exactly at* ``rcond * s_max`` survives.
    Returns 0 for an empty spectrum or an exactly-zero matrix (both
    degenerate cases have no dominant mode to scale the cutoff by).
    """
    if rcond < 0:
        raise ValueError(f"rcond must be non-negative, got {rcond}")
    if s.size == 0 or s[0] == 0.0:
        return 0
    return int(np.count_nonzero(s >= rcond * s[0]))


def truncated_svd(
    matrix: np.ndarray, rcond: float = 1e-12
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-truncated SVD factors of a real matrix.

    Shared between :func:`regularized_pinv` and the rSVD-compressed M2L
    backend (:mod:`repro.linalg.rsvd` falls back to it when a sketch
    would be no cheaper than the full decomposition), so both apply the
    same inclusive-keep boundary and float64 contract.

    Parameters
    ----------
    matrix:
        ``(m, n)`` real matrix; coerced to float64.
    rcond:
        Relative cutoff (see :func:`svd_rank`).

    Returns
    -------
    ``(u, s, vt)`` float64 factors with ``u`` of shape ``(m, k)``,
    ``s`` of shape ``(k,)`` and ``vt`` of shape ``(k, n)``, where ``k``
    is the rank at the cutoff.  Degenerate inputs (empty or exactly
    zero) yield rank-0 float64 factors, not an error.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if rcond < 0:
        raise ValueError(f"rcond must be non-negative, got {rcond}")
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    k = svd_rank(s, rcond)
    return (
        np.ascontiguousarray(u[:, :k]),
        np.ascontiguousarray(s[:k]),
        np.ascontiguousarray(vt[:k]),
    )


def regularized_pinv(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Moore-Penrose pseudo-inverse with relative singular-value cutoff.

    Parameters
    ----------
    matrix:
        ``(m, n)`` real matrix.
    rcond:
        Relative cutoff: singular values strictly below
        ``rcond * max(s)`` are treated as zero; a value exactly at the
        cutoff is kept (the inclusive boundary of :func:`svd_rank`).

    Returns
    -------
    ``(n, m)`` float64 pseudo-inverse.  A degenerate spectrum (empty or
    exactly-zero matrix) yields explicit float64 zeros — the module's
    dtype contract holds on this path too.
    """
    u, s, vt = truncated_svd(matrix, rcond)
    if s.size == 0:
        m, n = np.shape(matrix)
        return np.zeros((n, m), dtype=np.float64)
    return (vt.T / s) @ u.T
