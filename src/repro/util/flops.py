"""Flop accounting.

The paper reports aggregate Gflop/s rates per phase of the interaction
computation (Tables 4.1–4.3).  We track floating-point work analytically:
every phase of the evaluator reports how many kernel pair-evaluations,
matrix-vector products and FFTs it performed, and the counter converts
those to flops using the kernel's per-pair cost.
"""

from __future__ import annotations

from collections import defaultdict


class FlopCounter:
    """Accumulates flop counts keyed by phase name.

    Phases used by the evaluator mirror the paper's Figure 4.2 legend:
    ``up`` (S2M + M2M), ``down_u`` (dense near interactions), ``down_v``
    (M2L), ``down_w``, ``down_x``, and ``eval`` (L2L + L2T).
    """

    def __init__(self) -> None:
        self._flops: dict[str, float] = defaultdict(float)

    def add(self, phase: str, flops: float) -> None:
        """Accumulate ``flops`` floating point operations in ``phase``."""
        if flops < 0:
            raise ValueError(f"negative flop count for phase {phase!r}: {flops}")
        self._flops[phase] += flops

    def add_pairs(self, phase: str, npairs: float, flops_per_pair: float) -> None:
        """Accumulate work for ``npairs`` kernel pair evaluations."""
        self.add(phase, npairs * flops_per_pair)

    def get(self, phase: str) -> float:
        return self._flops.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self._flops.values())

    def by_phase(self) -> dict[str, float]:
        """Snapshot of per-phase flop counts."""
        return dict(self._flops)

    def merge(self, other: "FlopCounter") -> None:
        for phase, flops in other._flops.items():
            self._flops[phase] += flops

    def reset(self) -> None:
        self._flops.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self._flops.items()))
        return f"FlopCounter({parts})"
