"""Throughput of ``setup()`` vs repeated ``apply()`` (PR tracking bench).

The paper's parallel implementation "is designed to achieve maximum
efficiency in the multiplication phase" (Section 3): one geometry setup
is amortised over tens of interaction evaluations inside Krylov loops.
This bench records, for Laplace and Stokes at N in {2k, 20k}:

- ``setup()`` wall-clock (tree + lists + operators + execution plan),
- mean ``apply()`` wall-clock and points/second, per evaluator phase,
- the speedup of the planned ("batched") evaluator over the seed's
  per-box ("naive") path on identical inputs.

Results land in ``BENCH_apply.json`` at the repository root so the
performance trajectory is tracked across PRs.  Run directly::

    python benchmarks/bench_apply_throughput.py [--quick] [--out PATH]

or through pytest (uses --quick sizes)::

    python -m pytest benchmarks/bench_apply_throughput.py -q

With ``--nrhs 1,4,8,16`` the bench instead sweeps multi-RHS block
widths: for each ``nrhs`` it measures one batched block apply against
``nrhs`` looped single-RHS applies on the same operator (best-of-3
within the process — run-to-run CPU speed varies far more than
in-process repeats), records per-phase timings of the batched apply and
the worst column relative error, pulls in the parallel-rank sweep from
``bench_parallel_apply``, and writes ``BENCH_multirhs.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.util.tables import format_table

_ROOT = Path(__file__).resolve().parent.parent
_KERNELS = {"laplace": LaplaceKernel, "stokes": StokesKernel}


def _measure(kernel_name: str, n: int, plan: str, napply: int) -> dict:
    """Setup once, apply ``napply`` times; return timings and phases."""
    kernel = _KERNELS[kernel_name]()
    rng = np.random.default_rng(2003)
    pts = rng.random((n, 3))
    phi = rng.standard_normal((n, kernel.source_dof))
    fmm = KIFMM(kernel, FMMOptions(plan=plan))
    t0 = time.perf_counter()
    fmm.setup(pts)
    t_setup = time.perf_counter() - t0
    u = fmm.apply(phi)  # warm operator caches / plan buffers
    fmm.timer.reset()
    t0 = time.perf_counter()
    for _ in range(napply):
        fmm.apply(phi)
    t_apply = (time.perf_counter() - t0) / napply
    phases = {
        k: round(v / napply, 6)
        for k, v in sorted(fmm.timer.by_phase().items())
        if k not in ("tree", "plan")
    }
    return {
        "kernel": kernel_name,
        "n": n,
        "plan": plan,
        "m2l": "fft",
        "applies": napply,
        "setup_seconds": round(t_setup, 4),
        "apply_seconds": round(t_apply, 4),
        "points_per_second": round(n / t_apply, 1),
        "phase_seconds": phases,
        "_potential": u,
    }


def run(quick: bool = False, out: Path | None = None) -> dict:
    sizes = [2_000] if quick else [2_000, 20_000]
    napply = 1 if quick else 3
    results = []
    for kernel_name in ("laplace", "stokes"):
        for n in sizes:
            batched = _measure(kernel_name, n, "batched", napply)
            # One naive apply is enough: it is the slow reference.
            naive = _measure(kernel_name, n, "naive", 1)
            agree = relative_error(
                batched.pop("_potential"), naive.pop("_potential")
            )
            batched["speedup_vs_naive"] = round(
                naive["apply_seconds"] / batched["apply_seconds"], 2
            )
            batched["relative_error_vs_naive"] = float(f"{agree:.3e}")
            results.append(batched)
            results.append(naive)
    report = {
        "bench": "apply_throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "results": results,
    }
    rows = [
        (
            r["kernel"],
            r["n"],
            r["plan"],
            r["setup_seconds"],
            r["apply_seconds"],
            r["points_per_second"],
            r.get("speedup_vs_naive", ""),
        )
        for r in results
    ]
    print(format_table(
        ("kernel", "N", "plan", "setup s", "apply s", "pts/s", "speedup"),
        rows,
        title="apply() throughput (fft M2L, defaults p=6, s=60)",
    ))
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return report


def _measure_multirhs(
    kernel_name: str, n: int, nrhs: int, opts: FMMOptions, repeats: int,
) -> dict:
    """One batched block apply vs ``nrhs`` looped single applies.

    Both paths run on the same warmed operator.  The two arms are
    interleaved (loop, batch, loop, batch, ...) and each takes its
    best-of-``repeats``, so a CPU-speed drift mid-measurement hits both
    arms alike instead of biasing their ratio.
    """
    kernel = _KERNELS[kernel_name]()
    rng = np.random.default_rng(2003)
    pts = rng.random((n, 3))
    block = rng.standard_normal((n, kernel.source_dof, nrhs))
    cols = [np.ascontiguousarray(block[:, :, r]) for r in range(nrhs)]
    fmm = KIFMM(kernel, opts)
    t0 = time.perf_counter()
    fmm.setup(pts)
    t_setup = time.perf_counter() - t0
    fmm.apply(block)  # warm block-width plan buffers and operator caches
    fmm.apply(cols[0])  # warm single-width plan buffers

    t_loop = t_batch = np.inf
    singles = out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        outs = [fmm.apply(c) for c in cols]
        t = time.perf_counter() - t0
        if t < t_loop:
            t_loop = t
            singles = [np.array(o, copy=True) for o in outs]
        t0 = time.perf_counter()
        o = fmm.apply(block)
        t = time.perf_counter() - t0
        if t < t_batch:
            t_batch = t
            out = np.array(o, copy=True)
    fmm.timer.reset()
    fmm.apply(block)  # one clean apply for the per-phase split
    phases = {
        k: round(v, 6)
        for k, v in sorted(fmm.timer.by_phase().items())
        if k not in ("tree", "plan")
    }
    parity = max(
        relative_error(out[:, :, r], s) for r, s in enumerate(singles)
    )
    return {
        "kernel": kernel_name,
        "n": n,
        "nrhs": nrhs,
        "p": opts.p,
        "max_points": opts.max_points,
        "repeats": repeats,
        "setup_seconds": round(t_setup, 4),
        "batched_seconds": round(t_batch, 4),
        "looped_seconds": round(t_loop, 4),
        "speedup_vs_looped": round(t_loop / t_batch, 2),
        "rhs_per_second": round(nrhs / t_batch, 1),
        "max_column_rel_error": float(f"{parity:.3e}"),
        "phase_seconds": phases,
    }


def run_multirhs(
    quick: bool = False,
    out: Path | None = None,
    nrhs_list: tuple[int, ...] = (1, 4, 8, 16),
) -> dict:
    """Multi-RHS sweep: sequential Laplace plus the parallel-rank sweep."""
    try:
        from benchmarks.bench_parallel_apply import multirhs_sweep
    except ImportError:  # direct `python benchmarks/...` invocation
        from bench_parallel_apply import multirhs_sweep

    n = 2_000 if quick else 20_000
    # leaf capacity 120 balances near-field GEMM width against M2L work
    # for batched blocks at this size; see docs/architecture.md
    opts = (FMMOptions(p=4, max_points=60) if quick
            else FMMOptions(p=6, max_points=120))
    repeats = 1 if quick else 3
    sequential = [
        _measure_multirhs("laplace", n, nrhs, opts, repeats)
        for nrhs in nrhs_list
    ]
    pw = 8 if 8 in nrhs_list else max(nrhs_list)
    parallel = multirhs_sweep(quick=quick, nrhs_list=(pw,))
    report = {
        "bench": "multirhs",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "sequential": sequential,
        "parallel": parallel,
    }
    rows = [
        (
            r["nrhs"],
            r["batched_seconds"],
            r["looped_seconds"],
            r["speedup_vs_looped"],
            r["rhs_per_second"],
            r["max_column_rel_error"],
        )
        for r in sequential
    ]
    print(format_table(
        ("nrhs", "batched s", "looped s", "speedup", "rhs/s", "col err"),
        rows,
        title=(f"batched multi-RHS apply vs looped singles "
               f"(Laplace, N={n}, p={opts.p}, s={opts.max_points})"),
    ))
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return report


def test_apply_throughput():
    """Bench smoke: the planned path must beat per-box and agree with it."""
    report = run(quick=True)
    for r in report["results"]:
        if r["plan"] == "batched":
            assert r["relative_error_vs_naive"] < 1e-10
            assert r["speedup_vs_naive"] > 1.0


def test_multirhs():
    """Bench smoke: batched blocks beat looped singles, columns agree."""
    report = run_multirhs(quick=True, nrhs_list=(1, 8))
    for r in report["sequential"]:
        assert r["max_column_rel_error"] < 1e-12
    wide = report["sequential"][-1]
    assert wide["nrhs"] == 8
    assert wide["speedup_vs_looped"] > 1.05
    for r in report["parallel"]:
        assert r["max_column_rel_error"] < 1e-12
        assert r["speedup_vs_looped"] > 1.0


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes, one apply per config")
    ap.add_argument("--out", type=Path, default=_ROOT / "BENCH_apply.json")
    ap.add_argument("--nrhs", type=str, default=None, metavar="LIST",
                    help="comma-separated block widths: run the multi-RHS "
                         "sweep and write BENCH_multirhs.json instead")
    args = ap.parse_args()
    if args.nrhs is not None:
        widths = tuple(int(w) for w in args.nrhs.split(","))
        run_multirhs(quick=args.quick, out=_ROOT / "BENCH_multirhs.json",
                     nrhs_list=widths)
    else:
        run(quick=args.quick, out=args.out)
