"""Fixture: a violation waived with the documented escape hatch."""

import numpy as np


def quantized(n):
    return np.zeros(n, dtype=np.float32)  # lint: allow(dtype-width)
