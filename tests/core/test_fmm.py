"""End-to-end KIFMM accuracy and API tests."""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import direct_evaluate, relative_error

from tests.conftest import clustered_cloud, uniform_cloud


class TestAccuracy:
    def test_all_kernels_uniform(self, rng, kernel):
        """Kernel independence: the same code path for every kernel."""
        pts = uniform_cloud(rng, 600)
        phi = rng.standard_normal((600, kernel.source_dof))
        fmm = KIFMM(kernel, FMMOptions(p=6, max_points=40)).setup(pts)
        u = fmm.apply(phi)
        exact = direct_evaluate(kernel, pts, pts, phi)
        assert relative_error(u, exact) < 5e-4

    def test_all_kernels_clustered(self, rng, kernel):
        """Adaptive path: deep trees, W and X lists exercised."""
        pts = clustered_cloud(rng, 600)
        phi = rng.standard_normal((600, kernel.source_dof))
        fmm = KIFMM(kernel, FMMOptions(p=6, max_points=30)).setup(pts)
        u = fmm.apply(phi)
        exact = direct_evaluate(kernel, pts, pts, phi)
        assert relative_error(u, exact) < 5e-4

    def test_dense_and_fft_m2l_agree(self, rng, fast_kernel):
        pts = clustered_cloud(rng, 500)
        phi = rng.standard_normal((500, fast_kernel.source_dof))
        u_fft = KIFMM(
            fast_kernel, FMMOptions(p=4, max_points=30, m2l="fft")
        ).setup(pts).apply(phi)
        u_dense = KIFMM(
            fast_kernel, FMMOptions(p=4, max_points=30, m2l="dense")
        ).setup(pts).apply(phi)
        assert relative_error(u_fft, u_dense) < 1e-10

    def test_p_refinement_converges(self, rng):
        """Accuracy is controlled by p (the paper's accuracy knob)."""
        kernel = LaplaceKernel()
        pts = uniform_cloud(rng, 500)
        phi = rng.standard_normal((500, 1))
        exact = direct_evaluate(kernel, pts, pts, phi)
        errs = []
        for p in (2, 4, 6):
            u = KIFMM(kernel, FMMOptions(p=p, max_points=40)).setup(pts).apply(phi)
            errs.append(relative_error(u, exact))
        assert errs[2] < errs[1] < errs[0]
        assert errs[2] < 1e-4

    def test_disjoint_targets(self, rng):
        kernel = LaplaceKernel()
        src = uniform_cloud(rng, 400)
        trg = rng.uniform(-0.4, 0.4, size=(250, 3))
        phi = rng.standard_normal((400, 1))
        fmm = KIFMM(kernel, FMMOptions(p=6, max_points=25)).setup(src, trg)
        u = fmm.apply(phi)
        exact = direct_evaluate(kernel, trg, src, phi)
        assert relative_error(u, exact) < 5e-4

    def test_paper_target_accuracy(self, rng):
        """The paper's experiments run at relative error 1e-5."""
        kernel = LaplaceKernel()
        pts = uniform_cloud(rng, 800)
        phi = rng.random((800, 1))  # densities in [0, 1] as in Section 4
        fmm = KIFMM(kernel, FMMOptions(p=6, max_points=60)).setup(pts)
        u = fmm.apply(phi)
        exact = direct_evaluate(kernel, pts, pts, phi)
        assert relative_error(u, exact) < 1e-5


class TestSemantics:
    def test_linearity(self, rng):
        kernel = LaplaceKernel()
        pts = uniform_cloud(rng, 300)
        fmm = KIFMM(kernel, FMMOptions(p=4, max_points=30)).setup(pts)
        p1 = rng.standard_normal((300, 1))
        p2 = rng.standard_normal((300, 1))
        u = fmm.apply(p1 + 3 * p2)
        assert np.allclose(u, fmm.apply(p1) + 3 * fmm.apply(p2), atol=1e-12)

    def test_zero_density_zero_potential(self, rng):
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=3, max_points=20)).setup(
            uniform_cloud(rng, 200)
        )
        assert np.all(fmm.apply(np.zeros((200, 1))) == 0.0)

    def test_repeated_apply_consistent(self, rng):
        """Setup is reused across evaluations (the Krylov-loop pattern)."""
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=25)).setup(
            uniform_cloud(rng, 300)
        )
        phi = rng.standard_normal((300, 1))
        assert np.array_equal(fmm.apply(phi), fmm.apply(phi))

    def test_flat_density_accepted(self, rng):
        kernel = StokesKernel()
        pts = uniform_cloud(rng, 100)
        fmm = KIFMM(kernel, FMMOptions(p=3, max_points=30)).setup(pts)
        phi = rng.standard_normal((100, 3))
        assert np.allclose(fmm.apply(phi), fmm.apply(phi.ravel()))

    def test_matvec_flattens(self, rng):
        kernel = StokesKernel()
        pts = uniform_cloud(rng, 80)
        fmm = KIFMM(kernel, FMMOptions(p=3, max_points=30)).setup(pts)
        phi = rng.standard_normal((80, 3))
        assert fmm.matvec(phi).shape == (240,)

    def test_small_problem_single_box(self, rng):
        """N <= s: everything goes through the root U list."""
        kernel = LaplaceKernel()
        pts = uniform_cloud(rng, 30)
        phi = rng.standard_normal((30, 1))
        fmm = KIFMM(kernel, FMMOptions(p=4, max_points=60)).setup(pts)
        exact = direct_evaluate(kernel, pts, pts, phi)
        assert relative_error(fmm.apply(phi), exact) < 1e-12


class TestAPI:
    def test_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            KIFMM(LaplaceKernel()).apply(np.zeros((5, 1)))

    def test_statistics(self, rng):
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=25)).setup(
            uniform_cloud(rng, 300)
        )
        fmm.apply(rng.standard_normal((300, 1)))
        stats = fmm.statistics()
        assert stats["nboxes"] > 1
        assert stats["U_list"] > 0
        assert stats["flops"]["up"] > 0
        assert "tree" in stats["seconds"]

    def test_statistics_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            KIFMM(LaplaceKernel()).statistics()

    def test_options_validation(self):
        with pytest.raises(ValueError):
            FMMOptions(p=1)
        with pytest.raises(ValueError):
            FMMOptions(max_points=0)
        with pytest.raises(ValueError):
            FMMOptions(m2l="magic")

    def test_setup_returns_self(self, rng):
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=3, max_points=30))
        assert fmm.setup(uniform_cloud(rng, 50)) is fmm
