"""Algorithm 1 gather/scatter tests on synthetic data."""

import numpy as np

from repro.parallel.exchange import exchange_equiv_densities, exchange_source_data
from repro.parallel.simmpi import run_spmd


def test_source_data_gather_scatter():
    """3 ranks, 2 boxes: contributions concatenate at the owner and
    reach every user."""
    nboxes = 2
    contrib = np.array(
        [[True, False], [True, True], [False, True]]
    )  # (ranks, boxes)
    users = np.array([[True, True], [False, True], [True, False]])
    owner = np.array([0, 2])
    boxes = np.arange(nboxes)

    def main(comm):
        me = comm.rank
        local_points = {}
        local_density = {}
        for b in range(nboxes):
            if contrib[me, b]:
                # rank-tagged payload so provenance is checkable
                local_points[b] = np.full((2, 3), 10.0 * me + b)
                local_density[b] = np.full((2, 1), 100.0 * me + b)
        return exchange_source_data(
            comm, boxes, contrib, users, owner, local_points, local_density
        )

    results = run_spmd(3, main)
    # every user of box 0 sees contributions from ranks {0, 1}
    for r in (0, 2):
        pts, dens = results[r][0]
        assert pts.shape == (4, 3)
        values = set(np.unique(pts))
        assert values == {0.0, 10.0}
    # every user of box 1 sees contributions from ranks {1, 2}
    for r in (0, 1):
        pts, dens = results[r][1]
        assert set(np.unique(dens)) == {101.0, 201.0}
    # non-users received nothing for that box
    assert 1 not in results[2]


def test_equiv_density_reduction():
    """Partial densities sum at the owner; users receive the total."""
    nboxes = 3
    contrib = np.array([[True, True, False], [True, False, True]])
    users = np.array([[True, False, True], [True, True, False]])
    owner = np.array([0, 0, 1])
    boxes = np.arange(nboxes)

    def main(comm):
        me = comm.rank
        partial = np.zeros((nboxes, 4))
        has = np.zeros(nboxes, dtype=bool)
        for b in range(nboxes):
            if contrib[me, b]:
                partial[b] = me + 1.0  # rank 0 -> 1s, rank 1 -> 2s
                has[b] = True
        return exchange_equiv_densities(
            comm, boxes, contrib, users, owner, partial, has
        )

    results = run_spmd(2, main)
    # box 0: contributors both ranks -> total 3
    assert np.allclose(results[0][0], 3.0)
    assert np.allclose(results[1][0], 3.0)
    # box 1: only rank 0 -> total 1, used by rank 1
    assert np.allclose(results[1][1], 1.0)
    # box 2: only rank 1 -> total 2, used by rank 0
    assert np.allclose(results[0][2], 2.0)


def test_empty_exchange():
    def main(comm):
        return exchange_source_data(
            comm,
            np.empty(0, dtype=np.int64),
            np.zeros((2, 0), dtype=bool),
            np.zeros((2, 0), dtype=bool),
            np.empty(0, dtype=np.int64),
            {},
            {},
        )

    results = run_spmd(2, main)
    assert results == [{}, {}]
