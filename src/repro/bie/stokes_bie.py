"""The FMM-accelerated Stokes single-layer operator.

The exterior Stokes problem with velocity boundary conditions is posed as
a first-kind integral equation ``(S phi)(x) = u(x)`` on the union of the
body surfaces, with

    ``(S phi)(x) = int G(x, y) phi(y) dS(y)``

and ``G`` the Stokeslet of Appendix A.  We discretise by Nystrom
collocation with punctured quadrature plus a local singular correction:
the omitted ``y = x`` contribution is restored as the analytic integral
of the Stokeslet over a flat disk of the node's quadrature area ``A``
(radius ``a = sqrt(A/pi)``, outward normal ``n``),

    ``int_disk G(x, y) dS(y) = a / (8 mu) * (3 I - n n^T)``,

which both recovers first-order quadrature accuracy at the singularity
and keeps the first-kind system well enough conditioned for unrestarted
Krylov convergence.  The operator's matvec is exactly one
particle-interaction evaluation over all surface quadrature points with
densities ``phi_j w_j`` — the computation the paper's parallel FMM
accelerates "tens of [times]" per time step inside the Krylov loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import coerce_density
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels.stokes import StokesKernel
from repro.linalg.gmres import BlockGMRESResult, GMRESResult, gmres, gmres_block
from repro.parallel.pfmm import ParallelFMM


class StokesSingleLayer:
    """Single-layer Stokes operator over a collection of surfaces.

    Parameters
    ----------
    surfaces:
        The body surfaces; quadrature points are concatenated in order.
    mu:
        Fluid viscosity.
    use_fmm:
        Evaluate the matvec with the KIFMM (default) or directly — the
        direct path is the testing oracle and the small-problem fallback.
    options:
        FMM tuning; accuracy should exceed the Krylov tolerance.
    parallel_ranks:
        When > 0, each matvec runs the persistent parallel operator
        (:class:`~repro.parallel.pfmm.ParallelFMM`) over this many
        logical ranks: setup once per geometry, one overlapped apply per
        GMRES iteration — the paper's "tens of multiplications per time
        step" amortization.
    overlap:
        Overlap the equivalent-density exchange with owned-data work in
        the parallel matvecs (identical results either way).
    """

    def __init__(
        self,
        surfaces: list,
        mu: float = 1.0,
        use_fmm: bool = True,
        options: FMMOptions | None = None,
        parallel_ranks: int = 0,
        overlap: bool = True,
    ) -> None:
        if not surfaces:
            raise ValueError("need at least one surface")
        self.surfaces = surfaces
        self.kernel = StokesKernel(mu=mu)
        self.use_fmm = use_fmm
        self.options = options or FMMOptions(p=6, max_points=80)
        self.parallel_ranks = parallel_ranks
        self.overlap = overlap
        self.matvec_count = 0
        self._fmm: KIFMM | None = None
        self._pfmm: "ParallelFMM | None" = None
        self.refresh_geometry()

    def refresh_geometry(self) -> None:
        """Rebuild after surfaces moved (each time step, as in Section 3)."""
        self.points = np.vstack([s.points for s in self.surfaces])
        self.weights = np.concatenate([s.weights for s in self.surfaces])
        self.n = self.points.shape[0]
        normals = np.vstack([s.normals for s in self.surfaces])
        # singular self-patch correction: (a / 8 mu) (3 I - n n^T)
        a = np.sqrt(self.weights / np.pi)
        eye = np.eye(3)[None, :, :]
        nn = np.einsum("ni,nj->nij", normals, normals)
        self._self_blocks = (a / (8.0 * self.kernel.mu))[:, None, None] * (
            3.0 * eye - nn
        )
        if self.use_fmm and self.parallel_ranks > 0:
            self._pfmm = ParallelFMM(
                self.parallel_ranks, self.kernel, self.options,
                overlap=self.overlap,
            ).setup(self.points)
        elif self.use_fmm:
            self._fmm = KIFMM(self.kernel, self.options).setup(self.points)

    def matvec(self, phi: np.ndarray) -> np.ndarray:
        """Apply the discrete single-layer operator to flat densities.

        Accepts a single density — flat ``(3n,)`` or ``(n, 3)`` — or a
        stacked block: ``(3n, nrhs)``, ``(n, 3, nrhs)``, or the 2-D
        row-major form ``(n, 3 * nrhs)`` (the trailing two axes of
        ``(n, 3, nrhs)`` flattened).  Blocks are forwarded to the
        batched multi-RHS FMM apply as views — no flatten copies — so
        one blocked matvec rides one evaluation (and, on the parallel
        path, one overlapped exchange).  Returns the result in the
        matching flat form: ``(3n,)``, ``(3n, nrhs)`` or
        ``(n, 3 * nrhs)``.
        """
        phi = np.asarray(phi, dtype=np.float64)
        wide = (
            phi.ndim == 2
            and phi.shape[0] == self.n
            and phi.shape[1] != 3
            and phi.shape[1] % 3 == 0
        )
        phi3, nrhs, single = coerce_density(
            phi.reshape(self.n, 3, -1) if wide else phi, self.n, 3
        )
        weighted = phi3 * self.weights[:, None, None]
        if self._pfmm is not None:
            u = self._pfmm.apply(weighted if not single else weighted[:, :, 0])
        elif self._fmm is not None:
            u = self._fmm.apply(weighted if not single else weighted[:, :, 0])
        else:
            u = np.empty((self.n, 3, nrhs))
            for r in range(nrhs):
                u[:, :, r] = self.kernel.apply(
                    self.points, self.points, weighted[:, :, r]
                )
            if single:
                u = u[:, :, 0]
        if single:
            u = u + np.einsum("nij,nj->ni", self._self_blocks, phi3[:, :, 0])
        else:
            u = u + np.einsum("nij,njr->nir", self._self_blocks, phi3)
        self.matvec_count += 1
        if single:
            return u.ravel()
        if wide:
            return u.reshape(self.n, 3 * nrhs)
        return u.reshape(3 * self.n, nrhs)

    def solve(
        self,
        u_bc: np.ndarray,
        tol: float = 1e-6,
        maxiter: int = 1000,
        restart: int = 80,
    ) -> GMRESResult:
        """Solve ``S phi = u_bc`` for the traction-like density."""
        return gmres(
            self.matvec,
            np.asarray(u_bc, dtype=np.float64).ravel(),
            tol=tol,
            maxiter=maxiter,
            restart=restart,
        )

    def solve_block(
        self,
        u_bc_block: np.ndarray,
        tol: float = 1e-6,
        maxiter: int = 1000,
        restart: int = 80,
    ) -> BlockGMRESResult:
        """Solve ``S phi = u`` for a block of boundary conditions.

        One lockstep :func:`~repro.linalg.gmres.gmres_block` solve whose
        every Arnoldi step is a single blocked matvec — i.e. one batched
        multi-RHS interaction evaluation for all right-hand sides.
        ``u_bc_block`` is ``(3n, nrhs)`` or ``(n, 3, nrhs)``; the
        solution block comes back as ``(3n, nrhs)`` columns.
        """
        U = np.asarray(u_bc_block, dtype=np.float64)
        if U.ndim == 3:
            U = U.reshape(3 * self.n, -1)
        return gmres_block(
            self.matvec, U, tol=tol, maxiter=maxiter, restart=restart
        )

    def body_slices(self) -> list[slice]:
        """Index ranges of each surface within the concatenated points."""
        out, start = [], 0
        for s in self.surfaces:
            out.append(slice(start, start + s.n))
            start += s.n
        return out


def evaluate_velocity(
    operator: StokesSingleLayer,
    density: np.ndarray,
    points: np.ndarray,
    use_fmm: bool = False,
    options: FMMOptions | None = None,
) -> np.ndarray:
    """Fluid velocity at off-surface points from a solved density.

    Evaluates ``u(x) = int G(x, y) phi(y) dS(y)`` at arbitrary field
    points (e.g. a visualisation slice).  With ``use_fmm`` the evaluation
    runs through a KIFMM with disjoint sources and targets; otherwise
    directly.  Points on or inside a body produce the (non-physical)
    single-layer continuation; keep them outside the surfaces.
    """
    points = np.asarray(points, dtype=np.float64)
    phi = np.asarray(density, dtype=np.float64).reshape(operator.n, 3)
    weighted = phi * operator.weights[:, None]
    if use_fmm:
        fmm = KIFMM(operator.kernel, options or operator.options)
        fmm.setup(operator.points, points)
        return fmm.apply(weighted)
    return operator.kernel.apply(points, operator.points, weighted)


def solve_single_layer(
    operator: StokesSingleLayer,
    u_bc: np.ndarray,
    tol: float = 1e-6,
    maxiter: int = 1000,
    restart: int = 80,
) -> np.ndarray:
    """Convenience wrapper returning the density as an ``(n, 3)`` array."""
    result = operator.solve(u_bc, tol=tol, maxiter=maxiter, restart=restart)
    if not result.converged:
        raise RuntimeError(
            f"GMRES failed to converge: residual {result.residual:.2e} "
            f"after {result.iterations} iterations"
        )
    return result.x.reshape(operator.n, 3)
