"""Work model tests — the decisive one compares against the evaluator.

``compute_work`` must agree with the flop counter of the *actual*
evaluator run on the same tree: the performance model then provably
times the work the implementation performs.
"""

import numpy as np
import pytest

from repro.core.evaluator import evaluate
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel.costs import communication_volumes, compute_work

from tests.conftest import clustered_cloud, uniform_cloud


@pytest.mark.parametrize("m2l", ["dense", "fft", "rsvd", "auto"])
@pytest.mark.parametrize("cloud", ["uniform", "clustered"])
def test_work_matches_evaluator_flops(rng, m2l, cloud):
    kernel = LaplaceKernel()
    pts = (
        uniform_cloud(rng, 500) if cloud == "uniform" else clustered_cloud(rng, 500)
    )
    p = 4
    opts = FMMOptions(p=p, max_points=25, m2l=m2l)
    fmm = KIFMM(kernel, opts).setup(pts)
    fmm.apply(rng.standard_normal((500, 1)))
    measured = fmm.flops.by_phase()
    model = compute_work(
        fmm.tree, fmm.lists, kernel, p, m2l=fmm.m2l_schedule,
        rsvd_rank=fmm.cache.m2l_rsvd_rank,
    ).totals()
    # Every phase agrees bitwise: all per-stage terms are integer-valued
    # floats (the forward FFT is attributed to the source box, not
    # amortised over its consumers), so float summation is exact and
    # the model is an identity with the evaluator's counter — the same
    # identity `repro plancheck` certifies statically.
    for phase, value in model.items():
        assert value == measured.get(phase, 0.0), phase


def test_vector_kernel_scales_work(rng):
    pts = uniform_cloud(rng, 400)
    tree = build_tree(pts, max_points=30)
    lists = build_lists(tree)
    w_s = compute_work(tree, lists, StokesKernel(), 4).total
    w_l = compute_work(tree, lists, LaplaceKernel(), 4).total
    assert w_s > 3 * w_l  # the paper's Stokes-costs-more observation


def test_count_override(rng):
    """Scaled global counts scale the particle-dependent work."""
    pts = uniform_cloud(rng, 300)
    tree = build_tree(pts, max_points=30)
    lists = build_lists(tree)
    kernel = LaplaceKernel()
    base = compute_work(tree, lists, kernel, 4)
    nsrc = np.array([b.nsrc for b in tree.boxes], dtype=float) * 2
    ntrg = np.array([b.ntrg for b in tree.boxes], dtype=float) * 2
    scaled = compute_work(
        tree, lists, kernel, 4, global_nsrc=nsrc, global_ntrg=ntrg
    )
    # U-list work is quadratic in the per-leaf count
    assert scaled.down_u.sum() == pytest.approx(4 * base.down_u.sum())


def test_rejects_bad_m2l(rng):
    tree = build_tree(uniform_cloud(rng, 100), max_points=30)
    lists = build_lists(tree)
    with pytest.raises(ValueError):
        compute_work(tree, lists, LaplaceKernel(), 4, m2l="nope")
    # "auto" is a picker policy, not a backend: the flop model needs the
    # resolved schedule (resolution requires an operator cache)
    with pytest.raises(ValueError):
        compute_work(tree, lists, LaplaceKernel(), 4, m2l="auto")


def test_rsvd_requires_rank_callable(rng):
    tree = build_tree(uniform_cloud(rng, 400), max_points=25)
    lists = build_lists(tree)
    with pytest.raises(ValueError, match="rsvd_rank"):
        compute_work(tree, lists, LaplaceKernel(), 4, m2l="rsvd")


def test_communication_volumes_duality(rng):
    """Equiv users come from V/W lists; source users from U/X lists."""
    tree = build_tree(clustered_cloud(rng, 500), max_points=20)
    lists = build_lists(tree)
    equiv_uses, source_uses, equiv_bytes, source_bytes = communication_volumes(
        tree, lists, LaplaceKernel(), 4
    )
    n_equiv_pairs = sum(len(u) for u in equiv_uses)
    expected = sum(len(v) for v in lists.V) + sum(
        len(w) for i, w in enumerate(lists.W) if tree.boxes[i].is_leaf
    )
    assert n_equiv_pairs == expected
    assert np.all(equiv_bytes > 0)
    # source bytes proportional to leaf population
    for b in tree.boxes:
        assert source_bytes[b.index] == 8.0 * b.nsrc * 4
