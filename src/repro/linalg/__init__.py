"""Self-contained numerical linear algebra used across the package.

The paper relies on PETSc for its Krylov iterative solvers; here the
application layer (:mod:`repro.bie`) uses our own restarted GMRES, and
the KIFMM density solves (equations 2.1–2.5) use a truncated-SVD
regularised pseudo-inverse.
"""

from repro.linalg.pinv import regularized_pinv, svd_rank, truncated_svd
from repro.linalg.rsvd import randomized_svd
from repro.linalg.gmres import (
    BlockGMRESResult,
    GMRESResult,
    gmres,
    gmres_block,
)

__all__ = [
    "regularized_pinv",
    "svd_rank",
    "truncated_svd",
    "randomized_svd",
    "gmres",
    "gmres_block",
    "GMRESResult",
    "BlockGMRESResult",
]
