"""FFT-accelerated M2L translations.

Section 1 of the paper: "the multipole-to-local translations are
accelerated using local FFTs, resulting in performances that are on par
with the fastest known adaptive FMM implementations".

Why this works: both the upward equivalent surface of a source box ``A``
and the downward check surface of a same-level target box ``B`` are the
boundary nodes of congruent ``p^3`` lattices with spacing
``h = 2 * inner * r / (p - 1)``.  Writing the target node as
``x_t = c_B - inner*r + h*t`` and the source node as
``y_s = c_A - inner*r + h*s`` (``t, s`` lattice multi-indices), every
pairwise displacement is ``x_t - y_s = (c_B - c_A) + h * (t - s)`` — a
function of ``t - s`` only.  The check-potential evaluation is therefore
a 3-D discrete convolution with the kernel tensor
``T[d] = G((c_B - c_A) + h d)``, which we embed in a ``(2p)^3`` circulant
and apply with FFTs:

- one forward FFT per *source* box (amortised over all its V-interactions),
- one Hadamard multiply-accumulate per box pair,
- one inverse FFT per *target* box.

The kernel tensors depend only on (level, anchor offset); like the dense
operators they rescale across levels for homogeneous kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import OCTANT_VECTORS, BufferPool
from repro.core.precompute import OperatorCache
from repro.core.surfaces import surface_lattice_indices

#: Frequency-block and parent-pair chunk sizes of the blocked Hadamard
#: stage: one ``(HADAMARD_CHUNK, 8, HADAMARD_FREQ_BLOCK)`` complex slab
#: (~9 MB) fits in the last-level cache, so the transposes surrounding
#: the batched 8x8 matmuls run at cache speed instead of DRAM-miss speed.
HADAMARD_FREQ_BLOCK = 144
HADAMARD_CHUNK = 512


class FFTM2L:
    """Kernel-tensor cache and grid scatter/gather for FFT M2L."""

    def __init__(self, cache: OperatorCache) -> None:
        self.cache = cache
        self.kernel = cache.kernel
        self.p = cache.p
        self.m = 2 * cache.p  # circulant embedding size
        lattice = surface_lattice_indices(self.p)
        self._surf_ijk = (lattice[:, 0], lattice[:, 1], lattice[:, 2])
        # displacement grid d(i) for circulant index i: i -> i or i - m,
        # with the unused index i == p zeroed out (no valid (t, s) pair
        # has t - s == +-p).
        idx = np.arange(self.m)
        self._disp = np.where(idx < self.p, idx, idx - self.m)
        self._dead = self.p  # circulant index that never contributes
        self._tensors: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
        self._combos: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}

    # -- kernel tensors ------------------------------------------------------

    def kernel_tensor_hat(
        self, level: int, offset: tuple[int, int, int]
    ) -> np.ndarray:
        """``rfftn`` of the circulant-embedded kernel tensor.

        Returns a complex array of shape
        ``(target_dof, source_dof, m, m, m//2 + 1)``.
        """
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(o) for o in offset))
        if key not in self._tensors:
            self._tensors[key] = self._build_tensor(key_level, offset)
        base = self._tensors[key]
        if h is None or level == key_level:
            return base
        return base * (2.0 ** (key_level - level)) ** h

    def _build_tensor(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        m, p = self.m, self.p
        r = self.cache.half_width(level)
        spacing = 2.0 * self.cache.inner * r / (p - 1)
        delta = np.asarray(offset, dtype=np.float64) * (2.0 * r)
        d = self._disp.astype(np.float64)
        dx, dy, dz = np.meshgrid(d, d, d, indexing="ij")
        pts = np.stack([dx, dy, dz], axis=-1).reshape(-1, 3) * spacing + delta
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        blocks = self.kernel.matrix(pts, np.zeros((1, 3)))  # (m^3 * qd, md)
        grid = blocks.reshape(m, m, m, qd, md).transpose(3, 4, 0, 1, 2)
        grid = np.ascontiguousarray(grid)
        grid[:, :, self._dead, :, :] = 0.0
        grid[:, :, :, self._dead, :] = 0.0
        grid[:, :, :, :, self._dead] = 0.0
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    def combo_tensor_hat(
        self, level: int, po: tuple[int, int, int]
    ) -> np.ndarray:
        """Frequency-major octant mixing matrix of one parent offset.

        For a parent pair at anchor offset ``po`` the child pair
        ``(octant ot, octant os)`` sits at offset
        ``2 po + OCTANT_VECTORS[ot] - OCTANT_VECTORS[os]``; entry
        ``[f, ot * qd + q, os * md + m]`` holds that offset's kernel
        tensor at frequency ``f`` (zero where the offset is adjacent, so
        non-V child pairs contribute nothing).  Shape
        ``(nfreq, 8 * target_dof, 8 * source_dof)``; cached per
        ``(level, po)`` with the same homogeneity rescaling as
        :meth:`kernel_tensor_hat`.
        """
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(x) for x in po))
        M = self._combos.get(key)
        if M is None:
            qd, md = self.kernel.target_dof, self.kernel.source_dof
            nfreq = self.m * self.m * (self.m // 2 + 1)
            M = np.zeros((nfreq, 8 * qd, 8 * md), dtype=np.complex128)
            pv = np.asarray(key[1], dtype=np.int64)
            for ot in range(8):
                for os_ in range(8):
                    off = 2 * pv + OCTANT_VECTORS[ot] - OCTANT_VECTORS[os_]
                    if np.abs(off).max() < 2:
                        continue
                    T = self.kernel_tensor_hat(key_level, tuple(off))
                    M[:, ot * qd : (ot + 1) * qd, os_ * md : (os_ + 1) * md] = (
                        T.reshape(qd, md, nfreq).transpose(2, 0, 1)
                    )
            self._combos[key] = M
        if h is None or level == key_level:
            return M
        return M * (2.0 ** (key_level - level)) ** h

    # -- grid scatter / gather ------------------------------------------------

    def density_hat(self, ue: np.ndarray) -> np.ndarray:
        """Forward FFT of one box's upward equivalent density.

        ``ue`` is the flat point-major density ``(n_surf * source_dof,)``;
        returns ``(source_dof, m, m, m//2 + 1)`` complex.
        """
        md = self.kernel.source_dof
        vals = ue.reshape(-1, md)
        grid = np.zeros((md, self.m, self.m, self.m))
        i, j, k = self._surf_ijk
        grid[:, i, j, k] = vals.T
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    def accumulate(
        self,
        acc: np.ndarray,
        tensor_hat: np.ndarray,
        phi_hat: np.ndarray,
    ) -> None:
        """``acc += tensor_hat applied to phi_hat`` in Fourier space.

        ``acc`` has shape ``(target_dof, m, m, m//2 + 1)``.
        """
        acc += np.einsum("qmxyz,mxyz->qxyz", tensor_hat, phi_hat)

    def check_potential(self, acc: np.ndarray) -> np.ndarray:
        """Inverse FFT and surface-node gather.

        Returns the flat point-major downward check potential
        ``(n_surf * target_dof,)``.
        """
        full = np.fft.irfftn(acc, s=(self.m, self.m, self.m), axes=(-3, -2, -1))
        i, j, k = self._surf_ijk
        return np.ascontiguousarray(full[:, i, j, k].T).reshape(-1)

    # -- batched variants (the planned evaluator's per-level operations) -----

    def density_hat_many(self, ue_rows: np.ndarray, grid: np.ndarray) -> np.ndarray:
        """Forward FFTs of many boxes' upward equivalent densities at once.

        ``ue_rows`` is ``(n, n_surf * source_dof)`` flat point-major
        densities; ``grid`` is a zeroed ``(n, source_dof, m, m, m)``
        scratch array (only surface nodes are written).  Returns
        ``(n, source_dof, m, m, m//2 + 1)`` complex.
        """
        md = self.kernel.source_dof
        vals = ue_rows.reshape(ue_rows.shape[0], -1, md)
        i, j, k = self._surf_ijk
        grid[:, :, i, j, k] = vals.transpose(0, 2, 1)
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    def accumulate_many(
        self,
        acc: np.ndarray,
        tensor_hat: np.ndarray,
        phi_hat_rows: np.ndarray,
        trg_pos: np.ndarray,
    ) -> None:
        """Apply one translation class to a stack of source transforms.

        All pairs of a class share ``tensor_hat``; ``trg_pos`` rows of
        ``acc`` (shape ``(ntrg, target_dof, m, m, m//2 + 1)``) receive the
        respective products.  Within a class every target occurs at most
        once, so plain fancy-indexed ``+=`` accumulation is exact.
        """
        acc[trg_pos] += np.einsum("qmxyz,nmxyz->nqxyz", tensor_hat, phi_hat_rows)

    def hadamard_blocked(
        self,
        level: int,
        po_groups: list,
        phi_ext: np.ndarray,
        acc_ext: np.ndarray,
        pool: BufferPool,
    ) -> None:
        """Parent-pair-blocked Hadamard stage.

        The class-major stage streams ~5 full-spectrum passes per box
        pair; here each gathered parent-pair slab (8 source + 8 target
        child rows) covers up to 64 pairs through per-frequency batched
        ``(8 qd) x (8 md)`` matmuls, cutting DRAM traffic by an order of
        magnitude.  ``phi_ext`` is ``(n + 1, source_dof, nfreq)`` and
        ``acc_ext`` is ``(n + 1, target_dof, nfreq)``; the last row of
        each is the plan's sentinel (zero source / discarded target).
        ``acc_ext`` is fully overwritten.  Frequencies are processed in
        cache-sized blocks — see :data:`HADAMARD_FREQ_BLOCK`.
        """
        nbp, md, nfreq = phi_ext.shape
        nbt, qd = acc_ext.shape[0], acc_ext.shape[1]
        ms = [self.combo_tensor_hat(level, po) for po, _, _ in po_groups]
        phi_ext[-1] = 0.0
        for f0 in range(0, nfreq, HADAMARD_FREQ_BLOCK):
            f1 = min(f0 + HADAMARD_FREQ_BLOCK, nfreq)
            fb = f1 - f0
            phi_fb = pool.empty("v_phi_fb", (nbp, md, fb), np.complex128)
            np.copyto(phi_fb, phi_ext[:, :, f0:f1])
            acc_fb = pool.zeros("v_acc_fb", (nbt, qd, fb), np.complex128)
            for (_, src_rows, trg_rows), M in zip(po_groups, ms):
                mb = pool.empty("v_mb", (fb, 8 * qd, 8 * md), np.complex128)
                np.copyto(mb, M[f0:f1])
                mbt = mb.transpose(0, 2, 1)
                npp = src_rows.shape[0]
                for c0 in range(0, npp, HADAMARD_CHUNK):
                    c1 = min(c0 + HADAMARD_CHUNK, npp)
                    nc = c1 - c0
                    gt = pool.empty("v_gt", (fb, nc, 8 * md), np.complex128)
                    g = phi_fb[src_rows[c0:c1]]  # (nc, 8, md, fb)
                    np.copyto(gt, g.transpose(3, 0, 1, 2).reshape(fb, nc, 8 * md))
                    r = pool.empty("v_r", (fb, nc, 8 * qd), np.complex128)
                    np.matmul(gt, mbt, out=r)
                    acc_fb[trg_rows[c0:c1]] += (
                        r.reshape(fb, nc, 8, qd).transpose(1, 2, 3, 0)
                    )
            acc_ext[:, :, f0:f1] = acc_fb

    def check_potential_many(self, acc: np.ndarray) -> np.ndarray:
        """Inverse FFTs and surface gathers for a stack of target boxes.

        Returns ``(n, n_surf * target_dof)`` flat point-major check
        potentials.
        """
        full = np.fft.irfftn(acc, s=(self.m, self.m, self.m), axes=(-3, -2, -1))
        i, j, k = self._surf_ijk
        gathered = full[:, :, i, j, k]  # (n, target_dof, n_surf)
        return np.ascontiguousarray(gathered.transpose(0, 2, 1)).reshape(
            acc.shape[0], -1
        )

    # -- flop accounting -------------------------------------------------------

    def flops_per_pair(self) -> float:
        """Real flops of one Hadamard multiply-accumulate (per box pair)."""
        nfreq = self.m * self.m * (self.m // 2 + 1)
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        return 8.0 * qd * md * nfreq

    def flops_per_fft(self) -> float:
        """Approximate real flops of one forward or inverse grid FFT."""
        n = self.m**3
        return 5.0 * n * np.log2(n)
