"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--kernel", "warp", "--n", "10"])

    @pytest.mark.parametrize(
        "command", ["evaluate", "commcheck", "racecheck", "serve", "bench"]
    )
    @pytest.mark.parametrize("flag", ["--m2l", "--dtype"])
    def test_unknown_backend_exits_2_naming_choices(
        self, command, flag, capsys
    ):
        """Typos in --m2l/--dtype must exit 2 and name the choices."""
        with pytest.raises(SystemExit) as exc:
            main([command, flag, "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        expected = ("fft", "dense", "rsvd", "auto") if flag == "--m2l" \
            else ("float64", "float32")
        for choice in expected:
            assert choice in err


class TestEvaluate:
    def test_basic(self, capsys):
        rc = main(["evaluate", "--n", "500", "--p", "3", "--s", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel=laplace" in out
        assert "tree:" in out

    def test_check_reports_error(self, capsys):
        rc = main(
            ["evaluate", "--n", "400", "--p", "4", "--check",
             "--samples", "50"]
        )
        assert rc == 0
        assert "relative error" in capsys.readouterr().out

    def test_stokes_corners(self, capsys):
        rc = main(
            ["evaluate", "--kernel", "stokes", "--workload", "corners",
             "--n", "300", "--p", "3"]
        )
        assert rc == 0
        assert "kernel=stokes" in capsys.readouterr().out

    @pytest.mark.parametrize("m2l", ["rsvd", "auto"])
    def test_rsvd_and_auto_backends(self, capsys, m2l):
        rc = main(
            ["evaluate", "--n", "400", "--p", "3", "--m2l", m2l,
             "--check", "--samples", "30"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"m2l={m2l}" in out
        assert "m2l schedule:" in out

    def test_rsvd_float32(self, capsys):
        rc = main(
            ["evaluate", "--n", "400", "--p", "3", "--m2l", "rsvd",
             "--dtype", "float32"]
        )
        assert rc == 0
        assert "dtype=float32" in capsys.readouterr().out


class TestBench:
    def test_quick_ablation_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_m2l.json"
        rc = main(
            ["bench", "--kernels", "laplace", "--orders", "3",
             "--sizes", "500", "--s", "40", "--repeats", "1",
             "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "M2L backend ablation" in out
        import json

        payload = json.loads(out_path.read_text())
        confs = {(e["m2l"], e["dtype"]) for e in payload["entries"]}
        assert {("dense", "float64"), ("fft", "float64"),
                ("rsvd", "float64"), ("auto", "float64")} <= confs
        for e in payload["entries"]:
            if e["m2l"] != "auto":
                assert e["rel_err_vs_dense"] < 1e-5

    def test_rsvd_factor_assertion_can_fail(self, capsys, tmp_path):
        rc = main(
            ["bench", "--kernels", "laplace", "--orders", "3",
             "--sizes", "500", "--s", "40", "--repeats", "1",
             "--out", "", "--rsvd-factor", "0.0"]
        )
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out


class TestAccuracy:
    def test_sweep(self, capsys):
        rc = main(
            ["accuracy", "--n", "400", "--orders", "2,4", "--p", "4",
             "--samples", "50"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy sweep" in out
        assert out.count("\n") >= 4

    def test_bad_orders(self):
        with pytest.raises(SystemExit):
            main(["accuracy", "--n", "100", "--orders", "2,x"])


class TestProject:
    def test_writes_report_and_gates_pass(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_scaling.json"
        rc = main(
            ["project", "--n", "3000", "--max-ranks", "64", "--p", "4",
             "--s", "40", "--out", str(out_path),
             "--max-crossover", "64", "--min-speedup", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "crossover rank" in out
        import json

        payload = json.loads(out_path.read_text())
        assert [pt["P"] for pt in payload["points"]] == [2, 4, 8, 16, 32, 64]
        assert payload["crossover_rank"] is not None
        for pt in payload["points"]:
            assert pt["flat_max_rank_msgs"] >= pt["tree_max_rank_msgs"] >= 0

    def test_min_speedup_gate_can_fail(self, capsys):
        rc = main(
            ["project", "--n", "2000", "--max-ranks", "16", "--p", "4",
             "--s", "40", "--out", "", "--min-speedup", "1000.0"]
        )
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out


class TestScaling:
    def test_fixed(self, capsys):
        rc = main(
            ["scaling", "--mode", "fixed", "--n", "100000",
             "--model-n", "5000", "--procs", "1,4", "--p", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fixed-size scaling" in out

    def test_isogranular(self, capsys):
        rc = main(
            ["scaling", "--mode", "isogranular", "--grain", "2000",
             "--cap", "4000", "--procs", "1,4", "--p", "4"]
        )
        assert rc == 0
        assert "isogranular scaling" in capsys.readouterr().out
