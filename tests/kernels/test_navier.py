"""Navier (Kelvin) elastostatic kernel tests."""

import numpy as np
import pytest

from repro.kernels import NavierKernel, StokesKernel


class TestValues:
    def test_tensor_symmetry(self, rng):
        kern = NavierKernel(mu=1.0, nu=0.25)
        x = rng.standard_normal((1, 3))
        y = rng.standard_normal((1, 3)) + 3.0
        K = kern.matrix(x, y)
        assert np.allclose(K, K.T)

    def test_incompressible_limit_matches_stokes(self, rng):
        """As nu -> 1/2 the Kelvin solution becomes (half) the Stokeslet."""
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((4, 3)) + 3.0
        nu = 0.5 - 1e-9
        kelvin = NavierKernel(mu=1.0, nu=nu).matrix(x, y)
        stokes = StokesKernel(mu=1.0).matrix(x, y)
        # 1/(16 pi mu (1-nu)) -> 1/(8 pi mu) and (3-4nu) -> 1
        assert np.allclose(kelvin, stokes, rtol=1e-6)

    def test_homogeneity(self, rng):
        kern = NavierKernel()
        x = rng.standard_normal((2, 3))
        y = rng.standard_normal((2, 3)) + 2.0
        assert np.allclose(kern.matrix(2 * x, 2 * y), kern.matrix(x, y) / 2.0)

    def test_shear_modulus_scaling(self, rng):
        x = rng.standard_normal((2, 3))
        y = rng.standard_normal((2, 3)) + 2.0
        K1 = NavierKernel(mu=1.0, nu=0.3).matrix(x, y)
        K3 = NavierKernel(mu=3.0, nu=0.3).matrix(x, y)
        assert np.allclose(K3, K1 / 3.0)


class TestPDE:
    def test_navier_equation(self):
        """FD check of mu Delta u + (lambda+mu) grad div u = 0 off the pole."""
        mu, nu = 1.0, 0.3
        lam = 2.0 * mu * nu / (1.0 - 2.0 * nu)
        kern = NavierKernel(mu=mu, nu=nu)
        y = np.zeros((1, 3))
        force = np.array([0.5, -0.2, 1.0])
        x0 = np.array([0.7, 0.6, -0.5])
        h = 2e-4

        def u(p):
            return kern.matrix(p.reshape(1, 3), y) @ force

        eye = np.eye(3)
        lap_u = sum(u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0) for e in eye) / h**2

        def div_u(p):
            return sum(
                (u(p + h * e)[i] - u(p - h * e)[i]) / (2 * h)
                for i, e in enumerate(eye)
            )

        grad_div = np.array(
            [(div_u(x0 + h * e) - div_u(x0 - h * e)) / (2 * h) for e in eye]
        )
        residual = mu * lap_u + (lam + mu) * grad_div
        assert np.allclose(residual, 0.0, atol=5e-3)


class TestInterface:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NavierKernel(mu=-1.0)
        with pytest.raises(ValueError):
            NavierKernel(nu=0.5)
        with pytest.raises(ValueError):
            NavierKernel(nu=-1.5)

    def test_dofs(self):
        kern = NavierKernel()
        assert kern.source_dof == kern.target_dof == 3
