"""Morton (Z-order) keys for 3D octrees.

Morton ordering is the backbone of both the tree construction (points
sorted by deep Morton key make every box's points a contiguous range) and
the parallel partitioning of Section 3.1 ("we use Morton curve
partitioning"), following the hashed-octree tradition of Warren & Salmon
(refs [23], [24] of the paper).

Keys interleave 21 bits per dimension into a ``uint64``:
``key = z20 y20 x20 ... z0 y0 x0``, so the top 3 bits select the level-1
octant and each further 3-bit group descends one level.
"""

from __future__ import annotations

import numpy as np

#: Deepest supported tree level: 21 bits per dimension in a uint64 key.
MAX_DEPTH = 21

_U = np.uint64  # shorthand for literal casts


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each entry: bit i -> bit 3*i."""
    x = x.astype(np.uint64) & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`: gather every third bit."""
    x = x.astype(np.uint64) & _U(0x1249249249249249)
    x = (x ^ (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x ^ (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x ^ (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x ^ (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x ^ (x >> _U(32))) & _U(0x1FFFFF)
    return x


def anchor_to_key(ix, iy, iz) -> np.ndarray:
    """Interleave integer coordinates into Morton keys (vectorised)."""
    return _part1by2(np.asarray(ix)) | (_part1by2(np.asarray(iy)) << _U(1)) | (
        _part1by2(np.asarray(iz)) << _U(2)
    )


def key_to_anchor(key) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """De-interleave Morton keys back into ``(ix, iy, iz)``."""
    key = np.asarray(key, dtype=np.uint64)
    return (
        _compact1by2(key),
        _compact1by2(key >> _U(1)),
        _compact1by2(key >> _U(2)),
    )


def decode_key(key: int, level: int) -> tuple[int, int, int]:
    """Anchor of a single depth-``MAX_DEPTH`` key truncated to ``level``."""
    shifted = np.uint64(key) >> _U(3 * (MAX_DEPTH - level))
    ix, iy, iz = key_to_anchor(shifted)
    return int(ix), int(iy), int(iz)


def encode_points(
    points: np.ndarray, corner: np.ndarray, side: float
) -> np.ndarray:
    """Depth-``MAX_DEPTH`` Morton keys of points in the root box.

    Parameters
    ----------
    points:
        ``(n, 3)`` coordinates; must lie inside the root box (points
        exactly on the far face are clamped into the last cell).
    corner:
        Minimum corner of the root box.
    side:
        Side length of the (cubic) root box.

    Returns
    -------
    ``(n,)`` uint64 Morton keys at depth :data:`MAX_DEPTH`.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {points.shape}")
    if side <= 0:
        raise ValueError(f"root box side must be positive, got {side}")
    scaled = (points - np.asarray(corner, dtype=np.float64)) / side
    if scaled.size and (scaled.min() < -1e-12 or scaled.max() > 1.0 + 1e-12):
        raise ValueError("points fall outside the root box")
    cells = np.clip(
        (scaled * (1 << MAX_DEPTH)).astype(np.int64), 0, (1 << MAX_DEPTH) - 1
    )
    return anchor_to_key(cells[:, 0], cells[:, 1], cells[:, 2])


def key_prefix(key: np.ndarray, level: int) -> np.ndarray:
    """Truncate depth-``MAX_DEPTH`` keys to the box key at ``level``."""
    return np.asarray(key, dtype=np.uint64) >> _U(3 * (MAX_DEPTH - level))


def child_of(key_at_level: np.ndarray, parent_level: int) -> np.ndarray:
    """Octant index (0..7) of a key one level below ``parent_level``."""
    return (np.asarray(key_at_level, dtype=np.uint64) & _U(7)).astype(np.int64)
