"""Direct summation baseline and error metric tests."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import direct_evaluate, relative_error
from repro.util.flops import FlopCounter


class TestDirectEvaluate:
    def test_matches_manual_loop(self, rng):
        kern = LaplaceKernel()
        x = rng.standard_normal((8, 3))
        y = rng.standard_normal((6, 3))
        phi = rng.standard_normal(6)
        expected = np.zeros(8)
        for i in range(8):
            for j in range(6):
                r = np.linalg.norm(x[i] - y[j])
                expected[i] += phi[j] / (4 * np.pi * r)
        u = direct_evaluate(kern, x, y, phi)
        assert np.allclose(u.ravel(), expected)

    def test_self_interaction_excluded(self, rng):
        kern = LaplaceKernel()
        pts = rng.standard_normal((5, 3))
        phi = np.ones(5)
        u = direct_evaluate(kern, pts, pts, phi)
        assert np.all(np.isfinite(u))

    def test_block_size_invariance(self, rng, kernel):
        pts = rng.standard_normal((30, 3))
        phi = rng.standard_normal((30, kernel.source_dof))
        a = direct_evaluate(kernel, pts, pts, phi, block=7)
        b = direct_evaluate(kernel, pts, pts, phi, block=1000)
        assert np.allclose(a, b)

    def test_linearity(self, rng, kernel):
        x = rng.standard_normal((10, 3))
        y = rng.standard_normal((12, 3))
        p1 = rng.standard_normal((12, kernel.source_dof))
        p2 = rng.standard_normal((12, kernel.source_dof))
        u12 = direct_evaluate(kernel, x, y, p1 + 2 * p2)
        u1 = direct_evaluate(kernel, x, y, p1)
        u2 = direct_evaluate(kernel, x, y, p2)
        assert np.allclose(u12, u1 + 2 * u2)

    def test_flop_accounting(self, rng):
        kern = StokesKernel()
        x = rng.standard_normal((10, 3))
        y = rng.standard_normal((20, 3))
        flops = FlopCounter()
        direct_evaluate(kern, x, y, rng.standard_normal((20, 3)), flops=flops)
        assert flops.get("direct") == 10 * 20 * kern.flops_per_pair

    def test_output_shape(self, rng):
        kern = StokesKernel()
        u = direct_evaluate(
            kern, rng.standard_normal((4, 3)), rng.standard_normal((6, 3)),
            rng.standard_normal((6, 3)),
        )
        assert u.shape == (4, 3)


class TestRelativeError:
    def test_zero_for_identical(self, rng):
        v = rng.standard_normal(20)
        assert relative_error(v, v) == 0.0

    def test_known_value(self):
        assert relative_error([1.1], [1.0]) == pytest.approx(0.1)

    def test_zero_reference_falls_back_to_absolute(self):
        assert relative_error([0.5], [0.0]) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(3), np.zeros(4))

    def test_scale_invariance(self, rng):
        a = rng.standard_normal(10)
        b = rng.standard_normal(10)
        assert relative_error(a, b) == pytest.approx(
            relative_error(1e6 * a, 1e6 * b)
        )
