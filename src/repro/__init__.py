"""repro — a parallel kernel-independent fast multipole method.

Reproduction of Ying, Biros, Zorin & Langston, *A new parallel
kernel-independent fast multipole method*, SC 2003.

The package is organised bottom-up:

- :mod:`repro.kernels` — single-layer kernels of second-order elliptic PDEs
  (Laplace, modified Laplace, Stokes, Navier) plus the direct O(N^2) baseline.
- :mod:`repro.octree` — adaptive hierarchical octree and the U/V/W/X
  interaction lists of the adaptive FMM.
- :mod:`repro.core` — the kernel-independent FMM itself: equivalent/check
  surfaces, density translations, FFT-accelerated M2L, and the public
  :class:`~repro.core.fmm.KIFMM` driver.
- :mod:`repro.parallel` — the SC'03 parallel algorithm (Morton partitioning,
  local essential trees, owner assignment, Algorithm-1 gather/scatter) on an
  in-process simulated MPI.
- :mod:`repro.perfmodel` — TCS-1 machine model used to regenerate the
  paper's scalability tables and figures.
- :mod:`repro.geometry` — the paper's workloads (512 spheres,
  corner-clustered points, uniform cube).
- :mod:`repro.linalg` — restarted GMRES and regularised pseudo-inverses.
- :mod:`repro.bie` — Stokes boundary-integral application layer
  (the Figure 4.1 fluid-structure showcase).
- :mod:`repro.twod` — the complete 2D instantiation (quadtree, square
  surfaces, 2D kernels, :class:`~repro.twod.fmm.KIFMM2D`).
"""

from repro.core.fmm import KIFMM, FMMOptions
from repro.kernels import (
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
)
from repro.kernels.direct import direct_evaluate

__all__ = [
    "KIFMM",
    "FMMOptions",
    "LaplaceKernel",
    "ModifiedLaplaceKernel",
    "StokesKernel",
    "NavierKernel",
    "direct_evaluate",
]

__version__ = "1.0.0"
