"""Fixture: mutable default argument."""


def accumulate(value, into=[]):
    # seeded violation: mutable-default
    into.append(value)
    return into
