"""Precomputed translation operators (equations 2.1–2.5).

Every KIFMM translation is "evaluate a check potential, then invert the
check-to-equivalent integral equation".  The matrices involved depend
only on the tree level (and, for M2M/L2L, the child octant; for M2L, the
relative box offset) — never on the box position — so they are computed
once and cached.

For kernels homogeneous of degree ``h`` (``G(a x, a y) = a^h G(x, y)``,
i.e. Laplace, Stokes, Navier) the operators at any level are rescalings
of a reference level: evaluation matrices scale by ``a^h`` and the
pseudo-inverses by ``a^-h``, where ``a`` is the box half-width ratio.
Inhomogeneous kernels (modified Laplace) are precomputed per level.
"""

from __future__ import annotations

import numpy as np

from repro.core.surfaces import (
    INNER_RADIUS,
    OUTER_RADIUS,
    scaled_surface,
    surface_grid,
)
from repro.kernels.base import Kernel
from repro.linalg.pinv import regularized_pinv
from repro.linalg.rsvd import randomized_svd


def octant_offset(octant: int) -> np.ndarray:
    """Child-center offset from the parent center, in parent half-widths.

    Octant bit 0/1/2 selects the x/y/z half; bit value 0 means the lower
    half (offset ``-1/2``), 1 the upper half (``+1/2``), matching the
    Morton child indexing of :mod:`repro.octree.morton`.
    """
    if not 0 <= octant < 8:
        raise ValueError(f"octant must be in [0, 8), got {octant}")
    return np.array(
        [
            0.5 if octant & 1 else -0.5,
            0.5 if (octant >> 1) & 1 else -0.5,
            0.5 if (octant >> 2) & 1 else -0.5,
        ]
    )


class OperatorCache:
    """Per-level KIFMM operator factory with homogeneous-kernel rescaling.

    Parameters
    ----------
    kernel:
        The interaction kernel.
    p:
        Surface discretisation order (points per cube edge); the paper's
        "degree of discretization for equivalent densities".
    root_side:
        Side length of the level-0 box, fixing physical scales.
    inner, outer:
        Surface radius factors (see :mod:`repro.core.surfaces`).
    rcond:
        Relative SVD cutoff of the regularised pseudo-inverses.
    """

    def __init__(
        self,
        kernel: Kernel,
        p: int,
        root_side: float,
        inner: float = INNER_RADIUS,
        outer: float = OUTER_RADIUS,
        rcond: float = 1e-12,
    ) -> None:
        if not 1.0 < inner < outer < 3.0:
            raise ValueError(
                f"surface radii must satisfy 1 < inner < outer < 3, "
                f"got inner={inner}, outer={outer}"
            )
        if root_side <= 0:
            raise ValueError(f"root_side must be positive, got {root_side}")
        self.kernel = kernel
        self.p = int(p)
        self.root_side = float(root_side)
        self.inner = float(inner)
        self.outer = float(outer)
        self.rcond = float(rcond)
        # Relative tolerance of the rSVD-compressed M2L factors, tied to
        # the inversion cutoff: the per-operator truncation noise sits a
        # decade below the square root of the pseudo-inverse
        # regularisation floor, leaving headroom for accumulation across
        # a box's full V list while staying well below the
        # p-discretisation error at the paper's operating points.
        self.rsvd_tol = float(0.1 * np.sqrt(self.rcond))
        self.n_surf = surface_grid(p).shape[0]
        self._uc2ue: dict[int, np.ndarray] = {}
        self._dc2de: dict[int, np.ndarray] = {}
        self._m2m: dict[tuple[int, int], np.ndarray] = {}
        self._l2l: dict[tuple[int, int], np.ndarray] = {}
        self._m2l: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
        self._m2l_rsvd: dict[
            tuple[int, tuple[int, int, int]], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._m2l_rsvd_f32: dict[
            tuple[int, tuple[int, int, int]], tuple[np.ndarray, np.ndarray]
        ] = {}

    # -- geometry ----------------------------------------------------------

    def half_width(self, level: int) -> float:
        """Half-width ``r`` of a box at ``level``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return self.root_side / (1 << level) / 2.0

    def up_equiv_points(self, center: np.ndarray, level: int) -> np.ndarray:
        return scaled_surface(self.p, center, self.half_width(level), self.inner)

    def up_check_points(self, center: np.ndarray, level: int) -> np.ndarray:
        return scaled_surface(self.p, center, self.half_width(level), self.outer)

    def down_equiv_points(self, center: np.ndarray, level: int) -> np.ndarray:
        return scaled_surface(self.p, center, self.half_width(level), self.outer)

    def down_check_points(self, center: np.ndarray, level: int) -> np.ndarray:
        return scaled_surface(self.p, center, self.half_width(level), self.inner)

    # -- scaling helpers ---------------------------------------------------

    @property
    def _homog(self) -> float | None:
        return self.kernel.homogeneity

    def _scale(self, level: int, ref: int) -> float:
        """Half-width ratio ``a = r(level) / r(ref)``."""
        return 2.0 ** (ref - level)

    # -- inversion operators -----------------------------------------------

    def uc2ue(self, level: int) -> np.ndarray:
        """Upward check potential -> upward equivalent density (eq. 2.1)."""
        h = self._homog
        key = 0 if h is not None else level
        if key not in self._uc2ue:
            zero = np.zeros(3)
            K = self.kernel.matrix(
                self.up_check_points(zero, key), self.up_equiv_points(zero, key)
            )
            self._uc2ue[key] = regularized_pinv(K, self.rcond)
        base = self._uc2ue[key]
        if h is None or level == key:
            return base
        return base * self._scale(level, key) ** (-h)

    def dc2de(self, level: int) -> np.ndarray:
        """Downward check potential -> downward equivalent density (eq. 2.2)."""
        h = self._homog
        key = 0 if h is not None else level
        if key not in self._dc2de:
            zero = np.zeros(3)
            K = self.kernel.matrix(
                self.down_check_points(zero, key), self.down_equiv_points(zero, key)
            )
            self._dc2de[key] = regularized_pinv(K, self.rcond)
        base = self._dc2de[key]
        if h is None or level == key:
            return base
        return base * self._scale(level, key) ** (-h)

    # -- evaluation operators ------------------------------------------------

    def m2m_check(self, child_level: int, octant: int) -> np.ndarray:
        """Child upward equivalent density -> parent upward check potential.

        The first arrow of the M2M translation (Figure 2.2 left, eq. 2.3);
        the parent's ``uc2ue`` completes the translation after all child
        contributions are accumulated.
        """
        if child_level < 1:
            raise ValueError(f"child_level must be >= 1, got {child_level}")
        h = self._homog
        key = 1 if h is not None else child_level
        cache_key = (key, octant)
        if cache_key not in self._m2m:
            parent_r = self.half_width(key - 1)
            child_center = octant_offset(octant) * parent_r
            K = self.kernel.matrix(
                self.up_check_points(np.zeros(3), key - 1),
                self.up_equiv_points(child_center, key),
            )
            self._m2m[cache_key] = K
        base = self._m2m[cache_key]
        if h is None or child_level == key:
            return base
        return base * self._scale(child_level, key) ** h

    def l2l_check(self, child_level: int, octant: int) -> np.ndarray:
        """Parent downward equivalent density -> child downward check potential.

        First arrow of the L2L translation (Figure 2.2 right, eq. 2.5).
        """
        if child_level < 1:
            raise ValueError(f"child_level must be >= 1, got {child_level}")
        h = self._homog
        key = 1 if h is not None else child_level
        cache_key = (key, octant)
        if cache_key not in self._l2l:
            parent_r = self.half_width(key - 1)
            child_center = octant_offset(octant) * parent_r
            K = self.kernel.matrix(
                self.down_check_points(child_center, key),
                self.down_equiv_points(np.zeros(3), key - 1),
            )
            self._l2l[cache_key] = K
        base = self._l2l[cache_key]
        if h is None or child_level == key:
            return base
        return base * self._scale(child_level, key) ** h

    def m2l_check(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        """Source upward equivalent density -> target downward check potential.

        First arrow of the M2L translation (Figure 2.2 middle, eq. 2.4) for
        a target box whose anchor is ``offset`` cells away from the source
        box at the same ``level``.  V-list offsets have at least one
        component of magnitude 2 or 3.
        """
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        h = self._homog
        key = 0 if h is not None else level
        cache_key = (key, tuple(int(o) for o in offset))
        if cache_key not in self._m2l:
            side = 2.0 * self.half_width(key)
            delta = np.asarray(offset, dtype=np.float64) * side
            K = self.kernel.matrix(
                self.down_check_points(delta, key),
                self.up_equiv_points(np.zeros(3), key),
            )
            self._m2l[cache_key] = K
        base = self._m2l[cache_key]
        if h is None or level == key:
            return base
        return base * self._scale(level, key) ** h

    def _m2l_rsvd_base(
        self, level: int, offset: tuple[int, int, int]
    ) -> tuple[int, tuple[np.ndarray, np.ndarray]]:
        """Reference-level rSVD factors ``(uf, vf)`` of one offset class.

        ``uf = u * s`` is ``(n_surf * target_dof, k)`` and ``vf = vt`` is
        ``(k, n_surf * source_dof)``, so ``m2l_check ≈ uf @ vf`` to the
        cache's ``rsvd_tol``.  The sketch seed is a base-7 encoding of
        the offset (components lie in [-3, 3]), making the factors a
        pure function of the offset class — bitwise identical across
        setups, call orders and processes.
        """
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        h = self._homog
        key = 0 if h is not None else level
        cache_key = (key, tuple(int(o) for o in offset))
        if cache_key not in self._m2l_rsvd:
            o0, o1, o2 = cache_key[1]
            seed = 1 + (o0 + 3) * 49 + (o1 + 3) * 7 + (o2 + 3)
            u, s, vt = randomized_svd(
                self.m2l_check(key, cache_key[1]), self.rsvd_tol, seed=seed
            )
            self._m2l_rsvd[cache_key] = (u * s, vt)
        return key, self._m2l_rsvd[cache_key]

    def m2l_rsvd(
        self,
        level: int,
        offset: tuple[int, int, int],
        dtype: str = "float64",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compressed M2L factors: ``m2l_check(level, offset) ≈ uf @ vf``.

        The rSVD backend applies a V-list class as two stacked BLAS-3
        GEMMs, ``(ue @ vf.T) @ uf.T``.  Homogeneous kernels rescale like
        :meth:`m2l_check`, with the level factor folded into ``uf``.
        ``dtype="float32"`` returns single-precision factors — the
        mixed-precision mode's declared narrowing; accumulation into the
        downward-check buffers stays float64 at the call sites.
        """
        key, (uf, vf) = self._m2l_rsvd_base(level, offset)
        h = self._homog
        if dtype == "float32":
            cache_key = (key, tuple(int(o) for o in offset))
            if cache_key not in self._m2l_rsvd_f32:
                self._m2l_rsvd_f32[cache_key] = (
                    uf.astype(np.float32),  # lint: allow(dtype-width)
                    vf.astype(np.float32),  # lint: allow(dtype-width)
                )
            uf32, vf32 = self._m2l_rsvd_f32[cache_key]
            if h is None or level == key:
                return uf32, vf32
            return uf32 * np.float32(self._scale(level, key) ** h), vf32
        if dtype != "float64":
            raise ValueError(
                f"m2l_rsvd dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        if h is None or level == key:
            return uf, vf
        return uf * self._scale(level, key) ** h, vf

    def m2l_rsvd_rank(self, level: int, offset: tuple[int, int, int]) -> int:
        """Compression rank of one offset class (dtype independent)."""
        return int(self._m2l_rsvd_base(level, offset)[1][1].shape[0])
