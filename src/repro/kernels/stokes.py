"""Stokes single-layer kernel (Stokeslet / Oseen tensor).

Appendix A: for ``-mu Delta u + grad p = 0, div u = 0``,

    ``S(x, y) = 1/(8 pi mu) ( I / r  +  r (x) r / r^3 )``.

This is the kernel behind the paper's flagship application — boundary
integral formulations of viscous incompressible flow (Figure 4.1, the
2.1-billion-unknown runs of Table 4.3).  Vector-valued: 3 density
components per source, 3 velocity components per target.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_EIGHT_PI = 8.0 * np.pi


class StokesKernel(Kernel):
    """Stokeslet in 3D.

    Parameters
    ----------
    mu:
        Dynamic viscosity ``mu > 0``.
    """

    name = "stokes"
    source_dof = 3
    target_dof = 3
    homogeneity = -1.0
    # r^2 (8), rsqrt (1), inv_r3 (2), 9 tensor entries (~3 flops each),
    # scaling — matches the paper's observation that Stokes carries roughly
    # 4x the per-pair work of Laplace.
    flops_per_pair = 49

    def __init__(self, mu: float = 1.0) -> None:
        if mu <= 0:
            raise ValueError(f"viscosity must be positive, got {mu}")
        self.mu = float(mu)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        inv_r3 = inv_r**3
        # (nt, ns, 3, 3) blocks: delta_ij / r + r_i r_j / r^3
        blocks = np.einsum("tsi,tsj->tsij", diff, diff) * inv_r3[:, :, None, None]
        idx = np.arange(3)
        blocks[:, :, idx, idx] += inv_r[:, :, None]
        blocks /= _EIGHT_PI * self.mu
        # reorder to point-major (nt*3, ns*3)
        return blocks.transpose(0, 2, 1, 3).reshape(nt * 3, ns * 3)

    def __repr__(self) -> str:
        return f"StokesKernel(mu={self.mu})"
