"""Single-layer kernels of non-oscillatory second-order elliptic PDEs.

These are the kernels of the paper's Appendix A: given the singularity
location ``y`` and evaluation point ``x`` with ``r = x - y``, ``r = |r|``:

- Laplace:          ``S(x, y) = 1/(4 pi r)``
- modified Laplace: ``S(x, y) = exp(-lambda r)/(4 pi r)``
- Stokes:           ``S(x, y) = 1/(8 pi mu) (I/r + r (x) r / r^3)``

plus, as an extension exercised by the paper's introduction (linearly
elastic materials, fracture mechanics), the Navier/Kelvin kernel of
linear elastostatics.

The KIFMM algorithm never needs anything from a kernel beyond point
evaluation — that is the paper's headline property — so the interface in
:mod:`repro.kernels.base` is just "assemble the dense pair-interaction
matrix between two point sets".
"""

from repro.kernels.base import Kernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.modified_laplace import ModifiedLaplaceKernel
from repro.kernels.navier import NavierKernel
from repro.kernels.stokes import StokesKernel

ALL_KERNELS = (LaplaceKernel, ModifiedLaplaceKernel, StokesKernel, NavierKernel)

__all__ = [
    "Kernel",
    "LaplaceKernel",
    "ModifiedLaplaceKernel",
    "StokesKernel",
    "NavierKernel",
    "ALL_KERNELS",
]
