"""Static communication IR of the parallel exchange protocol.

The dynamic analyzers (:mod:`repro.analysis.commcheck`,
:mod:`repro.analysis.racecheck`) certify *executions*: they need a
:class:`~repro.parallel.simmpi.SimComm` run, so they stop where the
simulated runtime stops — a few dozen ranks.  The protocol claims of the
paper (and the ROADMAP's 3000-CPU projection) live far beyond that.
This module closes the gap the way :mod:`repro.analysis.planir` does for
the compute plan: it extracts the **complete message schedule** — every
point-to-point send/receive with ``(src, dst, tag)``, every segmented
tree-reduction/broadcast edge, and the post/relay/wait *program order*
of every rank — as a static ``CommIR``, directly from the plan inputs
(partition, contributor matrix, owner map, LET usage, coarse-split
schedule, ``comm="tree"|"flat"``), **without executing an apply**, for
arbitrary rank counts including P=4096.

The extraction is exact, not a model, because every quantity the
runtime schedule depends on is a pure function of the replicated
inputs:

- the per-rank trees share the global topology and root cube
  (``repro/parallel/ptree.py``), so one sequential
  :func:`~repro.octree.tree.build_tree` over all points reproduces every
  box boundary;
- :func:`~repro.parallel.owners.static_contributors` mirrors the
  ``gather_contributors`` Allgather offline, and
  :func:`~repro.parallel.owners.assign_owners` is already pure;
- the LET usage masks replicate :func:`~repro.parallel.let.classify_let`
  (vectorised across all ranks at once);
- the binomial gather/scatter edges come from the same
  :func:`~repro.parallel.simmpi.tree_order` /
  :func:`~repro.parallel.simmpi.tree_children` helpers the runtime uses,
  and every tag is minted through the same
  :func:`~repro.parallel.simmpi.mk_tag` registry — runtime and verifier
  cannot disagree about the vocabulary;
- the coarse-split broadcast schedule is shared verbatim via
  :func:`~repro.parallel.pfmm.v_split_bcast_schedule`.

Each rank's ops appear in its exact program order (the per-rank code is
sequential and waits requests in posted order, so that order is unique),
which is what lets :mod:`repro.analysis.commcheck_static` check
deadlock-freedom and :func:`~repro.analysis.commcheck_static.check_conformance`
require every dynamic trace to be a linearization of this IR.

The checks over the IR live in :mod:`repro.analysis.commcheck_static`;
the exhaustive schedule-space exploration in
:mod:`repro.analysis.dpor`.  CLI: ``python -m repro commir``.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.core.fmm import FMMOptions
from repro.core.m2lschedule import coarse_split_levels
from repro.octree.lists import InteractionLists, build_lists
from repro.octree.tree import Octree, build_tree
from repro.parallel.owners import assign_owners, static_contributors
from repro.parallel.partition import partition_points
from repro.parallel.pfmm import _global_root, v_split_bcast_schedule
from repro.parallel.simmpi import (
    TAG_FAMILIES,
    mk_tag,
    tree_children,
    tree_order,
    tree_parent,
)

#: Tag families a planned parallel run exchanges point-to-point: the
#: setup geometry exchange, the per-apply density/equivalent-density
#: exchange, and the coarse-split broadcast.  Used by the conformance
#: check to filter dynamic traces down to the protocol under proof.
PROTOCOL_FAMILIES = (
    "geo", "geog", "phi", "phig", "pue", "pueg", "vsp",
)


@contextmanager
def gc_paused():
    """Pause generational GC around bulk IR work.

    A P=4096 IR is millions of acyclic tuples and slotted dataclasses;
    the collector's periodic full-population scans during extraction
    and certification dominate wall time (2x end to end) while never
    freeing anything.  Pausing — not just tuning thresholds — keeps the
    <60 s certification budget at P=4096.
    """
    was = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was:
            gc.enable()

#: Exchange kinds with owner-centric gather/scatter roles, in protocol
#: order, with their (gather family, scatter family) tag vocabulary.
EXCHANGE_KINDS = (
    ("geo", "geo", "geog"),
    ("phi", "phi", "phig"),
    ("pue", "pue", "pueg"),
)


@dataclass(slots=True)
class CommOp:
    """One rank-local communication operation of the static schedule.

    ``kind`` is ``"send"`` (buffered, nonblocking), ``"post"`` (receive
    posted — ``irecv`` or the post half of a blocking ``recv``) or
    ``"complete"`` (the wait that consumes the message — blocking).
    ``group`` is the tag family the protocol *phase* owns; a well-formed
    op has ``tag[0] == group`` (the ``tags`` check enforces it).
    ``ids`` are the tag discriminators (box, or ``(level, box)`` for the
    coarse-split broadcast); ``note`` records the payload role of a send
    (``"inject"`` own piece, ``"relay"`` partial fold forward,
    ``"scatter"`` combined data downward) for the conservation
    interpretation and the seeded-defect selectors.
    """

    kind: str
    peer: int
    tag: tuple
    group: str
    ids: tuple
    note: str = ""


@dataclass
class StaticPlanInputs:
    """Replicated plan inputs shared by every per-rank setup.

    Everything :func:`extract_comm_ir` needs, computed once per
    ``(points, nranks, tree options)`` — the communication schedule does
    not depend on the kernel, the right-hand-side width or the overlap
    flag, so one input set serves the whole configuration sweep.
    """

    nranks: int
    tree: Octree
    lists: InteractionLists
    parts: list[np.ndarray]
    contrib_src: np.ndarray  # (nranks, nboxes) bool
    contrib_trg: np.ndarray
    owner: np.ndarray  # (nboxes,) int
    users_src: np.ndarray  # (nranks, nboxes) bool, gated by global nsrc
    users_equiv: np.ndarray
    gsrc: np.ndarray  # (nboxes,) global per-box source counts
    src_boxes: np.ndarray  # boxes whose source data circulates
    ue_boxes: np.ndarray  # boxes whose equivalent densities circulate
    #: Per split level: the ``(box, root, participants)`` broadcast
    #: schedule of :func:`~repro.parallel.pfmm.v_split_bcast_schedule`.
    vsp_levels: list[tuple[int, list[tuple[int, int, tuple[int, ...]]]]]


@dataclass
class CommIR:
    """The complete static message schedule of one configuration.

    ``programs[r]`` is rank ``r``'s ops in exact program order.
    ``roles[kind][ids]`` declares ``(owner, contributors, users)`` per
    exchanged box — the ground truth the conservation check interprets
    the message edges against.  ``meta`` carries the configuration and
    summary counts.
    """

    nranks: int
    programs: list[list[CommOp]]
    roles: dict[str, dict[tuple, tuple[int, frozenset, frozenset]]]
    meta: dict = field(default_factory=dict)

    def nops(self) -> int:
        return sum(len(p) for p in self.programs)

    def nmessages(self) -> int:
        return sum(
            1 for p in self.programs for op in p if op.kind == "send"
        )

    def summary(self) -> str:
        m = self.meta
        return (
            f"commir: scheme={m.get('scheme')} P={self.nranks} "
            f"nboxes={m.get('nboxes')} — {self.nmessages()} messages / "
            f"{self.nops()} ops"
        )


def _vectorized_users(
    tree: Octree,
    lists: InteractionLists,
    contrib_trg: np.ndarray,
    gsrc: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All ranks' gated LET usage matrices in one pass.

    Replicates :func:`~repro.parallel.let.classify_let` (V/X gate on
    target activity, W/U additionally on leafness) followed by the
    ``rank_setup`` global-source gating, but iterates *target boxes*
    instead of ranks: for every list entry ``t -> s`` the users column
    ``s`` inherits the activity column ``t`` across all ranks at once,
    so the cost is independent of the rank count (P=4096 included).
    """
    nb = tree.nboxes
    nranks = contrib_trg.shape[0]
    active = contrib_trg
    leaf = np.fromiter((b.is_leaf for b in tree.boxes), bool, count=nb)
    active_leaf = active & leaf[None, :]
    users_equiv = np.zeros((nranks, nb), dtype=bool)
    users_src = np.zeros((nranks, nb), dtype=bool)
    for which, out, act in (
        ("V", users_equiv, active),
        ("X", users_src, active),
        ("W", users_equiv, active_leaf),
        ("U", users_src, active_leaf),
    ):
        ptr, idx = lists.flat(which)
        for t in range(nb):
            cols = idx[ptr[t]:ptr[t + 1]]
            if cols.size and act[:, t].any():
                out[:, cols] |= act[:, t][:, None]
    gate = (gsrc > 0)[None, :]
    return users_equiv & gate, users_src & gate


def static_plan_inputs(
    points: np.ndarray,
    nranks: int,
    options: FMMOptions | None = None,
) -> StaticPlanInputs:
    """Derive the replicated plan inputs of a planned parallel run.

    Mirrors the input side of :func:`~repro.parallel.pfmm.rank_setup`
    without a single collective: one global tree with the agreed root
    cube, the offline contributor matrices, the pure owner assignment,
    the vectorised LET usage, and the coarse-split broadcast schedule.
    """
    opts = options or FMMOptions()
    points = np.asarray(points, dtype=np.float64)
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if points.shape[0] == 0:
        raise ValueError("cannot extract a schedule for zero points")
    corner, side = _global_root(points)
    parts = partition_points(points, nranks)
    tree = build_tree(
        points,
        max_points=opts.max_points,
        max_depth=opts.max_depth,
        root=(corner, side),
    )
    lists = build_lists(tree)
    contrib_src, contrib_trg = static_contributors(tree, parts)
    owner = assign_owners(contrib_src | contrib_trg)
    gsrc = np.fromiter(
        (b.nsrc for b in tree.boxes), np.int64, count=tree.nboxes
    )
    users_equiv, users_src = _vectorized_users(
        tree, lists, contrib_trg, gsrc
    )
    src_boxes = np.nonzero(users_src.any(axis=0))[0]
    ue_boxes = np.nonzero(users_equiv.any(axis=0))[0]
    split_levels = coarse_split_levels(
        [len(tree.levels[lvl]) for lvl in range(tree.depth + 1)], nranks
    )
    vsp_levels = []
    for lvl in range(2, tree.depth + 1):
        if lvl not in split_levels:
            continue
        lvl_boxes = np.asarray(tree.levels[lvl], dtype=np.int64)
        schedule = v_split_bcast_schedule(
            lvl_boxes, lists, contrib_trg, gsrc
        )
        if schedule:
            vsp_levels.append((lvl, schedule))
    return StaticPlanInputs(
        nranks=nranks,
        tree=tree,
        lists=lists,
        parts=parts,
        contrib_src=contrib_src,
        contrib_trg=contrib_trg,
        owner=owner,
        users_src=users_src,
        users_equiv=users_equiv,
        gsrc=gsrc,
        src_boxes=src_boxes,
        ue_boxes=ue_boxes,
        vsp_levels=vsp_levels,
    )


class _Programs:
    """Per-rank op accumulators with blocking-receive expansion.

    Tags for one ``(family, ids)`` pair are minted once through
    :func:`mk_tag` and cached — an IR at P=4096 holds millions of ops
    but only a few thousand distinct tags, and the registry validation
    per mint would dominate extraction time.
    """

    def __init__(self, nranks: int) -> None:
        self.ops: list[list[CommOp]] = [[] for _ in range(nranks)]
        self._tags: dict[tuple, tuple] = {}

    def _tag(self, fam, ids):
        tag = self._tags.get((fam, ids))
        if tag is None:
            tag = self._tags[(fam, ids)] = mk_tag(fam, *ids)
        return tag

    def send(self, rank, dst, fam, ids, note=""):
        self.ops[rank].append(
            CommOp("send", int(dst), self._tag(fam, ids), fam, ids, note)
        )

    def post(self, rank, src, fam, ids):
        self.ops[rank].append(
            CommOp("post", int(src), self._tag(fam, ids), fam, ids)
        )

    def complete(self, rank, src, fam, ids):
        self.ops[rank].append(
            CommOp("complete", int(src), self._tag(fam, ids), fam, ids)
        )

    def recv_blocking(self, rank, src, fam, ids):
        """A blocking ``recv`` is a post immediately followed by its
        completion — exactly the two trace events the runtime emits."""
        self.post(rank, src, fam, ids)
        self.complete(rank, src, fam, ids)


def _emit_tree_reduce(pb: _Programs, order, fam, ids) -> None:
    """Every member's ops of one segmented binomial reduction, in the
    member's program order (mirrors ``SimComm.tree_reduce``: a node
    receives children in ascending-mask order, then sends its
    accumulator to its parent and leaves the reduction)."""
    n = len(order)
    for pos, r in enumerate(order):
        mask = 1
        while mask < n:
            if pos & mask:
                pb.send(r, order[pos - mask], fam, ids,
                        note="inject" if mask == 1 else "relay")
                break
            child = pos + mask
            if child < n:
                pb.recv_blocking(r, order[child], fam, ids)
            mask <<= 1


def _emit_tree_bcast(pb: _Programs, order, fam, ids) -> None:
    """Every member's ops of one segmented binomial broadcast (mirrors
    ``SimComm.tree_bcast``: receive from the parent, then send to the
    children largest-subtree-first)."""
    n = len(order)
    for pos, r in enumerate(order):
        if pos != 0:
            pb.recv_blocking(r, order[tree_parent(pos)], fam, ids)
        for c in reversed(tree_children(pos, n)):
            pb.send(r, order[c], fam, ids, note="scatter")


def _box_roles(
    inputs: StaticPlanInputs, kind: str
) -> list[tuple[int, int, list[int], list[int]]]:
    """Per circulating box of one exchange kind:
    ``(box, owner, contributors, users)`` — contributors are always the
    source contributors (partial upward densities live where sources
    do), users are the kind's user matrix."""
    users = (
        inputs.users_equiv if kind == "pue" else inputs.users_src
    )
    boxes = inputs.ue_boxes if kind == "pue" else inputs.src_boxes
    out = []
    for b in boxes:
        b = int(b)
        out.append((
            b,
            int(inputs.owner[b]),
            np.nonzero(inputs.contrib_src[:, b])[0].tolist(),
            np.nonzero(users[:, b])[0].tolist(),
        ))
    return out


def _emit_geo(pb: _Programs, inputs: StaticPlanInputs, scheme: str) -> None:
    """Setup-time geometry exchange, mirroring
    :func:`~repro.parallel.exchange.exchange_source_geometry`."""
    roles = _box_roles(inputs, "geo")
    if scheme == "tree":
        for b, o, contribs, _ in roles:
            _emit_tree_reduce(pb, tree_order(contribs, o), "geo", (b,))
        for b, o, _, users in roles:
            _emit_tree_bcast(pb, tree_order(users, o), "geog", (b,))
        return
    # Flat: contributor pack loop, owner wait loop (receives in
    # tree-position order), owner scatter pack loop, user wait loop.
    for b, o, contribs, _ in roles:
        for r in contribs:
            if r != o:
                pb.send(r, o, "geo", (b,), note="inject")
    for b, o, contribs, _ in roles:
        for r in tree_order(contribs, o):
            if r != o and r in contribs:
                pb.recv_blocking(o, r, "geo", (b,))
    for b, o, _, users in roles:
        for r in users:
            if r != o:
                pb.send(o, r, "geog", (b,), note="scatter")
    for b, o, _, users in roles:
        for r in users:
            if r != o:
                pb.recv_blocking(r, o, "geog", (b,))


def _emit_apply_tree(pb: _Programs, inputs: StaticPlanInputs) -> None:
    """One apply's exchange under the tree scheme, mirroring
    :class:`~repro.parallel.exchange.ApplyExchange` program order:
    ``start`` posts per kind (gather loop then scatter loop), ``relay``
    walks the gather nodes per box in the shared (kind, box) order —
    each node waits *its own* children then immediately forwards —
    and ``finish`` walks the scatter nodes of both kinds in posted
    order.
    """
    kinds = [("phi", "phig"), ("pue", "pueg")]
    trees: dict[str, list] = {}
    for kind, _ in kinds:
        per_box = []
        for b, o, contribs, users in _box_roles(inputs, kind):
            order_g = tree_order(contribs, o)
            order_s = tree_order(users, o)
            per_box.append((b, o, order_g, order_s))
        trees[kind] = per_box

    def edges(order, pos):
        parent = None if pos == 0 else order[tree_parent(pos)]
        children = [order[c] for c in tree_children(pos, len(order))]
        return parent, children

    # start: per kind, gather posts + leaf sends, then scatter posts.
    for kind, sfam in kinds:
        for b, o, order_g, order_s in trees[kind]:
            for pos, m in enumerate(order_g):
                parent, children = edges(order_g, pos)
                for r in children:
                    pb.post(m, r, kind, (b,))
                if parent is not None and not children:
                    pb.send(m, parent, kind, (b,), note="inject")
        for b, o, order_g, order_s in trees[kind]:
            for pos, m in enumerate(order_s):
                if pos != 0:
                    pb.post(m, order_s[tree_parent(pos)], sfam, (b,))
    # relay: each interior/root gather node waits *its own* children,
    # folds, and immediately forwards the partial upward (interior) or
    # feeds the scatter tree (root) — phi nodes first then pue, each in
    # box order.  This per-node order is shared by every rank; waiting
    # all nodes' children before forwarding any partial deadlocks at
    # large P (see :meth:`ApplyExchange.relay`).
    for kind, sfam in kinds:
        for b, o, order_g, order_s in trees[kind]:
            for pos, m in enumerate(order_g):
                parent, children = edges(order_g, pos)
                if parent is not None and not children:
                    continue
                for r in children:
                    pb.complete(m, r, kind, (b,))
                if parent is not None:
                    pb.send(m, parent, kind, (b,), note="relay")
                else:
                    _p, s_children = edges(order_s, 0)
                    for r in s_children:
                        pb.send(m, r, sfam, (b,), note="scatter")
    # finish: non-root scatter nodes complete their parent's data and
    # forward it to their scatter children (posted order: phi then pue).
    for kind, sfam in kinds:
        for b, o, order_g, order_s in trees[kind]:
            for pos, m in enumerate(order_s):
                if pos == 0:
                    continue
                parent, children = edges(order_s, pos)
                pb.complete(m, parent, sfam, (b,))
                for r in children:
                    pb.send(m, r, sfam, (b,), note="scatter")


def _emit_apply_flat(pb: _Programs, inputs: StaticPlanInputs) -> None:
    """One apply's exchange under the flat scheme: contributors send to
    the owner, owners post from contributors and users post from
    owners (``start``), owners complete then scatter (``relay``), users
    complete (``finish``)."""
    kinds = [("phi", "phig"), ("pue", "pueg")]
    roles = {kind: _box_roles(inputs, kind) for kind, _ in kinds}
    for kind, sfam in kinds:
        for b, o, contribs, users in roles[kind]:
            for r in contribs:
                if r != o:
                    pb.send(r, o, kind, (b,), note="inject")
        for b, o, contribs, users in roles[kind]:
            for r in tree_order(contribs, o):
                if r != o:
                    pb.post(o, r, kind, (b,))
        for b, o, contribs, users in roles[kind]:
            for r in users:
                if r != o:
                    pb.post(r, o, sfam, (b,))
    for kind, sfam in kinds:
        for b, o, contribs, users in roles[kind]:
            for r in tree_order(contribs, o):
                if r != o:
                    pb.complete(o, r, kind, (b,))
            for r in tree_order(users, o):
                if r != o:
                    pb.send(o, r, sfam, (b,), note="scatter")
    for kind, sfam in kinds:
        for b, o, contribs, users in roles[kind]:
            for r in users:
                if r != o:
                    pb.complete(r, o, sfam, (b,))


def _emit_vsp(pb: _Programs, inputs: StaticPlanInputs) -> None:
    """Coarse-split broadcasts: every participant iterates the shared
    ascending ``(level, box)`` schedule (mirrors ``_v_split_bcast``)."""
    for lvl, schedule in inputs.vsp_levels:
        for bx, root, parts in schedule:
            _emit_tree_bcast(
                pb, tree_order(parts, root), "vsp", (lvl, bx)
            )


def extract_comm_ir(
    inputs: StaticPlanInputs,
    *,
    scheme: str = "tree",
    overlap: bool = True,
    nrhs: int = 1,
    napplies: int = 1,
    include_setup: bool = True,
) -> CommIR:
    """The complete static message schedule of one configuration.

    ``overlap`` and ``nrhs`` are recorded in ``meta`` but do not change
    the schedule: the overlap flag only moves *compute* relative to the
    fixed post < relay < finish < v-split communication order, and the
    RHS block rides the same messages with wider rows.  ``napplies``
    repeats the per-apply exchange (channels then carry one message per
    apply, in FIFO order).
    """
    if scheme not in ("tree", "flat"):
        raise ValueError(f"unknown scheme {scheme!r}")
    pb = _Programs(inputs.nranks)
    with gc_paused():
        if include_setup:
            _emit_geo(pb, inputs, scheme)
        for _ in range(napplies):
            if scheme == "tree":
                _emit_apply_tree(pb, inputs)
            else:
                _emit_apply_flat(pb, inputs)
            _emit_vsp(pb, inputs)
    roles: dict[str, dict[tuple, tuple[int, frozenset, frozenset]]] = {}
    for kind, _gf, _sf in EXCHANGE_KINDS:
        roles[kind] = {
            (b,): (o, frozenset(contribs), frozenset(users))
            for b, o, contribs, users in _box_roles(inputs, kind)
        }
    roles["vsp"] = {
        (lvl, bx): (root, frozenset({root}), frozenset(parts))
        for lvl, schedule in inputs.vsp_levels
        for bx, root, parts in schedule
    }
    return CommIR(
        nranks=inputs.nranks,
        programs=pb.ops,
        roles=roles,
        meta={
            "scheme": scheme,
            "overlap": overlap,
            "nrhs": nrhs,
            "napplies": napplies,
            "include_setup": include_setup,
            "npoints": int(inputs.tree.sources.shape[0]),
            "nboxes": int(inputs.tree.nboxes),
            "nsrc_boxes": int(inputs.src_boxes.size),
            "nue_boxes": int(inputs.ue_boxes.size),
            "nvsp_levels": len(inputs.vsp_levels),
            "families": PROTOCOL_FAMILIES,
        },
    )


def family_phase(family: str) -> str:
    """Display phase of a tag family, from the runtime registry."""
    spec = TAG_FAMILIES.get(family)
    if spec is None or not spec.phases:
        return family
    return spec.phases[0]
