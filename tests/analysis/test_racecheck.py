"""The happens-before race detector: seeded races fire, pfmm is clean.

Acceptance bar of the tentpole: the detector must flag a seeded
use-after-send and a seeded no-edge race — naming the conflicting
access pair and the missing happens-before edge — must accept
message-ordered accesses, and must certify the real overlapped 4-rank
persistent apply race-free with overlap on and off.
"""

import numpy as np
import pytest

from repro.analysis import CommTrace, RaceDetector
from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel
from repro.parallel.pfmm import run_parallel_fmm
from repro.parallel.simmpi import current_recorder, run_spmd

from tests.conftest import clustered_cloud


class TestSeededRaces:
    def test_no_edge_write_read_is_flagged(self):
        """Closure-shared array, no message between the ranks: race."""
        shared = np.zeros(8)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            if comm.rank == 0:
                rec.write(shared[:4], "producer")
                shared[:4] = 1.0
            else:
                rec.read(shared[:4], "consumer")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        report = det.report()
        assert not report.ok
        assert len(report.races) == 1
        race = report.races[0]
        assert race.region == "shared"
        assert race.first.kind == "write"
        assert race.second.kind == "read"
        assert "no happens-before edge" in race.missing_edge
        # both access sites are named with file:line locations
        assert "test_racecheck.py" in race.first.site
        assert "clock" in str(race)

    def test_use_after_send_is_flagged_with_channel(self):
        """Mutating a sent buffer races with the receiver's read.

        The strict clock comparison is what catches this: the write
        shares the send's clock entry, so the receiver's merged clock
        is not strictly greater and the pair stays concurrent.  The
        report must name the (src, dst, tag) channel whose edge failed
        to order the pair.
        """

        def main(comm):
            rec = current_recorder()
            if comm.rank == 0:
                buf = np.arange(6.0)
                rec.register("buf", buf)
                comm.isend(1, buf, tag="uas")
                rec.write(buf, "mutate-after-send")
                buf[:] = -1.0
            elif comm.rank == 1:
                req = comm.irecv(0, tag="uas")
                payload = req.wait()
                rec.read(payload, "reader")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        report = det.report()
        assert len(report.races) == 1
        edge = report.races[0].missing_edge
        assert "channel 0->1 tag='uas'" in edge
        assert "no later message orders the pair" in edge

    def test_disjoint_byte_ranges_do_not_conflict(self):
        shared = np.zeros(8)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            half = shared[:4] if comm.rank == 0 else shared[4:]
            rec.write(half, "mine")
            half[:] = comm.rank
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        assert det.report().ok

    def test_read_read_sharing_is_not_a_race(self):
        shared = np.ones(4)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            rec.read(shared, "reader")
            comm.barrier()

        det = RaceDetector()
        run_spmd(3, main, race=det)
        assert det.report().ok


class TestOrderedAccesses:
    def test_message_edge_orders_write_before_read(self):
        """send/recv between write and read: happens-before, no race."""
        shared = np.zeros(4)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            if comm.rank == 0:
                rec.write(shared, "producer")
                shared[:] = 7.0
                comm.send(1, "done", tag="sync")
            else:
                comm.recv(0, tag="sync")
                rec.read(shared, "consumer")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        assert det.report().ok

    def test_wait_completion_merges_the_senders_clock(self):
        """The Request.wait edge alone must order the pair."""
        shared = np.zeros(4)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            if comm.rank == 0:
                rec.write(shared, "producer")
                shared[:] = 3.0
                comm.isend(1, "done", tag="sync")
            else:
                comm.irecv(0, tag="sync").wait()
                rec.read(shared, "consumer")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        assert det.report().ok

    def test_collective_orders_the_pair(self):
        shared = np.zeros(4)

        def main(comm):
            rec = current_recorder()
            rec.register("shared", shared)
            if comm.rank == 0:
                rec.write(shared, "producer")
                shared[:] = 2.0
            comm.barrier()
            if comm.rank == 1:
                rec.read(shared, "consumer")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        assert det.report().ok

    def test_race_detection_is_region_based_not_name_based(self):
        """Views of one allocation resolve to the same region."""
        shared = np.zeros((4, 4))

        def main(comm):
            rec = current_recorder()
            if comm.rank == 0:
                rec.register("matrix", shared)
                rec.write(shared.reshape(-1)[2:6], "flat-view")
                shared.reshape(-1)[2:6] = 1.0
            else:
                rec.read(shared[1], "row-view")
            comm.barrier()

        det = RaceDetector()
        run_spmd(2, main, race=det)
        report = det.report()
        # flat [2:6] overlaps row 1 (bytes 32:64 vs 16:48)
        assert len(report.races) == 1
        assert report.races[0].region == "matrix"


class TestRealParallelApply:
    @pytest.mark.parametrize("overlap", [True, False], ids=["on", "off"])
    def test_overlapped_apply_certifies_race_free(self, rng, overlap):
        """The tentpole certification: 4 ranks, 2 applies, real tree."""
        pts = clustered_cloud(rng, 500)
        density = rng.random(500)
        det = RaceDetector()
        trace = CommTrace()
        result = run_parallel_fmm(
            4, LaplaceKernel(), pts, density,
            FMMOptions(p=4, max_points=30),
            trace=trace, race=det, overlap=overlap, napplies=2,
        )
        report = det.report()
        assert report.ok, report.summary()
        assert report.naccesses > 0
        assert report.nregions >= 4  # every rank registered shared arrays
        assert np.all(np.isfinite(result.potential))

    def test_perturbed_schedules_stay_race_free(self, rng):
        pts = clustered_cloud(rng, 400)
        density = rng.random(400)
        for seed in range(3):
            det = RaceDetector()
            run_parallel_fmm(
                4, LaplaceKernel(), pts, density,
                FMMOptions(p=4, max_points=30),
                trace=CommTrace(), race=det, schedule_seed=seed,
            )
            assert det.report().ok

    def test_race_arg_without_trace_builds_one(self, rng):
        """race= alone must still get clock/event data (implicit trace)."""
        pts = clustered_cloud(rng, 300)
        det = RaceDetector()
        run_parallel_fmm(
            2, LaplaceKernel(), pts, rng.random(300),
            FMMOptions(p=4, max_points=30), race=det,
        )
        report = det.report()
        assert report.ok
        assert report.naccesses > 0


class TestCLI:
    def test_seed_race_self_test_passes(self, capsys):
        from repro.cli import main

        assert main(["racecheck", "--seed-race", "--ranks", "2"]) == 0
        out = capsys.readouterr().out
        assert "seeded race detected" in out
        assert "channel 0->1 tag='race'" in out

    def test_real_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main([
            "racecheck", "--n", "300", "--ranks", "2",
            "--schedules", "1", "--applies", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "certified race-free" in out
        assert "overlap=on" in out and "overlap=off" in out
