"""Seeded violation for the ``request-waited`` lint rule.

Posts nonblocking receives, binds the Requests, and then forgets them:
no ``wait``/``waitall``, no escape.  The path mirrors the package
layout (``repro/parallel/``) so the rule's scope gating applies.
"""


def leaky_gather(comm, peers, mk_tag):
    reqs = [comm.irecv(r, tag=mk_tag("x", r)) for r in peers]
    total = 0
    for r in peers:
        total += r
    return total
