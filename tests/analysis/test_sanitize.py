"""The runtime sanitizers: each detector fires on a seeded fixture,
and a fully sanitized apply is bit-identical to an unsanitized one.
"""

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    BufferEscapeError,
    DoubleReleaseError,
    GemmAliasError,
    NonFiniteError,
    SanitizerError,
    UseAfterReleaseError,
    check_escape,
    check_finite,
    guard_gemm,
)
from repro.core.fmm import KIFMM, FMMOptions
from repro.core.plan import BufferPool
from repro.kernels import LaplaceKernel

from tests.conftest import clustered_cloud


class TestBufferPoolLifecycle:
    def test_release_poisons_and_use_after_release_fires(self):
        pool = BufferPool()
        pool.sanitize = True
        buf = pool.zeros("scratch", (4, 3))
        pool.release("scratch")
        assert np.isnan(buf).all(), "released buffer must be NaN-poisoned"
        with pytest.raises(UseAfterReleaseError, match="'scratch'"):
            pool.check_live("scratch", context="m2m level 2")

    def test_double_release_fires(self):
        pool = BufferPool()
        pool.sanitize = True
        pool.zeros("scratch", (8,))
        pool.release("scratch")
        with pytest.raises(DoubleReleaseError, match="released twice"):
            pool.release("scratch")

    def test_reacquisition_clears_the_release(self):
        pool = BufferPool()
        pool.sanitize = True
        pool.zeros("scratch", (8,))
        pool.release("scratch")
        fresh = pool.zeros("scratch", (8,))
        pool.check_live("scratch")  # no raise
        assert not np.isnan(fresh).any()
        pool.release("scratch")  # and a single re-release is fine again

    def test_lifecycle_is_free_when_not_sanitizing(self):
        pool = BufferPool()
        buf = pool.zeros("scratch", (4,))
        pool.release("scratch")
        pool.release("scratch")  # no DoubleReleaseError
        pool.check_live("scratch")  # no UseAfterReleaseError
        assert not np.isnan(buf).any(), "no poison without sanitize"

    def test_unknown_name_release_is_ignored(self):
        pool = BufferPool()
        pool.sanitize = True
        pool.release("never-allocated")  # mode-dependent scratch


class TestFiniteChecks:
    def test_nan_names_phase_and_row_range(self):
        arr = np.zeros((10, 3))
        arr[4, 1] = np.nan
        arr[7, 2] = np.inf
        with pytest.raises(NonFiniteError) as exc:
            check_finite(arr, "up", "upward equivalent densities")
        msg = str(exc.value)
        assert "'up' phase boundary" in msg
        assert "boxes 4...7" in msg
        assert "2 affected" in msg

    def test_clean_array_passes(self):
        check_finite(np.ones((5, 2)), "down_v", "local coefficients")

    def test_poison_propagates_into_phase_check(self):
        """The lifecycle + finite checkers compose: a stale read of a
        released buffer surfaces as a NonFiniteError at the next phase
        boundary."""
        pool = BufferPool()
        pool.sanitize = True
        stale = pool.zeros("check", (6, 2))
        pool.release("check")
        consumer = stale * 2.0  # buggy stale read
        with pytest.raises(NonFiniteError):
            check_finite(consumer, "m2l", "check potentials")


class TestGemmAliasGuard:
    def test_aliased_output_fires(self):
        buf = np.zeros(32)
        out, operand = buf[:16].reshape(4, 4), buf[8:24].reshape(4, 4)
        with pytest.raises(GemmAliasError, match="m2m level 1"):
            guard_gemm(out, operand, site="m2m level 1")

    def test_disjoint_slices_of_one_buffer_pass(self):
        buf = np.zeros(32)
        guard_gemm(buf[:16], buf[16:], site="m2l level 2")

    def test_empty_operands_pass(self):
        guard_gemm(np.zeros((0, 4)), np.zeros((0, 4)), site="w-pass")


class TestEscapeCheck:
    def test_pool_backed_result_fires(self):
        pool = BufferPool()
        result = pool.zeros("potential", (10, 1))
        with pytest.raises(BufferEscapeError, match="evaluate_planned"):
            check_escape(result, pool, "evaluate_planned")

    def test_copied_result_passes(self):
        pool = BufferPool()
        result = pool.zeros("potential", (10, 1)).copy()
        check_escape(result, pool, "evaluate_planned")


class TestSanitizedApply:
    def test_sanitized_apply_is_bit_identical(self, rng):
        pts = clustered_cloud(rng, 400)
        phi = rng.standard_normal((400, 1))
        plain = KIFMM(
            LaplaceKernel(), FMMOptions(p=4, max_points=30)
        ).setup(pts).apply(phi)
        sanitized = KIFMM(
            LaplaceKernel(), FMMOptions(p=4, max_points=30, sanitize=True)
        ).setup(pts).apply(phi)
        assert np.array_equal(plain, sanitized), (
            "sanitizers must observe, never perturb"
        )

    def test_nan_input_density_is_rejected_at_ingress(self, rng):
        pts = clustered_cloud(rng, 300)
        phi = rng.standard_normal((300, 1))
        phi[123] = np.nan
        fmm = KIFMM(
            LaplaceKernel(), FMMOptions(p=4, max_points=30, sanitize=True)
        ).setup(pts)
        with pytest.raises(NonFiniteError, match="'input'"):
            fmm.apply(phi)

    def test_env_var_enables_without_the_option(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()
        pts = clustered_cloud(rng, 300)
        phi = rng.standard_normal((300, 1))
        phi[7] = np.inf
        fmm = KIFMM(
            LaplaceKernel(), FMMOptions(p=4, max_points=30)
        ).setup(pts)
        with pytest.raises(NonFiniteError):
            fmm.apply(phi)

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize.enabled()

    def test_all_detectors_share_a_catchable_base(self):
        for exc in (
            UseAfterReleaseError, DoubleReleaseError, BufferEscapeError,
            NonFiniteError, GemmAliasError,
        ):
            assert issubclass(exc, SanitizerError)
