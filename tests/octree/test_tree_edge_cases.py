"""Octree edge cases beyond the main construction tests."""

import numpy as np
import pytest

from repro.octree import build_lists, build_tree
from repro.octree.lists import verify_lists


class TestDegenerateInputs:
    def test_single_point(self):
        tree = build_tree(np.array([[0.5, 0.5, 0.5]]), max_points=10)
        assert tree.nboxes == 1
        lists = build_lists(tree)
        verify_lists(tree, lists)

    def test_two_coincident_points(self):
        pts = np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]])
        tree = build_tree(pts, max_points=1, max_depth=4)
        # coincident points cannot be separated: the depth cap applies
        assert tree.depth <= 4
        leaf_src = np.concatenate([tree.src_indices(i) for i in tree.leaves()])
        assert sorted(leaf_src.tolist()) == [0, 1]

    def test_collinear_points(self, rng):
        t = rng.random(200)
        pts = np.stack([t, 0.5 * np.ones_like(t), 0.5 * np.ones_like(t)], axis=1)
        tree = build_tree(pts, max_points=20)
        lists = build_lists(tree)
        verify_lists(tree, lists)
        # a line along x refines essentially one-dimensionally: children
        # per box never exceed 2 occupied octants beyond the root level
        for b in tree.boxes:
            if not b.is_leaf and b.level >= 1:
                assert len(b.children) <= 2

    def test_extreme_aspect_cloud(self, rng):
        pts = rng.random((300, 3)) * np.array([100.0, 1.0, 0.01])
        tree = build_tree(pts, max_points=25)
        # bounding cube side must cover the largest extent
        assert tree.root_side >= 99.0
        leaf_src = np.concatenate([tree.src_indices(i) for i in tree.leaves()])
        assert len(leaf_src) == 300

    def test_zero_sources_with_targets(self, rng):
        src = rng.random((50, 3))
        trg = rng.random((0, 3))
        tree = build_tree(src, trg, max_points=10)
        assert tree.boxes[0].ntrg == 0
        for i in tree.leaves():
            assert tree.trg_points(i).shape == (0, 3)

    def test_duplicated_cloud(self, rng):
        """Many exact duplicates: sort stability and range math hold."""
        base = rng.random((40, 3))
        pts = np.repeat(base, 5, axis=0)
        tree = build_tree(pts, max_points=8, max_depth=6)
        leaf_src = np.concatenate([tree.src_indices(i) for i in tree.leaves()])
        assert sorted(leaf_src.tolist()) == list(range(200))


class TestListsAfterEdgeCases:
    def test_fmm_on_line_distribution(self, rng):
        from repro.core.fmm import FMMOptions, KIFMM
        from repro.kernels import LaplaceKernel
        from repro.kernels.direct import direct_evaluate, relative_error

        t = rng.random(400)
        pts = np.stack([t, 0.3 + 0.01 * rng.random(400), 0.5 * np.ones(400)],
                       axis=1)
        phi = rng.standard_normal((400, 1))
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=20)).setup(pts)
        u = fmm.apply(phi)
        exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
        assert relative_error(u, exact) < 1e-3
