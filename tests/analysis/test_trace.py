"""Event-trace recording: clocks, matching metadata, serialisation."""

import numpy as np

from repro.analysis.trace import CommTrace, payload_digest
from repro.parallel.simmpi import run_spmd


def _pingpong(comm):
    if comm.rank == 0:
        comm.send(1, np.arange(4.0), tag="a")
        back = comm.recv(1, tag="b")
        comm.barrier()
        return back
    got = comm.recv(0, tag="a")
    comm.send(0, got * 2, tag="b")
    comm.barrier()
    return got


def test_events_recorded_per_rank():
    trace = CommTrace()
    run_spmd(2, _pingpong, trace=trace)
    assert trace.completed
    assert trace.error is None
    assert trace.leaked == []
    kinds0 = [e.kind for e in trace.events_by_rank[0]]
    assert kinds0 == ["send", "recv-post", "recv", "coll-enter", "coll-exit"]
    kinds1 = [e.kind for e in trace.events_by_rank[1]]
    assert kinds1 == ["recv-post", "recv", "send", "coll-enter", "coll-exit"]


def test_lamport_clock_monotone_and_merged():
    trace = CommTrace()
    run_spmd(2, _pingpong, trace=trace)
    for evs in trace.events_by_rank:
        lamports = [e.lamport for e in evs]
        assert lamports == sorted(lamports)
    # the recv happens-after its matching send in both clock systems
    send0 = trace.events_by_rank[0][0]
    recv1 = trace.events_by_rank[1][1]
    assert recv1.match_seq == send0.seq
    assert recv1.lamport > send0.lamport
    assert all(a >= b for a, b in zip(recv1.clock, send0.clock))
    assert recv1.clock != send0.clock


def test_collective_exit_merges_all_clocks():
    def main(comm):
        if comm.rank == 2:
            for _ in range(3):
                comm.send(0, np.ones(2), tag="pre")
        if comm.rank == 0:
            for _ in range(3):
                comm.recv(2, tag="pre")
        comm.barrier()
        return None

    trace = CommTrace()
    run_spmd(3, main, trace=trace)
    exits = [
        [e for e in evs if e.kind == "coll-exit"][0]
        for evs in trace.events_by_rank
    ]
    # after the barrier every rank's clock dominates every pre-barrier event
    for evs in trace.events_by_rank:
        for ev in evs:
            if ev.kind == "coll-exit":
                continue
            for ex in exits:
                assert all(x >= y for x, y in zip(ex.clock, ev.clock))


def test_payload_digest_distinguishes_content():
    a = payload_digest(np.arange(5.0))
    b = payload_digest(np.arange(5.0))
    c = payload_digest(np.arange(5.0) + 1e-12)
    assert a == b
    assert a != c
    assert payload_digest((np.zeros(2), "x")) != payload_digest((np.zeros(2), "y"))


def test_jsonl_roundtrip(tmp_path):
    trace = CommTrace()
    run_spmd(2, _pingpong, trace=trace)
    path = tmp_path / "trace.jsonl"
    trace.to_jsonl(str(path))
    loaded = CommTrace.from_jsonl(str(path))
    assert loaded.nranks == 2
    assert loaded.completed
    assert loaded.nevents() == trace.nevents()
    orig = sorted((e.rank, e.seq, e.kind, e.lamport) for e in trace.events())
    back = sorted((e.rank, e.seq, e.kind, e.lamport) for e in loaded.events())
    assert orig == back


def test_untraced_world_unchanged():
    """No trace argument: payloads travel unwrapped, results identical."""
    plain = run_spmd(2, _pingpong)
    traced_trace = CommTrace()
    traced = run_spmd(2, _pingpong, trace=traced_trace)
    assert np.array_equal(plain[0], traced[0])
    assert np.array_equal(plain[1], traced[1])
