"""The persistent planned parallel operator: parity, repeats, overlap.

The tentpole claims of the setup/apply split: the LET-local execution
plan computes the same potentials as the sequential batched evaluator
and the per-box naive path, repeated applies of one operator are
bitwise identical (the pooled buffers are re-zeroed, the exchange is
deterministic), and the overlap flag changes scheduling but not a
single bit of the result.
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.core.precompute import OperatorCache
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.parallel import ParallelFMM, run_parallel_fmm
from repro.parallel.pfmm import _global_root

from tests.conftest import clustered_cloud, uniform_cloud


def _cloud(rng, dist, n):
    return uniform_cloud(rng, n) if dist == "uniform" else clustered_cloud(rng, n)


@pytest.mark.parametrize("nranks", [1, 2, 4])
@pytest.mark.parametrize("dist", ["uniform", "clustered"])
def test_laplace_parity(rng, nranks, dist):
    pts = _cloud(rng, dist, 700)
    phi = rng.standard_normal((700, 1))
    opts = FMMOptions(p=4, max_points=30)
    seq_batched = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    naive = FMMOptions(p=4, max_points=30, plan="naive")
    seq_naive = KIFMM(LaplaceKernel(), naive).setup(pts).apply(phi)
    par = run_parallel_fmm(nranks, LaplaceKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq_batched) < 1e-9
    assert relative_error(par.potential, seq_naive) < 1e-9


@pytest.mark.parametrize("nranks", [1, 2, 4])
@pytest.mark.parametrize("dist", ["uniform", "clustered"])
def test_stokes_parity(rng, nranks, dist):
    pts = _cloud(rng, dist, 500)
    phi = rng.standard_normal((500, 3))
    opts = FMMOptions(p=4, max_points=35)
    seq_batched = KIFMM(StokesKernel(), opts).setup(pts).apply(phi)
    naive = FMMOptions(p=4, max_points=35, plan="naive")
    seq_naive = KIFMM(StokesKernel(), naive).setup(pts).apply(phi)
    par = run_parallel_fmm(nranks, StokesKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq_batched) < 1e-9
    assert relative_error(par.potential, seq_naive) < 1e-9


def test_repeated_applies_bitwise_identical(rng):
    pts = clustered_cloud(rng, 600)
    phi = rng.standard_normal((600, 1))
    op = ParallelFMM(4, LaplaceKernel(), FMMOptions(p=4, max_points=30))
    op.setup(pts)
    p1, p2, p3 = op.apply(phi), op.apply(phi), op.apply(phi)
    assert np.array_equal(p1, p2)
    assert np.array_equal(p2, p3)
    assert op.napplies == 3


def test_overlap_on_off_bitwise_identical(rng):
    pts = uniform_cloud(rng, 600)
    phi = rng.standard_normal((600, 3))
    opts = FMMOptions(p=4, max_points=30)
    on = ParallelFMM(3, StokesKernel(), opts, overlap=True).setup(pts)
    off = ParallelFMM(3, StokesKernel(), opts, overlap=False).setup(pts)
    assert np.array_equal(on.apply(phi), off.apply(phi))


def test_napplies_driver_matches_single_apply(rng):
    pts = uniform_cloud(rng, 500)
    phi = rng.standard_normal((500, 1))
    opts = FMMOptions(p=4, max_points=30)
    one = run_parallel_fmm(2, LaplaceKernel(), pts, phi, opts)
    three = run_parallel_fmm(2, LaplaceKernel(), pts, phi, opts, napplies=3)
    assert np.array_equal(one.potential, three.potential)


def test_dense_m2l_planned_path(rng):
    pts = clustered_cloud(rng, 500)
    phi = rng.standard_normal((500, 1))
    opts = FMMOptions(p=4, max_points=30, m2l="dense")
    seq = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(3, LaplaceKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq) < 1e-9


@pytest.mark.parametrize(
    "m2l,dtype,tol",
    [("rsvd", "float64", 1e-9), ("rsvd", "float32", 1e-6),
     ("auto", "float64", 1e-9)],
)
def test_rsvd_and_auto_m2l_planned_path(rng, m2l, dtype, tol):
    """Compressed/mixed schedules through the LET-local planned path.

    float64 rsvd matches the sequential evaluator to roundoff (the
    seeded factorisation makes both sides use identical factors); the
    float32 mixed-precision mode differs only by single-precision
    rounding in a different owned/ghost summation order.
    """
    pts = clustered_cloud(rng, 500)
    phi = rng.standard_normal((500, 1))
    opts = FMMOptions(p=4, max_points=30, m2l=m2l, dtype=dtype)
    seq = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
    par = run_parallel_fmm(3, LaplaceKernel(), pts, phi, opts)
    assert relative_error(par.potential, seq) < tol
    naive = run_parallel_fmm(
        3, LaplaceKernel(), pts, phi,
        FMMOptions(p=4, max_points=30, m2l=m2l, dtype=dtype, plan="naive"),
    )
    assert relative_error(naive.potential, seq) < tol


def test_matvec_shape_for_gmres(rng):
    pts = uniform_cloud(rng, 300)
    op = ParallelFMM(2, StokesKernel(), FMMOptions(p=4, max_points=40))
    op.setup(pts)
    out = op.matvec(rng.standard_normal(900))
    assert out.shape == (900,)


def test_parallel_fmm_rejects_naive_plan():
    with pytest.raises(ValueError, match="batched"):
        ParallelFMM(2, LaplaceKernel(), FMMOptions(plan="naive"))


def test_apply_before_setup_raises():
    op = ParallelFMM(2, LaplaceKernel(), FMMOptions())
    with pytest.raises(RuntimeError, match="setup"):
        op.apply(np.zeros((10, 1)))


def test_timer_phases_include_pack_and_wait(rng):
    pts = uniform_cloud(rng, 500)
    phi = rng.standard_normal((500, 1))
    op = ParallelFMM(4, LaplaceKernel(), FMMOptions(p=4, max_points=30))
    op.setup(pts)
    op.apply(phi)
    for t in (t.by_phase() for t in op.timers):
        assert "pack" in t and "wait" in t
        assert t["up"] > 0 and "down_v" in t
    assert any(s.recv_wait_seconds > 0 for s in op.comm_stats)
    assert all(s.bytes_sent > 0 for s in op.comm_stats)


def test_shared_cache_reused_across_paths(rng):
    """The hoisted cache is accepted by both drivers and KIFMM.setup."""
    pts = uniform_cloud(rng, 400)
    phi = rng.standard_normal((400, 1))
    opts = FMMOptions(p=4, max_points=30)
    corner, side = _global_root(pts)
    cache = OperatorCache(LaplaceKernel(), opts.p, side)
    seq = KIFMM(LaplaceKernel(), opts).setup(
        pts, root=(corner, side), cache=cache
    ).apply(phi)
    planned = run_parallel_fmm(2, LaplaceKernel(), pts, phi, opts, cache=cache)
    naive = run_parallel_fmm(
        2, LaplaceKernel(), pts, phi,
        FMMOptions(p=4, max_points=30, plan="naive"), cache=cache,
    )
    assert relative_error(planned.potential, seq) < 1e-9
    assert relative_error(naive.potential, seq) < 1e-9


def test_mismatched_cache_root_rejected(rng):
    pts = uniform_cloud(rng, 200)
    cache = OperatorCache(LaplaceKernel(), 4, 123.0)
    with pytest.raises(ValueError, match="root_side"):
        KIFMM(LaplaceKernel(), FMMOptions(p=4)).setup(pts, cache=cache)
