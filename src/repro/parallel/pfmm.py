"""The three-stage parallel interaction calculation (Section 3.2).

"The interaction calculation part of our algorithm is logically separated
into three stages.  The first stage is a computation step which performs
the upward computation.  Each processor P builds the upward equivalent
densities for the LET nodes to which it contributes (ignoring the
existence of the other processors).  The second stage [communicates ghost
sources and reduces/scatters equivalent densities].  The third stage
performs the downward computation ... (ignoring the existence of the
other processors again)."

The redundant computation this design accepts near the root (every rank
computes partial upward densities and full downward passes for the
ancestors of its boxes) is reproduced faithfully; as the paper notes, the
number of such boxes is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field

import numpy as np

from repro.analysis import sanitize as _san
from repro.core.evaluator import coerce_density, resolve_kernels
from repro.core.fftm2l import FFTM2L
from repro.core.fmm import FMMOptions
from repro.core.m2lschedule import (
    M2LSchedule,
    coarse_split_levels,
    resolve_m2l_schedule,
    v_stats_from_lists,
    v_stats_from_plan,
)
from repro.core.plan import (
    MAX_BLOCK_ENTRIES,
    ExecutionPlan,
    NearBlocks,
    StageMeta,
    build_near_blocks,
    build_plan,
    build_w_blocks,
    chunk_segments,
    plan_stage,
)
from repro.core.precompute import OperatorCache
from repro.core.surfaces import surface_grid
from repro.kernels.base import Kernel
from repro.octree.lists import InteractionLists, build_lists
from repro.octree.tree import Octree
from repro.parallel.exchange import (
    ApplyExchange,
    GhostLayout,
    build_exchange_plan,
    exchange_equiv_densities,
    exchange_source_data,
    exchange_source_geometry,
)
from repro.parallel.let import classify_let, gather_users
from repro.parallel.owners import assign_owners, gather_contributors
from repro.parallel.partition import partition_points
from repro.parallel.ptree import ParallelTree, parallel_build_tree
from repro.parallel.simmpi import (
    CommStats,
    PerRank,
    SimComm,
    current_recorder,
    mk_tag,
    register_tag_family,
    run_spmd,
)
from repro.util.timing import PhaseTimer

# Coarse V-split broadcast tags: ``("vsp", level, box)``, one segmented
# tree_bcast per assigned box at each coarse split level (see
# :func:`v_split_bcast_schedule`).
register_tag_family(
    "vsp", fields=("level", "box"), phases=("v_split",), kind="split",
)


def _octant(box) -> int:
    return (
        (box.anchor[0] & 1)
        | ((box.anchor[1] & 1) << 1)
        | ((box.anchor[2] & 1) << 2)
    )


def _upward_local(
    tree: Octree,
    kernel: Kernel,
    cache: OperatorCache,
    phi: np.ndarray,
    src_k: Kernel | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stage 1: partial upward equivalent densities from local sources."""
    src_k = src_k if src_k is not None else kernel
    n_surf = cache.n_surf
    md = kernel.source_dof
    nb = tree.nboxes
    ue = np.zeros((nb, n_surf * md))
    has_ue = np.zeros(nb, dtype=bool)
    for level in range(tree.depth, -1, -1):
        for bi in tree.levels[level]:
            b = tree.boxes[bi]
            if b.nsrc == 0:  # no *local* sources in the subtree
                continue
            center = tree.center(bi)
            if b.is_leaf or not any(has_ue[c] for c in b.children):
                # a non-leaf whose local sources all sit in globally-pruned
                # octants cannot occur (children cover all occupied
                # octants globally), so local sources imply a child with a
                # partial density; the leaf branch handles true leaves.
                K = src_k.matrix(
                    cache.up_check_points(center, level), tree.src_points(bi)
                )
                check = K @ phi[tree.src_indices(bi)].reshape(-1)
            else:
                check = np.zeros(n_surf * kernel.target_dof)
                for ci in b.children:
                    if not has_ue[ci]:
                        continue
                    child = tree.boxes[ci]
                    check += cache.m2m_check(child.level, _octant(child)) @ ue[ci]
            ue[bi] = cache.uc2ue(level) @ check
            has_ue[bi] = True
    return ue, has_ue


def _downward_local(
    ptree: ParallelTree,
    lists,
    kernel: Kernel,
    cache: OperatorCache,
    phi: np.ndarray,
    global_ue: dict[int, np.ndarray],
    ghost_src: dict[int, tuple[np.ndarray, np.ndarray]],
    sched: M2LSchedule,
    src_k: Kernel | None = None,
    trg_k: Kernel | None = None,
    dir_k: Kernel | None = None,
) -> np.ndarray:
    """Stage 3: downward computation for boxes with local targets."""
    src_k = src_k if src_k is not None else kernel
    trg_k = trg_k if trg_k is not None else kernel
    dir_k = dir_k if dir_k is not None else kernel
    tree = ptree.tree
    boxes = tree.boxes
    n_surf = cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    out_dof = trg_k.target_dof
    nb = tree.nboxes
    dc = np.zeros((nb, n_surf * qd))
    has_dc = np.zeros(nb, dtype=bool)
    de = np.zeros((nb, n_surf * md))
    has_de = np.zeros(nb, dtype=bool)
    potential = np.zeros((tree.targets.shape[0], out_dof))
    has_global_src = ptree.global_nsrc > 0

    fft = FFTM2L(cache) if sched.needs_fft else None
    if fft is not None:
        _fft_v_list_parallel(ptree, lists, fft, sched, global_ue, dc, has_dc)

    for level in range(1, tree.depth + 1):
        for bi in tree.levels[level]:
            b = boxes[bi]
            if b.ntrg == 0:  # no local targets in the subtree
                continue
            center = tree.center(bi)
            if has_de[b.parent]:
                dc[bi] += cache.l2l_check(level, _octant(b)) @ de[b.parent]
                has_dc[bi] = True
            backend = sched.backend(level)
            if backend != "fft":
                for ai in lists.V[bi]:
                    if not has_global_src[ai]:
                        continue
                    a = boxes[ai]
                    offset = tuple(b.anchor[d] - a.anchor[d] for d in range(3))
                    if backend == "dense":
                        dc[bi] += (
                            cache.m2l_check(level, offset) @ global_ue[int(ai)]
                        )
                    else:
                        uf, vf = cache.m2l_rsvd(level, offset, sched.dtype)
                        src = global_ue[int(ai)]
                        if sched.dtype == "float32":
                            src = src.astype(np.float32)
                        dc[bi] += uf @ (vf @ src)
                    has_dc[bi] = True
            if len(lists.X[bi]):
                check_pts = cache.down_check_points(center, level)
                for ai in lists.X[bi]:
                    if not has_global_src[ai]:
                        continue
                    pts, dens = ghost_src[int(ai)]
                    dc[bi] += src_k.matrix(check_pts, pts) @ dens.reshape(-1)
                    has_dc[bi] = True
            if has_dc[bi]:
                de[bi] = cache.dc2de(level) @ dc[bi]
                has_de[bi] = True
            if not b.is_leaf:
                continue
            trg_pts = tree.trg_points(bi)
            trg_idx = tree.trg_indices(bi)
            local = np.zeros(b.ntrg * out_dof)
            if has_de[bi]:
                K = trg_k.matrix(trg_pts, cache.down_equiv_points(center, level))
                local += K @ de[bi]
            for ai in lists.U[bi]:
                if not has_global_src[ai]:
                    continue
                pts, dens = ghost_src[int(ai)]
                local += dir_k.matrix(trg_pts, pts) @ dens.reshape(-1)
            for ai in lists.W[bi]:
                if not has_global_src[ai]:
                    continue
                a = boxes[ai]
                K = trg_k.matrix(
                    trg_pts, cache.up_equiv_points(tree.center(ai), a.level)
                )
                local += K @ global_ue[int(ai)]
            potential[trg_idx] += local.reshape(b.ntrg, out_dof)

    root = boxes[0]
    if root.is_leaf and root.ntrg > 0 and has_global_src[0]:
        pts, dens = ghost_src[0]
        K = dir_k.matrix(tree.trg_points(0), pts)
        potential[tree.trg_indices(0)] += (
            K @ dens.reshape(-1)
        ).reshape(root.ntrg, out_dof)
    return potential


def _fft_v_list_parallel(
    ptree: ParallelTree,
    lists,
    fft: FFTM2L,
    sched: M2LSchedule,
    global_ue: dict[int, np.ndarray],
    dc: np.ndarray,
    has_dc: np.ndarray,
) -> None:
    """FFT-accelerated V-list pass over the rank's LET (fft levels)."""
    tree = ptree.tree
    boxes = tree.boxes
    has_global_src = ptree.global_nsrc > 0
    for level in range(2, tree.depth + 1):
        if sched.backend(level) != "fft":
            continue
        level_boxes = tree.levels[level]
        needed: set[int] = set()
        for bi in level_boxes:
            if boxes[bi].ntrg == 0:
                continue
            for ai in lists.V[bi]:
                if has_global_src[ai]:
                    needed.add(int(ai))
        if not needed:
            continue
        phi_hat = {ai: fft.density_hat(global_ue[ai]) for ai in needed}
        for bi in level_boxes:
            b = boxes[bi]
            if b.ntrg == 0 or not len(lists.V[bi]):
                continue
            acc = None
            for ai in lists.V[bi]:
                if not has_global_src[ai]:
                    continue
                a = boxes[ai]
                offset = tuple(b.anchor[d] - a.anchor[d] for d in range(3))
                tensor = fft.kernel_tensor_hat(level, offset)
                if acc is None:
                    nfreq = fft.m * fft.m * (fft.m // 2 + 1)
                    acc = np.zeros((tensor.shape[0], nfreq), dtype=np.complex128)
                fft.accumulate(acc, tensor, phi_hat[int(ai)])
            if acc is not None:
                dc[bi] += fft.check_potential(acc)
                has_dc[bi] = True


def parallel_evaluate(
    comm: SimComm,
    kernel: Kernel,
    local_sources: np.ndarray,
    local_density: np.ndarray,
    options: FMMOptions | None = None,
    root: tuple[np.ndarray, float] | None = None,
    timer: PhaseTimer | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
    cache: OperatorCache | None = None,
) -> np.ndarray:
    """SPMD entry point: each rank passes its local particles.

    Sources and targets are the identical local point set (the paper's
    experimental setup).  Returns the potentials at this rank's local
    points, in local order.  The variable source/target kernels follow
    the same rules as the sequential evaluator (see
    :func:`repro.core.evaluator.evaluate`).

    ``cache`` lets the caller supply a prebuilt (shareable)
    :class:`~repro.core.precompute.OperatorCache` so repeated calls stop
    recomputing the pseudoinverse operators; it must have been built
    with the same kernel, order and root side this call produces
    (supply ``root`` to pin the cube).
    """
    opts = options or FMMOptions()
    timer = timer if timer is not None else PhaseTimer()
    src_k = source_kernel if source_kernel is not None else kernel
    trg_k = target_kernel if target_kernel is not None else kernel
    if direct_kernel is not None:
        dir_k = direct_kernel
    elif src_k is kernel:
        dir_k = trg_k
    elif trg_k is kernel:
        dir_k = src_k
    else:
        raise ValueError(
            "direct_kernel is required when both source_kernel and "
            "target_kernel are custom"
        )
    local_sources = np.asarray(local_sources, dtype=np.float64)
    phi = np.asarray(local_density, dtype=np.float64).reshape(
        local_sources.shape[0], src_k.source_dof
    )

    with timer.phase("tree"):
        ptree = parallel_build_tree(
            comm,
            local_sources,
            max_points=opts.max_points,
            max_depth=opts.max_depth,
            root=root,
        )
        tree = ptree.tree
        lists = build_lists(tree)
        contrib_src, contrib_trg = gather_contributors(
            comm, ptree.local_contributes_src(), ptree.local_contributes_trg()
        )
        owner = assign_owners(contrib_src | contrib_trg)
        usage = classify_let(tree, lists, ptree.local_contributes_trg())
        # data is only needed for boxes that globally hold sources
        usage.uses_equiv &= ptree.global_nsrc > 0
        usage.uses_source &= ptree.global_nsrc > 0
        users_equiv, users_src = gather_users(comm, usage)

    if cache is None:
        cache = OperatorCache(
            kernel, opts.p, tree.root_side,
            inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
        )

    with timer.phase("up"):
        partial_ue, has_ue = _upward_local(tree, kernel, cache, phi, src_k=src_k)

    # Communication, split into ``pack`` (send side) and ``wait``
    # (receive side) by the exchange functions themselves.
    with timer.phase("pack"):
        src_boxes = np.nonzero(users_src.any(axis=0))[0]
        local_pts = {
            int(b): tree.src_points(int(b))
            for b in src_boxes
            if contrib_src[comm.rank, b]
        }
        local_dens = {
            int(b): phi[tree.src_indices(int(b))]
            for b in src_boxes
            if contrib_src[comm.rank, b]
        }
    ghost_src = exchange_source_data(
        comm, src_boxes, contrib_src, users_src, owner, local_pts, local_dens,
        timer=timer, scheme=opts.comm,
    )
    ue_boxes = np.nonzero(users_equiv.any(axis=0))[0]
    global_ue = exchange_equiv_densities(
        comm, ue_boxes, contrib_src, users_equiv, owner, partial_ue, has_ue,
        timer=timer, scheme=opts.comm,
    )

    # Backend resolution must gate the V statistics by *global* source
    # counts — every rank then derives the identical schedule, keeping
    # the redundant downward passes bitwise consistent across ranks.
    sched = resolve_m2l_schedule(
        opts.m2l, opts.dtype,
        stats=v_stats_from_lists(tree, lists, nsrc=ptree.global_nsrc),
        cache=cache, kernel=kernel,
    )
    with timer.phase("down"):
        potential = _downward_local(
            ptree, lists, kernel, cache, phi, global_ue, ghost_src, sched,
            src_k=src_k, trg_k=trg_k, dir_k=dir_k,
        )
    return potential


# ---------------------------------------------------------------------------
# Persistent parallel operator: setup once per geometry, apply many times.
# ---------------------------------------------------------------------------


def _global_root(
    points: np.ndarray, pad: float = 1e-6
) -> tuple[np.ndarray, float]:
    """Bounding cube over all points, matching :func:`agree_root_cube`.

    The driver holds the full point set, so it can compute the cube the
    ranks would have agreed on collectively (elementwise min/max commute
    with the Allreduce) and share one operator cache across ranks.
    """
    lo, hi = points.min(axis=0), points.max(axis=0)
    side = float((hi - lo).max())
    side = side * (1.0 + pad) if side > 0 else 1.0
    center = (lo + hi) / 2.0
    return center - side / 2.0, side


def v_split_bcast_schedule(
    lvl_boxes: np.ndarray,
    lists: InteractionLists,
    contrib_trg: np.ndarray,
    gsrc: np.ndarray,
) -> list[tuple[int, int, tuple[int, ...]]]:
    """The coarse-split broadcast schedule of one tree level.

    Pure function of the plan inputs (level boxes, interaction lists,
    target-contributor matrix, global source counts): the level's active
    V target boxes — some rank contributes targets and some V partner
    holds global sources — each assigned cyclically to one of their
    contributor ranks, who broadcasts the computed downward-check rows
    to the other contributors.  Returns ``(box, root_rank, participants)``
    rows, identical on every rank (everything derives from replicated
    matrices).  Shared by :func:`rank_setup` and the static
    communication verifier (:mod:`repro.analysis.commir`), so the
    runtime schedule and the certified one cannot drift apart.
    """
    cand = [
        int(bx) for bx in lvl_boxes
        if contrib_trg[:, bx].any()
        and any(gsrc[int(a)] > 0 for a in lists.V[int(bx)])
    ]
    schedule: list[tuple[int, int, tuple[int, ...]]] = []
    for j, bx in enumerate(cand):
        parts = tuple(
            int(r) for r in np.nonzero(contrib_trg[:, bx])[0]
        )
        schedule.append((bx, parts[j % len(parts)], parts))
    return schedule


@plan_stage
@dataclass
class _VSplit:
    """One V level's pairs split by source-box ownership.

    Rows/classes over sources this rank owns can be processed inside the
    overlap window (their global equivalent densities are on hand right
    after the owner relay); ghost rows wait for the scatter.

    At *coarse split levels* (box count below the rank count — see
    :func:`repro.core.m2lschedule.coarse_split_levels`) the redundant
    tree-top translations are divided instead: ``own_*`` is empty, the
    ``ghost_*`` classes are restricted to the target boxes *assigned* to
    this rank by the deterministic cyclic assignment, ``inv_rows`` lists
    the assigned positions into ``vl.trg_boxes`` (the only rows this
    rank inverse-transforms), and ``bcast`` holds the per-box
    ``(box, root_rank, participant_ranks)`` broadcast schedule that
    delivers every participant the assigned rank's downward-check rows.
    ``inv_rows is None`` means the level is not split (all rows local).
    """

    own_rows: np.ndarray
    ghost_rows: np.ndarray
    own_classes: list[tuple[tuple[int, int, int], np.ndarray, np.ndarray]]
    ghost_classes: list[tuple[tuple[int, int, int], np.ndarray, np.ndarray]]
    inv_rows: np.ndarray | None = None
    bcast: list[tuple[int, int, tuple[int, ...]]] = dataclasses_field(
        default_factory=list
    )

    stage_meta = StageMeta(
        reads=("ue", "vhat"), writes=("vhat", "dc"), dtype="float64"
    )


class RankFMM:
    """One rank's persistent parallel FMM state (the setup product).

    Mirrors the sequential ``KIFMM`` setup/apply split over the rank's
    local essential tree: :func:`rank_setup` builds the parallel tree,
    the LET-local :class:`~repro.core.plan.ExecutionPlan` (partner
    gating by *global* source counts, U/X positions into the combined
    local+ghost source array), the ghost geometry, and the owned/ghost
    work splits that define the overlap window.  :meth:`apply` then runs
    one batched interaction evaluation, exchanging only densities.

    The object deliberately holds no communicator — each apply receives
    one, so the same states can be reused across ``run_spmd`` calls
    (each GMRES matvec is one such call).
    """

    def __init__(
        self,
        kernel: Kernel,
        options: FMMOptions,
        ptree: ParallelTree,
        lists: InteractionLists,
        cache: OperatorCache,
        fft: FFTM2L | None,
        plan: ExecutionPlan,
        layout: GhostLayout,
        ext_points: np.ndarray,
        u_own: NearBlocks,
        u_ghost: NearBlocks,
        w_own: NearBlocks,
        w_ghost: NearBlocks,
        v_splits: list[_VSplit],
        src_start: np.ndarray,
        src_stop: np.ndarray,
        source_kernel: Kernel | None,
        target_kernel: Kernel | None,
        direct_kernel: Kernel | None,
        m2l_schedule: M2LSchedule | None = None,
        v_compute: np.ndarray | None = None,
    ) -> None:
        self.kernel = kernel
        self.options = options
        self.ptree = ptree
        self.tree = ptree.tree
        self.lists = lists
        self.cache = cache
        self.fft = fft
        self.plan = plan
        self.layout = layout
        self.ext_points = ext_points
        self.u_own = u_own
        self.u_ghost = u_ghost
        self.w_own = w_own
        self.w_ghost = w_ghost
        self.v_splits = v_splits
        self.src_start = src_start
        self.src_stop = src_stop
        # Which boxes this rank performs V target-side work for.  Every
        # box with local targets, except at coarse split levels, where
        # only the cyclically-assigned boxes remain (the flop model's
        # ``v_targets`` mask — ``None`` means fully redundant).
        self.v_compute = v_compute
        if m2l_schedule is None:
            m2l_schedule = resolve_m2l_schedule(
                options.m2l, options.dtype,
                stats=v_stats_from_plan(plan), cache=cache, kernel=kernel,
            )
        self.m2l_schedule = m2l_schedule
        self.src_k, self.trg_k, self.dir_k = resolve_kernels(
            kernel, source_kernel, target_kernel, direct_kernel
        )

    # -- apply ------------------------------------------------------------

    def apply(
        self,
        comm: SimComm,
        local_density: np.ndarray,
        timer: PhaseTimer | None = None,
        overlap: bool = True,
    ) -> np.ndarray:
        """One planned interaction evaluation over the LET.

        The computation order is identical with and without overlap —
        owned-data passes always run before their ghost counterparts —
        so the two modes produce bitwise identical potentials; the flag
        only decides whether the scatter wait happens before or after
        the owned passes (i.e. whether the in-flight exchange is hidden
        behind them).

        ``local_density`` may be a stacked block — ``(ns, sdof, nrhs)``
        or a flat ``(ns * sdof, nrhs)`` — in which case the whole block
        rides ONE overlapped exchange: density rows widen to
        ``sdof * nrhs`` and per-box equivalent-density payloads to
        ``nrhs`` contiguous surface vectors, so latency and coordinate
        traffic are paid once per block instead of once per column.
        Stages that feed the regularised ``uc2ue``/``dc2de`` inverses
        loop columns with hoisted operators (bitwise column parity with
        single-RHS applies); direct-to-potential stages fold the RHS
        axis into wider GEMMs.
        """
        timer = timer if timer is not None else PhaseTimer()
        tree, plan, cache = self.tree, self.plan, self.cache
        md, qd = self.kernel.source_dof, self.kernel.target_dof
        sdof, out_dof = self.src_k.source_dof, self.trg_k.target_dof
        n_surf = cache.n_surf
        nb = plan.nboxes
        ns = tree.sources.shape[0]
        nt = tree.targets.shape[0]
        pool = plan.buffers
        san = self.options.sanitize or _san.enabled()
        pool.sanitize = san
        phi3, nrhs, single = coerce_density(
            np.asarray(local_density, dtype=np.float64), ns, sdof
        )
        if san:
            _san.check_finite(phi3, "input", "local density",
                              rows_are="points")
        # The exchange payload keeps points on the leading axis with all
        # right-hand sides packed into the row: one exchange, nrhs-wide.
        phi_sorted = np.ascontiguousarray(phi3[tree.src_perm]).reshape(
            ns, sdof * nrhs
        )
        # RHS-major view for the column-looped upward pass.
        phi_rm = np.ascontiguousarray(
            phi_sorted.reshape(ns, sdof, nrhs).transpose(2, 0, 1)
        )
        rec = current_recorder()
        if rec is not None:
            rec.register(f"rank{comm.rank}:phi_sorted", phi_sorted)
            rec.write(phi_sorted, "sort-density")

        ue = pool.zeros("p_ue", (nb, nrhs * n_surf * md))
        ue3 = ue.reshape(nb, nrhs, n_surf * md)
        with timer.phase("up"):
            self._upward(ue3, phi_rm)
        if rec is not None:
            rec.register(f"rank{comm.rank}:ue", ue)
            rec.write(ue, "upward-partial")
        if san:
            _san.check_finite(ue, "up", "partial upward equivalent densities")

        lay = self.layout
        ext_phi = pool.empty(
            "p_ext_phi", (self.ext_points.shape[0], sdof * nrhs)
        )
        ext_phi3 = ext_phi.reshape(self.ext_points.shape[0], sdof, nrhs)
        if rec is not None:
            rec.register(f"rank{comm.rank}:ext_phi", ext_phi)
        exch = ApplyExchange(
            comm, lay, phi_sorted, self.src_start, self.src_stop, ue,
            ext_phi, timer,
        ).start()
        exch.relay()
        if not overlap:
            exch.finish()

        dc3 = pool.zeros("p_dc", (nrhs, nb, n_surf * qd))
        de3 = pool.zeros("p_de", (nrhs, nb, n_surf * md))
        pot3 = pool.zeros("p_pot", (nrhs, nt, out_dof))

        # Owned-data passes: with overlap on, these run while the
        # equivalent-density/ghost-density scatter is still in flight.
        self._near_u(self.u_own, ext_phi3, pot3, timer)
        self._near_w(self.w_own, ue3, pot3, timer)
        v_state = self._v_owned(ue3, dc3, timer)

        if overlap:
            exch.finish()
        if san:
            _san.check_finite(ext_phi, "exchange",
                              "combined ghost source densities",
                              rows_are="points")
            _san.check_finite(ue, "exchange",
                              "global upward equivalent densities")

        # Ghost-dependent passes.
        self._v_ghost(comm, ue3, dc3, v_state, timer)
        self._downward(ext_phi3, dc3, de3, pot3, timer)
        self._near_u(self.u_ghost, ext_phi3, pot3, timer)
        self._near_w(self.w_ghost, ue3, pot3, timer)
        if san:
            _san.check_finite(pot3, "output", "potentials",
                              rows_are="targets")

        if single:
            potential = np.empty((nt, out_dof))
            potential[tree.trg_perm] = pot3[0]
        else:
            potential = np.empty((nt, out_dof, nrhs))
            potential[tree.trg_perm] = pot3.transpose(1, 2, 0)
        if san:
            _san.check_escape(potential, pool, "RankFMM.apply")
        return potential

    # -- stages -----------------------------------------------------------

    def _upward(self, ue3: np.ndarray, phi_rm: np.ndarray) -> None:
        """Partial upward pass (local sources only), level batched.

        Feeds the regularised ``uc2ue`` inverse, so columns are looped
        with per-level operators hoisted: every column performs exactly
        the arithmetic of a single-RHS apply (bitwise column parity).
        """
        cache, plan, src_k = self.cache, self.plan, self.src_k
        n_surf = cache.n_surf
        qd, sdof = self.kernel.target_dof, src_k.source_dof
        nrhs = ue3.shape[1]
        pool = plan.buffers
        zero3 = np.zeros(3)
        for ul in plan.up_levels:
            check = pool.zeros(
                "p_up_check", (nrhs, ul.boxes.size, n_surf * qd)
            )
            if ul.s2m_rows.size:
                chk_pts = cache.up_check_points(zero3, ul.level)
                phi_cat = phi_rm[:, ul.s2m_src_pos].reshape(nrhs, -1)
                max_pts = max(1, MAX_BLOCK_ENTRIES // (n_surf * qd * sdof))
                for lo, hi in chunk_segments(ul.s2m_seg, max_pts):
                    p0, p1 = int(ul.s2m_seg[lo]), int(ul.s2m_seg[hi])
                    K = src_k.matrix_local(chk_pts, ul.s2m_pts[p0:p1])
                    cols = (ul.s2m_seg[lo:hi] - p0) * sdof
                    rows = ul.s2m_rows[lo:hi]
                    for r in range(nrhs):
                        vals = K * phi_cat[r, p0 * sdof : p1 * sdof][None, :]
                        check[r][rows] += np.add.reduceat(
                            vals, cols, axis=1
                        ).T
            for octant, kids, rows in ul.m2m_groups:
                M = cache.m2m_check(ul.level + 1, octant)
                if pool.sanitize:
                    _san.guard_gemm(check, ue3, M,
                                    site=f"p-m2m level {ul.level}")
                for r in range(nrhs):
                    check[r][rows] += ue3[kids, r] @ M.T
            U = cache.uc2ue(ul.level)
            if pool.sanitize:
                _san.guard_gemm(ue3, check, U,
                                site=f"p-uc2ue level {ul.level}")
            for r in range(nrhs):
                ue3[ul.boxes, r] = check[r] @ U.T
            pool.release("p_up_check")

    def _near_u(
        self,
        blocks: NearBlocks,
        ext_phi3: np.ndarray,
        pot3: np.ndarray,
        timer: PhaseTimer,
    ) -> None:
        """U-list near field over one ownership split of the partners.

        Direct to potentials (no ill-conditioned inverse downstream), so
        the RHS axis folds into one GEMM per chunk that streams the
        kernel block once for the whole batch.
        """
        if blocks.boxes.size == 0:
            return
        plan, dir_k = self.plan, self.dir_k
        sdof, out_dof = self.src_k.source_dof, self.trg_k.target_dof
        nrhs = pot3.shape[0]
        with timer.phase("down_u"):
            for i, bi in enumerate(blocks.boxes):
                t0, t1 = int(blocks.trg_start[i]), int(blocks.trg_stop[i])
                s0, s1 = int(blocks.seg[i]), int(blocks.seg[i + 1])
                pos = blocks.src_pos[s0:s1]
                ctr = plan.centers[bi]
                trg_pts = plan.targets_sorted[t0:t1] - ctr
                ntr = t1 - t0
                step = max(1, MAX_BLOCK_ENTRIES // max(1, ntr * out_dof * sdof))
                for c0 in range(0, pos.size, step):
                    c1 = min(pos.size, c0 + step)
                    K = dir_k.matrix_local(
                        trg_pts, self.ext_points[pos[c0:c1]] - ctr
                    )
                    xs = ext_phi3[pos[c0:c1]].reshape(-1, nrhs)
                    pot3[:, t0:t1] += (K @ xs).reshape(
                        ntr, out_dof, nrhs
                    ).transpose(2, 0, 1)

    def _near_w(
        self,
        blocks: NearBlocks,
        ue3: np.ndarray,
        pot3: np.ndarray,
        timer: PhaseTimer,
    ) -> None:
        """W-list pass over one ownership split of the partner boxes.

        Direct to potentials, so the RHS axis folds like the U list.
        """
        if blocks.boxes.size == 0:
            return
        plan, cache, trg_k = self.plan, self.cache, self.trg_k
        out_dof = trg_k.target_dof
        nrhs = pot3.shape[0]
        with timer.phase("down_w"):
            sgrid = surface_grid(cache.p)
            hw = cache.root_side / np.power(2.0, np.arange(plan.depth + 1)) / 2.0
            for i, bi in enumerate(blocks.boxes):
                t0, t1 = int(blocks.trg_start[i]), int(blocks.trg_stop[i])
                s0, s1 = int(blocks.seg[i]), int(blocks.seg[i + 1])
                partners = blocks.src_pos[s0:s1]
                ctr = plan.centers[bi]
                rad = cache.inner * hw[plan.levels[partners]]
                eq_pts = (
                    (plan.centers[partners] - ctr)[:, None, :]
                    + rad[:, None, None] * sgrid[None, :, :]
                ).reshape(-1, 3)
                K = trg_k.matrix_local(plan.targets_sorted[t0:t1] - ctr, eq_pts)
                xs = ue3[partners].transpose(0, 2, 1).reshape(-1, nrhs)
                pot3[:, t0:t1] += (K @ xs).reshape(
                    t1 - t0, out_dof, nrhs
                ).transpose(2, 0, 1)

    def _v_direct(
        self, vl, classes, backend: str, ue3: np.ndarray, dc3: np.ndarray
    ) -> None:
        """Apply one ownership split of a dense/rsvd level's classes."""
        cache = self.cache
        nrhs = dc3.shape[0]
        dtype = self.m2l_schedule.dtype
        for offset, spos, tpos in classes:
            if backend == "dense":
                T = cache.m2l_check(vl.level, offset)
                for r in range(nrhs):
                    dc3[r][vl.trg_boxes[tpos]] += (
                        ue3[vl.src_boxes[spos], r] @ T.T
                    )
            else:
                uf, vf = cache.m2l_rsvd(vl.level, offset, dtype)
                ufT, vfT = uf.T, vf.T
                for r in range(nrhs):
                    src = ue3[vl.src_boxes[spos], r]
                    if dtype == "float32":
                        src = src.astype(np.float32)
                    dc3[r][vl.trg_boxes[tpos]] += (src @ vfT) @ ufT

    def _v_owned(
        self, ue3: np.ndarray, dc3: np.ndarray, timer: PhaseTimer
    ) -> list[tuple[np.ndarray, np.ndarray] | None]:
        """Forward-FFT owned V sources and accumulate owned classes.

        Returns per-level state the ghost pass completes: ``(phi_hat,
        acc)`` for fft-scheduled levels (plain arrays, not pool buffers:
        the state must survive the interleaved passes of the overlap
        window) and ``None`` for dense/rsvd levels, whose owned classes
        are applied directly here.  Columns are looped with the
        translation operators hoisted — the V result feeds the
        ``dc2de`` inverse, so every column must repeat the single-RHS
        arithmetic exactly.
        """
        plan, fft = self.plan, self.fft
        sched = self.m2l_schedule
        md, qd = self.kernel.source_dof, self.kernel.target_dof
        nrhs = dc3.shape[0]
        state: list[tuple[np.ndarray, np.ndarray] | None] = []
        with timer.phase("down_v"):
            for vl, sp in zip(plan.v_levels, self.v_splits):
                if sched.backend(vl.level) != "fft":
                    self._v_direct(
                        vl, sp.own_classes, sched.backend(vl.level), ue3, dc3
                    )
                    state.append(None)
                    continue
                nfreq = fft.m * fft.m * (fft.m // 2 + 1)
                nsb, ntb = vl.src_boxes.size, vl.trg_boxes.size
                phi_hat = np.empty(
                    (nrhs, nsb, md, nfreq), dtype=np.complex128
                )
                acc = np.zeros((nrhs, ntb, qd, nfreq), dtype=np.complex128)
                if sp.own_rows.size:
                    rows = vl.src_boxes[sp.own_rows]
                    for r in range(nrhs):
                        phi_hat[r][sp.own_rows] = fft.forward_rows(
                            ue3[rows, r],
                            np.empty(
                                (sp.own_rows.size, md, nfreq),
                                dtype=np.complex128,
                            ),
                        )
                for offset, spos, tpos in sp.own_classes:
                    tensor = fft.kernel_tensor_hat(vl.level, offset)
                    for r in range(nrhs):
                        fft.accumulate_many(
                            acc[r], tensor, phi_hat[r][spos], tpos
                        )
                state.append((phi_hat, acc))
        return state

    def _v_ghost(
        self,
        comm: SimComm,
        ue3: np.ndarray,
        dc3: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray] | None],
        timer: PhaseTimer,
    ) -> None:
        """Complete the V pass with ghost-owned source boxes.

        At coarse split levels (``sp.inv_rows is not None``) this rank
        only carries the boxes the deterministic cyclic assignment gave
        it — the inverse transform is restricted to ``inv_rows`` — and
        the level ends with a tree broadcast of each assigned box's
        downward-check rows to the box's other contributor ranks, which
        *assign* (not accumulate) the received bytes so the rows stay
        bitwise identical across participants.
        """
        plan, fft = self.plan, self.fft
        if not plan.v_levels:
            return
        sched = self.m2l_schedule
        md = self.kernel.source_dof
        nrhs = dc3.shape[0]
        with timer.phase("down_v"):
            for (vl, sp), st in zip(
                zip(plan.v_levels, self.v_splits), state
            ):
                if sched.backend(vl.level) != "fft":
                    self._v_direct(
                        vl, sp.ghost_classes, sched.backend(vl.level),
                        ue3, dc3,
                    )
                    self._v_split_bcast(comm, vl, sp, dc3)
                    continue
                nfreq = fft.m * fft.m * (fft.m // 2 + 1)
                phi_hat, acc = st
                if sp.ghost_rows.size:
                    rows = vl.src_boxes[sp.ghost_rows]
                    for r in range(nrhs):
                        phi_hat[r][sp.ghost_rows] = fft.forward_rows(
                            ue3[rows, r],
                            np.empty(
                                (sp.ghost_rows.size, md, nfreq),
                                dtype=np.complex128,
                            ),
                        )
                for offset, spos, tpos in sp.ghost_classes:
                    tensor = fft.kernel_tensor_hat(vl.level, offset)
                    for r in range(nrhs):
                        fft.accumulate_many(
                            acc[r], tensor, phi_hat[r][spos], tpos
                        )
                if sp.inv_rows is None:
                    for r in range(nrhs):
                        dc3[r][vl.trg_boxes] += fft.inverse_rows(acc[r])
                elif sp.inv_rows.size:
                    rows = vl.trg_boxes[sp.inv_rows]
                    for r in range(nrhs):
                        dc3[r][rows] += fft.inverse_rows(
                            acc[r][sp.inv_rows]
                        )
                self._v_split_bcast(comm, vl, sp, dc3)

    def _v_split_bcast(
        self, comm: SimComm, vl, sp, dc3: np.ndarray
    ) -> None:
        """Deliver split-level downward-check rows along the rank tree.

        Every participant iterates the same ascending ``(level, box)``
        schedule, so the segmented broadcasts match up deadlock-free.
        At this point ``dc3[:, bx]`` holds exactly the level's V
        contribution (L2L and X accumulate later, own classes are empty
        at split levels), so the root's rows can be assigned verbatim.
        """
        if not sp.bcast:
            return
        me = comm.rank
        for bx, root, parts in sp.bcast:
            blk = (
                np.ascontiguousarray(dc3[:, bx]) if me == root else None
            )
            out = comm.tree_bcast(
                blk, root, parts,
                tag=mk_tag("vsp", int(vl.level), int(bx)), phase="v_split",
            )
            if me != root:
                dc3[:, bx] = out

    def _downward(
        self,
        ext_phi3: np.ndarray,
        dc3: np.ndarray,
        de3: np.ndarray,
        pot3: np.ndarray,
        timer: PhaseTimer,
    ) -> None:
        """L2L / X / dc2de / L2T sweep over the LET (ghost X data).

        Columns loop with per-level/per-box operators hoisted: L2L, X
        and dc2de all feed the regularised downward inverse, and the
        L2T einsum beats a strided batched GEMM at leaf sizes.
        """
        plan, cache = self.plan, self.cache
        src_k, trg_k = self.src_k, self.trg_k
        md = self.kernel.source_dof
        n_surf = cache.n_surf
        out_dof = trg_k.target_dof
        nrhs = pot3.shape[0]
        zero3 = np.zeros(3)
        pool = plan.buffers
        for dl in plan.down_levels:
            with timer.phase("eval"):
                for octant, kids, parents in dl.l2l_groups:
                    L = cache.l2l_check(dl.level, octant)
                    if pool.sanitize:
                        _san.guard_gemm(dc3, de3, L,
                                        site=f"p-l2l level {dl.level}")
                    for r in range(nrhs):
                        dc3[r][kids] += de3[r][parents] @ L.T
            if dl.x_boxes.size:
                with timer.phase("down_x"):
                    chk_pts = cache.down_check_points(zero3, dl.level)
                    for i, bi in enumerate(dl.x_boxes):
                        p0, p1 = int(dl.x_seg[i]), int(dl.x_seg[i + 1])
                        pos = dl.x_src_pos[p0:p1]
                        K = src_k.matrix_local(
                            chk_pts, self.ext_points[pos] - plan.centers[bi]
                        )
                        xs = ext_phi3[pos].transpose(2, 0, 1).reshape(
                            nrhs, -1
                        )
                        for r in range(nrhs):
                            dc3[r, bi] += K @ xs[r]
            with timer.phase("eval"):
                if dl.dc_boxes.size:
                    D = cache.dc2de(dl.level)
                    if pool.sanitize:
                        _san.guard_gemm(de3, dc3, D,
                                        site=f"p-dc2de level {dl.level}")
                    for r in range(nrhs):
                        de3[r][dl.dc_boxes] = dc3[r][dl.dc_boxes] @ D.T
                if dl.l2t_boxes.size:
                    eq_pts = cache.down_equiv_points(zero3, dl.level)
                    reps = np.diff(dl.l2t_seg)
                    de_rows = [
                        np.repeat(de3[r][dl.l2t_boxes], reps, axis=0)
                        for r in range(nrhs)
                    ]
                    npts = int(dl.l2t_seg[-1])
                    step = max(1, MAX_BLOCK_ENTRIES // (out_dof * n_surf * md))
                    for p0 in range(0, npts, step):
                        p1 = min(npts, p0 + step)
                        K = trg_k.matrix_local(dl.l2t_pts[p0:p1], eq_pts)
                        K3 = K.reshape(p1 - p0, out_dof, n_surf * md)
                        tp = dl.l2t_trg_pos[p0:p1]
                        for r in range(nrhs):
                            pot3[r][tp] += np.einsum(
                                "tqm,tm->tq", K3, de_rows[r][p0:p1]
                            )


def rank_setup(
    comm: SimComm,
    kernel: Kernel,
    local_points: np.ndarray,
    options: FMMOptions | None = None,
    *,
    root: tuple[np.ndarray, float] | None = None,
    cache: OperatorCache | None = None,
    fft: FFTM2L | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
    timer: PhaseTimer | None = None,
) -> RankFMM:
    """Per-rank setup of the persistent parallel operator.

    Runs once per geometry: parallel tree + lists, LET classification,
    owner assignment, the LET-local execution plan, the setup-time ghost
    *geometry* exchange, and the owned/ghost work splits.  ``cache`` and
    ``fft`` may be shared across ranks (their lazy per-level entries are
    deterministic, so concurrent population is benign); when omitted
    they are built locally from the agreed root cube.
    """
    opts = options or FMMOptions()
    timer = timer if timer is not None else PhaseTimer()
    me = comm.rank
    local_points = np.asarray(local_points, dtype=np.float64)

    with timer.phase("tree"):
        ptree = parallel_build_tree(
            comm, local_points,
            max_points=opts.max_points, max_depth=opts.max_depth, root=root,
        )
        tree = ptree.tree
        lists = build_lists(tree)
        contrib_src, contrib_trg = gather_contributors(
            comm, ptree.local_contributes_src(), ptree.local_contributes_trg()
        )
        owner = assign_owners(contrib_src | contrib_trg)
        usage = classify_let(tree, lists, ptree.local_contributes_trg())
        usage.uses_equiv &= ptree.global_nsrc > 0
        usage.uses_source &= ptree.global_nsrc > 0
        users_equiv, users_src = gather_users(comm, usage)

    if cache is None:
        cache = OperatorCache(
            kernel, opts.p, tree.root_side,
            inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
        )
    nb = tree.nboxes
    # Layout of the combined (local + ghost) source array: used boxes in
    # ascending order, each holding its *global* sources in the owner's
    # concatenation order.
    used = np.flatnonzero(usage.uses_source)
    sizes = ptree.global_nsrc[used]
    ext_start = np.zeros(nb, dtype=np.int64)
    ext_stop = np.zeros(nb, dtype=np.int64)
    stops = np.cumsum(sizes)
    ext_start[used] = stops - sizes
    ext_stop[used] = stops
    ext_total = int(stops[-1]) if used.size else 0

    # Setup-time geometry exchange (Algorithm 1 over positions).
    src_boxes = np.nonzero(users_src.any(axis=0))[0]
    ue_boxes = np.nonzero(users_equiv.any(axis=0))[0]
    local_pts = {
        int(b): tree.src_points(int(b))
        for b in src_boxes
        if contrib_src[me, b]
    }
    ghost_pts = exchange_source_geometry(
        comm, src_boxes, contrib_src, users_src, owner, local_pts, timer=timer,
        scheme=opts.comm,
    )
    ext_points = np.empty((ext_total, 3))
    for b in used:
        ext_points[ext_start[b]:ext_stop[b]] = ghost_pts[int(b)]

    layout = GhostLayout(
        phi=build_exchange_plan("phi", me, src_boxes, contrib_src,
                                users_src, owner, scheme=opts.comm),
        pue=build_exchange_plan("pue", me, ue_boxes, contrib_src,
                                users_equiv, owner, scheme=opts.comm),
        ext_start=ext_start,
        ext_stop=ext_stop,
    )

    with timer.phase("plan"):
        plan = build_plan(
            tree, lists,
            partner_nsrc=ptree.global_nsrc,
            ext_ranges=(ext_start, ext_stop),
        )

        # Ownership splits of the near-field and V-list work: owned
        # partners are computable right after the owner relay, ghost
        # partners only after the scatter completes.
        boxes = tree.boxes
        ntrg = np.fromiter((b.ntrg for b in boxes), np.int64, nb)
        trg_start = np.fromiter((b.trg_start for b in boxes), np.int64, nb)
        trg_stop = np.fromiter((b.trg_stop for b in boxes), np.int64, nb)
        gsrc = ptree.global_nsrc

        u_ptr, u_idx = lists.flat("U")
        u_trg = np.repeat(np.arange(nb), np.diff(u_ptr))
        um = (ntrg[u_trg] > 0) & (gsrc[u_idx] > 0)
        ut, us = u_trg[um], u_idx[um]
        uo = owner[us] == me
        u_own = build_near_blocks(
            ut[uo], us[uo], ext_start, ext_stop, trg_start, trg_stop
        )
        u_ghost = build_near_blocks(
            ut[~uo], us[~uo], ext_start, ext_stop, trg_start, trg_stop
        )

        w_ptr, w_idx = lists.flat("W")
        w_trg = np.repeat(np.arange(nb), np.diff(w_ptr))
        wm = (ntrg[w_trg] > 0) & (gsrc[w_idx] > 0)
        wt, wp = w_trg[wm], w_idx[wm]
        wo = owner[wp] == me
        w_own = build_w_blocks(wt[wo], wp[wo], trg_start, trg_stop)
        w_ghost = build_w_blocks(wt[~wo], wp[~wo], trg_start, trg_stop)

        # Coarse split levels: fewer boxes than ranks, where the fully
        # redundant tree-top V translations leave ranks idle.  Each
        # active target box there is assigned to exactly one of its
        # contributor ranks (cyclic over the level's active boxes), and
        # the assigned rank broadcasts the computed downward-check rows
        # — every quantity below derives from replicated matrices, so
        # all ranks agree without communication.
        split_levels = coarse_split_levels(
            [len(tree.levels[lvl]) for lvl in range(tree.depth + 1)],
            comm.size,
        )
        v_compute = ntrg > 0  # default: every box with local targets
        v_splits: list[_VSplit] = []
        empty_idx = np.empty(0, dtype=np.int64)
        for vl in plan.v_levels:
            if vl.level in split_levels:
                lvl_boxes = np.asarray(
                    tree.levels[vl.level], dtype=np.int64
                )
                # The level's global V target set, gated like build_plan:
                # some rank contributes targets and some partner holds
                # global sources.
                schedule = v_split_bcast_schedule(
                    lvl_boxes, lists, contrib_trg, gsrc
                )
                assigned_rank = {
                    bx: root_r for bx, root_r, _ in schedule
                }
                bcast = [
                    (bx, root_r, parts)
                    for bx, root_r, parts in schedule if me in parts
                ]
                assigned = np.fromiter(
                    (assigned_rank[int(bx)] == me for bx in vl.trg_boxes),
                    bool, vl.trg_boxes.size,
                )
                v_compute[lvl_boxes] = False
                v_compute[[bx for bx, r in assigned_rank.items()
                           if r == me]] = True
                ghost_classes = []
                used_src: list[np.ndarray] = []
                for offset, spos, tpos in vl.classes:
                    m = assigned[tpos]
                    if m.any():
                        ghost_classes.append((offset, spos[m], tpos[m]))
                        used_src.append(spos[m])
                v_splits.append(
                    _VSplit(
                        own_rows=empty_idx,
                        ghost_rows=(
                            np.unique(np.concatenate(used_src))
                            if used_src else empty_idx
                        ),
                        own_classes=[],
                        ghost_classes=ghost_classes,
                        inv_rows=np.flatnonzero(assigned),
                        bcast=bcast,
                    )
                )
                continue
            src_owned = owner[vl.src_boxes] == me
            own_classes, ghost_classes = [], []
            for offset, spos, tpos in vl.classes:
                m = src_owned[spos]
                if m.any():
                    own_classes.append((offset, spos[m], tpos[m]))
                if not m.all():
                    ghost_classes.append((offset, spos[~m], tpos[~m]))
            v_splits.append(
                _VSplit(
                    own_rows=np.flatnonzero(src_owned),
                    ghost_rows=np.flatnonzero(~src_owned),
                    own_classes=own_classes,
                    ghost_classes=ghost_classes,
                )
            )

    # The plan's V statistics are gated by global source counts (via
    # partner_nsrc), so every rank resolves the identical schedule.
    sched = resolve_m2l_schedule(
        opts.m2l, opts.dtype,
        stats=v_stats_from_plan(plan), cache=cache, kernel=kernel,
    )
    if fft is None and sched.needs_fft:
        fft = FFTM2L(cache)

    src_start = np.fromiter((b.src_start for b in boxes), np.int64, nb)
    src_stop = np.fromiter((b.src_stop for b in boxes), np.int64, nb)
    return RankFMM(
        kernel=kernel,
        options=opts,
        ptree=ptree,
        lists=lists,
        cache=cache,
        fft=fft,
        plan=plan,
        layout=layout,
        ext_points=ext_points,
        u_own=u_own,
        u_ghost=u_ghost,
        w_own=w_own,
        w_ghost=w_ghost,
        v_splits=v_splits,
        src_start=src_start,
        src_stop=src_stop,
        source_kernel=source_kernel,
        target_kernel=target_kernel,
        direct_kernel=direct_kernel,
        m2l_schedule=sched,
        v_compute=v_compute,
    )


@dataclass
class ParallelFMMResult:
    """Aggregate result of a driver-level parallel run."""

    potential: np.ndarray
    comm_stats: list[CommStats]
    timers: list[dict[str, float]]
    nranks: int


def _planned_eligible(kernels: tuple[Kernel, ...], opts: FMMOptions) -> bool:
    """Whether the persistent planned path applies (mirrors KIFMM)."""
    return opts.plan == "batched" and all(
        k.translation_invariant for k in kernels
    )


def run_parallel_fmm(
    nranks: int,
    kernel: Kernel,
    points: np.ndarray,
    density: np.ndarray,
    options: FMMOptions | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
    trace=None,
    schedule_seed: int | None = None,
    napplies: int = 1,
    overlap: bool = True,
    cache: OperatorCache | None = None,
    race=None,
) -> ParallelFMMResult:
    """Convenience driver: partition, run SPMD, reassemble.

    Partitions ``points`` over ``nranks`` logical ranks with Morton-curve
    partitioning, runs the full three-stage parallel algorithm, and
    returns the potentials in the original point order together with
    per-rank communication statistics.

    With the default batched plan and translation-invariant kernels the
    run goes through the persistent operator: one :func:`rank_setup`
    followed by ``napplies`` overlapped planned applies inside a single
    SPMD region (so a trace covers setup plus every apply).  Otherwise
    ``napplies`` per-box :func:`parallel_evaluate` calls run, sharing
    one operator cache.

    ``trace`` (a :class:`repro.analysis.trace.CommTrace`) records the
    full communication event trace for
    :func:`repro.analysis.commcheck.check_trace`; ``schedule_seed``
    perturbs the rank interleaving with seeded yields (the result must
    be — and is asserted by tests to be — schedule independent).
    ``race`` (a :class:`repro.analysis.racecheck.RaceDetector`) records
    shared-array access records during the run for the offline
    happens-before analysis of ``repro racecheck``.
    """
    if napplies < 1:
        raise ValueError(f"napplies must be >= 1, got {napplies}")
    src_k, trg_k, dir_k = resolve_kernels(
        kernel, source_kernel, target_kernel, direct_kernel
    )
    opts = options or FMMOptions()
    points = np.asarray(points, dtype=np.float64)
    density3, nrhs, single = coerce_density(
        np.asarray(density, dtype=np.float64),
        points.shape[0], src_k.source_dof,
    )
    parts = partition_points(points, nranks)
    timers = [PhaseTimer() for _ in range(nranks)]
    use_plan = _planned_eligible((kernel, src_k, trg_k, dir_k), opts)

    if use_plan:
        corner, side = _global_root(points)
        shared_cache = cache if cache is not None else OperatorCache(
            kernel, opts.p, side,
            inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
        )
        # "auto" may schedule fft levels; prebuild so ranks share the
        # lazily-populated tensors (rank_setup ignores it otherwise).
        shared_fft = (
            FFTM2L(shared_cache) if opts.m2l in ("fft", "auto") else None
        )

        def rank_main(comm: SimComm, idx: np.ndarray):
            state = rank_setup(
                comm, kernel, points[idx], opts,
                root=(corner, side), cache=shared_cache, fft=shared_fft,
                source_kernel=source_kernel, target_kernel=target_kernel,
                direct_kernel=direct_kernel, timer=timers[comm.rank],
            )
            dloc = density3[idx]
            if single:
                dloc = dloc[:, :, 0]
            for _ in range(napplies):
                pot = state.apply(
                    comm, dloc,
                    timer=timers[comm.rank], overlap=overlap,
                )
            return pot, comm.stats
    else:

        def rank_main(comm: SimComm, idx: np.ndarray):
            # The per-box reference path loops columns (every rank loops
            # the same count, so the SPMD message rounds stay aligned).
            dloc = density3[idx]
            for _ in range(napplies):
                cols = [
                    parallel_evaluate(
                        comm, kernel, points[idx],
                        np.ascontiguousarray(dloc[:, :, r]),
                        options=options, timer=timers[comm.rank],
                        source_kernel=source_kernel,
                        target_kernel=target_kernel,
                        direct_kernel=direct_kernel, cache=cache,
                    )
                    for r in range(nrhs)
                ]
            pot = cols[0] if single else np.stack(cols, axis=2)
            return pot, comm.stats

    outputs = run_spmd(
        nranks, rank_main, PerRank(parts),
        trace=trace, schedule_seed=schedule_seed, race=race,
    )
    out_shape = (points.shape[0], trg_k.target_dof)
    potential = np.zeros(out_shape if single else out_shape + (nrhs,))
    for idx, (pot, _) in zip(parts, outputs):
        potential[idx] = pot
    return ParallelFMMResult(
        potential=potential,
        comm_stats=[stats for _, stats in outputs],
        timers=[t.by_phase() for t in timers],
        nranks=nranks,
    )


class ParallelFMM:
    """Persistent parallel FMM operator with a setup/apply split.

    The parallel analogue of :class:`~repro.core.fmm.KIFMM`:
    :meth:`setup` partitions the points, builds every rank's
    :class:`RankFMM` (parallel tree, LET, owners, LET-local execution
    plan, ghost geometry) and the shared operator cache — once.
    :meth:`apply` then evaluates the operator for a new density,
    exchanging only densities and equivalent densities with the
    overlapped nonblocking protocol.  Repeated applies of one operator
    are bitwise identical; GMRES drives :meth:`matvec`.

    Requires the batched plan and translation-invariant kernels (the
    conditions of :func:`~repro.core.evaluator.evaluate_planned`).
    """

    def __init__(
        self,
        nranks: int,
        kernel: Kernel,
        options: FMMOptions | None = None,
        *,
        overlap: bool = True,
        source_kernel: Kernel | None = None,
        target_kernel: Kernel | None = None,
        direct_kernel: Kernel | None = None,
    ) -> None:
        self.nranks = nranks
        self.kernel = kernel
        self.options = options or FMMOptions()
        self.overlap = overlap
        self.source_kernel = source_kernel
        self.target_kernel = target_kernel
        self.direct_kernel = direct_kernel
        self.src_k, self.trg_k, self.dir_k = resolve_kernels(
            kernel, source_kernel, target_kernel, direct_kernel
        )
        if not _planned_eligible(
            (kernel, self.src_k, self.trg_k, self.dir_k), self.options
        ):
            raise ValueError(
                "ParallelFMM requires plan='batched' and translation "
                "invariant kernels; use run_parallel_fmm for the per-box "
                "path"
            )
        self._states: list[RankFMM] | None = None
        self._parts: list[np.ndarray] | None = None
        self._npoints = 0
        self.cache: OperatorCache | None = None
        self.fft: FFTM2L | None = None
        self.timers = [PhaseTimer() for _ in range(nranks)]
        self.comm_stats = [CommStats() for _ in range(nranks)]
        self.napplies = 0

    def setup(
        self,
        points: np.ndarray,
        trace=None,
        schedule_seed: int | None = None,
    ) -> "ParallelFMM":
        """Build the per-rank persistent states for ``points``."""
        points = np.asarray(points, dtype=np.float64)
        opts = self.options
        corner, side = _global_root(points)
        if self.cache is None:
            self.cache = OperatorCache(
                self.kernel, opts.p, side,
                inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
            )
        if self.fft is None and opts.m2l in ("fft", "auto"):
            self.fft = FFTM2L(self.cache)
        parts = partition_points(points, self.nranks)

        def rank_main(comm: SimComm, idx: np.ndarray):
            state = rank_setup(
                comm, self.kernel, points[idx], opts,
                root=(corner, side), cache=self.cache, fft=self.fft,
                source_kernel=self.source_kernel,
                target_kernel=self.target_kernel,
                direct_kernel=self.direct_kernel,
                timer=self.timers[comm.rank],
            )
            return state, comm.stats

        outputs = run_spmd(
            self.nranks, rank_main, PerRank(parts),
            trace=trace, schedule_seed=schedule_seed,
        )
        self._states = [state for state, _ in outputs]
        for mine, (_, stats) in zip(self.comm_stats, outputs):
            mine.merge(stats)
        self._parts = parts
        self._npoints = points.shape[0]
        return self

    def apply(
        self,
        density: np.ndarray,
        trace=None,
        schedule_seed: int | None = None,
    ) -> np.ndarray:
        """Evaluate the operator for one density (original point order).

        Stacked blocks — ``(n, source_dof, nrhs)`` or a flat
        ``(n * source_dof, nrhs)`` — evaluate every column in one
        batched SPMD pass: each rank's whole RHS block rides a single
        overlapped exchange.  Returns ``(n, target_dof)`` potentials,
        with a trailing ``nrhs`` axis for stacked blocks.
        """
        if self._states is None or self._parts is None:
            raise RuntimeError("ParallelFMM.apply before setup()")
        density3, nrhs, single = coerce_density(
            np.asarray(density, dtype=np.float64),
            self._npoints, self.src_k.source_dof,
        )
        overlap = self.overlap

        def rank_main(comm: SimComm, state: RankFMM, idx: np.ndarray):
            dloc = density3[idx]
            if single:
                dloc = dloc[:, :, 0]
            pot = state.apply(
                comm, dloc,
                timer=self.timers[comm.rank], overlap=overlap,
            )
            return pot, comm.stats

        outputs = run_spmd(
            self.nranks, rank_main, PerRank(self._states),
            PerRank(self._parts), trace=trace, schedule_seed=schedule_seed,
        )
        for mine, (_, stats) in zip(self.comm_stats, outputs):
            mine.merge(stats)
        self.napplies += 1
        out_shape = (self._npoints, self.trg_k.target_dof)
        potential = np.zeros(out_shape if single else out_shape + (nrhs,))
        for idx, (pot, _) in zip(self._parts, outputs):
            potential[idx] = pot
        return potential

    def matvec(self, flat: np.ndarray) -> np.ndarray:
        """Flat-vector apply, the shape GMRES wants.

        A 2-D ``(n * source_dof, nrhs)`` block (block Krylov solvers)
        maps to the stacked ``(n * target_dof, nrhs)`` result.
        """
        out = self.apply(np.asarray(flat))
        if out.ndim == 3:
            return out.reshape(-1, out.shape[2])
        return out.ravel()
