"""Propeller rotation inside the time stepper."""

import numpy as np
import pytest

from repro.bie import (
    RigidBody,
    SedimentationSimulation,
    SphereSurface,
    propeller_surface,
)


def test_prescribed_body_geometry_rotates():
    prop = propeller_surface(np.zeros(3), nblades=2, n_per_blade=40, n_hub=30)
    blade_center_before = prop.members[1].center.copy()
    falling = RigidBody(SphereSurface(np.array([0.0, 0, 2.5]), 0.4, 60))
    stirrer = RigidBody(
        prop, angular_velocity=np.array([0.0, 0.0, -np.pi]), prescribed=True
    )
    sim = SedimentationSimulation(
        [falling, stirrer], gravity_force=np.array([0, 0, -2.0]),
        use_fmm=False, tol=1e-4,
    )
    sim.step(0.5)  # half period: blades rotate by pi/2... (omega*dt = pi/2)
    blade_center_after = prop.members[1].center
    # rotated about z by -pi/2: (x, y) -> (y, -x)
    expected = np.array(
        [blade_center_before[1], -blade_center_before[0], 0.0]
    )
    assert np.allclose(blade_center_after, expected, atol=1e-10)


def test_sphere_descends_past_propeller():
    falling = RigidBody(SphereSurface(np.array([0.5, 0, 2.0]), 0.35, 80))
    stirrer = RigidBody(
        propeller_surface(np.zeros(3), nblades=3, n_per_blade=40, n_hub=30),
        angular_velocity=np.array([0.0, 0.0, -2.0]),
        prescribed=True,
    )
    sim = SedimentationSimulation(
        [falling, stirrer], gravity_force=np.array([0, 0, -3.0]),
        use_fmm=False, tol=1e-4,
    )
    frames = sim.run(2, dt=0.05)
    z = [f.positions[0][2] for f in frames]
    assert z[1] < z[0] < 2.0
    # the propeller hub never translates
    assert np.allclose(frames[-1].positions[1], 0.0)
