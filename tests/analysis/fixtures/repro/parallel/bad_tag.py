"""Fixture: ad-hoc message tags that bypass the mk_tag registry."""


def exchange_with_string_tag(comm, peer, payload):
    comm.send(peer, payload, tag="phi-42")  # ad-hoc string tag
    return comm.recv(peer, tag="phi-42")


def exchange_with_tuple_tag(comm, peer, payload, b):
    comm.isend(peer, payload, tag=("phi", b))  # hand-built tuple
    req = comm.irecv(peer, tag=("pue", b))
    return req.wait()


def exchange_with_int_tag(comm, root, values):
    return comm.tree_reduce(values, root, range(4), tag=7)


def exchange_with_arithmetic_tag(comm, peer, payload, b):
    comm.send(peer, payload, tag="geo" + str(b))
