"""Machine model tests."""

import pytest

from repro.perfmodel.machine import TCS1, MachineModel


class TestMachineModel:
    def test_tcs1_constants(self):
        assert TCS1.clock_hz == 1.0e9
        # the paper's observation: M2L is the slowest phase (~300 Mflops/s)
        assert TCS1.phase_rates["down_v"] == min(TCS1.phase_rates.values())

    def test_message_time(self):
        m = MachineModel(latency=1e-5, bandwidth=1e8)
        assert m.message_time(1e8) == pytest.approx(1.0 + 1e-5)
        assert m.message_time(0, nmessages=10) == pytest.approx(1e-4)

    def test_allreduce_time(self):
        m = MachineModel(latency=1e-6, bandwidth=1e9)
        assert m.allreduce_time(1000, 1) == 0.0
        t2 = m.allreduce_time(1000, 2)
        t16 = m.allreduce_time(1000, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_kernel_rate_factors(self):
        assert TCS1.rate("up", "stokes") > TCS1.rate("up", "laplace")
        assert TCS1.rate("up") == TCS1.phase_rates["up"]
        assert TCS1.rate("up", "unknown_kernel") == TCS1.phase_rates["up"]

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            TCS1.rate("warp_drive")

    def test_tree_collective_time(self):
        m = MachineModel(latency=1e-6, bandwidth=1e9)
        assert m.tree_collective_time(1000, 1) == 0.0
        t2 = m.tree_collective_time(1000, 2)
        assert t2 == pytest.approx(1e-6 + 1000 / 1e9)
        # log2 rounds: 16 participants -> 4 rounds
        assert m.tree_collective_time(1000, 16) == pytest.approx(4 * t2)
        # non-power-of-two rounds up
        assert m.tree_collective_time(1000, 9) == pytest.approx(4 * t2)

    def test_flat_fanin_time(self):
        m = MachineModel(latency=1e-6, bandwidth=1e9)
        assert m.flat_fanin_time(1000, 1) == 0.0
        per = 1e-6 + 1000 / 1e9
        assert m.flat_fanin_time(1000, 16) == pytest.approx(15 * per)
        # the whole point: flat fan-in is linear, tree is logarithmic
        assert (m.flat_fanin_time(100, 1024)
                > m.tree_collective_time(100, 1024))

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(clock_hz=0)
        with pytest.raises(ValueError):
            MachineModel(bandwidth=-1)
        with pytest.raises(ValueError):
            MachineModel(phase_rates={"up": 0.0})
