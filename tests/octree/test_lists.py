"""Interaction list invariants, including the completeness theorem.

The decisive test is *completeness*: for every (source leaf, target leaf)
pair, the interaction between their particles must be accounted for by
exactly one mechanism — U (direct), V (M2L at some ancestor pair), W
(source ancestor's equivalent density at the target leaf) or X (source
leaf onto some target ancestor's check surface).  Double counting or
omission would silently corrupt potentials.
"""

import numpy as np
import pytest

from repro.octree import build_lists, build_tree
from repro.octree.lists import verify_lists

from tests.conftest import clustered_cloud, uniform_cloud


def _ancestors_or_self(tree, i):
    out = [i]
    while tree.boxes[out[-1]].parent >= 0:
        out.append(tree.boxes[out[-1]].parent)
    return out


def _coverage_count(tree, lists, src_leaf, trg_leaf):
    """How many mechanisms account for the (src_leaf, trg_leaf) pair."""
    count = 0
    src_anc = _ancestors_or_self(tree, src_leaf)
    trg_anc = _ancestors_or_self(tree, trg_leaf)
    # U: direct near interaction
    if src_leaf in set(lists.U[trg_leaf]):
        count += 1
    # V: M2L between some ancestor pair
    for b in trg_anc:
        vset = set(lists.V[b])
        for a in src_anc:
            if a in vset:
                count += 1
    # W: a source ancestor's upward density evaluated at the target leaf
    wset = set(lists.W[trg_leaf])
    for a in src_anc:
        if a in wset:
            count += 1
    # X: the source leaf's points onto a target ancestor's check surface
    for b in trg_anc:
        if src_leaf in set(lists.X[b]):
            count += 1
    return count


@pytest.mark.parametrize("cloud", ["uniform", "clustered"])
def test_completeness(rng, cloud):
    pts = (
        uniform_cloud(rng, 400) if cloud == "uniform" else clustered_cloud(rng, 400)
    )
    tree = build_tree(pts, max_points=15)
    lists = build_lists(tree)
    leaves = tree.leaves()
    for t in leaves:
        for s in leaves:
            assert _coverage_count(tree, lists, s, t) == 1, (
                f"pair (src={s}, trg={t}) covered "
                f"{_coverage_count(tree, lists, s, t)} times"
            )


@pytest.mark.parametrize("cloud", ["uniform", "clustered"])
def test_structural_invariants(rng, cloud):
    pts = (
        uniform_cloud(rng, 600) if cloud == "uniform" else clustered_cloud(rng, 600)
    )
    tree = build_tree(pts, max_points=20)
    lists = build_lists(tree)
    verify_lists(tree, lists)


def test_v_list_size_bound(rng):
    """At most 189 V-list entries (6^3 - 3^3) per box."""
    tree = build_tree(uniform_cloud(rng, 2000), max_points=20)
    lists = build_lists(tree)
    assert max((len(v) for v in lists.V), default=0) <= 189


def test_uniform_tree_has_no_w_or_x(rng):
    """A perfectly level-balanced tree has empty W and X lists."""
    # regular grid of points -> uniform refinement
    g = np.linspace(0.05, 0.95, 8)
    pts = np.array(np.meshgrid(g, g, g)).reshape(3, -1).T
    tree = build_tree(pts, max_points=10)
    levels = {tree.boxes[i].level for i in tree.leaves()}
    if len(levels) == 1:  # sanity: uniform refinement happened
        lists = build_lists(tree)
        assert all(len(w) == 0 for w in lists.W)
        assert all(len(x) == 0 for x in lists.X)


def test_clustered_tree_has_w_and_x(rng):
    tree = build_tree(clustered_cloud(rng, 800), max_points=15)
    lists = build_lists(tree)
    counts = lists.counts()
    assert counts["W"] > 0
    assert counts["X"] > 0
    assert counts["W"] == counts["X"]  # duality pairs


def test_u_symmetry(rng):
    tree = build_tree(clustered_cloud(rng, 500), max_points=15)
    lists = build_lists(tree)
    for i in tree.leaves():
        for j in lists.U[i]:
            assert i in set(lists.U[j]), f"U not symmetric for ({i}, {j})"


def test_single_box_tree(rng):
    tree = build_tree(uniform_cloud(rng, 5), max_points=60)
    lists = build_lists(tree)
    assert list(lists.U[0]) == [0]
    assert len(lists.V[0]) == len(lists.W[0]) == len(lists.X[0]) == 0


def test_counts_reports_totals(rng):
    tree = build_tree(uniform_cloud(rng, 300), max_points=20)
    lists = build_lists(tree)
    c = lists.counts()
    assert c["U"] == sum(len(u) for u in lists.U)
    assert c["V"] == sum(len(v) for v in lists.V)
