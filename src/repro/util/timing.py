"""Wall-clock phase timing.

Mirrors the phase decomposition the paper instruments with PETSc profiling:
the interaction computation is split into upward, communication and
downward (U/V/W/X) stages whose times are reported separately.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("up"):
            ...  # upward pass
        timer.get("up")  # seconds
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = defaultdict(float)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._seconds[name] += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] += seconds

    def get(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def by_phase(self) -> dict[str, float]:
        return dict(self._seconds)

    def reset(self) -> None:
        self._seconds.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self._seconds.items()))
        return f"PhaseTimer({parts})"
