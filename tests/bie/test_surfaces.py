"""Surface discretisation and rigid-body kinematics tests."""

import numpy as np
import pytest

from repro.bie.surfaces import RigidBody, SphereSurface


class TestSphereSurface:
    def test_points_on_sphere(self):
        s = SphereSurface(np.array([1.0, 0, 0]), 0.5, 100)
        r = np.linalg.norm(s.points - s.center, axis=1)
        assert np.allclose(r, 0.5)

    def test_weights_sum_to_area(self):
        s = SphereSurface(np.zeros(3), 2.0, 64)
        assert s.weights.sum() == pytest.approx(4 * np.pi * 4.0)

    def test_quadrature_integrates_linear_functions(self):
        """sum w x over the sphere = area * center (symmetry check)."""
        c = np.array([0.3, -0.7, 1.1])
        s = SphereSurface(c, 1.0, 2000)
        centroid = (s.points * s.weights[:, None]).sum(axis=0) / s.weights.sum()
        assert np.allclose(centroid, c, atol=2e-3)

    def test_normals_unit_outward(self):
        s = SphereSurface(np.ones(3), 0.7, 50)
        n = s.normals
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)
        assert np.allclose(n, (s.points - s.center) / 0.7)

    def test_translate(self):
        s = SphereSurface(np.zeros(3), 1.0, 20)
        old = s.points.copy()
        s.translate(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(s.center, [1, 2, 3])
        assert np.allclose(s.points, old + np.array([1.0, 2.0, 3.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            SphereSurface(np.zeros(3), -1.0, 10)
        with pytest.raises(ValueError):
            SphereSurface(np.zeros(3), 1.0, 2)


class TestRigidBody:
    def test_pure_translation(self):
        body = RigidBody(
            SphereSurface(np.zeros(3), 1.0, 30),
            velocity=np.array([1.0, 0, 0]),
        )
        v = body.surface_velocity()
        assert np.allclose(v, [1.0, 0, 0])

    def test_pure_rotation(self):
        omega = np.array([0.0, 0.0, 2.0])
        body = RigidBody(
            SphereSurface(np.zeros(3), 1.0, 200), angular_velocity=omega
        )
        v = body.surface_velocity()
        # velocity orthogonal to both omega and radius; |v| = |omega| sin(theta)
        rel = body.surface.points
        assert np.allclose(np.einsum("ni,ni->n", v, rel), 0.0, atol=1e-12)
        assert np.allclose(v[:, 2], 0.0)
        expected = np.linalg.norm(np.cross(np.broadcast_to(omega, rel.shape), rel), axis=1)
        assert np.allclose(np.linalg.norm(v, axis=1), expected)

    def test_rotation_about_center_not_origin(self):
        c = np.array([5.0, 0.0, 0.0])
        body = RigidBody(
            SphereSurface(c, 1.0, 100),
            angular_velocity=np.array([0.0, 0.0, 1.0]),
        )
        v = body.surface_velocity()
        # speeds bounded by |omega| * radius, independent of the offset c
        assert np.linalg.norm(v, axis=1).max() <= 1.0 + 1e-12
