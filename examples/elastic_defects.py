"""Linear elasticity — point defects interacting in an elastic matrix.

The paper's introduction lists "simulations of linearly elastic
materials" and fracture mechanics among the applications enabled by
kernel independence (refs [6], [19], [26]).  The Kelvin fundamental
solution (``repro.kernels.NavierKernel``) drops into the same FMM.

Scenario: N point defects (e.g. misfitting precipitates modelled as
point forces) clustered on slip-plane-like sheets inside a cube of
elastic material.  We evaluate the displacement field each defect feels
from all others and the total elastic interaction energy, FMM vs direct.

Run:  python examples/elastic_defects.py
"""

import time

import numpy as np

from repro import KIFMM, FMMOptions, NavierKernel
from repro.kernels.direct import direct_evaluate, relative_error


def defect_sheets(n: int, rng: np.random.Generator) -> np.ndarray:
    """Defects concentrated near a few parallel planes (slip bands)."""
    planes = np.linspace(-0.6, 0.6, 5)
    per = n // len(planes)
    blocks = []
    for z0 in planes:
        xy = rng.uniform(-1.0, 1.0, size=(per, 2))
        z = z0 + 0.02 * rng.standard_normal((per, 1))
        blocks.append(np.hstack([xy, z]))
    return np.vstack(blocks)


def main() -> None:
    rng = np.random.default_rng(23)
    n = 15_000
    kernel = NavierKernel(mu=26.0, nu=0.33)  # aluminium-like constants

    positions = defect_sheets(n, rng)
    n = positions.shape[0]
    # random point-force dipole strengths, zero net force
    forces = rng.standard_normal((n, 3))
    forces -= forces.mean(axis=0)

    print(f"{n} point defects on 5 slip bands, mu=26 GPa, nu=0.33")
    fmm = KIFMM(kernel, FMMOptions(p=6, max_points=60)).setup(positions)

    t0 = time.perf_counter()
    displacement = fmm.apply(forces)
    t_fmm = time.perf_counter() - t0
    print(f"FMM evaluation: {t_fmm:.2f}s")

    energy = -0.5 * float(np.sum(forces * displacement))
    print(f"elastic interaction energy: {energy:+.6f}")

    sample = rng.choice(n, size=250, replace=False)
    exact = direct_evaluate(kernel, positions[sample], positions, forces)
    err = relative_error(displacement[sample], exact)
    print(f"relative error vs direct summation (250 samples): {err:.2e}")

    # stiffer matrix -> smaller displacements, same energy scaling 1/mu
    stiff = NavierKernel(mu=52.0, nu=0.33)
    fmm2 = KIFMM(stiff, FMMOptions(p=6, max_points=60)).setup(positions)
    disp2 = fmm2.apply(forces)
    ratio = np.linalg.norm(disp2) / np.linalg.norm(displacement)
    print(f"doubling the shear modulus halves displacements: "
          f"ratio = {ratio:.4f} (expect 0.5)")


if __name__ == "__main__":
    main()
