"""Adaptive octree construction.

Follows Section 2.1 ("we construct the hierarchical octree so that each
box contains no more than a prescribed number of points s") with the
level-by-level construction of Section 3.1: the tree is grown one level at
a time, splitting every box whose global point count exceeds ``s`` and
keeping only children that actually contain points.  Points are sorted
once by deep Morton key, which makes every box's sources and targets
contiguous ranges of the sorted permutation — the same property the
parallel Morton-curve partitioning of Section 3.1 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree.box import Box
from repro.octree.morton import MAX_DEPTH, anchor_to_key, encode_points

_U = np.uint64


@dataclass
class Octree:
    """The computation tree over a set of source and target points.

    Boxes are stored level-by-level (``boxes[0]`` is the root), mirroring
    the paper's *global tree array* ordering, and indexed by
    ``(level, anchor)`` for colleague lookup.
    """

    sources: np.ndarray
    targets: np.ndarray
    root_corner: np.ndarray
    root_side: float
    max_points: int
    shared_points: bool
    boxes: list[Box] = field(default_factory=list)
    levels: list[list[int]] = field(default_factory=list)
    src_perm: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    trg_perm: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    index: dict[tuple[int, tuple[int, int, int]], int] = field(default_factory=dict)

    # -- structure queries -------------------------------------------------

    @property
    def depth(self) -> int:
        """Depth ``L`` of the tree (deepest level with boxes)."""
        return len(self.levels) - 1

    @property
    def nboxes(self) -> int:
        return len(self.boxes)

    def leaves(self) -> list[int]:
        return [b.index for b in self.boxes if b.is_leaf]

    def box_at(self, level: int, anchor: tuple[int, int, int]) -> int | None:
        """Index of the existing box at ``(level, anchor)``, else None."""
        return self.index.get((level, anchor))

    def colleagues(self, index: int, include_self: bool = False) -> list[int]:
        """Existing same-level boxes whose anchors differ by at most 1.

        These are the (up to 26) adjacent boxes at the box's own level,
        the building block of the U/V/W/X list construction.
        """
        box = self.boxes[index]
        n = 1 << box.level
        out = []
        ix, iy, iz = box.anchor
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        if include_self:
                            out.append(index)
                        continue
                    jx, jy, jz = ix + dx, iy + dy, iz + dz
                    if 0 <= jx < n and 0 <= jy < n and 0 <= jz < n:
                        hit = self.index.get((box.level, (jx, jy, jz)))
                        if hit is not None:
                            out.append(hit)
        return out

    # -- geometry ----------------------------------------------------------

    def center(self, index: int) -> np.ndarray:
        return self.boxes[index].center(self.root_corner, self.root_side)

    def half_width(self, index: int) -> float:
        return self.boxes[index].half_width(self.root_side)

    # -- point access ------------------------------------------------------

    def src_indices(self, index: int) -> np.ndarray:
        """Original indices of the sources in a box's subtree."""
        b = self.boxes[index]
        return self.src_perm[b.src_start : b.src_stop]

    def trg_indices(self, index: int) -> np.ndarray:
        """Original indices of the targets in a box's subtree."""
        b = self.boxes[index]
        return self.trg_perm[b.trg_start : b.trg_stop]

    def src_points(self, index: int) -> np.ndarray:
        return self.sources[self.src_indices(index)]

    def trg_points(self, index: int) -> np.ndarray:
        return self.targets[self.trg_indices(index)]

    def statistics(self) -> dict[str, float]:
        """Tree shape summary used by the performance model and reports."""
        leaves = self.leaves()
        pts = [self.boxes[i].nsrc for i in leaves]
        return {
            "nboxes": self.nboxes,
            "nleaves": len(leaves),
            "depth": self.depth,
            "max_leaf_src": max(pts) if pts else 0,
            "mean_leaf_src": float(np.mean(pts)) if pts else 0.0,
        }


def _root_cube(points: np.ndarray, pad: float = 1e-6) -> tuple[np.ndarray, float]:
    """Smallest axis-aligned cube (slightly padded) containing the points."""
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    side = float((hi - lo).max())
    side = side * (1.0 + pad) if side > 0 else 1.0
    center = (lo + hi) / 2.0
    return center - side / 2.0, side


def build_tree(
    sources: np.ndarray,
    targets: np.ndarray | None = None,
    max_points: int = 60,
    max_depth: int = MAX_DEPTH,
    root: tuple[np.ndarray, float] | None = None,
) -> Octree:
    """Build the adaptive computation tree.

    Parameters
    ----------
    sources:
        ``(ns, 3)`` source point coordinates.
    targets:
        ``(nt, 3)`` target coordinates, or ``None`` to reuse ``sources``
        (the paper's experiments assume identical source and target sets).
    max_points:
        The ``s`` of the paper: a box is subdivided while it holds more
        than ``s`` sources or more than ``s`` targets.  The paper uses 60
        (120 for the 3000-processor runs).
    max_depth:
        Refinement cut-off; defaults to the Morton key capacity (21).
    root:
        Optional ``(corner, side)`` overriding the automatic bounding
        cube, used by the parallel code so all ranks agree on the domain.

    Returns
    -------
    A fully built :class:`Octree`.
    """
    sources = np.ascontiguousarray(sources, dtype=np.float64)
    if sources.ndim != 2 or sources.shape[1] != 3:
        raise ValueError(f"sources must be (n, 3), got {sources.shape}")
    shared = targets is None
    targets_arr = sources if shared else np.ascontiguousarray(targets, np.float64)
    if targets_arr.ndim != 2 or targets_arr.shape[1] != 3:
        raise ValueError(f"targets must be (n, 3), got {targets_arr.shape}")
    if max_points < 1:
        raise ValueError(f"max_points must be >= 1, got {max_points}")
    if not 1 <= max_depth <= MAX_DEPTH:
        raise ValueError(f"max_depth must be in [1, {MAX_DEPTH}], got {max_depth}")

    if root is None:
        allpts = sources if shared else np.vstack([sources, targets_arr])
        corner, side = _root_cube(allpts)
    else:
        corner = np.asarray(root[0], dtype=np.float64)
        side = float(root[1])

    src_keys = encode_points(sources, corner, side)
    src_perm = np.argsort(src_keys, kind="stable")
    src_sorted = src_keys[src_perm]
    if shared:
        trg_keys, trg_perm, trg_sorted = src_keys, src_perm, src_sorted
    else:
        trg_keys = encode_points(targets_arr, corner, side)
        trg_perm = np.argsort(trg_keys, kind="stable")
        trg_sorted = trg_keys[trg_perm]

    tree = Octree(
        sources=sources,
        targets=targets_arr,
        root_corner=corner,
        root_side=side,
        max_points=max_points,
        shared_points=shared,
        src_perm=src_perm,
        trg_perm=trg_perm,
    )

    root_box = Box(
        index=0,
        level=0,
        anchor=(0, 0, 0),
        parent=-1,
        src_start=0,
        src_stop=len(sources),
        trg_start=0,
        trg_stop=len(targets_arr),
    )
    tree.boxes.append(root_box)
    tree.index[(0, (0, 0, 0))] = 0
    tree.levels.append([0])

    frontier = [0]
    level = 0
    while frontier and level < max_depth:
        next_frontier: list[int] = []
        shift = _U(3 * (MAX_DEPTH - level - 1))
        for bi in frontier:
            box = tree.boxes[bi]
            if box.nsrc <= max_points and box.ntrg <= max_points:
                continue  # stays a leaf
            ix, iy, iz = box.anchor
            parent_key = anchor_to_key(ix, iy, iz)
            base = _U(parent_key) << _U(3)
            # 9 split boundaries delimiting the 8 children in Morton order
            bounds = (base + np.arange(9, dtype=np.uint64)) << shift
            s_cuts = box.src_start + np.searchsorted(
                src_sorted[box.src_start : box.src_stop], bounds, side="left"
            )
            t_cuts = box.trg_start + np.searchsorted(
                trg_sorted[box.trg_start : box.trg_stop], bounds, side="left"
            )
            kids = []
            for c in range(8):
                if s_cuts[c] == s_cuts[c + 1] and t_cuts[c] == t_cuts[c + 1]:
                    continue  # empty octant: pruned, as in the paper
                child_anchor = (
                    2 * ix + (c & 1),
                    2 * iy + ((c >> 1) & 1),
                    2 * iz + ((c >> 2) & 1),
                )
                child = Box(
                    index=len(tree.boxes),
                    level=level + 1,
                    anchor=child_anchor,
                    parent=bi,
                    src_start=int(s_cuts[c]),
                    src_stop=int(s_cuts[c + 1]),
                    trg_start=int(t_cuts[c]),
                    trg_stop=int(t_cuts[c + 1]),
                )
                tree.boxes.append(child)
                tree.index[(level + 1, child_anchor)] = child.index
                kids.append(child.index)
            box.children = tuple(kids)
            next_frontier.extend(kids)
        if next_frontier:
            tree.levels.append(next_frontier)
        frontier = next_frontier
        level += 1
    return tree
