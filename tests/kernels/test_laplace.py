"""Laplace kernel: values, PDE property, homogeneity, interface."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel


@pytest.fixture
def kern():
    return LaplaceKernel()


class TestValues:
    def test_point_value(self, kern):
        x = np.array([[1.0, 0.0, 0.0]])
        y = np.array([[0.0, 0.0, 0.0]])
        assert kern.matrix(x, y)[0, 0] == pytest.approx(1.0 / (4.0 * np.pi))

    def test_distance_two(self, kern):
        x = np.array([[0.0, 2.0, 0.0]])
        y = np.zeros((1, 3))
        assert kern.matrix(x, y)[0, 0] == pytest.approx(1.0 / (8.0 * np.pi))

    def test_symmetry_in_arguments(self, kern, rng):
        x = rng.standard_normal((5, 3))
        y = rng.standard_normal((7, 3))
        assert np.allclose(kern.matrix(x, y), kern.matrix(y, x).T)

    def test_translation_invariance(self, kern, rng):
        x = rng.standard_normal((4, 3))
        y = rng.standard_normal((6, 3))
        shift = np.array([0.3, -1.2, 2.0])
        assert np.allclose(kern.matrix(x, y), kern.matrix(x + shift, y + shift))

    def test_coincident_pair_is_zero(self, kern):
        pts = np.array([[0.5, 0.5, 0.5]])
        assert kern.matrix(pts, pts)[0, 0] == 0.0

    def test_positive_everywhere(self, kern, rng):
        x = rng.standard_normal((10, 3))
        y = rng.standard_normal((10, 3)) + 5.0
        assert np.all(kern.matrix(x, y) > 0)


class TestPDE:
    def test_harmonic_away_from_singularity(self, kern):
        """Finite-difference Laplacian of G vanishes away from the pole."""
        y = np.zeros((1, 3))
        x0 = np.array([0.7, 0.4, -0.3])
        h = 1e-4

        def u(p):
            return kern.matrix(p.reshape(1, 3), y)[0, 0]

        lap = sum(
            u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0)
            for e in np.eye(3)
        ) / h**2
        assert abs(lap) < 1e-4

    def test_decay_at_infinity(self, kern):
        y = np.zeros((1, 3))
        near = kern.matrix(np.array([[1.0, 0, 0]]), y)[0, 0]
        far = kern.matrix(np.array([[100.0, 0, 0]]), y)[0, 0]
        assert far == pytest.approx(near / 100.0)


class TestHomogeneity:
    def test_declared_degree_matches(self, kern, rng):
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((4, 3))
        a = 3.7
        assert np.allclose(
            kern.matrix(a * x, a * y), a**kern.homogeneity * kern.matrix(x, y)
        )


class TestInterface:
    def test_metadata(self, kern):
        assert kern.source_dof == 1
        assert kern.target_dof == 1
        assert kern.homogeneity == -1.0
        assert kern.flops_per_pair > 0

    def test_apply_matches_matrix(self, kern, rng):
        x = rng.standard_normal((9, 3))
        y = rng.standard_normal((11, 3))
        phi = rng.standard_normal(11)
        u = kern.apply(x, y, phi, block=4)
        assert np.allclose(u.ravel(), kern.matrix(x, y) @ phi)

    def test_apply_block_invariance(self, kern, rng):
        x = rng.standard_normal((20, 3))
        y = rng.standard_normal((15, 3))
        phi = rng.standard_normal(15)
        assert np.allclose(
            kern.apply(x, y, phi, block=3), kern.apply(x, y, phi, block=1000)
        )

    def test_rejects_bad_shapes(self, kern):
        good = np.zeros((3, 3))
        with pytest.raises(ValueError):
            kern.matrix(np.zeros((3, 2)), good)
        with pytest.raises(ValueError):
            kern.matrix(good, np.zeros(3))
        with pytest.raises(ValueError):
            kern.apply(good, good, np.zeros(5))

    def test_equality_and_hash(self):
        assert LaplaceKernel() == LaplaceKernel()
        assert hash(LaplaceKernel()) == hash(LaplaceKernel())
