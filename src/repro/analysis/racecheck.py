"""Happens-before data-race detection for the threaded simmpi backend.

The simulated MPI runtime runs logical ranks on threads, and the
persistent parallel operator (PR 3) deliberately overlaps its
nonblocking density exchange with owned-data computation.  Bitwise
parity tests prove the *observed* schedules raced nowhere; this module
proves it from first principles for any traced execution:

- instrumented code records lightweight :class:`AccessRecord` entries
  (byte ranges of shared-array reads/writes, with the rank's vector
  clock at access time) through a per-rank :class:`RankRecorder`;
- the happens-before order between accesses is derived from the vector
  clocks the runtime already maintains for every send/recv/collective
  (:mod:`repro.analysis.trace`) — ``Request.wait`` completions merge the
  sender's clock exactly like blocking receives, so wait edges come for
  free;
- two accesses to overlapping bytes from different ranks, at least one
  a write, with neither ordered before the other, are a data race.
  The report names both access sites and the last ``(src, dst, tag)``
  channel edge between the two ranks — the edge that failed to order
  them.

Ordering rule.  Every traced communication event on rank ``a`` *after*
an access ``A`` ticks ``clock[a]``; therefore an access ``B`` on rank
``b`` happens-after ``A`` iff ``B.clock[a] > A.clock[a]`` (strictly:
rank ``b`` must have transitively heard from an event of ``a`` that
followed ``A``).  The strict comparison is what catches use-after-send
bugs: a write issued after a send shares the send's clock entry, so the
receiver's merged clock is *not* strictly greater and the pair is
correctly flagged concurrent.

Region identity is by memory, not by name: recorders walk each array's
``.base`` chain to its owning allocation and pin a reference to it, so
byte ranges stay valid and two views of one buffer — including a view
that travelled to another rank inside a message — resolve to the same
region.

This module is runtime-agnostic and thread-free (the thread-local
recorder slot lives in ``repro/parallel/simmpi.py``; see the
``thread-confinement`` lint rule): recorders append to per-rank private
lists, and :meth:`RaceDetector.report` merges them single-threaded
after the run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.trace import CommTrace

try:  # numpy >= 2.0
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    _byte_bounds = np.byte_bounds


def _ultimate_base(array: np.ndarray) -> np.ndarray:
    """The owning allocation at the root of a view's ``.base`` chain."""
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def _call_site(depth: int) -> str:
    """``file.py:line`` of the instrumented caller, package-relative."""
    frame = sys._getframe(depth)
    parts = Path(frame.f_code.co_filename).parts
    tail = "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]
    return f"{tail}:{frame.f_lineno}"


@dataclass
class AccessRecord:
    """One recorded shared-array access.

    ``start``/``stop`` are byte offsets relative to the owning
    allocation (the envelope of the accessed view).  ``clock`` is the
    rank's vector clock at access time and ``pos`` the number of trace
    events the rank had emitted — the cursor used to locate the
    communication that surrounds the access.
    """

    rank: int
    kind: str  # "read" | "write"
    region: int  # id() of the owning allocation
    start: int
    stop: int
    label: str
    site: str
    clock: tuple[int, ...]
    pos: int

    def describe(self, name: str) -> str:
        return (
            f"{self.kind} of {name}[bytes {self.start}:{self.stop}] "
            f"by rank {self.rank} at {self.site} ({self.label}), "
            f"clock {list(self.clock)}"
        )


class RankRecorder:
    """Per-rank access recorder; owned by exactly one rank thread.

    Appends to private lists only (no locks — the same confinement
    contract the tracer relies on).  ``register`` names a shared region;
    ``read``/``write`` record accesses to any array whose allocation was
    registered by *some* rank — unregistered arrays are skipped, which
    keeps the instrumentation opt-in and cheap.
    """

    def __init__(self, rank: int, tracer: Any) -> None:
        self.rank = rank
        self._tracer = tracer
        #: ``(region id, name)`` pairs registered by this rank.
        self.regions: list[tuple[int, str]] = []
        self.accesses: list[AccessRecord] = []
        #: Pinned owning allocations: keeps region memory alive so ids
        #: and byte ranges cannot be reused by a later allocation.
        self.pins: dict[int, np.ndarray] = {}

    def register(self, name: str, array: np.ndarray) -> None:
        """Declare ``array``'s allocation a shared region named ``name``."""
        base = _ultimate_base(array)
        rid = id(base)
        if rid not in self.pins:
            self.pins[rid] = base
            self.regions.append((rid, name))

    def read(self, array: np.ndarray, label: str = "") -> None:
        self._record("read", array, label)

    def write(self, array: np.ndarray, label: str = "") -> None:
        self._record("write", array, label)

    def _record(self, kind: str, array: np.ndarray, label: str) -> None:
        if not isinstance(array, np.ndarray) or array.size == 0:
            return
        base = _ultimate_base(array)
        rid = id(base)
        self.pins.setdefault(rid, base)
        lo, hi = _byte_bounds(array)
        base_lo = _byte_bounds(base)[0]
        self.accesses.append(AccessRecord(
            rank=self.rank,
            kind=kind,
            region=rid,
            start=lo - base_lo,
            stop=hi - base_lo,
            label=label,
            site=_call_site(3),
            clock=tuple(self._tracer.clock),
            pos=self._tracer.position(),
        ))


@dataclass
class Race:
    """One conflicting concurrent access pair, plus its diagnosis."""

    region: str
    first: AccessRecord
    second: AccessRecord
    missing_edge: str

    def __str__(self) -> str:
        return (
            f"data race on {self.region}: "
            f"{self.first.describe(self.region)} is concurrent with "
            f"{self.second.describe(self.region)}; {self.missing_edge}"
        )


@dataclass
class RaceReport:
    """All races found in one traced execution."""

    races: list[Race] = field(default_factory=list)
    naccesses: int = 0
    nregions: int = 0
    nranks: int = 0

    @property
    def ok(self) -> bool:
        return not self.races

    def summary(self) -> str:
        head = (
            f"racecheck: {self.naccesses} access(es) over {self.nregions} "
            f"region(s), {self.nranks} ranks — "
            + ("race free" if self.ok else f"{len(self.races)} race(s)")
        )
        return "\n".join([head] + [f"  {r}" for r in self.races])


def _ordered(a: AccessRecord, b: AccessRecord) -> bool:
    """Happens-before between accesses on different ranks: ``a -> b``.

    ``b`` heard (transitively) from an event of ``a.rank`` that ticked
    past ``a``'s clock entry — see the module docstring for why the
    comparison must be strict.
    """
    return b.clock[a.rank] > a.clock[a.rank]


class RaceDetector:
    """Collects per-rank access records and reports race pairs.

    Pass an instance to :func:`repro.parallel.simmpi.run_spmd` via
    ``race=``; the runtime resets it, installs a :class:`RankRecorder`
    in each rank thread (reachable from instrumented code through
    :func:`repro.parallel.simmpi.current_recorder`), and after the run
    :meth:`report` performs the offline pairwise analysis.
    """

    def __init__(self) -> None:
        self.nranks = 0
        self.trace: CommTrace | None = None
        self._recorders: list[RankRecorder | None] = []

    def reset(self, nranks: int, trace: CommTrace | None) -> None:
        self.nranks = nranks
        self.trace = trace
        self._recorders = [None] * nranks

    def recorder_for(self, rank: int, tracer: Any) -> RankRecorder:
        rec = RankRecorder(rank, tracer)
        self._recorders[rank] = rec
        return rec

    # -- offline analysis --------------------------------------------------

    def report(self) -> RaceReport:
        recs = [r for r in self._recorders if r is not None]
        names: dict[int, str] = {}
        for rec in recs:
            for rid, name in rec.regions:
                names.setdefault(rid, name)
        by_region: dict[int, list[AccessRecord]] = {}
        for rec in recs:
            for acc in rec.accesses:
                by_region.setdefault(acc.region, []).append(acc)
        report = RaceReport(
            naccesses=sum(len(r.accesses) for r in recs),
            nregions=len(by_region),
            nranks=self.nranks,
        )
        seen: set[tuple] = set()
        for rid, accesses in sorted(by_region.items()):
            name = names.get(rid, f"<unregistered:{rid:#x}>")
            accesses.sort(key=lambda a: (a.rank, a.pos))
            for i, a in enumerate(accesses):
                for b in accesses[i + 1:]:
                    if a.rank == b.rank:  # program order on one thread
                        continue
                    if a.kind == "read" and b.kind == "read":
                        continue
                    if a.stop <= b.start or b.stop <= a.start:
                        continue
                    if _ordered(a, b) or _ordered(b, a):
                        continue
                    key = (rid, a.rank, b.rank, a.kind, b.kind,
                           a.label, b.label)
                    if key in seen:
                        continue
                    seen.add(key)
                    first, second = (a, b) if a.kind == "write" else (b, a)
                    report.races.append(Race(
                        region=name,
                        first=first,
                        second=second,
                        missing_edge=self._diagnose(first, second),
                    ))
        return report

    def _diagnose(self, a: AccessRecord, b: AccessRecord) -> str:
        """Name the channel edge between the two ranks that failed.

        Scans rank ``b``'s events before its access for the last
        happens-before edge arriving from rank ``a`` — the most recent
        point at which ``b`` synchronised with ``a``.  If that edge
        exists it necessarily predates ``a``'s access (otherwise the
        pair would be ordered), so the report can say precisely which
        channel was the stale edge and that nothing later ordered the
        pair.
        """
        if self.trace is None or b.rank >= len(self.trace.events_by_rank):
            return "no trace available to locate the missing edge"
        last_recv = None
        last_coll = None
        for ev in self.trace.events_by_rank[b.rank][:b.pos]:
            if ev.kind == "recv" and ev.peer == a.rank:
                last_recv = ev
            elif ev.kind == "coll-exit":
                last_coll = ev
        if last_recv is not None and (
            last_coll is None or last_recv.seq > last_coll.seq
        ):
            src, dst, tag = last_recv.channel()
            return (
                f"the last happens-before edge from rank {a.rank} to rank "
                f"{b.rank} is channel {src}->{dst} tag={tag!r} (recv event "
                f"#{last_recv.seq}), established before the {a.kind}; no "
                f"later message orders the pair"
            )
        if last_coll is not None:
            return (
                f"the last happens-before edge from rank {a.rank} to rank "
                f"{b.rank} is collective {last_coll.coll}"
                f"[{last_coll.coll_index}], established before the "
                f"{a.kind}; no later message orders the pair"
            )
        return (
            f"no happens-before edge from rank {a.rank} to rank {b.rank} "
            f"exists before the {b.kind}"
        )
