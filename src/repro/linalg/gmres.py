"""Restarted GMRES for matrix-free operators.

The paper's applications solve boundary integral equations with a Krylov
method whose matrix-vector product *is* the FMM interaction evaluation
("at each time step we solve a linear system that requires tens of
interaction calculations", Section 3).  This module provides that Krylov
loop: a standard Arnoldi/Givens restarted GMRES taking an arbitrary
``matvec`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    history: list[float]


def gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 200,
) -> GMRESResult:
    """Solve ``A x = b`` with restarted GMRES.

    Parameters
    ----------
    matvec:
        Callable applying the (square) operator to a flat vector.
    b:
        Right-hand side; flattened internally.
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual target ``|b - A x| <= tol * |b|``.
    restart:
        Krylov subspace dimension between restarts.
    maxiter:
        Total matvec budget.

    Returns
    -------
    :class:`GMRESResult`; ``history`` holds the relative residual after
    every inner iteration, useful for convergence plots.
    """
    b = np.asarray(b, dtype=np.float64).ravel()
    n = b.size
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), converged=True, iterations=0,
                           residual=0.0, history=[0.0])

    history: list[float] = []
    total_iters = 0
    while total_iters < maxiter:
        r = b - matvec(x)
        beta = np.linalg.norm(r)
        if beta / bnorm <= tol:
            return GMRESResult(x, True, total_iters, beta / bnorm, history)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((m + 1, n))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[0] = r / beta
        g[0] = beta
        k_used = 0
        for k in range(m):
            # copy: a matvec may return its input (e.g. the identity),
            # and the in-place orthogonalisation below must not corrupt V
            w = np.array(matvec(V[k]), dtype=np.float64, copy=True).ravel()
            # modified Gram-Schmidt Arnoldi
            for j in range(k + 1):
                H[j, k] = V[j] @ w
                w -= H[j, k] * V[j]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-14 * beta:
                V[k + 1] = w / H[k + 1, k]
            # apply previous Givens rotations to the new column
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k] = t
            # new rotation annihilating H[k+1, k]
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_used = k + 1
            history.append(abs(g[k + 1]) / bnorm)
            if history[-1] <= tol:
                break
        # solve the triangular system and update x
        y = np.linalg.solve(H[:k_used, :k_used], g[:k_used]) if k_used else np.zeros(0)
        x = x + V[:k_used].T @ y
        if history and history[-1] <= tol:
            r = b - matvec(x)
            return GMRESResult(x, True, total_iters,
                               float(np.linalg.norm(r) / bnorm), history)
    r = b - matvec(x)
    res = float(np.linalg.norm(r) / bnorm)
    return GMRESResult(x, res <= tol, total_iters, res, history)
