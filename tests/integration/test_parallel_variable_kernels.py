"""Variable source/target kernels through the parallel algorithm."""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel
from repro.kernels.derived import LaplaceDipoleKernel, LaplaceGradientKernel
from repro.kernels.direct import direct_evaluate, relative_error
from repro.parallel import run_parallel_fmm

from tests.conftest import clustered_cloud


def test_parallel_gradient_targets(rng):
    pts = clustered_cloud(rng, 400)
    phi = rng.standard_normal((400, 1))
    grad_k = LaplaceGradientKernel()
    opts = FMMOptions(p=4, max_points=25)
    seq = KIFMM(
        LaplaceKernel(), opts, target_kernel=grad_k
    ).setup(pts).apply(phi)
    par = run_parallel_fmm(
        3, LaplaceKernel(), pts, phi, opts, target_kernel=grad_k
    )
    assert par.potential.shape == (400, 3)
    assert relative_error(par.potential, seq) < 1e-12


def test_parallel_dipole_sources(rng):
    pts = clustered_cloud(rng, 400)
    dipoles = rng.standard_normal((400, 3))
    dip_k = LaplaceDipoleKernel()
    opts = FMMOptions(p=4, max_points=25)
    par = run_parallel_fmm(
        4, LaplaceKernel(), pts, dipoles, opts, source_kernel=dip_k
    )
    exact = direct_evaluate(dip_k, pts, pts, dipoles)
    assert relative_error(par.potential, exact) < 1e-2
    seq = KIFMM(
        LaplaceKernel(), opts, source_kernel=dip_k
    ).setup(pts).apply(dipoles)
    assert relative_error(par.potential, seq) < 1e-12


def test_parallel_both_custom_requires_direct(rng):
    pts = clustered_cloud(rng, 100)
    with pytest.raises(ValueError, match="direct_kernel"):
        run_parallel_fmm(
            2,
            LaplaceKernel(),
            pts,
            np.zeros((100, 3)),
            FMMOptions(p=3, max_points=30),
            source_kernel=LaplaceDipoleKernel(),
            target_kernel=LaplaceGradientKernel(),
        )
