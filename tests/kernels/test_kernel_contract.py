"""Contract tests every kernel implementation must satisfy."""

import numpy as np
import pytest

from repro.kernels import (
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
)
from repro.kernels.derived import (
    LaplaceDipoleKernel,
    LaplaceGradientKernel,
    ModifiedLaplaceDipoleKernel,
    ModifiedLaplaceGradientKernel,
)

ALL = [
    LaplaceKernel(),
    ModifiedLaplaceKernel(1.3),
    StokesKernel(0.8),
    NavierKernel(1.2, 0.25),
    LaplaceGradientKernel(),
    LaplaceDipoleKernel(),
    ModifiedLaplaceGradientKernel(0.9),
    ModifiedLaplaceDipoleKernel(0.9),
]
IDS = [k.name for k in ALL]


@pytest.mark.parametrize("kernel", ALL, ids=IDS)
class TestKernelContract:
    def test_matrix_shape(self, kernel, rng):
        x = rng.standard_normal((5, 3))
        y = rng.standard_normal((7, 3)) + 5.0
        K = kernel.matrix(x, y)
        assert K.shape == (5 * kernel.target_dof, 7 * kernel.source_dof)

    def test_coincident_pairs_vanish(self, kernel, rng):
        pts = rng.standard_normal((3, 3))
        K = kernel.matrix(pts, pts)
        q, m = kernel.target_dof, kernel.source_dof
        for i in range(3):
            block = K[i * q : (i + 1) * q, i * m : (i + 1) * m]
            assert np.all(block == 0.0), f"diagonal block {i} nonzero"

    def test_all_entries_finite(self, kernel, rng):
        x = rng.standard_normal((6, 3))
        K = kernel.matrix(x, x)
        assert np.all(np.isfinite(K))

    def test_row_ordering_point_major(self, kernel, rng):
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((2, 3)) + 4.0
        K = kernel.matrix(x, y)
        q = kernel.target_dof
        K1 = kernel.matrix(x[1:2], y)
        assert np.allclose(K[q : 2 * q], K1)

    def test_apply_consistent(self, kernel, rng):
        x = rng.standard_normal((4, 3))
        y = rng.standard_normal((6, 3)) + 3.0
        phi = rng.standard_normal((6, kernel.source_dof))
        assert np.allclose(
            kernel.apply(x, y, phi).ravel(), kernel.matrix(x, y) @ phi.ravel()
        )

    def test_flop_cost_positive(self, kernel):
        assert kernel.flops_per_pair > 0

    def test_homogeneity_declaration_consistent(self, kernel, rng):
        if kernel.homogeneity is None:
            return
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((3, 3)) + 4.0
        a = 1.7
        assert np.allclose(
            kernel.matrix(a * x, a * y),
            a**kernel.homogeneity * kernel.matrix(x, y),
        )
