"""The SC'03 parallel algorithm (Section 3) on an in-process runtime.

The paper's MPI implementation is reproduced verbatim at the algorithm
level — Morton-curve partitioning of surface patches, level-by-level
global tree array construction with Allreduce, local essential trees,
contributor/owner/user assignment, the Algorithm-1 gather/scatter of
ghost sources and the reduction of partial upward equivalent densities,
and the three-stage compute / communicate / compute interaction
calculation — but runs over :mod:`repro.parallel.simmpi`, an in-process
message-passing runtime with logical ranks on threads (the substitution
for real MPI hardware documented in DESIGN.md).
"""

from repro.parallel.simmpi import CommStats, MailboxLeakError, SimComm, run_spmd
from repro.parallel.partition import morton_order_patches, partition_patches, partition_points
from repro.parallel.pfmm import (
    ParallelFMM,
    ParallelFMMResult,
    RankFMM,
    parallel_evaluate,
    rank_setup,
    run_parallel_fmm,
)

__all__ = [
    "SimComm",
    "run_spmd",
    "CommStats",
    "MailboxLeakError",
    "morton_order_patches",
    "partition_patches",
    "partition_points",
    "parallel_evaluate",
    "rank_setup",
    "run_parallel_fmm",
    "ParallelFMM",
    "RankFMM",
    "ParallelFMMResult",
]
