"""Sanitized parallel applies: clean, exact, and cheap.

Acceptance bar of the sanitizer suite: the full Laplace and Stokes
parallel applies run clean under ``FMMOptions.sanitize`` at 1, 2 and 4
ranks, produce bit-identical potentials to the unsanitized run, and the
sanitized wall-clock stays under 2x the unsanitized one.
"""

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel, StokesKernel
from repro.parallel.pfmm import run_parallel_fmm

from tests.conftest import clustered_cloud


CASES = [
    pytest.param(LaplaceKernel(), 1, id="laplace-1"),
    pytest.param(LaplaceKernel(), 2, id="laplace-2"),
    pytest.param(LaplaceKernel(), 4, id="laplace-4"),
    pytest.param(StokesKernel(), 1, id="stokes-1"),
    pytest.param(StokesKernel(), 2, id="stokes-2"),
    pytest.param(StokesKernel(), 4, id="stokes-4"),
]


@pytest.mark.parametrize("kernel, nranks", CASES)
def test_sanitized_parallel_apply_is_clean_and_exact(rng, kernel, nranks):
    pts = clustered_cloud(rng, 400)
    phi = rng.standard_normal((400, kernel.source_dof))
    opts = FMMOptions(p=4, max_points=30)
    plain = run_parallel_fmm(nranks, kernel, pts, phi, opts)
    sanitized = run_parallel_fmm(
        nranks, kernel, pts, phi, FMMOptions(p=4, max_points=30, sanitize=True)
    )
    assert np.isfinite(sanitized.potential).all()
    assert np.array_equal(plain.potential, sanitized.potential), (
        "sanitizers must observe, never perturb"
    )


def test_sanitizer_overhead_under_two_x(rng):
    """Wall-clock bound on the 4-rank overlapped Laplace apply.

    Takes the best of three runs per mode so thread-scheduling noise
    in the simulated-MPI runtime does not dominate the ratio.
    """
    pts = clustered_cloud(rng, 600)
    phi = rng.standard_normal((600, 1))

    def best_of(opts):
        times = []
        for _ in range(3):
            start = time.perf_counter()
            run_parallel_fmm(4, LaplaceKernel(), pts, phi, opts, napplies=2)
            times.append(time.perf_counter() - start)
        return min(times)

    plain = best_of(FMMOptions(p=4, max_points=30))
    sanitized = best_of(FMMOptions(p=4, max_points=30, sanitize=True))
    assert sanitized < 2.0 * plain, (
        f"sanitized {sanitized:.3f}s vs plain {plain:.3f}s "
        f"({sanitized / plain:.2f}x, bound 2x)"
    )
