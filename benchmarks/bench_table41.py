"""Table 4.1 — fixed-size scalability, 3.2M particles, P = 1..1024.

Three kernels, as in the paper: Laplace and modified Laplace on the
512-sphere (uniform) workload, Stokes on the corner-clustered
(non-uniform) workload.  Real trees are built at the benchmark scale and
work is extrapolated to 3.2M particles via ``grain_scale``; the machine
model converts measured volumes to TCS-1 seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import corner_clusters, sphere_grid_points
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel import TCS1, simulate_run
from repro.perfmodel.costs import compute_work

from benchmarks.conftest import print_comparison
from benchmarks.paper_data import TABLE41, TABLE41_HEADERS

PAPER_N = 3_200_000
P_LIST = (1, 4, 8, 16, 64, 256, 512, 1024)

_KERNELS = {
    "laplace": (LaplaceKernel(), "spheres"),
    "modified_laplace": (ModifiedLaplaceKernel(lam=1.0), "spheres"),
    "stokes": (StokesKernel(), "corners"),
}


def _workload(name: str, n: int) -> np.ndarray:
    if name == "spheres":
        return sphere_grid_points(n)
    return corner_clusters(n, np.random.default_rng(41))


def _model_rows(kernel, workload, n_model):
    pts = _workload(workload, n_model)
    tree = build_tree(pts, max_points=60)
    lists = build_lists(tree)
    work = compute_work(tree, lists, kernel, 6, m2l="fft")
    scale = PAPER_N / pts.shape[0]
    rows = []
    for P in P_LIST:
        r = simulate_run(
            tree, lists, kernel, 6, P, TCS1, m2l="fft", work=work,
            grain_scale=scale, n_override=PAPER_N,
        )
        rows.append(
            (P, r.total, round(r.ratio, 1), r.comm, r.up, r.down,
             r.gflops_avg, r.gflops_peak, r.tree_seconds)
        )
    return rows


@pytest.mark.parametrize("kernel_name", list(_KERNELS))
def test_table41(benchmark, kernel_name, bench_scale):
    kernel, workload = _KERNELS[kernel_name]
    rows = benchmark.pedantic(
        _model_rows, args=(kernel, workload, bench_scale["N"]),
        rounds=1, iterations=1,
    )
    print_comparison(
        f"Table 4.1 / {kernel_name} "
        f"(fixed size, {PAPER_N/1e6:.1f}M particles, "
        f"model tree at {bench_scale['N']:,})",
        TABLE41_HEADERS,
        TABLE41[kernel_name],
        rows,
    )
    # shape assertions: scaling to 256 procs, then flattening costs
    totals = {row[0]: row[1] for row in rows}
    assert totals[1] / totals[64] > 30, "should scale well to 64 procs"
    assert totals[64] / totals[1024] < 64, "efficiency must degrade at 1024"
