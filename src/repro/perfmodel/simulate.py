"""Parallel-run simulation: work + communication volumes -> time.

The simulation reproduces the structure of the parallel algorithm of
Section 3 exactly:

- leaves are partitioned over ``P`` ranks along the Morton curve with
  equal particle weights (Section 3.1's partitioning);
- every box's *contributor ranks* form a contiguous rank interval (its
  subtree's leaves are contiguous on the curve);
- upward/downward work of a shared box is paid redundantly by each
  contributor (the paper's deliberate design: "a disadvantage is the
  redundant computation at the nodes which are close to the root");
- the upward-equivalent-density and ghost-source exchanges follow the
  owner gather/scatter of Algorithm 1, with the first contributor as
  owner, producing per-rank byte and message counts.

Flops and bytes are *measured* from the tree; the machine model converts
them to seconds.  ``grain_scale`` supports isogranular extrapolation:
per-rank work scales linearly with the grain and boundary communication
with its 2/3 power (surface-to-volume), documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.m2lschedule import coarse_split_levels
from repro.core.surfaces import n_surface_points
from repro.geometry.patches import partition_weights
from repro.kernels.base import Kernel
from repro.octree.lists import InteractionLists
from repro.octree.tree import Octree
from repro.perfmodel.costs import PhaseWork, communication_volumes, compute_work
from repro.perfmodel.machine import MachineModel

PHASES = ("up", "down_u", "down_v", "down_w", "down_x", "eval")


@dataclass
class RunReport:
    """Simulated timings of one interaction evaluation on P processors."""

    P: int
    N: int
    kernel: str
    #: mean seconds across ranks, per phase (+ "comm")
    phase_seconds: dict[str, float]
    #: per-rank end-to-end seconds
    rank_seconds: np.ndarray
    #: per-rank, per-phase seconds (P, len(PHASES))
    rank_phase_seconds: np.ndarray = field(repr=False, default=None)
    #: per-rank non-overlapped communication seconds
    rank_comm_seconds: np.ndarray = field(repr=False, default=None)
    total_flops: float = 0.0
    phase_flops: dict[str, float] = field(default_factory=dict)
    tree_seconds: float = 0.0

    @property
    def total(self) -> float:
        """Mean interaction time across ranks (the tables' "Total")."""
        return float(self.rank_seconds.mean())

    @property
    def ratio(self) -> float:
        """Max/min rank time — the tables' load-imbalance "Ratio"."""
        lo = self.rank_seconds.min()
        return float(self.rank_seconds.max() / lo) if lo > 0 else float("inf")

    @property
    def comm(self) -> float:
        return float(self.rank_comm_seconds.mean())

    @property
    def up(self) -> float:
        return self.phase_seconds["up"]

    @property
    def down(self) -> float:
        return sum(self.phase_seconds[p] for p in PHASES if p != "up")

    @property
    def gflops_avg(self) -> float:
        """Aggregate average Gflop/s (total flops / mean wall time)."""
        return self.total_flops / self.total / 1e9 if self.total > 0 else 0.0

    @property
    def gflops_peak(self) -> float:
        """Aggregate rate of the fastest phase (the tables' "Peak")."""
        best = 0.0
        for i, phase in enumerate(PHASES):
            t = self.rank_phase_seconds[:, i].mean()
            if t > 0:
                best = max(best, self.phase_flops[phase] / t / 1e9)
        return best


def _leaf_ranks(tree: Octree, P: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Partition leaves over ranks; return (leaf indices, starts, rank)."""
    leaves = np.array(tree.leaves(), dtype=np.int64)
    starts = np.array([tree.boxes[i].src_start for i in leaves], dtype=np.int64)
    order = np.argsort(starts, kind="stable")
    leaves, starts = leaves[order], starts[order]
    weights = np.array(
        [max(tree.boxes[i].nsrc, tree.boxes[i].ntrg) for i in leaves], float
    )
    rank = partition_weights(weights, P)
    return leaves, starts, rank


def _box_rank_intervals(
    tree: Octree, leaf_starts: np.ndarray, leaf_rank: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Contributor rank interval [lo, hi] per box (inclusive)."""
    nb = tree.nboxes
    lo = np.zeros(nb, dtype=np.int64)
    hi = np.zeros(nb, dtype=np.int64)
    for b in tree.boxes:
        first = np.searchsorted(leaf_starts, b.src_start, side="left")
        last = np.searchsorted(leaf_starts, b.src_stop, side="left") - 1
        last = max(last, first)
        lo[b.index] = leaf_rank[min(first, len(leaf_rank) - 1)]
        hi[b.index] = leaf_rank[min(last, len(leaf_rank) - 1)]
    return lo, hi


def _interval_add(diff: np.ndarray, lo: int, hi: int, value: float) -> None:
    """Add ``value`` to ranks ``lo..hi`` via a difference array."""
    diff[lo] += value
    diff[hi + 1] -= value


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if not intervals:
        return []
    intervals.sort()
    merged = [list(intervals[0])]
    for lo, hi in intervals[1:]:
        if lo <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def simulate_run(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    p: int,
    P: int,
    machine: MachineModel,
    m2l: str = "fft",
    work: PhaseWork | None = None,
    grain_scale: float = 1.0,
    n_override: int | None = None,
) -> RunReport:
    """Simulate one interaction evaluation on ``P`` processors.

    Parameters
    ----------
    tree, lists:
        A *real* tree built over the (possibly scaled-down) workload.
    p:
        Surface discretisation order.
    P:
        Processor count to simulate.
    m2l:
        M2L variant being modelled.
    work:
        Optional precomputed :class:`PhaseWork` (reused across P sweeps).
    grain_scale:
        Ratio of target grain to model grain, for isogranular
        extrapolation (flops scale linearly, boundary bytes by the 2/3
        power).
    n_override:
        Report this N instead of the model tree's particle count.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if grain_scale <= 0:
        raise ValueError(f"grain_scale must be positive, got {grain_scale}")
    if work is None:
        work = compute_work(tree, lists, kernel, p, m2l=m2l)
    N = n_override if n_override is not None else tree.sources.shape[0]

    leaves, leaf_starts, leaf_rank = _leaf_ranks(tree, P)
    box_lo, box_hi = _box_rank_intervals(tree, leaf_starts, leaf_rank)

    # ---- per-rank flops (redundant work on shared boxes included) ----
    phase_arrays = {
        "up": work.up, "down_u": work.down_u, "down_v": work.down_v,
        "down_w": work.down_w, "down_x": work.down_x, "eval": work.eval,
    }
    rank_flops = np.zeros((P, len(PHASES)))
    for pi, phase in enumerate(PHASES):
        diff = np.zeros(P + 1)
        arr = phase_arrays[phase]
        for b in range(tree.nboxes):
            if arr[b] > 0:
                _interval_add(diff, box_lo[b], box_hi[b], arr[b])
        rank_flops[:, pi] = np.cumsum(diff[:-1])
    rank_flops *= grain_scale

    # ---- communication (owner gather/scatter, Algorithm 1) ----
    equiv_uses, source_uses, equiv_bytes, source_bytes = communication_volumes(
        tree, lists, kernel, p
    )
    bytes_in = np.zeros(P + 1)
    bytes_out = np.zeros(P + 1)
    msgs_in = np.zeros(P + 1)
    msgs_out = np.zeros(P + 1)
    for uses, size in ((equiv_uses, equiv_bytes), (source_uses, source_bytes)):
        for a in range(tree.nboxes):
            if not uses[a]:
                continue
            owner = int(box_lo[a])
            nbytes = float(size[a])
            # gather: non-owner contributors -> owner
            ncontrib = int(box_hi[a] - box_lo[a])
            if ncontrib > 0:
                _interval_add(bytes_out, box_lo[a] + 1, box_hi[a], nbytes)
                _interval_add(msgs_out, box_lo[a] + 1, box_hi[a], 1.0)
                bytes_in[owner] += ncontrib * nbytes
                bytes_in[owner + 1] -= ncontrib * nbytes  # keep diff form
                msgs_in[owner] += ncontrib
                msgs_in[owner + 1] -= ncontrib
            # scatter: owner -> user ranks (excluding itself)
            merged = _merge_intervals([(int(box_lo[t]), int(box_hi[t]))
                                       for t in uses[a]])
            nusers = 0
            for lo, hi in merged:
                _interval_add(bytes_in, lo, hi, nbytes)
                _interval_add(msgs_in, lo, hi, 1.0)
                nusers += hi - lo + 1
                if lo <= owner <= hi:
                    _interval_add(bytes_in, owner, owner, -nbytes)
                    _interval_add(msgs_in, owner, owner, -1.0)
                    nusers -= 1
            bytes_out[owner] += nusers * nbytes
            bytes_out[owner + 1] -= nusers * nbytes
            msgs_out[owner] += nusers
            msgs_out[owner + 1] -= nusers
    scale23 = grain_scale ** (2.0 / 3.0)
    rank_bytes_in = np.cumsum(bytes_in[:-1]) * scale23
    rank_bytes_out = np.cumsum(bytes_out[:-1]) * scale23
    rank_msgs_in = np.cumsum(msgs_in[:-1])
    rank_msgs_out = np.cumsum(msgs_out[:-1])

    # ---- convert to time ----
    rank_phase_sec = rank_flops / np.array(
        [machine.rate(ph, kernel.name) for ph in PHASES]
    )
    # Pack/wait split of the persistent apply's nonblocking exchange:
    # posting buffered sends costs the sender unhideable time; waiting
    # on in-flight receives overlaps with the owned-data near-field and
    # V/W work, so only the part of the wait the overlap window cannot
    # cover is paid.  The Allreduce of the owner/"taken" combination
    # (Section 3.2) is a synchronisation, i.e. wait-side.
    pack_sec = (
        rank_msgs_out * machine.latency + rank_bytes_out / machine.bandwidth
    )
    wait_raw = (
        rank_msgs_in * machine.latency + rank_bytes_in / machine.bandwidth
    )
    wait_raw += machine.allreduce_time(
        tree.nboxes * machine.tree_entry_bytes, P
    )
    overlappable = rank_phase_sec[
        :, [PHASES.index(ph) for ph in ("down_u", "down_v", "down_w")]
    ].sum(axis=1)
    hidden = np.minimum(wait_raw, machine.overlap_fraction * overlappable)
    wait_sec = wait_raw - hidden
    if P == 1:
        pack_sec = np.zeros(P)
        wait_sec = np.zeros(P)
    comm_sec = pack_sec + wait_sec
    rank_total = rank_phase_sec.sum(axis=1) + comm_sec

    phase_flops_total = {ph: float(rank_flops[:, i].sum())
                         for i, ph in enumerate(PHASES)}
    return RunReport(
        P=P,
        N=int(round(N * grain_scale)) if n_override is None else N,
        kernel=kernel.name,
        phase_seconds={
            **{ph: float(rank_phase_sec[:, i].mean()) for i, ph in enumerate(PHASES)},
            "comm": float(comm_sec.mean()),
            "pack": float(pack_sec.mean()),
            "wait": float(wait_sec.mean()),
        },
        rank_seconds=rank_total,
        rank_phase_seconds=rank_phase_sec,
        rank_comm_seconds=comm_sec,
        total_flops=float(rank_flops.sum()),
        phase_flops=phase_flops_total,
        tree_seconds=simulate_tree_time(
            tree, P, machine,
            n_effective=(N if n_override is not None
                         else N * grain_scale),
            grain_scale=grain_scale,
        ),
    )


@dataclass
class TreeTopPoint:
    """Modelled tree-top cost of one simulated processor count.

    "Tree top" means the shared boxes — boxes whose leaf descendants
    span more than one rank, i.e. the boxes whose partial upward
    densities ride the owner gather/scatter and whose coarse V
    translations are performed redundantly.  The point compares the two
    exchange schemes on identical traffic: ``flat`` (owner serialises
    ``C-1`` point-to-point transfers per box) against ``tree``
    (segmented binomial collectives, ``ceil(log2 C)`` rounds) plus the
    coarse-level V split (assigned-rank compute + row broadcast instead
    of fully redundant translation).  Total message counts are
    identical by construction — a binomial tree over ``C`` participants
    has exactly ``C-1`` edges — only the critical path and the per-rank
    fan-in change.
    """

    P: int
    shared_boxes: int
    split_levels: list[int]
    #: critical-rank seconds of the gather/scatter exchange per scheme
    flat_seconds: float
    tree_seconds: float
    #: worst per-rank message count per scheme (the O(P) -> O(log P) claim)
    flat_max_rank_msgs: int
    tree_max_rank_msgs: int
    #: total messages (identical under both schemes)
    total_msgs: int
    #: critical-rank seconds of coarse-level V translation work
    v_redundant_seconds: float
    v_split_seconds: float

    @property
    def flat_total(self) -> float:
        return self.flat_seconds + self.v_redundant_seconds

    @property
    def tree_total(self) -> float:
        return self.tree_seconds + self.v_split_seconds

    @property
    def speedup(self) -> float:
        """Modelled tree-top improvement, flat over hierarchical."""
        t = self.tree_total
        return self.flat_total / t if t > 0 else float("inf")


def _uniform_intervals(tree: Octree, P: int) -> tuple[np.ndarray, np.ndarray]:
    """Contributor rank interval per box under equal-particle splitting.

    Rank of source ``i`` is ``floor(i * P / N)``; a box's contributors
    are the ranks its contiguous Morton source range touches.  Unlike
    :func:`_leaf_ranks` this stays exact for ``P`` far beyond the model
    tree's leaf count, which the 4096-rank projection needs.
    """
    N = max(1, tree.sources.shape[0])
    starts = np.fromiter(
        (b.src_start for b in tree.boxes), np.int64, tree.nboxes
    )
    stops = np.fromiter(
        (b.src_stop for b in tree.boxes), np.int64, tree.nboxes
    )
    lo = np.clip(starts * P // N, 0, P - 1)
    hi = np.clip(np.maximum(stops - 1, starts) * P // N, 0, P - 1)
    return lo, np.maximum(hi, lo)


def tree_top_model(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    p: int,
    P: int,
    machine: MachineModel,
    work: PhaseWork | None = None,
    nrhs: int = 1,
) -> TreeTopPoint:
    """Model the tree-top exchange and coarse V work at ``P`` ranks.

    Produces the flat-vs-hierarchical comparison of one processor
    count: per-rank time and message-count arrays are accumulated box
    by box over the shared boxes (difference arrays over rank
    intervals, so the sweep stays cheap at thousands of ranks), then
    reduced to the critical rank.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if work is None:
        work = compute_work(tree, lists, kernel, p, nrhs=nrhs)
    lo, hi = _uniform_intervals(tree, P)
    equiv_uses, _, equiv_bytes, _ = communication_volumes(
        tree, lists, kernel, p, nrhs=nrhs
    )

    flat_t = np.zeros(P + 1)
    tree_t = np.zeros(P + 1)
    flat_m = np.zeros(P + 1)
    tree_m = np.zeros(P + 1)
    total_msgs = 0
    shared = 0
    for b in range(tree.nboxes):
        C = int(hi[b] - lo[b] + 1)
        if C <= 1:
            continue  # unshared: identical under both schemes
        shared += 1
        owner = int(lo[b])
        unit = machine.latency + float(equiv_bytes[b]) / machine.bandwidth
        users = _merge_intervals(
            [(int(lo[t]), int(hi[t])) for t in equiv_uses[b]]
        )
        nusers = sum(h - l + 1 for l, h in users)
        u_other = nusers - sum(
            1 for l, h in users if l <= owner <= h
        )
        total_msgs += (C - 1) + u_other

        # flat: the owner serialises every gather receive and scatter
        # send; each peer pays one transfer.
        _interval_add(flat_t, owner, owner, (C - 1 + u_other) * unit)
        _interval_add(flat_m, owner, owner, C - 1 + u_other)
        _interval_add(flat_t, int(lo[b]), int(hi[b]), unit)
        _interval_add(flat_m, int(lo[b]), int(hi[b]), 1.0)
        _interval_add(flat_t, owner, owner, -unit)
        _interval_add(flat_m, owner, owner, -1.0)
        for l, h in users:
            _interval_add(flat_t, l, h, unit)
            _interval_add(flat_m, l, h, 1.0)
            if l <= owner <= h:
                _interval_add(flat_t, owner, owner, -unit)
                _interval_add(flat_m, owner, owner, -1.0)

        # tree: segmented binomial reduce + broadcast over the same
        # C-1 edges.  Each edge has two endpoints, so total per-rank
        # traffic is conserved (2(C-1) message endpoints, like flat);
        # what changes is the distribution — the root handles at most
        # ceil(log2 C) edges instead of C-1, the rest amortise over the
        # other participants.
        def charge(diff_t, diff_m, l, h, root, n):
            if n <= 1:
                return
            rounds = math.ceil(math.log2(n))
            per_other = (2.0 * (n - 1) - rounds) / (n - 1)
            _interval_add(diff_t, l, h, per_other * unit)
            _interval_add(diff_m, l, h, per_other)
            _interval_add(diff_t, root, root, (rounds - per_other) * unit)
            _interval_add(diff_m, root, root, rounds - per_other)

        charge(tree_t, tree_m, int(lo[b]), int(hi[b]), owner, C)
        if u_other:
            # scatter participants: the owner plus the other user ranks
            # (their intervals may be disjoint, so charge per interval
            # with the owner's correction applied once).
            S = u_other + 1
            rounds = math.ceil(math.log2(S))
            per_other = (2.0 * (S - 1) - rounds) / (S - 1)
            _interval_add(tree_t, owner, owner, rounds * unit)
            _interval_add(tree_m, owner, owner, float(rounds))
            for l, h in users:
                _interval_add(tree_t, l, h, per_other * unit)
                _interval_add(tree_m, l, h, per_other)
                if l <= owner <= h:
                    _interval_add(tree_t, owner, owner, -per_other * unit)
                    _interval_add(tree_m, owner, owner, -per_other)

    # Coarse-level V translation: fully redundant (every contributor
    # computes every shared box it touches) versus the deterministic
    # cyclic split (one assignee computes, then tree-broadcasts the
    # downward-check rows to the other contributors).
    level_counts = [len(lv) for lv in tree.levels]
    split = sorted(coarse_split_levels(level_counts, P))
    v_red = np.zeros(P + 1)
    v_spl = np.zeros(P + 1)
    rate = machine.rate("down_v", kernel.name)
    dc_bytes = 8.0 * n_surface_points(p) * kernel.target_dof * nrhs
    next_assignee = 0
    for lvl in split:
        for b in tree.levels[lvl]:
            fl = float(work.down_v[b])
            if fl <= 0:
                continue
            C = int(hi[b] - lo[b] + 1)
            sec = fl / rate
            _interval_add(v_red, int(lo[b]), int(hi[b]), sec)
            assignee = int(lo[b]) + next_assignee % C
            next_assignee += 1
            _interval_add(v_spl, assignee, assignee, sec)
            _interval_add(
                v_spl, int(lo[b]), int(hi[b]),
                machine.tree_collective_time(dc_bytes, C),
            )

    def peak(diff: np.ndarray) -> float:
        return float(np.cumsum(diff[:-1]).max()) if P > 0 else 0.0

    return TreeTopPoint(
        P=P,
        shared_boxes=shared,
        split_levels=[int(lv) for lv in split],
        flat_seconds=peak(flat_t),
        tree_seconds=peak(tree_t),
        flat_max_rank_msgs=int(round(peak(flat_m))),
        tree_max_rank_msgs=int(round(peak(tree_m))),
        total_msgs=int(total_msgs),
        v_redundant_seconds=peak(v_red),
        v_split_seconds=peak(v_spl),
    )


def project_scaling(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    p: int,
    machine: MachineModel,
    max_ranks: int = 4096,
    nrhs: int = 1,
) -> dict:
    """Sweep simulated processor counts; compare tree-top schemes.

    Returns a JSON-ready report: one :class:`TreeTopPoint` per power of
    two up to ``max_ranks``, the flat-vs-hierarchical *crossover rank*
    (smallest P where the hierarchical critical path is strictly
    cheaper), and the modelled improvement at the largest count.
    """
    if max_ranks < 2:
        raise ValueError(f"max_ranks must be >= 2, got {max_ranks}")
    work = compute_work(tree, lists, kernel, p, nrhs=nrhs)
    ranks = []
    P = 2
    while P <= max_ranks:
        ranks.append(P)
        P *= 2
    points = [
        tree_top_model(tree, lists, kernel, p, P, machine,
                       work=work, nrhs=nrhs)
        for P in ranks
    ]
    crossover = next(
        (pt.P for pt in points if pt.tree_total < pt.flat_total), None
    )
    last = points[-1]
    return {
        "kernel": kernel.name,
        "p": p,
        "nrhs": nrhs,
        "n": int(tree.sources.shape[0]),
        "nboxes": int(tree.nboxes),
        "depth": int(tree.depth),
        "max_ranks": max_ranks,
        "points": [
            {**asdict(pt),
             "flat_total": pt.flat_total,
             "tree_total": pt.tree_total,
             "speedup": pt.speedup}
            for pt in points
        ],
        "crossover_rank": crossover,
        "speedup_at_max": last.speedup,
        "msgs_flat_at_max": last.flat_max_rank_msgs,
        "msgs_tree_at_max": last.tree_max_rank_msgs,
    }


def simulate_tree_time(
    tree: Octree,
    P: int,
    machine: MachineModel,
    n_effective: int | None = None,
    grain_scale: float = 1.0,
) -> float:
    """Tree construction + communication phase (the tables' "Gen/Comm").

    Three components mirroring Section 3.1: (a) parallel local work
    (Morton sort + level-by-level box splitting), (b) the initial gather
    of all surface patches on a single processor ("we first gather all
    input surface patches on a single processor"), (c) per-level
    Allreduce over the global tree array.  Component (b) is what stops
    the paper's tree phase from scaling (their Section 4 observation (5)).
    """
    N = (
        n_effective
        if n_effective is not None
        else tree.sources.shape[0] * grain_scale
    )
    local = machine.tree_local_per_particle * N / P
    gather = (N * 24.0 / machine.bandwidth) if P > 1 else 0.0
    # Box counts scale ~linearly with N for fixed s, so the scaled tree's
    # global tree array is grain_scale times larger per level.
    allreduce = sum(
        machine.allreduce_time(
            len(lv) * grain_scale * machine.tree_entry_bytes, P
        )
        for lv in tree.levels
    )
    return local + gather + allreduce
