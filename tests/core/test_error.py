"""A-posteriori error estimation tests."""

import numpy as np
import pytest

from repro.core.error import estimate_error
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel


def test_estimates_match_reality(rng):
    pts = rng.uniform(-1, 1, size=(500, 3))
    phi = rng.random((500, 1))
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=30)).setup(pts)
    u = fmm.apply(phi)
    err = estimate_error(fmm, phi, u, nsamples=500, rng=rng)  # full check
    assert err < 1e-4
    # a subsample estimate is within an order of magnitude of the truth
    err_sub = estimate_error(fmm, phi, u, nsamples=50, rng=rng)
    assert err / 30 < err_sub < err * 30


def test_recomputes_potential_when_omitted(rng):
    pts = rng.uniform(-1, 1, size=(200, 3))
    phi = rng.random((200, 1))
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=30)).setup(pts)
    err = estimate_error(fmm, phi, nsamples=50, rng=rng)
    assert np.isfinite(err)


def test_requires_setup():
    with pytest.raises(RuntimeError):
        estimate_error(KIFMM(LaplaceKernel()), np.zeros((5, 1)))


def test_rejects_bad_nsamples(rng):
    pts = rng.uniform(-1, 1, size=(100, 3))
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=3, max_points=30)).setup(pts)
    with pytest.raises(ValueError):
        estimate_error(fmm, np.zeros((100, 1)), nsamples=0)
