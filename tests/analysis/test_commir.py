"""Static communication-IR extraction and five-check certification.

The verifier must certify clean schedules (including degenerate
partition shapes at rank counts far beyond execution), catch each
seeded defect with exactly the intended check, and agree with real
traced executions at small rank counts.
"""

import numpy as np
import pytest

from repro.analysis.commcheck_static import (
    SEEDS,
    build_index,
    conservation_summary,
    cross_scheme_conservation,
    run_checks,
    run_selftests,
    seed_dropped_relay,
    seed_reused_tag,
    seed_swapped_post_wait,
    traced_run,
)
from repro.analysis.commir import (
    PROTOCOL_FAMILIES,
    extract_comm_ir,
    static_plan_inputs,
)
from repro.cli import main as cli_main
from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel
from repro.parallel.simmpi import TAG_FAMILIES

OPTS = FMMOptions(p=4)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    return rng.uniform(-1.0, 1.0, (600, 3))


@pytest.fixture(scope="module")
def density(cloud):
    return np.random.default_rng(1).standard_normal(cloud.shape[0])


class TestExtraction:
    def test_protocol_families_are_registered(self):
        for fam in PROTOCOL_FAMILIES:
            assert fam in TAG_FAMILIES

    @pytest.mark.parametrize("scheme", ["tree", "flat"])
    def test_programs_cover_every_rank(self, cloud, scheme):
        inputs = static_plan_inputs(cloud, 8, OPTS)
        ir = extract_comm_ir(inputs, scheme=scheme)
        assert ir.nranks == 8
        assert len(ir.programs) == 8
        assert ir.nops() == sum(len(p) for p in ir.programs)
        # Every op's tag belongs to its protocol family.
        for prog in ir.programs:
            for op in prog:
                assert op.tag[0] in PROTOCOL_FAMILIES
                assert op.kind in ("send", "post", "complete")

    def test_schedule_invariant_across_nrhs_and_overlap(self, cloud):
        inputs = static_plan_inputs(cloud, 4, OPTS)
        base = extract_comm_ir(inputs, scheme="tree")
        for nrhs in (1, 8):
            for overlap in (True, False):
                ir = extract_comm_ir(
                    inputs, scheme="tree", nrhs=nrhs, overlap=overlap
                )
                assert ir.programs == base.programs

    def test_napplies_repeats_the_exchange(self, cloud):
        inputs = static_plan_inputs(cloud, 4, OPTS)
        one = extract_comm_ir(inputs, scheme="tree", include_setup=False)
        two = extract_comm_ir(
            inputs, scheme="tree", include_setup=False, napplies=2
        )
        assert two.nops() == 2 * one.nops()

    def test_unknown_scheme_rejected(self, cloud):
        inputs = static_plan_inputs(cloud, 2, OPTS)
        with pytest.raises(ValueError, match="scheme"):
            extract_comm_ir(inputs, scheme="ring")

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError, match="zero points"):
            static_plan_inputs(np.empty((0, 3)), 2, OPTS)


class TestFiveChecksClean:
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    @pytest.mark.parametrize("scheme", ["tree", "flat"])
    def test_small_p_certifies(self, cloud, nranks, scheme):
        inputs = static_plan_inputs(cloud, nranks, OPTS)
        ir = extract_comm_ir(inputs, scheme=scheme)
        other = extract_comm_ir(
            inputs, scheme="flat" if scheme == "tree" else "tree"
        )
        report = run_checks(ir, reference=other)
        assert report.ok, [str(f) for f in report.findings[:5]]
        assert set(report.counts) == {
            "matching", "tags", "deadlock", "conservation", "conformance"
        }
        assert report.nmessages > 0
        assert "certified" in report.summary()

    @pytest.mark.parametrize("nranks", [8, 64, 4096])
    def test_degenerate_partition_shapes(self, cloud, nranks):
        """P up to far beyond the leaf-box count: ranks owning zero
        boxes, single-participant exchanges, deep gather trees — the
        schedule must still extract and certify (satellite c)."""
        inputs = static_plan_inputs(cloud, nranks, OPTS)
        summaries = {}
        for scheme in ("tree", "flat"):
            ir = extract_comm_ir(inputs, scheme=scheme)
            assert ir.nranks == nranks
            index = build_index(ir)
            report = run_checks(ir, index=index)
            assert report.ok, [str(f) for f in report.findings[:5]]
            summaries[scheme] = conservation_summary(ir, index)
        assert cross_scheme_conservation(
            summaries["tree"], summaries["flat"]
        ) == []

    def test_more_ranks_than_points(self):
        pts = np.random.default_rng(2).uniform(-1, 1, (40, 3))
        inputs = static_plan_inputs(pts, 64, OPTS)
        for scheme in ("tree", "flat"):
            ir = extract_comm_ir(inputs, scheme=scheme)
            assert run_checks(ir).ok

    def test_single_rank_is_silent(self, cloud):
        inputs = static_plan_inputs(cloud, 1, OPTS)
        ir = extract_comm_ir(inputs, scheme="tree")
        assert ir.nmessages() == 0
        assert run_checks(ir).ok

    def test_summary_path_equals_reference_path(self, cloud):
        """The compact ConservationSummary comparison must reproduce
        the heavyweight reference=CommIR comparison exactly."""
        inputs = static_plan_inputs(cloud, 8, OPTS)
        tree = extract_comm_ir(inputs, scheme="tree")
        flat = extract_comm_ir(inputs, scheme="flat")
        ix_t, ix_f = build_index(tree), build_index(flat)
        heavy = run_checks(
            tree, reference=flat, index=ix_t, reference_index=ix_f
        )
        lean = cross_scheme_conservation(
            conservation_summary(tree, ix_t),
            conservation_summary(flat, ix_f),
        )
        assert heavy.ok and lean == []


class TestConformance:
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    @pytest.mark.parametrize("scheme", ["tree", "flat"])
    @pytest.mark.parametrize("overlap", [True, False])
    def test_dynamic_trace_is_linearization(
        self, cloud, density, nranks, scheme, overlap
    ):
        inputs = static_plan_inputs(cloud, nranks, OPTS)
        ir = extract_comm_ir(inputs, scheme=scheme, overlap=overlap)
        trace = traced_run(
            LaplaceKernel(), cloud, density,
            FMMOptions(p=4, comm=scheme), nranks, overlap=overlap,
        )
        report = run_checks(ir, traces=(trace,))
        assert report.ok, [str(f) for f in report.findings[:5]]

    def test_wrong_scheme_trace_diverges(self, cloud, density):
        """A flat-scheme trace is NOT a linearization of the tree IR —
        the conformance check must localize the first divergence."""
        inputs = static_plan_inputs(cloud, 4, OPTS)
        ir = extract_comm_ir(inputs, scheme="tree")
        trace = traced_run(
            LaplaceKernel(), cloud, density,
            FMMOptions(p=4, comm="flat"), 4,
        )
        report = run_checks(ir, traces=(trace,))
        assert not report.ok
        assert report.counts["conformance"] > 0
        assert all(f.check == "conformance" for f in report.findings)


class TestSeededDefects:
    @pytest.fixture(scope="class")
    def deep(self, cloud):
        """P=32 hosts every seed (interior relay nodes need a box with
        >= 4 gather participants)."""
        inputs = static_plan_inputs(cloud, 32, OPTS)
        return (
            extract_comm_ir(inputs, scheme="tree"),
            extract_comm_ir(inputs, scheme="flat"),
        )

    def test_each_seed_caught_by_exactly_its_check(self, deep):
        ir, ref = deep
        for name, (seed_fn, intended) in SEEDS.items():
            report = run_checks(seed_fn(ir), reference=ref)
            fired = {c for c, n in report.counts.items() if n}
            assert fired == {intended}, (name, fired)

    def test_run_selftests_all_pass(self, deep):
        ir, ref = deep
        rows = run_selftests(ir, reference=ref)
        assert {name for name, _, _ in rows} == set(SEEDS)
        assert all(ok for _, ok, _ in rows)

    def test_dropped_relay_unplantable_on_shallow_schedule(self, cloud):
        """At P=2 no gather tree has an interior node; the seed must
        refuse rather than silently plant nothing."""
        inputs = static_plan_inputs(cloud, 2, OPTS)
        ir = extract_comm_ir(inputs, scheme="tree")
        with pytest.raises(ValueError, match="relay"):
            seed_dropped_relay(ir)
        rows = dict(
            (name, ok) for name, ok, _ in run_selftests(ir)
        )
        assert rows["dropped-relay"] is False

    def test_seeds_do_not_mutate_the_input(self, deep):
        ir, ref = deep
        before = [list(p) for p in ir.programs]
        for seed_fn in (seed_dropped_relay, seed_reused_tag,
                        seed_swapped_post_wait):
            seed_fn(ir)
        assert [list(p) for p in ir.programs] == before
        assert run_checks(ir, reference=ref).ok


class TestCLI:
    def test_empty_ranks_exits_2(self, capsys):
        assert cli_main(["commir", "--ranks", ""]) == 2
        assert "nothing to certify" in capsys.readouterr().out

    def test_unknown_scheme_exits_2(self, capsys):
        assert cli_main(["commir", "--schemes", "ring"]) == 2
        assert "unknown comm scheme" in capsys.readouterr().out

    def test_empty_kernels_exits_2(self):
        assert cli_main(["commir", "--kernels", ""]) == 2

    def test_small_sweep_certifies(self, capsys, tmp_path):
        json_path = tmp_path / "commir.json"
        rc = cli_main([
            "commir", "--n", "300", "--ranks", "2,4",
            "--conform-ranks", "2", "--conform-n", "200",
            "--no-selftest", "--json", str(json_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "zero waivers" in out
        assert json_path.exists()
