"""Command-line interface.

Examples::

    python -m repro evaluate --kernel stokes --n 20000 --check
    python -m repro accuracy --kernel laplace --n 3000 --orders 2,4,6
    python -m repro scaling --mode fixed --kernel laplace \
        --n 3200000 --model-n 100000 --procs 1,16,256,1024
    python -m repro scaling --mode isogranular --kernel stokes \
        --grain 200000 --procs 1,64,1024 --cap 200000
    python -m repro commcheck --ranks 4 --n 600 --schedules 5
    python -m repro racecheck --ranks 4 --schedules 5 --applies 2
    python -m repro racecheck --seed-race
    python -m repro plancheck --json plancheck.json
    python -m repro lint src/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

from repro.core.error import estimate_error
from repro.core.fmm import FMMOptions, KIFMM
from repro.geometry import corner_clusters, sphere_grid_points, uniform_cube
from repro.kernels import (
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
)
from repro.util.tables import format_table

_KERNELS = {
    "laplace": LaplaceKernel,
    "modified_laplace": ModifiedLaplaceKernel,
    "stokes": StokesKernel,
    "navier": NavierKernel,
}

_WORKLOADS = {
    "uniform": lambda n, rng: uniform_cube(n, rng),
    "spheres": lambda n, rng: sphere_grid_points(n),
    "corners": lambda n, rng: corner_clusters(n, rng),
}


def _make_kernel(name: str):
    try:
        return _KERNELS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}"
        ) from None


def _parse_ints(text: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x]
    except ValueError:
        raise SystemExit(f"expected comma-separated integers, got {text!r}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    density = rng.random((pts.shape[0], kernel.source_dof))
    opts = FMMOptions(p=args.p, max_points=args.s, m2l=args.m2l,
                      dtype=args.dtype, plan=args.plan)
    fmm = KIFMM(kernel, opts)
    t0 = time.perf_counter()
    fmm.setup(pts)
    t_setup = time.perf_counter() - t0
    t0 = time.perf_counter()
    potential = fmm.apply(density)
    t_eval = time.perf_counter() - t0
    stats = fmm.tree.statistics()
    print(f"kernel={kernel.name} N={pts.shape[0]} p={args.p} s={args.s} "
          f"m2l={args.m2l} dtype={args.dtype} plan={args.plan}")
    print(f"m2l schedule: {fmm.m2l_schedule.describe()}")
    print(f"tree: {stats['nboxes']} boxes, {stats['nleaves']} leaves, "
          f"depth {stats['depth']}")
    print(f"setup: {t_setup:.2f}s   evaluation: {t_eval:.2f}s")
    if args.gradient:
        t0 = time.perf_counter()
        grad = fmm.apply_gradient(density)
        print(f"gradient evaluation: {time.perf_counter() - t0:.2f}s "
              f"(|grad| mean {np.linalg.norm(grad, axis=1).mean():.4g})")
    if args.check:
        err = estimate_error(fmm, density, potential, nsamples=args.samples,
                             rng=rng)
        print(f"relative error vs direct summation "
              f"({args.samples} samples): {err:.2e}")
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    density = rng.random((pts.shape[0], kernel.source_dof))
    rows = []
    for p in _parse_ints(args.orders):
        fmm = KIFMM(kernel, FMMOptions(p=p, max_points=args.s)).setup(pts)
        t0 = time.perf_counter()
        potential = fmm.apply(density)
        dt = time.perf_counter() - t0
        err = estimate_error(fmm, density, potential, nsamples=args.samples,
                             rng=rng)
        rows.append((p, err, dt))
    print(format_table(("p", "rel. error", "eval seconds"), rows,
                       title=f"accuracy sweep, kernel={kernel.name}, "
                             f"N={pts.shape[0]}"))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.octree import build_lists, build_tree
    from repro.perfmodel import TCS1, simulate_run
    from repro.perfmodel.costs import compute_work
    from repro.perfmodel.experiments import isogranular_scaling

    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    procs = _parse_ints(args.procs)
    headers = ("P", "Total", "Ratio", "Comm", "Up", "Down", "Avg GF/s",
               "Peak GF/s", "Tree")
    if args.mode == "fixed":
        n_model = min(args.n, args.model_n)
        pts = _WORKLOADS[args.workload](n_model, rng)
        tree = build_tree(pts, max_points=args.s)
        lists = build_lists(tree)
        work = compute_work(tree, lists, kernel, args.p)
        reports = [
            simulate_run(tree, lists, kernel, args.p, P, TCS1, work=work,
                         grain_scale=args.n / pts.shape[0], n_override=args.n)
            for P in procs
        ]
        title = (f"fixed-size scaling (TCS-1 model), N={args.n}, "
                 f"model tree at {pts.shape[0]}")
    else:
        gen = _WORKLOADS[args.workload]
        reports = isogranular_scaling(
            kernel, lambda n: gen(n, rng), args.grain, procs, p=args.p,
            max_points=args.s, model_cap=args.cap,
        )
        title = (f"isogranular scaling (TCS-1 model), "
                 f"grain={args.grain}/proc, cap={args.cap}")
    rows = [
        (r.P, r.total, round(r.ratio, 1), r.comm, r.up, r.down,
         r.gflops_avg, r.gflops_peak, r.tree_seconds)
        for r in reports
    ]
    print(format_table(headers, rows, title=title))
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    """Project tree-top exchange cost to thousands of simulated ranks.

    Builds a real model tree, then sweeps simulated processor counts in
    powers of two, comparing the flat owner gather/scatter (per-box
    fan-in grows O(P) at the critical rank) against the hierarchical
    scheme (segmented binomial collectives plus the coarse-level V
    split, O(log P) fan-in).  ``--out`` writes ``BENCH_scaling.json``;
    ``--min-speedup`` / ``--max-crossover`` turn the report into CI
    assertions.
    """
    import json

    from repro.octree import build_lists, build_tree
    from repro.perfmodel import TCS1
    from repro.perfmodel.simulate import project_scaling

    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    tree = build_tree(pts, max_points=args.s)
    lists = build_lists(tree)
    report = project_scaling(
        tree, lists, kernel, args.p, TCS1,
        max_ranks=args.max_ranks, nrhs=args.nrhs,
    )
    rows = [
        (pt["P"], pt["shared_boxes"], pt["flat_total"], pt["tree_total"],
         round(pt["speedup"], 2), pt["flat_max_rank_msgs"],
         pt["tree_max_rank_msgs"])
        for pt in report["points"]
    ]
    print(format_table(
        ("P", "shared", "flat s", "tree s", "speedup",
         "flat msgs/rank", "tree msgs/rank"),
        rows,
        title=f"tree-top projection (TCS-1 model), kernel={kernel.name}, "
              f"model tree N={pts.shape[0]}, depth={report['depth']}",
    ))
    cross = report["crossover_rank"]
    print(f"flat->hierarchical crossover rank: "
          f"{cross if cross is not None else 'none'}")
    print(f"modelled tree-top improvement at P={args.max_ranks}: "
          f"{report['speedup_at_max']:.1f}x "
          f"(max fan-in {report['msgs_flat_at_max']} -> "
          f"{report['msgs_tree_at_max']} msgs/rank)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"project: JSON report written to {args.out}")
    failed = False
    if args.max_crossover is not None and (
        cross is None or cross > args.max_crossover
    ):
        print(f"project: FAILED (crossover rank {cross} not within "
              f"{args.max_crossover})")
        failed = True
    if args.min_speedup is not None and (
        report["speedup_at_max"] < args.min_speedup
    ):
        print(f"project: FAILED (speedup {report['speedup_at_max']:.2f}x "
              f"below {args.min_speedup:.2f}x at P={args.max_ranks})")
        failed = True
    return 1 if failed else 0


def _block_density(rng, n: int, kernel, nrhs: int) -> np.ndarray:
    """A single density or an ``nrhs``-column stacked block."""
    if nrhs <= 1:
        return rng.random((n, kernel.source_dof))
    return rng.random((n, kernel.source_dof, nrhs))


def _cmd_commcheck(args: argparse.Namespace) -> int:
    """Run the parallel FMM under perturbed schedules; verify the traces.

    The CI "analysis" job runs this as the commcheck smoke: a multi-rank
    evaluation per schedule seed, each trace checked for leaked
    messages, deadlock structure, collective divergence and FIFO order,
    the set compared for observable determinism, and the potentials
    asserted bitwise identical across schedules.
    """
    from repro.analysis import CommTrace, check_trace, compare_traces
    from repro.parallel.pfmm import run_parallel_fmm
    from repro.parallel.simmpi import CommStats

    if args.traces:
        # Offline mode: no live run — analyze saved traces (files, or
        # directories of *.jsonl).  Exit 2 on missing/empty inputs so
        # "nothing analyzed" never reads as "certified".
        from repro.analysis.commcheck import main as commcheck_main

        return commcheck_main(args.traces)

    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    density = _block_density(rng, pts.shape[0], kernel, args.nrhs)
    opts = FMMOptions(p=args.p, max_points=args.s, m2l=args.m2l,
                      dtype=args.dtype)
    failed = False
    traces: list[CommTrace] = []
    reference = None
    for i in range(args.schedules):
        trace = CommTrace()
        result = run_parallel_fmm(
            args.ranks, kernel, pts, density, opts,
            trace=trace, schedule_seed=args.seed + i,
            napplies=args.applies, overlap=args.overlap == "on",
        )
        report = check_trace(trace, stats=result.comm_stats)
        total = CommStats.total(result.comm_stats)
        print(f"schedule {i}: {report.summary()}")
        print(f"  traffic: {total.messages_sent} msgs / {total.bytes_sent} B "
              f"sent, {total.messages_received} msgs / "
              f"{total.bytes_received} B received")
        if args.collectives:
            print("  collectives:")
            for prim in ("allreduce", "bcast", "reduce_scatter",
                         "tree_reduce", "tree_bcast"):
                calls = getattr(total, f"{prim}_calls")
                nbytes = getattr(total, f"{prim}_bytes")
                print(f"    {prim:>14}: {calls} calls / {nbytes} B")
            phases = sorted(total.by_phase.items())
            if phases:
                print("  p2p bytes by phase: "
                      + ", ".join(f"{ph}={b}" for ph, b in phases))
        failed |= not report.ok
        traces.append(trace)
        if reference is None:
            reference = result.potential
        elif not np.array_equal(reference, result.potential):
            print(f"schedule {i}: potentials differ from schedule 0 "
                  f"(nondeterministic result)")
            failed = True
    cross = compare_traces(traces)
    print(cross.summary())
    failed |= not cross.ok
    if args.save_trace:
        traces[0].to_jsonl(args.save_trace)
        print(f"trace of schedule 0 written to {args.save_trace}")
    print("commcheck:", "FAILED" if failed else "all schedules clean")
    return 1 if failed else 0


def _seeded_race_main(comm) -> None:
    """Deliberate use-after-send: rank 0 mutates a buffer it just sent.

    The simulated MPI passes payloads by reference, so rank 1's read of
    the received array is a cross-rank access on rank 0's allocation.
    The only edge between the ranks is the send itself — which predates
    the write — so the pair is concurrent and the detector must flag it
    naming channel ``0->1 tag='race'``.
    """
    from repro.parallel.simmpi import current_recorder

    rec = current_recorder()
    if comm.rank == 0:
        buf = np.arange(8.0)
        if rec is not None:
            rec.register("seeded:buf", buf)
        comm.isend(1, buf, tag="race")
        if rec is not None:
            rec.write(buf, "mutate-after-send")
        buf[:4] = -1.0
    elif comm.rank == 1:
        req = comm.irecv(0, tag="race")
        payload = req.wait()
        if rec is not None:
            rec.read(payload, "read-received-payload")
    comm.barrier()


def _cmd_racecheck(args: argparse.Namespace) -> int:
    """Happens-before race certification of the overlapped parallel path.

    Replays the persistent-operator apply at ``--ranks`` under perturbed
    schedules with the access recorder installed, for overlap on *and*
    off, and certifies every execution race-free (no waiver mechanism
    exists: any reported pair fails the run).  ``--seed-race`` instead
    runs a deliberately racy SPMD fixture and verifies the detector
    flags it — the self-test that proves the certification can fail.
    """
    from repro.analysis import CommTrace, RaceDetector
    from repro.parallel.pfmm import run_parallel_fmm

    if args.seed_race:
        from repro.parallel.simmpi import run_spmd

        det = RaceDetector()
        run_spmd(max(2, args.ranks), _seeded_race_main, race=det)
        report = det.report()
        print(report.summary())
        if report.ok:
            print("racecheck: seeded race NOT detected — detector broken")
            return 1
        print("racecheck: seeded race detected (self-test passed)")
        return 0

    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    density = _block_density(rng, pts.shape[0], kernel, args.nrhs)
    opts = FMMOptions(p=args.p, max_points=args.s, m2l=args.m2l,
                      dtype=args.dtype)
    failed = False
    for overlap in (True, False):
        for i in range(args.schedules):
            det = RaceDetector()
            trace = CommTrace()
            run_parallel_fmm(
                args.ranks, kernel, pts, density, opts,
                trace=trace, schedule_seed=args.seed + i,
                napplies=args.applies, overlap=overlap, race=det,
            )
            report = det.report()
            print(f"overlap={'on' if overlap else 'off'} schedule {i}: "
                  f"{report.summary()}")
            failed |= not report.ok
    print("racecheck:", "FAILED" if failed
          else "all schedules certified race-free (zero waivers)")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the micro-batching evaluation service under synthetic load.

    The CI "serve" smoke runs this at small N: it builds one shared
    operator, drives the asyncio front door with Poisson arrivals, and
    reports per-request p50/p95/p99 latency, throughput and batch
    occupancy.  ``--p99-bound`` turns the report into an assertion
    (non-zero exit on a p99 excursion or any dropped request).
    """
    from repro.serve import EvaluationService, OperatorRegistry, run_load

    kernel = _make_kernel(args.kernel)
    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    registry = OperatorRegistry()
    key = registry.register(
        kernel, pts,
        FMMOptions(p=args.p, max_points=args.s, m2l=args.m2l,
                   dtype=args.dtype),
    )
    service = EvaluationService(
        registry, max_batch=args.max_batch, max_delay=args.max_delay
    )
    report = run_load(
        service, key, nrequests=args.requests, rate=args.rate,
        seed=args.seed,
    )
    print(f"serve: kernel={kernel.name} N={pts.shape[0]} p={args.p} "
          f"key={key} max_batch={args.max_batch} "
          f"max_delay={args.max_delay * 1e3:.1f}ms")
    print(f"requests: {report.requests} issued, {report.completed} "
          f"completed, {report.dropped} dropped")
    print(f"batches: {report.batches} "
          f"(mean occupancy {report.mean_batch:.2f} RHS/apply)")
    print(f"throughput: {report.throughput:.1f} req/s over "
          f"{report.duration:.2f}s")
    print(f"latency: p50 {report.p50 * 1e3:.2f}ms  "
          f"p95 {report.p95 * 1e3:.2f}ms  p99 {report.p99 * 1e3:.2f}ms")
    failed = report.dropped > 0
    if failed:
        print("serve: FAILED (dropped requests)")
    if args.p99_bound is not None and report.p99 > args.p99_bound:
        print(f"serve: FAILED (p99 {report.p99:.3f}s exceeds bound "
              f"{args.p99_bound:.3f}s)")
        failed = True
    if not failed:
        print("serve: ok")
    return 1 if failed else 0


def _cmd_plancheck(args: argparse.Namespace) -> int:
    """Statically certify every CI plan configuration — no apply runs.

    Sweeps the full configuration matrix (kernels × m2l modes × nrhs ×
    sequential + every rank count × overlap on/off), extracts each
    compiled plan's dataflow IR and certifies buffer liveness,
    dtype-flow, overlap-schedule happens-before consistency and the
    exact flop-budget identity against the performance model.  There is
    no waiver mechanism: any finding fails the run.  Unless
    ``--no-selftest`` is given, the seeded-defect self-tests (reordered
    wait, silently narrowed dtype, dead store) also run, each required
    to be caught by exactly the intended check.  ``--json`` writes the
    machine-readable report (per-check counts, flop-budget deltas).
    """
    import json

    from repro.analysis.plancheck import (
        rank_ir,
        rank_states,
        run_checks,
        run_selftests,
        sequential_ir,
    )
    from repro.core.fftm2l import FFTM2L
    from repro.core.precompute import OperatorCache
    from repro.parallel.pfmm import _global_root

    rng = np.random.default_rng(args.seed)
    pts = _WORKLOADS[args.workload](args.n, rng)
    kernels = [k for k in args.kernels.split(",") if k]
    ranks_list = _parse_ints(args.ranks)
    nrhs_list = _parse_ints(args.nrhs)
    failed = False
    configs: list[dict] = []
    selftest_ir = None

    def record(report, config: dict) -> None:
        nonlocal failed
        configs.append({
            **config,
            "ok": report.ok,
            "counts": report.counts,
            "flop_deltas": report.flop_deltas(),
            "findings": [str(f) for f in report.findings],
        })
        print(report.summary())
        for f in report.findings:
            print(f"  {f}")
        failed |= not report.ok

    for kname in kernels:
        kernel = _make_kernel(kname)
        corner, side = _global_root(pts)
        # One operator cache per kernel: every backend's operators
        # (pseudoinverses, dense/rsvd translations, FFT tensors) are
        # keyed independently, so all configurations can share it.
        shared_cache = OperatorCache(kernel, args.p, side)
        shared_fft = FFTM2L(shared_cache)
        for m2l, dtype in (("fft", "float64"), ("dense", "float64"),
                           ("rsvd", "float64"), ("rsvd", "float32"),
                           ("auto", "float64")):
            conf = f"{m2l}-{dtype}" if dtype != "float64" else m2l
            opts = FMMOptions(p=args.p, max_points=args.s, m2l=m2l,
                              dtype=dtype)
            fmm = KIFMM(kernel, opts).setup(pts)
            for nrhs in nrhs_list:
                ir, expected = sequential_ir(fmm, nrhs)
                name = f"{kname}/{conf}/sequential/nrhs{nrhs}"
                record(run_checks(ir, expected, name=name), {
                    "kernel": kname, "m2l": m2l, "dtype": dtype,
                    "mode": "sequential",
                    "depth": ir.meta["depth"], "p": args.p, "nrhs": nrhs,
                    "ranks": 1, "overlap": None,
                })
            for nranks in ranks_list:
                states = rank_states(
                    kernel, pts, opts, nranks,
                    cache=shared_cache,
                    fft=shared_fft if m2l in ("fft", "auto") else None,
                )
                for nrhs in nrhs_list:
                    for overlap in (True, False):
                        for r, state in enumerate(states):
                            ir, expected = rank_ir(
                                state, nrhs=nrhs, overlap=overlap,
                            )
                            ov = "on" if overlap else "off"
                            name = (f"{kname}/{conf}/ranks{nranks}/"
                                    f"overlap-{ov}/nrhs{nrhs}/rank{r}")
                            record(run_checks(ir, expected, name=name), {
                                "kernel": kname, "m2l": m2l,
                                "dtype": dtype,
                                "mode": "parallel",
                                "depth": ir.meta["depth"], "p": args.p,
                                "nrhs": nrhs, "ranks": nranks,
                                "rank": r, "overlap": overlap,
                            })
                            if selftest_ir is None and overlap:
                                selftest_ir = (ir, expected)

    selftests: list[dict] = []
    if not args.no_selftest:
        if selftest_ir is None:
            print("plancheck: no multi-rank overlap IR for self-tests")
            failed = True
        else:
            for name, ok, detail in run_selftests(*selftest_ir):
                print(f"selftest {name}: {'ok' if ok else 'FAILED'} "
                      f"({detail})")
                selftests.append(
                    {"seed": name, "ok": ok, "detail": detail}
                )
                failed |= not ok

    if args.json:
        payload = {
            "n": int(pts.shape[0]), "p": args.p, "s": args.s,
            "configs": configs, "selftests": selftests,
            "ok": not failed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"plancheck: JSON report written to {args.json}")
    print("plancheck:", "FAILED" if failed
          else f"all {len(configs)} plan configurations certified "
               f"(zero waivers)")
    return 1 if failed else 0


def _cmd_commir(args: argparse.Namespace) -> int:
    """Statically certify the full communication schedule — no apply.

    Extracts the complete message schedule (every p2p send/receive
    post/completion with source, destination and structured tag, every
    segmented-collective hop, in per-rank program order) directly from
    the plan inputs for each requested rank count — including counts
    far beyond what the simulated runtime can execute, e.g. P=4096 —
    and certifies matching, tag discipline, deadlock-freedom and
    cross-scheme payload conservation.  The schedule depends only on
    the point set, the rank count and the comm scheme, not on the
    kernel, the RHS width or overlap (which reorders compute against a
    fixed comm order), so each (ranks, scheme) pair is extracted and
    checked once and reported for every swept configuration.

    For rank counts small enough to execute (``--conform-ranks``), a
    traced run on ``--conform-n`` points cross-checks conformance:
    the dynamic trace must replay each rank's static op sequence
    exactly.  The seeded-defect self-tests (dropped relay, reused tag,
    swapped post/wait) run at ``--selftest-ranks`` unless
    ``--no-selftest``.  There is no waiver mechanism.
    """
    import json
    import time

    from repro.analysis.commcheck_static import (
        build_index,
        conservation_summary,
        cross_scheme_conservation,
        run_checks,
        run_selftests,
        traced_run,
    )
    from repro.analysis.commir import extract_comm_ir, static_plan_inputs

    rng = np.random.default_rng(args.seed)
    kernels = [k for k in args.kernels.split(",") if k]
    ranks_list = _parse_ints(args.ranks)
    nrhs_list = _parse_ints(args.nrhs)
    schemes = [s for s in args.schemes.split(",") if s]
    if not ranks_list or not kernels or not schemes:
        print("commir: nothing to certify "
              "(empty --ranks, --kernels or --schemes)")
        return 2
    for s in schemes:
        if s not in ("tree", "flat"):
            print(f"commir: unknown comm scheme {s!r}")
            return 2
    pts = _WORKLOADS[args.workload](args.n, rng)
    conform_pts = _WORKLOADS[args.workload](args.conform_n, rng)
    conform_ranks = set(_parse_ints(args.conform_ranks))
    t_start = time.time()
    failed = False
    configs: list[dict] = []

    def record(report, config: dict) -> None:
        nonlocal failed
        configs.append({
            **config,
            "ok": report.ok,
            "counts": report.counts,
            "messages": report.nmessages,
            "ops": report.nops,
            "findings": [str(f) for f in report.findings],
        })
        print(report.summary())
        for f in report.findings:
            print(f"  {f}")
        failed |= not report.ok

    for nranks in ranks_list:
        inputs = static_plan_inputs(
            pts, nranks, options=FMMOptions(p=args.p, max_points=args.s)
        )
        # One scheme's IR at a time: a P=4096 IR is gigabytes, and
        # holding both schemes (plus both indexes) doubles the peak and
        # lets allocator churn dominate the <60 s budget.  Each scheme
        # is certified standalone, condensed to a ConservationSummary,
        # and freed; the cross-scheme payload comparison then runs on
        # the two compact summaries.
        reports = {}
        summaries = {}
        for scheme in schemes:
            ir = extract_comm_ir(inputs, scheme=scheme)
            index = build_index(ir)
            reports[scheme] = run_checks(
                ir, name=f"ranks{nranks}/{scheme}", index=index,
            )
            summaries[scheme] = conservation_summary(ir, index)
            del ir, index
        if len(schemes) == 2:
            cross = cross_scheme_conservation(
                summaries[schemes[0]], summaries[schemes[1]]
            )
            for report in reports.values():
                report.findings.extend(cross)
                report.counts["conservation"] += len(cross)
        for scheme in schemes:
            report = reports[scheme]
            # One certification covers the whole kernel x overlap x
            # nrhs block: the schedule is invariant across them.
            for kname in kernels:
                for overlap in (True, False):
                    for nrhs in nrhs_list:
                        record(report, {
                            "kernel": kname, "ranks": nranks,
                            "scheme": scheme, "overlap": overlap,
                            "nrhs": nrhs,
                        })

    conform_rows: list[dict] = []
    for nranks in sorted(conform_ranks):
        inputs = static_plan_inputs(
            conform_pts, nranks,
            options=FMMOptions(p=args.p, max_points=args.s),
        )
        kernel = _make_kernel(kernels[0])
        density = rng.random((conform_pts.shape[0], kernel.source_dof))
        for scheme in schemes:
            for overlap in (True, False):
                ir = extract_comm_ir(inputs, scheme=scheme,
                                     overlap=overlap)
                trace = traced_run(
                    kernel, conform_pts, density,
                    FMMOptions(p=args.p, max_points=args.s,
                               comm=scheme),
                    nranks, schedule_seed=args.seed,
                    overlap=overlap,
                )
                ov = "on" if overlap else "off"
                report = run_checks(
                    ir, traces=(trace,),
                    name=(f"conform/ranks{nranks}/{scheme}/"
                          f"overlap-{ov}"),
                )
                record(report, {
                    "kernel": kernels[0], "ranks": nranks,
                    "scheme": scheme, "overlap": overlap,
                    "nrhs": 1, "conformance": True,
                })
                conform_rows.append(configs[-1])

    selftests: list[dict] = []
    if not args.no_selftest:
        from repro.analysis.commcheck_static import SEEDS

        # The seeded defects need a schedule deep enough to host them
        # (an interior relay node needs a box with >= 4 gather
        # participants); probe increasing rank counts until every seed
        # is plantable.
        st_tree = st_flat = None
        cand = args.selftest_ranks
        for _ in range(5):
            st_inputs = static_plan_inputs(
                conform_pts, cand,
                options=FMMOptions(p=args.p, max_points=args.s),
            )
            ir = extract_comm_ir(st_inputs, scheme="tree")
            try:
                for seed_fn, _intended in SEEDS.values():
                    seed_fn(ir)
            except ValueError:
                cand *= 2
                continue
            st_tree = ir
            st_flat = extract_comm_ir(st_inputs, scheme="flat")
            break
        if st_tree is None:
            print(f"commir: no rank count up to {cand // 2} hosts the "
                  f"seeded defects on this workload")
            return 1
        if cand != args.selftest_ranks:
            print(f"commir: self-tests host at ranks={cand}")
        for name, ok, detail in run_selftests(st_tree,
                                              reference=st_flat):
            print(f"selftest {name}: {'ok' if ok else 'FAILED'} "
                  f"({detail})")
            selftests.append({"seed": name, "ok": ok, "detail": detail})
            failed |= not ok

    elapsed = time.time() - t_start
    if args.json:
        payload = {
            "n": int(pts.shape[0]), "p": args.p, "s": args.s,
            "elapsed_s": elapsed,
            "configs": configs, "selftests": selftests,
            "ok": not failed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"commir: JSON report written to {args.json}")
    print("commir:", "FAILED" if failed
          else f"all {len(configs)} configurations certified "
               f"(zero waivers) in {elapsed:.1f}s")
    return 1 if failed else 0


def _cmd_dpor(args: argparse.Namespace) -> int:
    """Exhaustively model-check the schedule space at tiny rank counts.

    Builds the static communication IR for each requested rank count
    and explores *every* reachable scheduler interleaving (memoized
    over program-counter states): no reachable deadlock, persistence
    certified at every state, and the exact interleaving count
    reported.  An end-to-end harness then re-solves the same problem
    under several randomized runtime schedules and asserts bitwise
    identical potentials.
    """
    import json

    from repro.analysis.commir import extract_comm_ir, static_plan_inputs
    from repro.analysis.dpor import bitwise_determinism, explore

    rng = np.random.default_rng(args.seed)
    ranks_list = _parse_ints(args.ranks)
    schemes = [s for s in args.schemes.split(",") if s]
    if not ranks_list or not schemes:
        print("dpor: nothing to explore (empty --ranks or --schemes)")
        return 2
    if args.n <= 0:
        print(f"dpor: need a positive point count, got {args.n}")
        return 2
    pts = _WORKLOADS[args.workload](args.n, rng)
    kernel = _make_kernel(args.kernel)
    density = rng.random((pts.shape[0], kernel.source_dof))
    failed = False
    rows: list[dict] = []
    for nranks in ranks_list:
        inputs = static_plan_inputs(
            pts, nranks, options=FMMOptions(p=args.p, max_points=args.s)
        )
        for scheme in schemes:
            ir = extract_comm_ir(inputs, scheme=scheme)
            report = explore(ir, max_states=args.max_states)
            print(f"ranks{nranks}/{scheme}: {report.summary()}")
            for d in report.deadlocks:
                print(f"  deadlock: {d}")
            for v in report.persistence_violations:
                print(f"  persistence: {v}")
            rows.append({
                "ranks": nranks, "scheme": scheme, "ok": report.ok,
                "states": report.nstates,
                "interleavings": str(report.ninterleavings),
                "classes": report.nclasses,
                "deadlocks": report.deadlocks,
                "persistence_violations": report.persistence_violations,
            })
            failed |= not report.ok
        same, diff = bitwise_determinism(
            kernel, pts, density,
            FMMOptions(p=args.p, max_points=args.s),
            nranks, seeds=tuple(range(args.seed, args.seed
                                      + args.schedules)),
        )
        print(f"ranks{nranks}: bitwise determinism across "
              f"{args.schedules} schedules: "
              f"{'ok' if same else f'FAILED (max diff {diff:g})'}")
        rows.append({
            "ranks": nranks, "bitwise": same,
            "schedules": args.schedules,
        })
        failed |= not same
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"rows": rows, "ok": not failed}, fh, indent=2)
        print(f"dpor: JSON report written to {args.json}")
    print("dpor:", "FAILED" if failed
          else "schedule space exhaustively verified")
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Measured 3-way M2L ablation (dense / fft / rsvd) across the grid.

    For every (kernel, p, N) grid point the three backends evaluate the
    identical problem from one shared operator cache; the report records
    wall-clock, V-list flop volume, achieved rate and the relative
    deviation from the dense reference, plus what the ``auto`` picker
    would have chosen.  ``--out`` writes the machine-readable JSON
    (consumed by CI, which asserts rsvd stays competitive with fft via
    ``--rsvd-factor``).
    """
    import json

    from repro.core.precompute import OperatorCache
    from repro.kernels.direct import relative_error
    from repro.parallel.pfmm import _global_root

    kernels = [k for k in args.kernels.split(",") if k]
    orders = _parse_ints(args.orders)
    sizes = _parse_ints(args.sizes)
    if args.m2l == "auto":  # full 3-way ablation (the default)
        backends = [("dense", "float64"), ("fft", "float64"),
                    ("rsvd", "float64")]
    else:  # restricted sweep: the dense reference plus the chosen backend
        backends = [("dense", "float64")]
        if args.m2l != "dense":
            backends.append((args.m2l, "float64"))
    if args.f32 or args.dtype == "float32":
        backends.append(("rsvd", "float32"))
    entries: list[dict] = []
    rsvd_wins: list[str] = []
    best_ratio: float | None = None
    rows = []
    for kname in kernels:
        for n in sizes:
            rng = np.random.default_rng(args.seed)
            pts = _WORKLOADS[args.workload](n, rng)
            kernel = _make_kernel(kname)
            density = rng.random((pts.shape[0], kernel.source_dof))
            corner, side = _global_root(pts)
            for p in orders:
                cache = OperatorCache(kernel, p, side)
                point = f"{kname}/p{p}/n{n}"
                times: dict[str, float] = {}
                reference = None
                for m2l, dtype in backends:
                    fmm = KIFMM(
                        kernel,
                        FMMOptions(p=p, max_points=args.s, m2l=m2l,
                                   dtype=dtype),
                    ).setup(pts, root=(corner, side), cache=cache)
                    fmm.apply(density)  # warm the operator caches
                    fmm.flops.reset()
                    dt = float("inf")
                    for _ in range(args.repeats):
                        fmm.flops.reset()
                        t0 = time.perf_counter()
                        u = fmm.apply(density)
                        dt = min(dt, time.perf_counter() - t0)
                    if reference is None:
                        reference = u  # dense runs first
                    flop = fmm.flops.get("down_v")
                    err = float(relative_error(u, reference))
                    conf = m2l if dtype == "float64" else f"{m2l}-{dtype}"
                    times[conf] = dt
                    entries.append({
                        "kernel": kname, "p": p, "n": n,
                        "m2l": m2l, "dtype": dtype,
                        "eval_seconds": dt,
                        "down_v_gflop": flop / 1e9,
                        "achieved_gflops": flop / dt / 1e9,
                        "rel_err_vs_dense": err,
                        "schedule": fmm.m2l_schedule.describe(),
                    })
                    rows.append((point, conf, dt, flop / 1e9,
                                 flop / dt / 1e9, err))
                auto = KIFMM(
                    kernel, FMMOptions(p=p, max_points=args.s, m2l="auto"),
                ).setup(pts, root=(corner, side), cache=cache)
                entries.append({
                    "kernel": kname, "p": p, "n": n, "m2l": "auto",
                    "dtype": "float64", "eval_seconds": None,
                    "schedule": auto.m2l_schedule.describe(),
                })
                measured = {c: t for c, t in times.items()
                            if c in ("dense", "fft", "rsvd")}
                if min(measured, key=measured.get) == "rsvd":
                    rsvd_wins.append(point)
                if "rsvd" in times and "fft" in times:
                    ratio = times["rsvd"] / times["fft"]
                    best_ratio = (ratio if best_ratio is None
                                  else min(best_ratio, ratio))
    print(format_table(
        ("grid point", "M2L", "eval sec", "V Gflop", "GF/s",
         "err vs dense"),
        rows, title="M2L backend ablation",
    ))
    print(f"rsvd fastest at: {', '.join(rsvd_wins) if rsvd_wins else '-'}")
    if best_ratio is not None:
        print(f"best rsvd/fft time ratio: {best_ratio:.2f}")
    if args.out:
        payload = {
            "workload": args.workload, "s": args.s, "seed": args.seed,
            "entries": entries, "rsvd_wins": rsvd_wins,
            "best_rsvd_over_fft": best_ratio,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"bench: JSON report written to {args.out}")
    if args.rsvd_factor is not None and (
        best_ratio is None or best_ratio > args.rsvd_factor
    ):
        detail = ("no rsvd+fft grid point measured" if best_ratio is None
                  else f"best rsvd/fft ratio {best_ratio:.2f} exceeds "
                       f"{args.rsvd_factor:.2f} at every grid point")
        print(f"bench: FAILED ({detail})")
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kernel-independent FMM (SC'03 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kernel", default="laplace",
                       choices=sorted(_KERNELS))
        p.add_argument("--workload", default="uniform",
                       choices=sorted(_WORKLOADS))
        p.add_argument("--p", type=int, default=6,
                       help="surface order (accuracy)")
        p.add_argument("--s", type=int, default=60,
                       help="max points per leaf")
        p.add_argument("--seed", type=int, default=0)

    def m2l_flags(p: argparse.ArgumentParser, default: str = "auto") -> None:
        p.add_argument("--m2l", default=default,
                       choices=("fft", "dense", "rsvd", "auto"),
                       help="V-list translation backend (auto picks per "
                            "tree level)")
        p.add_argument("--dtype", default="float64",
                       choices=("float64", "float32"),
                       help="rsvd factor precision (float32 = mixed "
                            "precision; ignored by fft/dense)")

    pe = sub.add_parser("evaluate", help="run one interaction evaluation")
    common(pe)
    pe.add_argument("--n", type=int, default=10_000)
    m2l_flags(pe)
    pe.add_argument("--plan", default="batched",
                    choices=("batched", "naive"),
                    help="evaluator: precomputed level-batched plan or "
                         "the per-box reference path")
    pe.add_argument("--check", action="store_true",
                    help="verify against direct summation")
    pe.add_argument("--gradient", action="store_true",
                    help="also evaluate field gradients "
                         "(scalar kernels only)")
    pe.add_argument("--samples", type=int, default=200)
    pe.set_defaults(func=_cmd_evaluate)

    pa = sub.add_parser("accuracy", help="error vs surface order sweep")
    common(pa)
    pa.add_argument("--n", type=int, default=3000)
    pa.add_argument("--orders", default="2,4,6")
    pa.add_argument("--samples", type=int, default=200)
    pa.set_defaults(func=_cmd_accuracy)

    ps = sub.add_parser("scaling", help="TCS-1 scalability tables")
    common(ps)
    ps.add_argument("--mode", default="fixed",
                    choices=("fixed", "isogranular"))
    ps.add_argument("--n", type=int, default=3_200_000,
                    help="fixed-size problem size")
    ps.add_argument("--model-n", type=int, default=100_000,
                    help="model tree size for fixed mode")
    ps.add_argument("--grain", type=int, default=200_000)
    ps.add_argument("--cap", type=int, default=200_000)
    ps.add_argument("--procs", default="1,4,16,64,256,1024")
    ps.set_defaults(func=_cmd_scaling)

    pj = sub.add_parser(
        "project",
        help="project the tree-top exchange to thousands of simulated "
             "ranks: flat owner gather/scatter vs hierarchical binomial "
             "collectives + coarse V split",
    )
    common(pj)
    pj.add_argument("--n", type=int, default=20_000,
                    help="model tree size")
    pj.add_argument("--max-ranks", type=int, default=4096,
                    help="largest simulated processor count (powers of "
                         "two are swept up to this)")
    pj.add_argument("--nrhs", type=int, default=1,
                    help="modelled multi-RHS block width")
    pj.add_argument("--out", default="BENCH_scaling.json", metavar="PATH",
                    help="JSON report path (empty string disables)")
    pj.add_argument("--min-speedup", type=float, default=None,
                    help="fail (exit 1) if the modelled tree-top "
                         "improvement at --max-ranks is below this factor")
    pj.add_argument("--max-crossover", type=int, default=None,
                    help="fail (exit 1) unless the flat->hierarchical "
                         "crossover rank exists and is at most this")
    pj.set_defaults(func=_cmd_project, p=4, s=60)

    pc = sub.add_parser(
        "commcheck",
        help="run the parallel FMM under perturbed schedules and verify "
             "the communication traces race- and deadlock-free",
    )
    common(pc)
    pc.add_argument("--n", type=int, default=600)
    pc.add_argument("--ranks", type=int, default=4)
    pc.add_argument("--schedules", type=int, default=5,
                    help="number of perturbed schedules to fuzz")
    m2l_flags(pc, default="fft")
    pc.add_argument("--applies", type=int, default=1,
                    help="persistent-operator applies per schedule (setup "
                         "once, apply N times inside one traced region)")
    pc.add_argument("--overlap", default="on", choices=("on", "off"),
                    help="overlap the equivalent-density exchange with "
                         "owned-data compute in the planned applies")
    pc.add_argument("--nrhs", type=int, default=1,
                    help="stack this many densities into one multi-RHS "
                         "block per apply (the whole block rides one "
                         "overlapped exchange)")
    pc.add_argument("--save-trace", default=None, metavar="PATH",
                    help="write schedule 0's event trace as JSON lines")
    pc.add_argument("--collectives", action="store_true",
                    help="print the per-primitive collective summary "
                         "(allreduce/bcast/reduce-scatter/tree-reduce/"
                         "tree-bcast call and byte counts)")
    pc.add_argument("--traces", nargs="+", default=None, metavar="PATH",
                    help="offline mode: analyze saved *.jsonl traces "
                         "(files or directories) instead of running; "
                         "exits 2 if a path is missing or a directory "
                         "holds no trace files")
    pc.set_defaults(func=_cmd_commcheck, p=4, s=40)

    pr = sub.add_parser(
        "racecheck",
        help="replay the overlapped parallel apply under the "
             "happens-before race detector and certify it race-free",
    )
    common(pr)
    pr.add_argument("--n", type=int, default=600)
    pr.add_argument("--ranks", type=int, default=4)
    pr.add_argument("--schedules", type=int, default=5,
                    help="perturbed schedules per overlap mode")
    m2l_flags(pr, default="fft")
    pr.add_argument("--applies", type=int, default=2,
                    help="persistent-operator applies per schedule")
    pr.add_argument("--nrhs", type=int, default=1,
                    help="stack this many densities into one multi-RHS "
                         "block per apply")
    pr.add_argument("--seed-race", action="store_true",
                    help="run the deliberately racy fixture instead and "
                         "verify the detector flags it (self-test)")
    pr.set_defaults(func=_cmd_racecheck, p=4, s=40)

    pv = sub.add_parser(
        "serve",
        help="run the micro-batching asyncio evaluation service under a "
             "synthetic Poisson load and report latency percentiles",
    )
    common(pv)
    pv.add_argument("--n", type=int, default=2000)
    m2l_flags(pv)
    pv.add_argument("--requests", type=int, default=64,
                    help="number of synthetic evaluation requests")
    pv.add_argument("--rate", type=float, default=500.0,
                    help="mean Poisson arrival rate, requests/second")
    pv.add_argument("--max-batch", type=int, default=8,
                    help="largest multi-RHS block one apply serves")
    pv.add_argument("--max-delay", type=float, default=0.002,
                    help="seconds the batcher waits for followers after "
                         "the first request of a batch")
    pv.add_argument("--p99-bound", type=float, default=None,
                    help="fail (exit 1) if p99 latency exceeds this many "
                         "seconds — the CI smoke assertion")
    pv.set_defaults(func=_cmd_serve, p=4, s=60)

    pp = sub.add_parser(
        "plancheck",
        help="statically certify the compiled execution plans (dataflow, "
             "dtype-flow, overlap schedule, flop budget) without running "
             "an apply",
    )
    common(pp)
    pp.add_argument("--n", type=int, default=600)
    pp.add_argument("--kernels", default="laplace,stokes",
                    help="comma-separated kernels to sweep")
    pp.add_argument("--ranks", default="2,4",
                    help="comma-separated rank counts for the parallel "
                         "configurations (sequential always runs)")
    pp.add_argument("--nrhs", default="1,8",
                    help="comma-separated multi-RHS block widths")
    pp.add_argument("--no-selftest", action="store_true",
                    help="skip the seeded-defect self-tests")
    pp.add_argument("--json", default=None, metavar="PATH",
                    help="write the machine-readable certification report "
                         "(per-check counts, flop-budget deltas)")
    pp.set_defaults(func=_cmd_plancheck, p=4, s=40)

    pci = sub.add_parser(
        "commir",
        help="statically certify the complete message schedule "
             "(matching, tags, deadlock-freedom, cross-scheme payload "
             "conservation, trace conformance) without running an "
             "apply — works at rank counts like 4096",
    )
    common(pci)
    pci.add_argument("--n", type=int, default=20000)
    pci.add_argument("--kernels", default="laplace,stokes",
                     help="comma-separated kernels to report (the "
                          "schedule itself is kernel-invariant)")
    pci.add_argument("--ranks", default="2,4,8,64,4096",
                     help="comma-separated rank counts to certify")
    pci.add_argument("--schemes", default="tree,flat",
                     help="comma-separated comm schemes")
    pci.add_argument("--nrhs", default="1,8",
                     help="comma-separated multi-RHS block widths "
                          "(reported; schedule-invariant)")
    pci.add_argument("--conform-ranks", default="2,4,8",
                     help="rank counts for the dynamic-trace "
                          "conformance cross-check (must be small "
                          "enough to execute)")
    pci.add_argument("--conform-n", type=int, default=600,
                     help="point count of the traced conformance runs")
    pci.add_argument("--selftest-ranks", type=int, default=32,
                     help="rank count hosting the seeded-defect "
                          "self-tests (needs boxes with deep gather "
                          "trees)")
    pci.add_argument("--no-selftest", action="store_true",
                     help="skip the seeded-defect self-tests")
    pci.add_argument("--json", default=None, metavar="PATH",
                     help="write the machine-readable certification "
                          "report")
    pci.set_defaults(func=_cmd_commir, p=4, s=40)

    pd = sub.add_parser(
        "dpor",
        help="exhaustively explore every scheduler interleaving of the "
             "static communication IR at tiny rank counts; prove "
             "deadlock-freedom and observable determinism over the "
             "full schedule space",
    )
    common(pd)
    pd.add_argument("--n", type=int, default=120)
    pd.add_argument("--ranks", default="2,3",
                    help="comma-separated rank counts to explore "
                         "(state space grows fast; keep tiny)")
    pd.add_argument("--schemes", default="tree,flat",
                    help="comma-separated comm schemes")
    pd.add_argument("--max-states", type=int, default=2_000_000,
                    help="abort exploration beyond this many scheduler "
                         "states")
    pd.add_argument("--schedules", type=int, default=4,
                    help="randomized runtime schedules for the bitwise "
                         "determinism harness")
    pd.add_argument("--json", default=None, metavar="PATH",
                    help="write the machine-readable report")
    pd.set_defaults(func=_cmd_dpor, p=4, s=40)

    pb = sub.add_parser(
        "bench",
        help="measured 3-way M2L backend ablation (dense/fft/rsvd) "
             "across kernels, orders and sizes, writing a JSON report",
    )
    common(pb)
    m2l_flags(pb)  # --m2l restricts the sweep; --dtype float32 adds
    # the mixed-precision rsvd entry (same as --f32)
    pb.add_argument("--kernels", default="laplace,stokes",
                    help="comma-separated kernels to sweep")
    pb.add_argument("--orders", default="4,6",
                    help="comma-separated surface orders")
    pb.add_argument("--sizes", default="4000,12000",
                    help="comma-separated problem sizes")
    pb.add_argument("--repeats", type=int, default=3,
                    help="timed applies per configuration (best-of)")
    pb.add_argument("--f32", action="store_true",
                    help="also measure the rsvd float32 mixed-precision "
                         "mode")
    pb.add_argument("--out", default="BENCH_m2l.json", metavar="PATH",
                    help="JSON report path (empty string disables)")
    pb.add_argument("--rsvd-factor", type=float, default=None,
                    help="fail (exit 1) unless rsvd reaches this multiple "
                         "of the fft time at some grid point — the CI "
                         "competitiveness assertion")
    pb.set_defaults(func=_cmd_bench)

    pl = sub.add_parser(
        "lint", help="run the repo-invariant AST lint over source trees"
    )
    pl.add_argument("paths", nargs="*", default=["src"])
    pl.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog with rationales")
    pl.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
