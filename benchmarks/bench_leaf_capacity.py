"""Ablation: leaf capacity s (the paper's 60, or 120 for the big runs).

Section 4: "For all the other experiments we have used rough 60
particles per box, while in this experiment we use 120 particles per box
to slightly reduce the costs of tree construction."  The classical FMM
tuning curve: small s shifts work into M2L translations, large s into
dense near-field interactions; the optimum balances the two.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel
from repro.util.tables import format_table

N = 12_000
S_SWEEP = (15, 30, 60, 120, 240)


def _run_sweep():
    rng = np.random.default_rng(52)
    pts = rng.uniform(-1, 1, size=(N, 3))
    phi = rng.random((N, 1))
    rows = []
    for s in S_SWEEP:
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=s)).setup(pts)
        fmm.apply(phi)  # warm operator caches
        fmm.flops.reset()
        t0 = time.perf_counter()
        fmm.apply(phi)
        dt = time.perf_counter() - t0
        fl = fmm.flops.by_phase()
        rows.append(
            (s, fmm.tree.nboxes, dt,
             fl.get("down_u", 0.0) / 1e9, fl.get("down_v", 0.0) / 1e9)
        )
    return rows


def test_leaf_capacity_sweep(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ("s", "boxes", "eval s", "U Gflop", "V Gflop"),
        rows,
        title=f"leaf capacity sweep (Laplace, p=6, N={N}, uniform)",
    ))
    by_s = {r[0]: r for r in rows}
    # U-list (dense) work grows with s, V-list (M2L) work shrinks
    assert by_s[240][3] > by_s[15][3]
    assert by_s[240][4] < by_s[15][4]
    # the paper's s=60 operating point should not be the worst choice
    times = {r[0]: r[2] for r in rows}
    assert times[60] <= 1.5 * min(times.values())
