"""FFT-accelerated M2L translations.

Section 1 of the paper: "the multipole-to-local translations are
accelerated using local FFTs, resulting in performances that are on par
with the fastest known adaptive FMM implementations".

Why this works: both the upward equivalent surface of a source box ``A``
and the downward check surface of a same-level target box ``B`` are the
boundary nodes of congruent ``p^3`` lattices with spacing
``h = 2 * inner * r / (p - 1)``.  Writing the target node as
``x_t = c_B - inner*r + h*t`` and the source node as
``y_s = c_A - inner*r + h*s`` (``t, s`` lattice multi-indices), every
pairwise displacement is ``x_t - y_s = (c_B - c_A) + h * (t - s)`` — a
function of ``t - s`` only.  The check-potential evaluation is therefore
a 3-D discrete convolution with the kernel tensor
``T[d] = G((c_B - c_A) + h d)``, which we embed in a ``(2p)^3`` circulant
and apply with FFTs:

- one forward transform per *source* box (amortised over all its
  V-interactions),
- one Hadamard multiply-accumulate per box pair,
- one inverse transform per *target* box.

The kernel tensors depend only on (level, anchor offset); like the dense
operators they rescale across levels for homogeneous kernels.

The per-box transforms themselves are *not* executed as FFTs: the
embedded grid is zero except at the ``n_surf`` surface nodes (and only
``n_surf`` check values are read back), so the forward and inverse maps
are small dense DFT matrices ``(nfreq, n_surf)`` applied as real GEMMs.
At the paper's ``p`` (4-8) this trades a handful of extra flops for
BLAS-3 arithmetic intensity over thousands of boxes — several times
faster than batches of tiny ``(2p)^3`` FFTs — and is exactly the DFT,
so the circulant convolution identity is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import OCTANT_VECTORS, BufferPool
from repro.core.precompute import OperatorCache
from repro.core.surfaces import surface_lattice_indices

#: Frequency-block and parent-pair chunk sizes of the blocked Hadamard
#: stage: one ``(HADAMARD_CHUNK, 8, HADAMARD_FREQ_BLOCK)`` complex slab
#: (~9 MB) fits in the last-level cache, so the transposes surrounding
#: the batched 8x8 matmuls run at cache speed instead of DRAM-miss speed.
HADAMARD_FREQ_BLOCK = 48
HADAMARD_CHUNK = 512


class FFTM2L:
    """Kernel-tensor cache and grid scatter/gather for FFT M2L."""

    def __init__(self, cache: OperatorCache) -> None:
        self.cache = cache
        self.kernel = cache.kernel
        self.p = cache.p
        self.m = 2 * cache.p  # circulant embedding size
        lattice = surface_lattice_indices(self.p)
        self._surf_ijk = (lattice[:, 0], lattice[:, 1], lattice[:, 2])
        # displacement grid d(i) for circulant index i: i -> i or i - m,
        # with the unused index i == p zeroed out (no valid (t, s) pair
        # has t - s == +-p).
        idx = np.arange(self.m)
        self._disp = np.where(idx < self.p, idx, idx - self.m)
        self._dead = self.p  # circulant index that never contributes
        self._tensors: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
        self._combos: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
        self._combos_real: dict[
            tuple[int, tuple[int, int, int]], np.ndarray
        ] = {}
        self._dft: tuple[np.ndarray, ...] | None = None
        self._dft_t: tuple[np.ndarray, ...] | None = None

    def _dft_operators(self) -> tuple[np.ndarray, ...]:
        """Dense surface-node DFT operators (built once, ~a few MB).

        Returns ``(F_re, F_im, G_re, G_im)``:

        - ``F_* (n_surf, nfreq)``: forward map, ``hat = vals @ (F_re +
          i F_im)`` equals ``rfftn`` of the surface-scattered grid
          (only surface nodes are non-zero, so the DFT sum collapses to
          these columns of the full transform).
        - ``G_* (nfreq, n_surf)``: inverse map with the Hermitian
          weights of the real transform folded in, ``vals = Re(acc) @
          G_re - Im(acc) @ G_im`` equals ``irfftn`` sampled at the
          surface nodes.
        """
        if self._dft is None:
            m, mf = self.m, self.m // 2 + 1
            kx, ky, kz = np.meshgrid(
                np.arange(m), np.arange(m), np.arange(mf), indexing="ij"
            )
            freqs = np.stack([kx, ky, kz], axis=-1).reshape(-1, 3)
            lattice = np.stack(self._surf_ijk, axis=1)  # (n_surf, 3)
            phase = (-2.0 * np.pi / m) * (lattice @ freqs.T)  # (n_surf, nfreq)
            F = np.exp(1j * phase)
            # rfft stores one of each conjugate pair for 0 < kz < m/2;
            # those frequencies count twice in the inverse sum.
            w = np.where((freqs[:, 2] == 0) | (freqs[:, 2] == m // 2), 1.0, 2.0)
            G = (np.conj(F) * w[None, :]).T / float(m**3)  # (nfreq, n_surf)
            self._dft = (
                np.ascontiguousarray(F.real),
                np.ascontiguousarray(F.imag),
                np.ascontiguousarray(G.real),
                np.ascontiguousarray(G.imag),
            )
        return self._dft

    def _dft_operators_t(self) -> tuple[np.ndarray, ...]:
        """Contiguous transposes of the DFT operators.

        The blocked Hadamard stage keeps its spectra frequency-leading
        (``(nfreq, ...)``); the matching forward/inverse GEMMs then put
        the DFT operator on the *left*, which wants the transposed
        factors contiguous.
        """
        if self._dft_t is None:
            self._dft_t = tuple(
                np.ascontiguousarray(a.T) for a in self._dft_operators()
            )
        return self._dft_t

    # -- kernel tensors ------------------------------------------------------

    def kernel_tensor_hat(
        self, level: int, offset: tuple[int, int, int]
    ) -> np.ndarray:
        """``rfftn`` of the circulant-embedded kernel tensor.

        Returns a complex array of shape
        ``(target_dof, source_dof, m, m, m//2 + 1)``.
        """
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(o) for o in offset))
        if key not in self._tensors:
            self._tensors[key] = self._build_tensor(key_level, offset)
        base = self._tensors[key]
        if h is None or level == key_level:
            return base
        return base * (2.0 ** (key_level - level)) ** h

    def _build_tensor(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        m, p = self.m, self.p
        r = self.cache.half_width(level)
        spacing = 2.0 * self.cache.inner * r / (p - 1)
        delta = np.asarray(offset, dtype=np.float64) * (2.0 * r)
        d = self._disp.astype(np.float64)
        dx, dy, dz = np.meshgrid(d, d, d, indexing="ij")
        pts = np.stack([dx, dy, dz], axis=-1).reshape(-1, 3) * spacing + delta
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        blocks = self.kernel.matrix(pts, np.zeros((1, 3)))  # (m^3 * qd, md)
        grid = blocks.reshape(m, m, m, qd, md).transpose(3, 4, 0, 1, 2)
        grid = np.ascontiguousarray(grid)
        grid[:, :, self._dead, :, :] = 0.0
        grid[:, :, :, self._dead, :] = 0.0
        grid[:, :, :, :, self._dead] = 0.0
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    def combo_tensor_hat(
        self, level: int, po: tuple[int, int, int]
    ) -> np.ndarray:
        """Frequency-major octant mixing matrix of one parent offset.

        For a parent pair at anchor offset ``po`` the child pair
        ``(octant ot, octant os)`` sits at offset
        ``2 po + OCTANT_VECTORS[ot] - OCTANT_VECTORS[os]``; entry
        ``[f, ot * qd + q, os * md + m]`` holds that offset's kernel
        tensor at frequency ``f`` (zero where the offset is adjacent, so
        non-V child pairs contribute nothing).  Shape
        ``(nfreq, 8 * target_dof, 8 * source_dof)``; cached per
        ``(level, po)`` with the same homogeneity rescaling as
        :meth:`kernel_tensor_hat`.
        """
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(x) for x in po))
        M = self._combos.get(key)
        if M is None:
            qd, md = self.kernel.target_dof, self.kernel.source_dof
            nfreq = self.m * self.m * (self.m // 2 + 1)
            M = np.zeros((nfreq, 8 * qd, 8 * md), dtype=np.complex128)
            pv = np.asarray(key[1], dtype=np.int64)
            for ot in range(8):
                for os_ in range(8):
                    off = 2 * pv + OCTANT_VECTORS[ot] - OCTANT_VECTORS[os_]
                    if np.abs(off).max() < 2:
                        continue
                    T = self.kernel_tensor_hat(key_level, tuple(off))
                    M[:, ot * qd : (ot + 1) * qd, os_ * md : (os_ + 1) * md] = (
                        T.reshape(qd, md, nfreq).transpose(2, 0, 1)
                    )
            self._combos[key] = M
        if h is None or level == key_level:
            return M
        return M * (2.0 ** (key_level - level)) ** h

    def combo_tensor_real(
        self, level: int, po: tuple[int, int, int]
    ) -> np.ndarray:
        """Real-arithmetic form of :meth:`combo_tensor_hat`, transposed.

        Complex ``(8 qd) x (8 md)`` per-frequency mixing runs through
        tiny ``zgemm`` calls that OpenBLAS executes at well under half
        its ``dgemm`` rate at these sizes.  Interleaving real and
        imaginary parts turns the same multiply into one real GEMM: a
        complex row vector viewed as float64 is ``[re0, im0, re1, ...]``,
        and right-multiplying it by this ``(nfreq, 2*8*md, 2*8*qd)``
        matrix — ``C[f, 2k, 2j] = C[f, 2k+1, 2j+1] = Re B[k, j]``,
        ``C[f, 2k, 2j+1] = -C[f, 2k+1, 2j] = Im B[k, j]`` with
        ``B = M[f].T`` — yields exactly the interleaved view of the
        complex product.  Same flops, ~2x the throughput, and the
        operands are free ``.view(float64)`` reinterpretations.
        """
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(x) for x in po))
        C = self._combos_real.get(key)
        if C is None:
            B = self.combo_tensor_hat(key_level, key[1]).transpose(0, 2, 1)
            C = np.empty((B.shape[0], 2 * B.shape[1], 2 * B.shape[2]))
            C[:, 0::2, 0::2] = B.real
            C[:, 1::2, 1::2] = B.real
            C[:, 0::2, 1::2] = B.imag
            C[:, 1::2, 0::2] = -B.imag
            self._combos_real[key] = C
        if h is None or level == key_level:
            return C
        return C * (2.0 ** (key_level - level)) ** h

    # -- surface transforms ---------------------------------------------------

    def forward_rows(self, ue_rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Forward transforms of many boxes' upward equivalent densities.

        ``ue_rows`` is ``(n, n_surf * source_dof)`` flat point-major
        densities; ``out`` is a contiguous complex array
        ``(n, source_dof, nfreq)`` that receives the transforms (the
        GEMM-DFT of each box's surface-scattered grid).  Returns ``out``.
        """
        md = self.kernel.source_dof
        n = ue_rows.shape[0]
        F_re, F_im, _, _ = self._dft_operators()
        vals = ue_rows.reshape(n, -1, md)
        A = np.ascontiguousarray(vals.transpose(0, 2, 1)).reshape(-1, F_re.shape[0])
        flat = out.reshape(n * md, -1)
        np.matmul(A, F_re, out=flat.real)
        np.matmul(A, F_im, out=flat.imag)
        return out

    def density_hat(self, ue: np.ndarray) -> np.ndarray:
        """Forward transform of one box's upward equivalent density.

        ``ue`` is the flat point-major density ``(n_surf * source_dof,)``;
        returns ``(source_dof, nfreq)`` complex.
        """
        md = self.kernel.source_dof
        nfreq = self.m * self.m * (self.m // 2 + 1)
        out = np.empty((1, md, nfreq), dtype=np.complex128)
        return self.forward_rows(ue[None, :], out)[0]

    def accumulate(
        self,
        acc: np.ndarray,
        tensor_hat: np.ndarray,
        phi_hat: np.ndarray,
    ) -> None:
        """``acc += tensor_hat applied to phi_hat`` in Fourier space.

        ``acc`` has shape ``(target_dof, nfreq)``; ``tensor_hat`` is the
        grid-shaped ``(target_dof, source_dof, m, m, m//2+1)`` kernel
        transform.
        """
        qd, md = tensor_hat.shape[0], tensor_hat.shape[1]
        th = tensor_hat.reshape(qd, md, -1)
        acc += np.einsum("qmf,mf->qf", th, phi_hat)

    def check_potential(self, acc: np.ndarray) -> np.ndarray:
        """Inverse transform and surface-node gather for one box.

        ``acc`` is ``(target_dof, nfreq)``; returns the flat point-major
        downward check potential ``(n_surf * target_dof,)``.
        """
        return self.inverse_rows(acc[None])[0]

    # -- batched variants (the planned evaluator's per-level operations) -----

    def inverse_rows(self, acc: np.ndarray) -> np.ndarray:
        """Inverse transforms and surface gathers for a stack of boxes.

        ``acc`` is ``(n, target_dof, nfreq)`` complex; returns
        ``(n, n_surf * target_dof)`` flat point-major check potentials.
        """
        n, qd = acc.shape[0], acc.shape[1]
        _, _, G_re, G_im = self._dft_operators()
        flat = acc.reshape(n * qd, -1)
        pm = np.matmul(np.ascontiguousarray(flat.real), G_re)
        pm -= np.matmul(np.ascontiguousarray(flat.imag), G_im)
        return pm.reshape(n, qd, -1).transpose(0, 2, 1).reshape(n, -1)

    def forward_rows_t(self, ue_rows: np.ndarray, out_t: np.ndarray) -> None:
        """Forward transforms into a frequency-leading stack.

        ``ue_rows`` is ``(n, n_surf * source_dof)`` flat point-major
        densities; ``out_t`` is a ``(nfreq, n, source_dof)`` complex view
        (its last two axes must be memory-contiguous — e.g. one RHS slab
        of the blocked Hadamard's ``(nfreq, nrhs, n, source_dof)``
        stack).  Mathematically identical to :meth:`forward_rows` up to
        GEMM rounding; its output feeds :meth:`hadamard_blocked` without
        any transpose pass.
        """
        md = self.kernel.source_dof
        n = ue_rows.shape[0]
        F_re_t, F_im_t, _, _ = self._dft_operators_t()
        vals = ue_rows.reshape(n, -1, md)
        # (n_surf, n * source_dof) surface-major stack of the densities
        a_t = np.ascontiguousarray(vals.transpose(1, 0, 2)).reshape(
            F_re_t.shape[1], -1
        )
        flat = out_t.reshape(out_t.shape[0], n * md)
        np.matmul(F_re_t, a_t, out=flat.real)
        np.matmul(F_im_t, a_t, out=flat.imag)

    def inverse_rows_t(self, acc_t: np.ndarray) -> np.ndarray:
        """Inverse transforms of a frequency-leading accumulator stack.

        ``acc_t`` is ``(nfreq, n, target_dof)`` complex (any leading-axis
        stride, e.g. one RHS slab of the blocked Hadamard accumulator);
        returns ``(n, n_surf * target_dof)`` flat point-major check
        potentials, matching :meth:`inverse_rows` up to GEMM rounding.
        """
        nfreq, n, qd = acc_t.shape
        _, _, G_re_t, G_im_t = self._dft_operators_t()
        flat = acc_t.reshape(nfreq, n * qd)
        pm_t = np.matmul(G_re_t, np.ascontiguousarray(flat.real))
        pm_t -= np.matmul(G_im_t, np.ascontiguousarray(flat.imag))
        return pm_t.reshape(-1, n, qd).transpose(1, 0, 2).reshape(n, -1)

    def accumulate_many(
        self,
        acc: np.ndarray,
        tensor_hat: np.ndarray,
        phi_hat_rows: np.ndarray,
        trg_pos: np.ndarray,
    ) -> None:
        """Apply one translation class to a stack of source transforms.

        All pairs of a class share ``tensor_hat`` (grid-shaped); the
        ``trg_pos`` rows of ``acc`` (shape ``(ntrg, target_dof, nfreq)``)
        receive the products of the ``(n, source_dof, nfreq)`` transform
        rows.  Within a class every target occurs at most once, so plain
        fancy-indexed ``+=`` accumulation is exact.
        """
        qd, md = tensor_hat.shape[0], tensor_hat.shape[1]
        th = tensor_hat.reshape(qd, md, -1)
        acc[trg_pos] += np.einsum("qmf,nmf->nqf", th, phi_hat_rows)

    def hadamard_blocked(
        self,
        level: int,
        po_groups: list,
        phi_ext: np.ndarray,
        acc_ext: np.ndarray,
        pool: BufferPool,
    ) -> None:
        """Parent-pair-blocked Hadamard stage, frequency-leading.

        The class-major stage streams ~5 full-spectrum passes per box
        pair; here each gathered parent-pair slab (8 source + 8 target
        child rows) covers up to 64 pairs through per-frequency batched
        real-form mixing GEMMs (:meth:`combo_tensor_real`), cutting DRAM
        traffic by an order of magnitude.  Both spectra are *frequency-leading* per RHS:
        ``phi_ext`` is ``(nrhs, nfreq, n + 1, source_dof)`` and
        ``acc_ext`` is ``(nrhs, nfreq, n + 1, target_dof)`` (the last
        box row of each is the plan's sentinel — zero source / discarded
        target).  In that layout a pair chunk's matmul operand is one
        trailing-axis fancy gather — frequency rows are contiguous, so
        the gather needs no transpose pass and stays cache-resident —
        and the products drain through a single flat-index
        ``np.add.at`` scatter per chunk, one buffered pass instead of
        fancy ``+=``'s gather/add/write-back triple.  ``acc_ext`` must
        arrive zeroed; it is accumulated in place.

        Right-hand sides run the innermost loop with exactly the
        single-RHS gather/matmul/scatter shapes, so column ``r`` of a
        block apply is *bit-identical* to the single-RHS apply of
        column ``r``; the flat index vectors, built once per chunk, are
        the only work shared across RHS.  Within a parent-offset class
        every target row is hit at most once, so accumulation order per
        element is independent of the chunking.
        """
        nrhs, nfreq, nbp, md = phi_ext.shape
        nbt, qd = acc_ext.shape[2], acc_ext.shape[3]
        phi_ext[:, :, -1] = 0.0
        phif = phi_ext.reshape(nrhs, nfreq * nbp * md)
        accf = acc_ext.reshape(nrhs, nfreq * nbt * qd)
        dofs_m = np.arange(md, dtype=np.int64)
        dofs_q = np.arange(qd, dtype=np.int64)
        groups = []
        for po, src_rows, trg_rows in po_groups:
            # flat spectrum columns of the pair chunks' child rows
            srcc = ((src_rows * md)[:, :, None] + dofs_m).reshape(
                src_rows.shape[0], -1
            )
            trgc = ((trg_rows * qd)[:, :, None] + dofs_q).reshape(
                trg_rows.shape[0], -1
            )
            groups.append((srcc, trgc, self.combo_tensor_real(level, po)))
        # Frequency blocks outermost: one (fb, nrhs * boxes) slab of each
        # spectrum stays cache-resident across every group's gathers and
        # scatters, instead of re-streaming both full spectra per group.
        for f0 in range(0, nfreq, HADAMARD_FREQ_BLOCK):
            f1 = min(f0 + HADAMARD_FREQ_BLOCK, nfreq)
            fb = f1 - f0
            frange = np.arange(f0, f1, dtype=np.int64)
            foff_s = (frange * (nbp * md))[:, None]
            foff_t = (frange * (nbt * qd))[:, None]
            for srcc, trgc, C in groups:
                cf = C[f0:f1]
                npp = srcc.shape[0]
                for c0 in range(0, npp, HADAMARD_CHUNK):
                    c1 = min(c0 + HADAMARD_CHUNK, npp)
                    nc = c1 - c0
                    # flat (frequency, column) gather / scatter indices,
                    # built once per chunk and shared by every RHS
                    ling = foff_s + srcc[c0:c1].reshape(-1)
                    lin = (foff_t + trgc[c0:c1].reshape(-1)).reshape(-1)
                    r = pool.empty("v_r", (fb, nc, 8 * qd), np.complex128)
                    rv = r.view(np.float64)
                    for rh in range(nrhs):
                        gt = phif[rh][ling].reshape(fb, nc, 8 * md)
                        np.matmul(gt.view(np.float64), cf, out=rv)
                        np.add.at(accf[rh], lin, r.reshape(-1))

    # -- flop accounting -------------------------------------------------------

    def flops_per_pair(self) -> float:
        """Real flops of one Hadamard multiply-accumulate (per box pair)."""
        nfreq = self.m * self.m * (self.m // 2 + 1)
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        return 8.0 * qd * md * nfreq

    def flops_per_fft(self, dof: int = 1) -> float:
        """Real flops of one forward or inverse surface GEMM-DFT.

        Two ``(dof, n_surf) x (n_surf, nfreq)`` real products (the real
        and imaginary DFT parts).
        """
        nfreq = self.m * self.m * (self.m // 2 + 1)
        return 4.0 * nfreq * self.cache.n_surf * dof
