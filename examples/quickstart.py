"""Quickstart: evaluate particle interactions with the kernel-independent FMM.

The paper's headline property on display: the SAME code path handles the
Laplace, modified Laplace (screened Coulomb), Stokes and Navier kernels —
only kernel evaluations are needed, no analytic expansions.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    KIFMM,
    FMMOptions,
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
    direct_evaluate,
)
from repro.kernels.direct import relative_error


def main() -> None:
    rng = np.random.default_rng(7)
    n = 20_000
    points = rng.uniform(-1.0, 1.0, size=(n, 3))

    print(f"N = {n} particles, uniform in [-1, 1]^3")
    print(f"{'kernel':>18s} {'rel. error':>12s} {'FMM (s)':>9s} "
          f"{'direct est. (s)':>16s}")

    for kernel in (
        LaplaceKernel(),
        ModifiedLaplaceKernel(lam=1.0),
        StokesKernel(mu=1.0),
        NavierKernel(mu=1.0, nu=0.3),
    ):
        density = rng.random((n, kernel.source_dof))

        # setup once (tree, interaction lists, translation operators) ...
        fmm = KIFMM(kernel, FMMOptions(p=6, max_points=60))
        fmm.setup(points)

        # ... then evaluate; applications re-apply many times per geometry
        t0 = time.perf_counter()
        potential = fmm.apply(density)
        t_fmm = time.perf_counter() - t0

        # verify against O(N^2) direct summation on a target subsample
        sample = rng.choice(n, size=300, replace=False)
        t0 = time.perf_counter()
        exact = direct_evaluate(kernel, points[sample], points, density)
        t_sample = time.perf_counter() - t0
        err = relative_error(potential[sample], exact)
        t_direct_est = t_sample * n / len(sample)

        print(f"{kernel.name:>18s} {err:12.2e} {t_fmm:9.2f} "
              f"{t_direct_est:16.1f}")

    print("\nThe FMM is linear in N; direct summation is quadratic.")


if __name__ == "__main__":
    main()
