"""Static certification of the parallel message schedule.

Five checks run over the :class:`~repro.analysis.commir.CommIR` —
no apply (and no SimComm run) is executed, yet together they certify
the properties an execution at that rank count would exhibit:

``matching``
    Exact endpoint conservation per ``(src, dst, tag)`` channel: the
    number of sends equals the number of posted receives equals the
    number of completed receives.  An unmatched send is a leaked
    mailbox; a completion without a send is a phantom receive (a hang
    at runtime); a post without a completion is a leaked request.
``tags``
    Tag-space discipline: every tag must be a structured tuple minted
    by the :func:`~repro.parallel.simmpi.mk_tag` registry, its family
    must be the one the op's protocol phase owns, and no channel may be
    shared by two phases — the static guarantee that concurrently
    posted receives of different phases can never steal each other's
    messages.
``deadlock``
    Deadlock-freedom of the wait graph: nodes are the per-rank ops in
    program order; edges are program order (an op runs only after its
    predecessor) plus completion -> matching send (FIFO pairing per
    channel, covering the segmented ``tree_reduce``/``tree_bcast``
    parent-child edges, whose blocking receives the IR expands to
    post+complete pairs).  A cycle is a schedule that cannot make
    progress under *any* interleaving.
``conservation``
    Payload conservation of the tree scheme against the flat scheme:
    interpreting the message edges per exchanged box, every
    contributor's piece must reach the owner and the owner's combined
    data must reach every user — and the delivered sets must be
    identical under both schemes.  Since both schemes concatenate
    pieces in the same tree-position order, set equality here is
    multiset equality of the delivered payload rows.  Boxes already
    reported by ``matching`` are skipped (an unmatched schedule has no
    well-defined payload flow), keeping each seeded defect attributable
    to exactly one check.
``conformance``
    Every *dynamic* :class:`~repro.analysis.trace.CommTrace` of the
    same configuration must be a linearization of the IR: per rank, the
    traced protocol events (sends, receive posts, receive completions
    of the :data:`~repro.analysis.commir.PROTOCOL_FAMILIES` tag
    families) must equal the rank's static op sequence exactly.  The
    per-rank sequence is deterministic — rank code is sequential and
    waits requests in posted order — so equality, not subsequence
    matching, is the correct test.  Requires in-memory traces (JSONL
    round-trips stringify tags).

There is no waiver mechanism: a finding fails certification.  The
``seed_*`` functions plant one defect each (a dropped relay forward, a
gather message retagged into a concurrent phase's family, a leaf's
gather send reordered after its scatter wait) and
:func:`run_selftests` asserts each is caught by *exactly* the intended
check.  CLI: ``python -m repro commir``.
"""

from __future__ import annotations

import copy
from collections import defaultdict, deque
from dataclasses import dataclass

from repro.analysis.commir import (
    PROTOCOL_FAMILIES,
    CommIR,
    CommOp,
    gc_paused,
)
from repro.analysis.trace import CommTrace
from repro.parallel.simmpi import TAG_FAMILIES, mk_tag

CHECKS = ("matching", "tags", "deadlock", "conservation", "conformance")


@dataclass(frozen=True)
class Finding:
    """One certification failure, pinned to a check and a location."""

    check: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.check}: {self.where}: {self.message}"


@dataclass
class StaticCommReport:
    """The result of certifying one communication IR."""

    name: str
    findings: list[Finding]
    counts: dict[str, int]
    nops: int = 0
    nmessages: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.name}: certified ({self.nmessages} messages / "
                f"{self.nops} ops, {len(self.counts)} checks clean)"
            )
        parts = ", ".join(
            f"{c}={n}" for c, n in sorted(self.counts.items()) if n
        )
        return f"{self.name}: FAILED ({parts})"


def _channel(op: CommOp, rank: int) -> tuple[int, int, tuple]:
    """The ``(src, dst, tag)`` channel of a rank's op."""
    if op.kind == "send":
        return (rank, op.peer, op.tag)
    return (op.peer, rank, op.tag)


class IRIndex:
    """Single-pass derived views of one IR, shared by all checks.

    An IR at P=4096 holds millions of ops; each full program walk costs
    seconds in pure Python, so the per-channel op counts and the
    per-box message-edge lists are built in one pass and reused — by
    every check of the IR itself and again when the IR serves as the
    cross-scheme ``reference``.  Build with :func:`build_index`; pass
    to :func:`run_checks` when certifying both schemes of one
    configuration (each IR is indexed once instead of up to six walks).
    """

    __slots__ = (
        "sends", "posts", "completes", "gather_edges", "scatter_edges",
        "_flows", "_bad",
    )

    def __init__(self, ir: CommIR) -> None:
        self.sends: dict[tuple, int] = {}
        self.posts: dict[tuple, int] = {}
        self.completes: dict[tuple, int] = {}
        self.gather_edges: dict[tuple, list] = defaultdict(list)
        self.scatter_edges: dict[tuple, list] = defaultdict(list)
        self._flows: dict | None = None
        self._bad: set[tuple] | None = None
        for rank, prog in enumerate(ir.programs):
            for op in prog:
                if op.kind == "send":
                    chan = (rank, op.peer, op.tag)
                    self.sends[chan] = self.sends.get(chan, 0) + 1
                    group = op.group
                    if group.endswith("g") or group == "vsp":
                        kind = group[:-1] if group.endswith("g") else "vsp"
                        self.scatter_edges[(kind, op.ids)].append(
                            (rank, op.peer)
                        )
                    else:
                        self.gather_edges[(group, op.ids)].append(
                            (rank, op.peer)
                        )
                else:
                    chan = (op.peer, rank, op.tag)
                    d = (self.posts if op.kind == "post"
                         else self.completes)
                    d[chan] = d.get(chan, 0) + 1

    def bad_channels(self) -> set[tuple]:
        """Channels whose send/post/complete counts disagree (cached —
        the key union alone costs seconds at P=4096)."""
        if self._bad is not None:
            return self._bad
        bad = set()
        posts_get = self.posts.get
        completes_get = self.completes.get
        for chan, ns in self.sends.items():
            if ns != posts_get(chan, 0) or ns != completes_get(chan, 0):
                bad.add(chan)
        sends = self.sends
        for chan in self.posts:
            if chan not in sends:
                bad.add(chan)
        for chan in self.completes:
            if chan not in sends and chan not in self.posts:
                bad.add(chan)
        self._bad = bad
        return bad


def build_index(ir: CommIR) -> IRIndex:
    """Index an IR once for repeated certification (see IRIndex)."""
    with gc_paused():
        return IRIndex(ir)


def _mismatched_boxes(
    ir: CommIR, index: IRIndex | None = None
) -> set[tuple[str, tuple]]:
    """The ``(exchange kind, ids)`` groups with a matching defect —
    the boxes the conservation interpretation must skip."""
    index = index or IRIndex(ir)
    bad_chans = index.bad_channels()
    bad: set[tuple[str, tuple]] = set()
    if not bad_chans:
        return bad
    for rank, prog in enumerate(ir.programs):
        for op in prog:
            if _channel(op, rank) in bad_chans:
                kind = op.group[:-1] if op.group.endswith("g") else op.group
                bad.add((kind, op.ids))
    return bad


def check_matching(
    ir: CommIR, index: IRIndex | None = None
) -> list[Finding]:
    """Exact send/post/complete balance on every channel."""
    index = index or IRIndex(ir)
    sends, posts, completes = index.sends, index.posts, index.completes
    findings: list[Finding] = []
    for chan in index.bad_channels():
        ns = sends.get(chan, 0)
        np_ = posts.get(chan, 0)
        nc = completes.get(chan, 0)
        src, dst, tag = chan
        where = f"{src}->{dst} tag={tag!r}"
        if ns > nc:
            findings.append(Finding(
                "matching", where,
                f"{ns - nc} message(s) sent but never received "
                f"(leaked mailbox)",
            ))
        elif nc > ns:
            findings.append(Finding(
                "matching", where,
                f"{nc} receive completion(s) for only {ns} send(s) "
                f"(phantom receive — a runtime hang)",
            ))
        if np_ != nc:
            findings.append(Finding(
                "matching", where,
                f"{np_} receive(s) posted but {nc} completed "
                f"(leaked request)",
            ))
    findings.sort(key=lambda f: f.where)
    return findings


def check_tags(ir: CommIR) -> list[Finding]:
    """Registry discipline and cross-phase channel disjointness.

    A disciplined op's tag is ``(op.group, *ids)``, so the group a
    channel serves is determined by the tag itself — two phases can
    share a channel only if some op carries a tag of the *other*
    phase's family, which the per-op discipline check reports.  Hence
    one linear pass with a constant-time fast path (an IR holds
    millions of ops but only a few thousand distinct tags; each
    distinct tag is registry-validated once) covers both properties.
    """
    findings: list[Finding] = []
    valid_tags: set[tuple] = set()
    bad_tags: dict[tuple, str] = {}
    shared: dict[tuple[int, int, tuple], set[str]] = {}
    for rank, prog in enumerate(ir.programs):
        for i, op in enumerate(prog):
            tag = op.tag
            if tag in valid_tags:
                if tag[0] == op.group:
                    continue
            else:
                msg = bad_tags.get(tag)
                if msg is None and tag not in bad_tags:
                    if not (isinstance(tag, tuple) and tag and
                            isinstance(tag[0], str)
                            and tag[0] in TAG_FAMILIES):
                        msg = (
                            f"tag {tag!r} is not a registered structured "
                            f"tag (must be minted via mk_tag)"
                        )
                    else:
                        try:
                            mk_tag(tag[0], *tag[1:])
                        except (KeyError, ValueError) as exc:
                            msg = f"malformed tag {tag!r}: {exc}"
                    if msg is None:
                        valid_tags.add(tag)
                    else:
                        bad_tags[tag] = msg
                if msg is not None:
                    findings.append(Finding(
                        "tags",
                        f"rank {rank} op {i} ({op.kind} peer {op.peer})",
                        msg,
                    ))
                    continue
                if tag[0] == op.group:
                    continue
            findings.append(Finding(
                "tags",
                f"rank {rank} op {i} ({op.kind} peer {op.peer})",
                f"op of the {op.group!r} phase carries a "
                f"{tag[0]!r}-family tag {tag!r} — tag reuse across "
                f"concurrent phases",
            ))
            shared.setdefault(_channel(op, rank), set()).update(
                (op.group, tag[0])
            )
    for chan, groups in sorted(shared.items(), key=repr):
        src, dst, tag = chan
        findings.append(Finding(
            "tags", f"{src}->{dst} tag={tag!r}",
            f"channel claimed by phases {sorted(groups)} — messages "
            f"of concurrent phases can steal each other",
        ))
    return findings


def check_deadlock(
    ir: CommIR, index: IRIndex | None = None
) -> list[Finding]:
    """Deadlock-freedom by greedy schedule execution.

    The wait graph (program-order edges plus completion -> FIFO-matched
    send) is monotone: executing an op never disables another, so the
    greedy maximal execution retires every op iff the graph is acyclic.
    We run exactly that execution — each rank advances until its next
    completion's matching send has not yet executed, and a send wakes
    the (single, since a channel has one destination) rank blocked on
    its channel.  O(ops) total, which is what admits millions of ops at
    P=4096.  A completion whose FIFO ordinal exceeds the channel's
    total send count never blocks — an unmatched completion is
    ``matching``'s defect, not a wait edge.
    """
    sends_total = (index or IRIndex(ir)).sends
    nranks = ir.nranks
    pc = [0] * nranks
    sent: dict[tuple, int] = {}
    recvd: dict[tuple, int] = {}
    waiter: dict[tuple, int] = {}
    ready = deque(range(nranks))
    queued = [True] * nranks
    sent_get = sent.get
    recvd_get = recvd.get
    total_get = sends_total.get
    waiter_pop = waiter.pop
    append = ready.append
    while ready:
        r = ready.popleft()
        queued[r] = False
        prog = ir.programs[r]
        n = len(prog)
        i = pc[r]
        while i < n:
            op = prog[i]
            kind = op.kind
            if kind == "send":
                chan = (r, op.peer, op.tag)
                sent[chan] = sent_get(chan, 0) + 1
                w = waiter_pop(chan, None)
                if w is not None and not queued[w]:
                    queued[w] = True
                    append(w)
            elif kind == "complete":
                chan = (op.peer, r, op.tag)
                k = recvd_get(chan, 0)
                if k < total_get(chan, 0) and sent_get(chan, 0) <= k:
                    waiter[chan] = r
                    break
                recvd[chan] = k + 1
            i += 1
        pc[r] = i
    blocked = {
        r for r in range(nranks) if pc[r] < len(ir.programs[r])
    }
    if not blocked:
        return []
    # Name one actual cycle: each blocked rank waits on a send of a
    # rank that is itself blocked (its remaining sends are behind its
    # own stalled completion), so following "waits on the sender of"
    # from any blocked rank must revisit a rank.
    def sender_of(r: int) -> int:
        return ir.programs[r][pc[r]].peer

    trail: list[int] = []
    on_trail: set[int] = set()
    r = next(iter(blocked))
    while r not in on_trail:
        trail.append(r)
        on_trail.add(r)
        r = sender_of(r)
    steps = []
    for u in trail[trail.index(r):] + [r]:
        op = ir.programs[u][pc[u]]
        steps.append(
            f"rank {u} waits recv from {op.peer} tag={op.tag!r}"
        )
    return [Finding(
        "deadlock",
        f"{len(blocked)} rank(s) stalled, "
        f"{sum(len(ir.programs[r]) - pc[r] for r in blocked)} op(s) "
        f"unreachable",
        "wait-for cycle: " + " <- ".join(steps),
    )]


def _payload_flow(
    ir: CommIR, index: IRIndex | None = None
) -> dict[tuple[str, tuple], tuple[frozenset, frozenset]]:
    """Per exchanged box: ``(reach, delivered)`` rank sets from the
    message edges — who can feed the owner through the gather graph,
    and whom the owner's combined data reaches through the scatter
    graph.  This is the payload interpretation of the IR: the delivered
    payload rows of a user are exactly the pieces of ``reach``."""
    index = index or IRIndex(ir)
    if index._flows is not None:
        return index._flows
    gather_edges = index.gather_edges
    scatter_edges = index.scatter_edges
    flows: dict[tuple[str, tuple], tuple[frozenset, frozenset]] = {}
    for kind, boxes in ir.roles.items():
        for ids, (owner, _contribs, _users) in boxes.items():
            fwd: dict[int, list[int]] = defaultdict(list)
            rev: dict[int, list[int]] = defaultdict(list)
            for s, d in gather_edges.get((kind, ids), ()):
                rev[d].append(s)
            for s, d in scatter_edges.get((kind, ids), ()):
                fwd[s].append(d)
            reach = {owner}
            stack = [owner]
            while stack:
                for s in rev.get(stack.pop(), ()):
                    if s not in reach:
                        reach.add(s)
                        stack.append(s)
            delivered = {owner}
            stack = [owner]
            while stack:
                for d in fwd.get(stack.pop(), ()):
                    if d not in delivered:
                        delivered.add(d)
                        stack.append(d)
            flows[(kind, ids)] = (frozenset(reach), frozenset(delivered))
    index._flows = flows
    return flows


def check_conservation(
    ir: CommIR,
    reference: CommIR | None = None,
    skip: set[tuple[str, tuple]] | None = None,
    index: IRIndex | None = None,
    reference_index: IRIndex | None = None,
) -> list[Finding]:
    """Endpoint payload conservation, optionally against the other
    scheme's IR (``reference``).  ``skip`` holds the boxes ``matching``
    already reported."""
    skip = skip or set()
    findings: list[Finding] = []
    flows = _payload_flow(ir, index)
    if reference is not None:
        reference_index = reference_index or IRIndex(reference)
        ref_flows = _payload_flow(reference, reference_index)
        ref_skip = (
            _mismatched_boxes(reference, reference_index)
            if reference_index.bad_channels() else set()
        )
    else:
        ref_flows = None
        ref_skip = set()
    for kind, boxes in ir.roles.items():
        for ids, (owner, contribs, users) in sorted(
            boxes.items(), key=repr
        ):
            if (kind, ids) in skip:
                continue
            where = f"{kind} box {ids}"
            reach, delivered = flows[(kind, ids)]
            lost = contribs - reach
            if lost:
                findings.append(Finding(
                    "conservation", where,
                    f"contributor piece(s) of rank(s) {sorted(lost)} "
                    f"never reach owner {owner}",
                ))
            starved = users - delivered
            if starved:
                findings.append(Finding(
                    "conservation", where,
                    f"combined data never delivered to user rank(s) "
                    f"{sorted(starved)}",
                ))
            if ref_flows is None or (kind, ids) in ref_skip:
                continue
            ref = ref_flows.get((kind, ids))
            if ref is None:
                findings.append(Finding(
                    "conservation", where,
                    f"box exchanged under {ir.meta.get('scheme')!r} but "
                    f"absent from the "
                    f"{reference.meta.get('scheme')!r} schedule",
                ))
            elif (reach & contribs, delivered & users) != (
                ref[0] & contribs, ref[1] & users
            ):
                findings.append(Finding(
                    "conservation", where,
                    f"schemes deliver different payload row multisets: "
                    f"{ir.meta.get('scheme')} gathers {sorted(reach & contribs)} "
                    f"/ delivers to {sorted(delivered & users)}, "
                    f"{reference.meta.get('scheme')} gathers "
                    f"{sorted(ref[0] & contribs)} / delivers to "
                    f"{sorted(ref[1] & users)}",
                ))
    return findings


@dataclass(frozen=True)
class ConservationSummary:
    """Everything the cross-scheme conservation comparison needs from
    one scheme's IR, in O(boxes) memory.

    A P=4096 IR is millions of ops (gigabytes live); certifying both
    schemes with each as the other's ``reference`` keeps two of them
    alive at once, and the resulting allocator churn dominates wall
    time.  Summarize each scheme right after its own certification,
    free the IR, and compare the summaries instead — the payload flows,
    the matching-dirty boxes to skip, and the box roles are all the
    comparison reads.
    """

    scheme: str
    flows: dict[tuple[str, tuple], tuple[frozenset, frozenset]]
    skip: frozenset
    roles: dict


def conservation_summary(
    ir: CommIR, index: IRIndex | None = None
) -> ConservationSummary:
    """Condense one IR to its cross-scheme comparison surface."""
    index = index or IRIndex(ir)
    skip = (
        _mismatched_boxes(ir, index) if index.bad_channels() else set()
    )
    return ConservationSummary(
        scheme=str(ir.meta.get("scheme")),
        flows=_payload_flow(ir, index),
        skip=frozenset(skip),
        roles=ir.roles,
    )


def cross_scheme_conservation(
    a: ConservationSummary, b: ConservationSummary
) -> list[Finding]:
    """Symmetric payload comparison of two schemes from summaries.

    Same findings as the ``reference`` path of
    :func:`check_conservation`, both directions at once, without either
    IR staying alive.  Boxes either scheme's ``matching`` already
    reported are skipped.
    """
    findings: list[Finding] = []
    for kind, boxes in a.roles.items():
        for ids, (owner, contribs, users) in sorted(
            boxes.items(), key=repr
        ):
            key = (kind, ids)
            if key in a.skip or key in b.skip:
                continue
            where = f"{kind} box {ids}"
            fa = a.flows.get(key)
            fb = b.flows.get(key)
            if fa is None or fb is None:
                absent = a.scheme if fa is None else b.scheme
                findings.append(Finding(
                    "conservation", where,
                    f"box exchanged under one scheme but absent from "
                    f"the {absent!r} schedule",
                ))
                continue
            if (fa[0] & contribs, fa[1] & users) != (
                fb[0] & contribs, fb[1] & users
            ):
                findings.append(Finding(
                    "conservation", where,
                    f"schemes deliver different payload row multisets: "
                    f"{a.scheme} gathers {sorted(fa[0] & contribs)} "
                    f"/ delivers to {sorted(fa[1] & users)}, "
                    f"{b.scheme} gathers {sorted(fb[0] & contribs)} "
                    f"/ delivers to {sorted(fb[1] & users)}",
                ))
    for key in sorted(set(b.flows) - set(a.flows), key=repr):
        if key in a.skip or key in b.skip:
            continue
        findings.append(Finding(
            "conservation", f"{key[0]} box {key[1]}",
            f"box exchanged under one scheme but absent from "
            f"the {a.scheme!r} schedule",
        ))
    return findings


_TRACE_KIND = {"send": "send", "recv-post": "post", "recv": "complete"}


def trace_protocol_events(
    trace: CommTrace, rank: int
) -> list[tuple[str, int, tuple]]:
    """One rank's dynamic protocol events as ``(kind, peer, tag)`` —
    the shape the IR's ops project to."""
    out = []
    for ev in trace.events_by_rank[rank]:
        kind = _TRACE_KIND.get(ev.kind)
        if kind is None:
            continue
        tag = ev.tag
        if not (isinstance(tag, tuple) and tag
                and tag[0] in PROTOCOL_FAMILIES):
            continue
        out.append((kind, int(ev.peer), tag))
    return out


def check_conformance(ir: CommIR, trace: CommTrace) -> list[Finding]:
    """Every rank's dynamic protocol event sequence must equal its
    static op sequence — the trace is a linearization of the IR."""
    findings: list[Finding] = []
    if trace.nranks != ir.nranks:
        return [Finding(
            "conformance", "trace",
            f"trace ran {trace.nranks} ranks, IR describes {ir.nranks}",
        )]
    for rank in range(ir.nranks):
        expected = [
            (op.kind, op.peer, op.tag) for op in ir.programs[rank]
        ]
        got = trace_protocol_events(trace, rank)
        if got == expected:
            continue
        n = min(len(expected), len(got))
        at = next(
            (i for i in range(n) if expected[i] != got[i]), n
        )
        exp = expected[at] if at < len(expected) else "(end of schedule)"
        act = got[at] if at < len(got) else "(end of trace)"
        findings.append(Finding(
            "conformance", f"rank {rank} event {at}",
            f"trace diverges from the static schedule: expected "
            f"{exp!r}, traced {act!r} "
            f"({len(got)} traced vs {len(expected)} scheduled events)",
        ))
    return findings


def run_checks(
    ir: CommIR,
    *,
    reference: CommIR | None = None,
    traces: tuple[CommTrace, ...] = (),
    name: str = "commir",
    index: IRIndex | None = None,
    reference_index: IRIndex | None = None,
) -> StaticCommReport:
    """All checks over one IR.  ``reference`` (the other scheme's IR of
    the same inputs) enables the cross-scheme conservation comparison;
    ``traces`` enables conformance.  When certifying both schemes of
    one configuration, :func:`build_index` each IR once and pass the
    indexes (swapped for the second call) — at P=4096 the redundant
    program walks dominate otherwise."""
    with gc_paused():
        index = index or IRIndex(ir)
        findings: list[Finding] = []
        matching = check_matching(ir, index)
        findings += matching
        findings += check_tags(ir)
        findings += check_deadlock(ir, index)
        findings += check_conservation(
            ir, reference,
            skip=_mismatched_boxes(ir, index) if matching else set(),
            index=index, reference_index=reference_index,
        )
        for trace in traces:
            findings += check_conformance(ir, trace)
    counts = {c: 0 for c in CHECKS}
    for f in findings:
        counts[f.check] = counts.get(f.check, 0) + 1
    return StaticCommReport(
        name=name, findings=findings, counts=counts,
        nops=ir.nops(), nmessages=ir.nmessages(),
    )


# ---------------------------------------------------------------------------
# Seeded defects: each plants exactly one protocol bug; the self-test
# requires exactly the intended check to fire.
# ---------------------------------------------------------------------------


def seed_dropped_relay(ir: CommIR) -> CommIR:
    """Delete an interior gather node's forward send — the partial fold
    silently vanishes.  Caught by ``matching`` (the parent's posted
    receive never completes against a send); ``conservation`` skips the
    box precisely because matching owns it."""
    out = copy.deepcopy(ir)
    for prog in out.programs:
        for i, op in enumerate(prog):
            if op.kind == "send" and op.note == "relay":
                del prog[i]
                return out
    raise ValueError(
        "IR has no interior relay send to drop — needs the tree scheme "
        "with a box of >= 3 gather participants"
    )


def seed_reused_tag(ir: CommIR) -> CommIR:
    """Retag one ``pue`` gather message (send, post and completion
    together) into the concurrently posted ``phi`` family.  Endpoints
    still balance and no wait cycle appears — only the tag-space
    discipline is broken."""
    out = copy.deepcopy(ir)
    fresh = 1 + max(
        (ids[-1] for boxes in out.roles.values() for ids in boxes),
        default=0,
    )
    target = None
    for rank, prog in enumerate(out.programs):
        for op in prog:
            if op.kind == "send" and op.group == "pue":
                target = _channel(op, rank)
                break
        if target is not None:
            break
    if target is None:
        raise ValueError("IR exchanges no equivalent densities to retag")
    bad = mk_tag("phi", fresh)
    for rank, prog in enumerate(out.programs):
        for op in prog:
            if _channel(op, rank) == target:
                op.tag = bad
    return out


def seed_swapped_post_wait(ir: CommIR) -> CommIR:
    """Reorder a leaf contributor's gather send *after* its own scatter
    wait.  Every message still matches and every tag is disciplined,
    but the owner's scatter (transitively) waits on the very send the
    rank withholds until the scatter arrives — a wait cycle."""
    out = copy.deepcopy(ir)
    for rank, prog in enumerate(out.programs):
        for i, op in enumerate(prog):
            if not (op.kind == "send" and op.note == "inject"
                    and op.group in ("phi", "pue")):
                continue
            sfam = op.group + "g"
            j = next(
                (k for k in range(len(prog))
                 if prog[k].kind == "complete"
                 and prog[k].group == sfam and prog[k].ids == op.ids),
                None,
            )
            if j is None:
                continue
            moved = prog.pop(i)
            if j > i:
                j -= 1
            prog.insert(j + 1, moved)
            return out
    raise ValueError(
        "IR has no rank that both contributes to and uses a box — "
        "cannot seed the post/wait inversion"
    )


SEEDS = {
    "dropped-relay": (seed_dropped_relay, "matching"),
    "reused-tag": (seed_reused_tag, "tags"),
    "swapped-post-wait": (seed_swapped_post_wait, "deadlock"),
}


def run_selftests(
    ir: CommIR, reference: CommIR | None = None
) -> list[tuple[str, bool, str]]:
    """Plant each seeded defect and verify exactly its check catches it.

    Returns ``(seed name, passed, detail)`` rows.  A self-test passes
    only if the seeded IR produces findings, *every* finding belongs to
    the intended check, and the unseeded IR is clean — so a checker
    that flags everything (or nothing) fails its own certification.
    """
    results: list[tuple[str, bool, str]] = []
    base = run_checks(ir, reference=reference, name="selftest-base")
    if not base.ok:
        return [(
            "baseline", False,
            f"unseeded IR not clean: {base.findings[0]}",
        )]
    for seed_name, (seed, intended) in SEEDS.items():
        try:
            seeded = seed(ir)
        except ValueError as exc:
            results.append((
                seed_name, False, f"defect not plantable: {exc}"
            ))
            continue
        report = run_checks(
            seeded, reference=reference, name=f"seed:{seed_name}"
        )
        fired = {f.check for f in report.findings}
        if not report.findings:
            results.append((seed_name, False, "defect not detected"))
        elif fired != {intended}:
            results.append((
                seed_name, False,
                f"expected only {intended!r} to fire, got {sorted(fired)}",
            ))
        else:
            results.append((
                seed_name, True,
                f"caught by {intended} "
                f"({report.counts[intended]} finding(s))",
            ))
    return results


def traced_run(
    kernel,
    points,
    density,
    opts,
    nranks: int,
    *,
    schedule_seed: int = 0,
    overlap: bool = True,
    napplies: int = 1,
) -> CommTrace:
    """One traced parallel run for the conformance cross-check.

    Returns the in-memory trace (tags intact — a JSONL round-trip would
    stringify them and break matching against the IR).
    """
    from repro.parallel.pfmm import run_parallel_fmm

    trace = CommTrace()
    run_parallel_fmm(
        nranks, kernel, points, density, opts,
        trace=trace, schedule_seed=schedule_seed,
        napplies=napplies, overlap=overlap,
    )
    return trace
