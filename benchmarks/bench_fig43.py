"""Figure 4.3 — isogranular scalability charts.

Aggregate cycles per particle by phase and per-processor Mflops/s for
Laplace uniform, Stokes uniform and Stokes non-uniform at 200K particles
per processor — the chart form of Table 4.2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import corner_clusters, sphere_grid_points
from repro.kernels import LaplaceKernel, StokesKernel
from repro.perfmodel import TCS1, cycles_per_particle
from repro.perfmodel.experiments import isogranular_scaling
from repro.perfmodel.metrics import flop_rate_efficiency, mflops_per_processor
from repro.util.tables import format_table

GRAIN = 200_000
P_LIST = (1, 4, 16, 64, 256, 1024, 2048)

_CASES = {
    "laplace_uniform": (LaplaceKernel(), "spheres"),
    "stokes_uniform": (StokesKernel(), "spheres"),
    "stokes_nonuniform": (StokesKernel(), "corners"),
}


def _series(kernel, workload, cap):
    gen = (
        (lambda n: sphere_grid_points(n))
        if workload == "spheres"
        else (lambda n: corner_clusters(n, np.random.default_rng(43)))
    )
    reports = isogranular_scaling(
        kernel, gen, GRAIN, P_LIST, p=6, max_points=60, model_cap=cap
    )
    cycle_rows, rate_rows = [], []
    serial = reports[0]
    for r in reports:
        c = cycles_per_particle(r, TCS1)
        cycle_rows.append(
            (r.P, c["up"] / 1e3, c["comm"] / 1e3, c["down_u"] / 1e3,
             c["down_v"] / 1e3, c["down_w"] / 1e3, c["down_x"] / 1e3,
             c["eval"] / 1e3, c["total"] / 1e3)
        )
        rates = mflops_per_processor(r)
        rate_rows.append(
            (r.P, rates["avg"], rates["peak"], rates["max"], rates["min"],
             flop_rate_efficiency(serial, r))
        )
    return cycle_rows, rate_rows


@pytest.mark.parametrize("case", list(_CASES))
def test_fig43(benchmark, case, bench_scale):
    kernel, workload = _CASES[case]
    cycle_rows, rate_rows = benchmark.pedantic(
        _series, args=(kernel, workload, bench_scale["cap"]), rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ("P", "Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval",
         "Total"),
        cycle_rows,
        title=f"Figure 4.3 / {case}: aggregate Kcycles per particle by phase",
    ))
    print()
    print(format_table(
        ("P", "Avg MF/s", "Peak MF/s", "Max", "Min", "RateEff"),
        rate_rows,
        title=f"Figure 4.3 / {case}: per-processor rates",
    ))
    # isogranular shape: per-particle cycles roughly flat in P
    totals = {row[0]: row[-1] for row in cycle_rows}
    assert totals[2048] < 5.0 * totals[1]
    # flop-rate efficiency stays high (the paper reports ~80% for
    # Laplace at 2048, ~65% for the non-uniform Stokes case)
    eff = {row[0]: row[-1] for row in rate_rows}
    assert eff[2048] > 0.3
