"""Laplace single-layer kernel ``S(x, y) = 1/(4 pi r)`` (Appendix A)."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_FOUR_PI = 4.0 * np.pi


class LaplaceKernel(Kernel):
    """Fundamental solution of ``-Delta u = 0`` in 3D.

    Scalar, homogeneous of degree -1; the workhorse kernel for which
    classical analytic FMM exists and against which the paper benchmarks
    its kernel-independent scheme.
    """

    name = "laplace"
    source_dof = 1
    target_dof = 1
    homogeneity = -1.0
    # 3 subs + 3 mults + 2 adds (r^2), rsqrt, scale, multiply-accumulate
    flops_per_pair = 13

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        _, inv_r = self._displacements(targets, sources)
        return inv_r / _FOUR_PI

    def matrix_local(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """GEMM-based assembly ``r^2 = |x|^2 + |y|^2 - 2 x.y``.

        Roughly halves the memory traffic of :meth:`matrix` (no
        ``(nt, ns, 3)`` displacement tensor) and moves the dominant work
        into one BLAS call.  The subtraction cancels for close pairs, so
        entries with ``r^2`` below a small multiple of the coordinate
        scale — including coincident points, whose computed ``r^2`` is a
        rounding residual rather than an exact zero — are recomputed with
        the exact displacement formula; in a box-local frame only O(1e-3)
        of the entries need the repair.
        """
        t = np.asarray(targets, dtype=np.float64)
        s = np.asarray(sources, dtype=np.float64)
        if t.ndim != 2 or t.shape[1] != 3:
            raise ValueError(f"targets must be (nt, 3), got {t.shape}")
        if s.ndim != 2 or s.shape[1] != 3:
            raise ValueError(f"sources must be (ns, 3), got {s.shape}")
        t2 = np.einsum("id,id->i", t, t)
        s2 = np.einsum("id,id->i", s, s)
        r2 = t @ s.T
        r2 *= -2.0
        r2 += t2[:, None]
        r2 += s2[None, :]
        scale2 = (t2.max() if t2.size else 0.0) + (s2.max() if s2.size else 0.0)
        close = r2 <= 4e-3 * scale2
        if close.any():
            ti, si = np.nonzero(close)
            d = t[ti] - s[si]
            r2[ti, si] = np.einsum("id,id->i", d, d)
        with np.errstate(divide="ignore"):
            inv_r = np.where(r2 > 0.0, 1.0 / np.sqrt(r2), 0.0)
        inv_r /= _FOUR_PI
        return inv_r
