"""Ablation: 2:1-balanced vs unbalanced adaptive trees.

The paper's algorithm runs on unbalanced trees (the W/X lists absorb
arbitrary level jumps); 2:1 balancing is the classical alternative.
This bench measures the trade-off on a strongly non-uniform workload:
balanced trees carry more boxes (more upward/downward translation work)
but their adaptive lists are bounded.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.geometry import corner_clusters
from repro.kernels import LaplaceKernel
from repro.kernels.direct import relative_error
from repro.octree.balance import max_adjacent_level_jump
from repro.util.tables import format_table

N = 5000


def _run(balance: bool):
    rng = np.random.default_rng(50)
    pts = corner_clusters(N, rng, spread=0.04)
    phi = rng.standard_normal((N, 1))
    fmm = KIFMM(
        LaplaceKernel(), FMMOptions(p=6, max_points=40, balance=balance)
    ).setup(pts)
    t0 = time.perf_counter()
    u = fmm.apply(phi)
    dt = time.perf_counter() - t0
    stats = fmm.tree.statistics()
    counts = fmm.lists.counts()
    jump = max_adjacent_level_jump(fmm.tree)
    return u, dt, stats, counts, jump


def test_balance_ablation(benchmark):
    def run_both():
        return _run(False), _run(True)

    (u0, t0, s0, c0, j0), (u1, t1, s1, c1, j1) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        ("unbalanced", s0["nboxes"], j0, c0["U"], c0["V"], c0["W"], c0["X"], t0),
        ("balanced", s1["nboxes"], j1, c1["U"], c1["V"], c1["W"], c1["X"], t1),
    ]
    print()
    print(format_table(
        ("tree", "boxes", "max jump", "U", "V", "W", "X", "eval s"),
        rows,
        title=f"2:1 balance ablation (N={N}, corner-clustered, s=40)",
    ))
    # both compute the same answer
    assert relative_error(u1, u0) < 1e-5
    # balance bounds the level jump at the cost of more boxes
    assert j1 <= 1 < j0 or j0 <= 1
    assert s1["nboxes"] >= s0["nboxes"]
