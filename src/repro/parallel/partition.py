"""Morton-curve data partitioning (Section 3.1).

"We first gather all input surface patches on a single processor, and
assign to each patch a weight which in the simplest case is equal to the
number of particles in that patch.  Second, we partition the clusters
into groups with equal weights and assign each group to one processor.
To do this we use Morton curve partitioning.  Alternatively, we could use
Morton curve partitioning directly on the particles."

Both variants are provided: :func:`partition_patches` (the paper's
default, faster because it orders only patch centroids) and
:func:`partition_points` (the alternative).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.patches import SurfacePatch, partition_weights
from repro.octree.morton import encode_points
from repro.octree.tree import _root_cube


def morton_order_patches(patches: list[SurfacePatch]) -> np.ndarray:
    """Patch order along the Morton curve of their centroids."""
    if not patches:
        return np.empty(0, dtype=np.int64)
    centroids = np.array([p.centroid for p in patches])
    corner, side = _root_cube(centroids)
    keys = encode_points(centroids, corner, side)
    return np.argsort(keys, kind="stable")


def partition_patches(
    patches: list[SurfacePatch], nranks: int
) -> list[np.ndarray]:
    """Assign patches to ranks: Morton order + equal-weight contiguous split.

    Returns per-rank arrays of patch indices.  Every rank receives a
    contiguous run of the Morton-ordered patch sequence whose total weight
    is as close to ``sum(weights) / nranks`` as contiguity allows.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    order = morton_order_patches(patches)
    weights = np.array([patches[i].weight for i in order], dtype=np.float64)
    parts = partition_weights(weights, nranks)
    return [order[parts == r] for r in range(nranks)]


def partition_points(points: np.ndarray, nranks: int) -> list[np.ndarray]:
    """Morton-curve partitioning directly on particles.

    Returns per-rank arrays of *original point indices*; each rank gets a
    contiguous Morton-curve segment with an equal share of the points.
    """
    points = np.asarray(points, dtype=np.float64)
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if points.shape[0] == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(nranks)]
    corner, side = _root_cube(points)
    order = np.argsort(encode_points(points, corner, side), kind="stable")
    return [np.array(chunk, dtype=np.int64) for chunk in np.array_split(order, nranks)]


def points_for_ranks(
    patches: list[SurfacePatch], nranks: int
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-rank point arrays plus their global indices, from patches.

    Convenience used by the drivers: returns ``(points, indices)`` lists
    where ``indices[r]`` maps rank ``r``'s local points back to rows of
    the concatenated global point array (patch order).
    """
    assignment = partition_patches(patches, nranks)
    offsets = np.concatenate([[0], np.cumsum([p.points.shape[0] for p in patches])])
    pts, idx = [], []
    for r in range(nranks):
        if len(assignment[r]) == 0:
            pts.append(np.empty((0, 3)))
            idx.append(np.empty(0, dtype=np.int64))
            continue
        pts.append(np.vstack([patches[i].points for i in assignment[r]]))
        idx.append(
            np.concatenate(
                [np.arange(offsets[i], offsets[i + 1]) for i in assignment[r]]
            )
        )
    return pts, idx
