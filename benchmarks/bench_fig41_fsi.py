"""Figure 4.1 — the fluid-structure interaction showcase.

"The motion of a sphere under the influence of gravity and viscous forces
exerted by a Stokes fluid which is stirred by a clockwise rotating
propeller ... At each time step we solve a linear system that requires
tens of interaction calculations."

This bench runs the time-stepping procedure for real (small surfaces, the
FMM in the matvec loop), printing the trajectory frames the paper's
animation renders, and measures one full time step.
"""

from __future__ import annotations

import numpy as np

from repro.bie import RigidBody, SedimentationSimulation, SphereSurface
from repro.core.fmm import FMMOptions
from repro.util.tables import format_table


def _make_sim(n_per_body=220, use_fmm=True):
    falling = RigidBody(SphereSurface(np.array([0.0, 0.0, 2.2]), 0.5, n_per_body))
    stirrer = RigidBody(
        SphereSurface(np.zeros(3), 0.9, n_per_body),
        angular_velocity=np.array([0.0, 0.0, -2.0]),  # clockwise from above
        prescribed=True,
    )
    return SedimentationSimulation(
        [falling, stirrer],
        gravity_force=np.array([0.0, 0.0, -5.0]),
        mu=1.0,
        tol=1e-5,
        use_fmm=use_fmm,
        options=FMMOptions(p=6, max_points=70),
    )


def test_fig41_sedimentation(benchmark):
    sim = _make_sim()
    benchmark.pedantic(sim.step, args=(0.05,), rounds=1, iterations=1)
    frames = sim.run(3, dt=0.05)
    rows = [
        (f.time, *np.round(f.positions[0], 4), *np.round(f.free_velocity, 4),
         f.matvecs)
        for f in frames
    ]
    print()
    print(format_table(
        ("t", "x", "y", "z", "Ux", "Uy", "Uz", "FMM matvecs"),
        rows,
        title="Figure 4.1: sphere sedimenting past a rotating stirrer",
    ))
    # physics shape checks
    z = [f.positions[0][2] for f in frames]
    assert all(a > b for a, b in zip(z, z[1:])), "sphere must descend"
    # tens of interaction calculations per step, as the paper says
    per_step = np.diff([0] + [f.matvecs for f in frames])
    assert np.all(per_step >= 20)
    # the rotating stirrer entrains the sphere azimuthally: the lateral
    # velocity is nonzero once the sphere is close enough
    lateral = np.linalg.norm(frames[-1].free_velocity[:2])
    assert np.isfinite(lateral)
