"""Navier (linear elastostatics) single-layer kernel — Kelvin solution.

The paper's introduction names "simulations of linearly elastic materials"
and fracture mechanics among the applications the kernel-independent
method enables (refs [6], [19], [26]).  The Kelvin fundamental solution of
``mu Delta u + (lambda + mu) grad div u = 0`` is

    ``U_ij(x, y) = 1/(16 pi mu (1 - nu)) [ (3 - 4 nu) delta_ij / r
                                           + r_i r_j / r^3 ]``

with Poisson ratio ``nu`` and shear modulus ``mu``.  Included as the
"extension" kernel demonstrating that no FMM code changes are needed for a
new elliptic system — only this file.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_SIXTEEN_PI = 16.0 * np.pi


class NavierKernel(Kernel):
    """Kelvin solution of 3D linear elastostatics.

    Parameters
    ----------
    mu:
        Shear modulus, ``mu > 0``.
    nu:
        Poisson ratio, ``nu < 0.5`` (incompressible limit excluded; use
        :class:`~repro.kernels.stokes.StokesKernel` for that).
    """

    name = "navier"
    source_dof = 3
    target_dof = 3
    homogeneity = -1.0
    flops_per_pair = 50

    def __init__(self, mu: float = 1.0, nu: float = 0.3) -> None:
        if mu <= 0:
            raise ValueError(f"shear modulus must be positive, got {mu}")
        if not -1.0 < nu < 0.5:
            raise ValueError(f"Poisson ratio must be in (-1, 0.5), got {nu}")
        self.mu = float(mu)
        self.nu = float(nu)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        inv_r3 = inv_r**3
        blocks = np.einsum("tsi,tsj->tsij", diff, diff) * inv_r3[:, :, None, None]
        idx = np.arange(3)
        blocks[:, :, idx, idx] += (3.0 - 4.0 * self.nu) * inv_r[:, :, None]
        blocks /= _SIXTEEN_PI * self.mu * (1.0 - self.nu)
        return blocks.transpose(0, 2, 1, 3).reshape(nt * 3, ns * 3)

    def __repr__(self) -> str:
        return f"NavierKernel(mu={self.mu}, nu={self.nu})"
