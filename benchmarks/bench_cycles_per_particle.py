"""Section 4 Discussion (1): CPU cycles per particle per kernel.

"The code uses about 160 thousand CPU cycles per particle for five digits
of accuracy for the Laplacian kernel and about 200 thousand and 800
thousand cycles for the modified Laplacian and Stokes respectively."

We compute the model's single-processor cycles per particle for all
three kernels at the paper's operating point (p=6, s=60, 512-sphere
geometry) and check the orderings and rough magnitudes.
"""

from __future__ import annotations

import pytest

from repro.geometry import sphere_grid_points
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel import TCS1, cycles_per_particle, simulate_run
from repro.util.tables import format_table

from benchmarks.paper_data import CYCLES_PER_PARTICLE

KERNELS = {
    "laplace": LaplaceKernel(),
    "modified_laplace": ModifiedLaplaceKernel(lam=1.0),
    "stokes": StokesKernel(),
}


def _measure(n_model):
    pts = sphere_grid_points(n_model)
    tree = build_tree(pts, max_points=60)
    lists = build_lists(tree)
    out = {}
    for name, kernel in KERNELS.items():
        r = simulate_run(tree, lists, kernel, 6, 1, TCS1)
        out[name] = cycles_per_particle(r, TCS1)["total"]
    return out


def test_cycles_per_particle(benchmark, bench_scale):
    measured = benchmark.pedantic(
        _measure, args=(bench_scale["N"],), rounds=1, iterations=1
    )
    rows = [
        (name, CYCLES_PER_PARTICLE[name] / 1e3, measured[name] / 1e3,
         measured[name] / CYCLES_PER_PARTICLE[name])
        for name in KERNELS
    ]
    print()
    print(format_table(
        ("kernel", "paper Kcyc/pt", "model Kcyc/pt", "ratio"),
        rows,
        title="Cycles per particle (P=1, p=6, s=60, 512-sphere geometry)",
    ))
    # orderings: Laplace < modified Laplace < Stokes, Stokes >= 3x Laplace
    assert measured["laplace"] < measured["modified_laplace"]
    assert measured["modified_laplace"] < measured["stokes"]
    assert measured["stokes"] > 3 * measured["laplace"]
    # magnitudes within a small factor of the paper's numbers
    for name in KERNELS:
        ratio = measured[name] / CYCLES_PER_PARTICLE[name]
        assert 0.2 < ratio < 10.0, f"{name}: ratio {ratio}"
