"""Derived metrics of Figures 4.2 and 4.3.

- *aggregate CPU cycles per particle*: ``P * C * T(P) / N`` with C the
  clock rate — the paper's machine-comparable work metric;
- *work efficiency*: ``T(1) / (T(P) * P)``;
- *flop-rate efficiency*: ``f(P) / f(1)`` with ``f`` the per-processor
  flop rate.
"""

from __future__ import annotations

from repro.perfmodel.machine import MachineModel
from repro.perfmodel.simulate import PHASES, RunReport


def cycles_per_particle(
    report: RunReport, machine: MachineModel
) -> dict[str, float]:
    """Aggregate CPU cycles per particle, split by phase (+ comm, total)."""
    factor = report.P * machine.clock_hz / report.N
    out = {ph: report.phase_seconds[ph] * factor for ph in PHASES}
    out["comm"] = report.comm * factor
    out["total"] = report.total * factor
    return out


def work_efficiency(serial: RunReport, parallel: RunReport) -> float:
    """``T(1) / (T(P) P)`` — Figure 4.2's work efficiency."""
    if serial.P != 1:
        raise ValueError(f"serial report must have P=1, got P={serial.P}")
    denom = parallel.total * parallel.P
    return serial.total / denom if denom > 0 else 0.0


def flop_rate_efficiency(serial: RunReport, parallel: RunReport) -> float:
    """``f(P) / f(1)`` with per-processor flop rates — Mflops/s efficiency."""
    if serial.P != 1:
        raise ValueError(f"serial report must have P=1, got P={serial.P}")
    f1 = serial.gflops_avg / serial.P
    fp = parallel.gflops_avg / parallel.P
    return fp / f1 if f1 > 0 else 0.0


def mflops_per_processor(report: RunReport) -> dict[str, float]:
    """Per-processor Mflop/s rates: average, peak, max and min over ranks."""
    totals = report.rank_phase_seconds.sum(axis=1) + report.rank_comm_seconds
    rank_flops = report.total_flops / report.P  # uniform-rate approximation
    rates = [
        rank_flops / t / 1e6 if t > 0 else 0.0 for t in totals
    ]
    return {
        "avg": report.gflops_avg * 1e3 / report.P,
        "peak": report.gflops_peak * 1e3 / report.P,
        "max": max(rates),
        "min": min(rates),
    }
