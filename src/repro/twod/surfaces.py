"""Square equivalent/check surfaces for the 2D method.

A box of half-width ``r`` gets surfaces on the boundary nodes of a
``p x p`` lattice spanning ``radius * r * [-1, 1]^2`` (``4p - 4``
nodes); the same radius factors as 3D (inner 1.05, outer 2.95) satisfy
the Section 2.1 placement constraints, which are dimension-independent.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

INNER_RADIUS_2D = 1.05
OUTER_RADIUS_2D = 2.95


def n_surface_points_2d(p: int) -> int:
    """Boundary nodes of a ``p x p`` lattice: ``4p - 4``."""
    if p < 2:
        raise ValueError(f"surface order p must be >= 2, got {p}")
    return 4 * p - 4


@lru_cache(maxsize=32)
def surface_grid_2d(p: int) -> np.ndarray:
    """Relative coordinates of the square-boundary nodes on [-1, 1]^2."""
    if p < 2:
        raise ValueError(f"surface order p must be >= 2, got {p}")
    idx = np.indices((p, p)).reshape(2, -1).T
    on_boundary = ((idx == 0) | (idx == p - 1)).any(axis=1)
    rel = 2.0 * idx[on_boundary].astype(np.float64) / (p - 1) - 1.0
    rel = np.ascontiguousarray(rel)
    rel.setflags(write=False)
    return rel


def scaled_surface_2d(
    p: int, center: np.ndarray, half_width: float, radius: float
) -> np.ndarray:
    """Boundary nodes of ``center + radius * half_width * [-1, 1]^2``."""
    if half_width <= 0 or radius <= 0:
        raise ValueError("half_width and radius must be positive")
    return (
        np.asarray(center, dtype=np.float64)
        + radius * half_width * surface_grid_2d(p)
    )
