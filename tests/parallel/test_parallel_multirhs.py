"""Multi-RHS blocks through the parallel path: one exchange, nrhs columns.

The parallel tentpole claims: a stacked density block rides a single
overlapped exchange per apply (wider rows, same message count), every
column of the blocked result matches the corresponding single-RHS
parallel apply to strict round-off (≤1e-12) on ranks 1/2/4 with overlap
on and off, the overlap flag still changes no bit of the blocked
result, and the certified invariants (race freedom, clean traces,
schedule independence) hold for blocked applies exactly as for single
ones.
"""

import numpy as np
import pytest

from repro.analysis import CommTrace, RaceDetector, check_trace
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.parallel import ParallelFMM, run_parallel_fmm
from repro.parallel.simmpi import CommStats

from tests.conftest import clustered_cloud, uniform_cloud

KERNELS = {
    "laplace": (LaplaceKernel(), 700, 30),
    "stokes": (StokesKernel(mu=0.7), 500, 35),
}


def _block_parity(op, block, nrhs):
    out = op.apply(block)
    assert out.shape == block.shape[:2] + (nrhs,)
    for r in range(nrhs):
        single = op.apply(np.ascontiguousarray(block[:, :, r]))
        assert single.ndim == 2
        assert relative_error(out[:, :, r], single) < 1e-12
    return out


@pytest.mark.parametrize("nranks", [1, 2, 4])
@pytest.mark.parametrize("kname", ["laplace", "stokes"])
def test_blocked_columns_match_single_applies(rng, kname, nranks):
    kern, n, mp = KERNELS[kname]
    pts = clustered_cloud(rng, n)
    block = rng.standard_normal((n, kern.source_dof, 4))
    op = ParallelFMM(nranks, kern, FMMOptions(p=4, max_points=mp)).setup(pts)
    _block_parity(op, block, 4)


@pytest.mark.parametrize("nranks", [2, 4])
@pytest.mark.parametrize("kname", ["laplace", "stokes"])
def test_blocked_overlap_on_off_bitwise_identical(rng, kname, nranks):
    kern, n, mp = KERNELS[kname]
    pts = uniform_cloud(rng, n)
    block = rng.standard_normal((n, kern.source_dof, 3))
    opts = FMMOptions(p=4, max_points=mp)
    on = ParallelFMM(nranks, kern, opts, overlap=True).setup(pts)
    off = ParallelFMM(nranks, kern, opts, overlap=False).setup(pts)
    out_on = _block_parity(on, block, 3)
    out_off = off.apply(block)
    assert np.array_equal(out_on, out_off)


def test_blocked_apply_matches_sequential_block(rng):
    kern, n, mp = KERNELS["stokes"]
    pts = clustered_cloud(rng, n)
    block = rng.standard_normal((n, 3, 4))
    opts = FMMOptions(p=4, max_points=mp)
    seq = KIFMM(kern, opts).setup(pts).apply(block)
    par = run_parallel_fmm(2, kern, pts, block, opts)
    assert par.potential.shape == (n, 3, 4)
    assert relative_error(par.potential, seq) < 1e-9


def test_naive_parallel_path_loops_columns(rng):
    kern, n, mp = KERNELS["laplace"]
    pts = uniform_cloud(rng, 400)
    block = rng.standard_normal((400, 1, 3))
    naive = FMMOptions(p=4, max_points=mp, plan="naive")
    seq = KIFMM(kern, FMMOptions(p=4, max_points=mp)).setup(pts).apply(block)
    par = run_parallel_fmm(2, kern, pts, block, naive)
    assert par.potential.shape == (400, 1, 3)
    assert relative_error(par.potential, seq) < 1e-9


def test_block_matvec_is_reshape_of_stacked_apply(rng):
    kern, n, mp = KERNELS["stokes"]
    pts = uniform_cloud(rng, n)
    op = ParallelFMM(2, kern, FMMOptions(p=4, max_points=mp)).setup(pts)
    block = rng.standard_normal((n, 3, 4))
    out = op.apply(block)
    mv = op.matvec(block.reshape(3 * n, 4))
    assert mv.shape == (3 * n, 4)
    assert np.array_equal(mv, out.reshape(3 * n, 4))
    flat_single = op.matvec(block[:, :, 0].ravel())
    assert flat_single.shape == (3 * n,)


def test_blocked_exchange_message_count_matches_single(rng):
    """The whole block rides ONE exchange: same message count, wider rows."""
    kern, n, mp = KERNELS["laplace"]
    pts = clustered_cloud(rng, n)
    opts = FMMOptions(p=4, max_points=mp)

    def traffic(density):
        res = run_parallel_fmm(4, kern, pts, density, opts)
        total = CommStats.total(res.comm_stats)
        return total.messages_sent, total.bytes_sent

    single_msgs, single_bytes = traffic(rng.standard_normal((n, 1)))
    block_msgs, block_bytes = traffic(rng.standard_normal((n, 1, 8)))
    assert block_msgs == single_msgs
    assert block_bytes > single_bytes  # wider payloads, not more messages


def test_blocked_apply_race_free_and_trace_clean(rng):
    """Certification invariants hold for multi-RHS overlapped applies."""
    kern, n, mp = KERNELS["laplace"]
    pts = uniform_cloud(rng, 400)
    block = rng.standard_normal((400, 1, 3))
    opts = FMMOptions(p=4, max_points=mp)
    for overlap in (True, False):
        det = RaceDetector()
        trace = CommTrace()
        res = run_parallel_fmm(
            4, kern, pts, block, opts,
            trace=trace, schedule_seed=3, napplies=2,
            overlap=overlap, race=det,
        )
        assert det.report().ok
        assert check_trace(trace, stats=res.comm_stats).ok


def test_blocked_schedule_independence(rng):
    kern, n, mp = KERNELS["laplace"]
    pts = clustered_cloud(rng, 400)
    block = rng.standard_normal((400, 1, 3))
    opts = FMMOptions(p=4, max_points=mp)
    results = [
        run_parallel_fmm(
            4, kern, pts, block, opts, schedule_seed=s
        ).potential
        for s in (0, 1, 2)
    ]
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])


def test_sanitized_blocked_apply(rng):
    kern, n, mp = KERNELS["laplace"]
    pts = uniform_cloud(rng, 400)
    block = rng.standard_normal((400, 1, 3))
    opts = FMMOptions(p=4, max_points=mp, sanitize=True)
    res = run_parallel_fmm(2, kern, pts, block, opts)
    assert np.isfinite(res.potential).all()


def test_varying_nrhs_across_applies_reuses_states(rng):
    """One persistent operator serves blocks of different widths in turn."""
    kern, n, mp = KERNELS["laplace"]
    pts = uniform_cloud(rng, 400)
    op = ParallelFMM(2, kern, FMMOptions(p=4, max_points=mp)).setup(pts)
    wide = op.apply(rng.standard_normal((400, 1, 8)))
    narrow_block = rng.standard_normal((400, 1, 2))
    narrow = op.apply(narrow_block)
    assert wide.shape == (400, 1, 8) and narrow.shape == (400, 1, 2)
    single = op.apply(np.ascontiguousarray(narrow_block[:, :, 1]))
    assert relative_error(narrow[:, :, 1], single) < 1e-12
