"""Volume particle distributions.

The paper's second particle set is "a non-uniform distribution of
particles clustered at the eight corners of the unit cube"; uniform
random points in the cube serve as the baseline distribution.
"""

from __future__ import annotations

import numpy as np


def uniform_cube(
    n: int,
    rng: np.random.Generator | None = None,
    low: float = -1.0,
    high: float = 1.0,
) -> np.ndarray:
    """``n`` points uniform in ``[low, high]^3``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if high <= low:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    rng = rng or np.random.default_rng()
    return rng.uniform(low, high, size=(n, 3))


def corner_clusters(
    n: int,
    rng: np.random.Generator | None = None,
    spread: float = 0.1,
    low: float = -1.0,
    high: float = 1.0,
) -> np.ndarray:
    """``n`` points clustered at the eight corners of ``[low, high]^3``.

    Each corner receives ``n / 8`` points with half-normal offsets of
    scale ``spread * (high - low)`` pointing into the cube — a strongly
    non-uniform distribution that drives deep adaptive refinement and
    large W/X lists, the regime where the paper reports load-imbalance
    growth (Table 4.2, Stokes non-uniform).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if high <= low:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")
    rng = rng or np.random.default_rng()
    side = high - low
    blocks = []
    base = n // 8
    for c in range(8):
        count = base + (1 if c < n - 8 * base else 0)
        corner = np.array(
            [
                high if c & 1 else low,
                high if (c >> 1) & 1 else low,
                high if (c >> 2) & 1 else low,
            ]
        )
        inward = np.where(corner > (low + high) / 2.0, -1.0, 1.0)
        offsets = np.abs(rng.standard_normal((count, 3))) * spread * side
        pts = corner + inward * np.minimum(offsets, side)  # stay inside
        blocks.append(pts)
    return np.vstack(blocks) if blocks else np.empty((0, 3))
