"""Adaptive quadtree: the 2D computation tree.

Mirrors :mod:`repro.octree.tree` in the plane — 2D Morton keys (16 bits
per dimension), level-by-level adaptive splitting with at most ``s``
points per leaf, pruned empty quadrants, Morton-contiguous point ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_U = np.uint64

#: Deepest supported quadtree level (16 bits per dimension).
MAX_DEPTH_2D = 16


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 16 bits: bit i -> bit 2*i."""
    x = x.astype(np.uint64) & _U(0xFFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x33333333)
    x = (x | (x << _U(1))) & _U(0x55555555)
    return x


def anchor_to_key_2d(ix, iy) -> np.ndarray:
    """Interleave 2D integer coordinates into Morton keys."""
    return _part1by1(np.asarray(ix)) | (_part1by1(np.asarray(iy)) << _U(1))


def encode_points_2d(
    points: np.ndarray, corner: np.ndarray, side: float
) -> np.ndarray:
    """Depth-``MAX_DEPTH_2D`` Morton keys of points in the root square."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if side <= 0:
        raise ValueError(f"root side must be positive, got {side}")
    scaled = (points - np.asarray(corner, dtype=np.float64)) / side
    if scaled.size and (scaled.min() < -1e-12 or scaled.max() > 1 + 1e-12):
        raise ValueError("points fall outside the root square")
    cells = np.clip(
        (scaled * (1 << MAX_DEPTH_2D)).astype(np.int64),
        0,
        (1 << MAX_DEPTH_2D) - 1,
    )
    return anchor_to_key_2d(cells[:, 0], cells[:, 1])


@dataclass
class Box2D:
    """One quadtree node; ranges index the Morton-sorted permutation."""

    index: int
    level: int
    anchor: tuple[int, int]
    parent: int
    src_start: int
    src_stop: int
    trg_start: int
    trg_stop: int
    children: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def nsrc(self) -> int:
        return self.src_stop - self.src_start

    @property
    def ntrg(self) -> int:
        return self.trg_stop - self.trg_start


def boxes_adjacent_2d(a: Box2D, b: Box2D) -> bool:
    """Closed squares touch or overlap (works across levels)."""
    level = max(a.level, b.level)
    sa, sb = 1 << (level - a.level), 1 << (level - b.level)
    for d in range(2):
        if a.anchor[d] * sa > (b.anchor[d] + 1) * sb:
            return False
        if b.anchor[d] * sb > (a.anchor[d] + 1) * sa:
            return False
    return True


@dataclass
class Quadtree:
    """The 2D computation tree (API parallel to :class:`Octree`)."""

    sources: np.ndarray
    targets: np.ndarray
    root_corner: np.ndarray
    root_side: float
    max_points: int
    shared_points: bool
    boxes: list[Box2D] = field(default_factory=list)
    levels: list[list[int]] = field(default_factory=list)
    src_perm: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    trg_perm: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    index: dict[tuple[int, tuple[int, int]], int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    @property
    def nboxes(self) -> int:
        return len(self.boxes)

    def leaves(self) -> list[int]:
        return [b.index for b in self.boxes if b.is_leaf]

    def colleagues(self, index: int, include_self: bool = False) -> list[int]:
        box = self.boxes[index]
        n = 1 << box.level
        out = []
        ix, iy = box.anchor
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == dy == 0:
                    if include_self:
                        out.append(index)
                    continue
                jx, jy = ix + dx, iy + dy
                if 0 <= jx < n and 0 <= jy < n:
                    hit = self.index.get((box.level, (jx, jy)))
                    if hit is not None:
                        out.append(hit)
        return out

    def center(self, index: int) -> np.ndarray:
        b = self.boxes[index]
        side = self.root_side / (1 << b.level)
        return self.root_corner + (np.asarray(b.anchor, float) + 0.5) * side

    def half_width(self, index: int) -> float:
        return self.root_side / (1 << self.boxes[index].level) / 2.0

    def src_indices(self, index: int) -> np.ndarray:
        b = self.boxes[index]
        return self.src_perm[b.src_start : b.src_stop]

    def trg_indices(self, index: int) -> np.ndarray:
        b = self.boxes[index]
        return self.trg_perm[b.trg_start : b.trg_stop]

    def src_points(self, index: int) -> np.ndarray:
        return self.sources[self.src_indices(index)]

    def trg_points(self, index: int) -> np.ndarray:
        return self.targets[self.trg_indices(index)]


def _root_square(points: np.ndarray, pad: float = 1e-6) -> tuple[np.ndarray, float]:
    lo, hi = points.min(axis=0), points.max(axis=0)
    side = float((hi - lo).max())
    side = side * (1 + pad) if side > 0 else 1.0
    center = (lo + hi) / 2.0
    return center - side / 2.0, side


def build_quadtree(
    sources: np.ndarray,
    targets: np.ndarray | None = None,
    max_points: int = 40,
    max_depth: int = MAX_DEPTH_2D,
    root: tuple[np.ndarray, float] | None = None,
) -> Quadtree:
    """Build the adaptive quadtree (2D analogue of ``build_tree``)."""
    sources = np.ascontiguousarray(sources, dtype=np.float64)
    if sources.ndim != 2 or sources.shape[1] != 2:
        raise ValueError(f"sources must be (n, 2), got {sources.shape}")
    shared = targets is None
    targets_arr = sources if shared else np.ascontiguousarray(targets, np.float64)
    if max_points < 1:
        raise ValueError(f"max_points must be >= 1, got {max_points}")
    if not 1 <= max_depth <= MAX_DEPTH_2D:
        raise ValueError(f"max_depth must be in [1, {MAX_DEPTH_2D}]")

    if root is None:
        allpts = sources if shared else np.vstack([sources, targets_arr])
        corner, side = _root_square(allpts)
    else:
        corner, side = np.asarray(root[0], dtype=np.float64), float(root[1])

    src_keys = encode_points_2d(sources, corner, side)
    src_perm = np.argsort(src_keys, kind="stable")
    src_sorted = src_keys[src_perm]
    if shared:
        trg_perm, trg_sorted = src_perm, src_sorted
    else:
        trg_keys = encode_points_2d(targets_arr, corner, side)
        trg_perm = np.argsort(trg_keys, kind="stable")
        trg_sorted = trg_keys[trg_perm]

    tree = Quadtree(
        sources=sources,
        targets=targets_arr,
        root_corner=corner,
        root_side=side,
        max_points=max_points,
        shared_points=shared,
        src_perm=src_perm,
        trg_perm=trg_perm,
    )
    tree.boxes.append(
        Box2D(0, 0, (0, 0), -1, 0, sources.shape[0], 0, targets_arr.shape[0])
    )
    tree.index[(0, (0, 0))] = 0
    tree.levels.append([0])

    frontier = [0]
    level = 0
    while frontier and level < max_depth:
        next_frontier: list[int] = []
        shift = _U(2 * (MAX_DEPTH_2D - level - 1))
        for bi in frontier:
            box = tree.boxes[bi]
            if box.nsrc <= max_points and box.ntrg <= max_points:
                continue
            ix, iy = box.anchor
            base = _U(anchor_to_key_2d(ix, iy)) << _U(2)
            bounds = (base + np.arange(5, dtype=np.uint64)) << shift
            s_cuts = box.src_start + np.searchsorted(
                src_sorted[box.src_start : box.src_stop], bounds, side="left"
            )
            t_cuts = box.trg_start + np.searchsorted(
                trg_sorted[box.trg_start : box.trg_stop], bounds, side="left"
            )
            kids = []
            for c in range(4):
                if s_cuts[c] == s_cuts[c + 1] and t_cuts[c] == t_cuts[c + 1]:
                    continue
                child_anchor = (2 * ix + (c & 1), 2 * iy + ((c >> 1) & 1))
                child = Box2D(
                    index=len(tree.boxes),
                    level=level + 1,
                    anchor=child_anchor,
                    parent=bi,
                    src_start=int(s_cuts[c]),
                    src_stop=int(s_cuts[c + 1]),
                    trg_start=int(t_cuts[c]),
                    trg_stop=int(t_cuts[c + 1]),
                )
                tree.boxes.append(child)
                tree.index[(level + 1, child_anchor)] = child.index
                kids.append(child.index)
            box.children = tuple(kids)
            next_frontier.extend(kids)
        if next_frontier:
            tree.levels.append(next_frontier)
        frontier = next_frontier
        level += 1
    return tree
