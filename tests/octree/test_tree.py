"""Adaptive octree construction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import build_tree
from repro.octree.box import box_contains, boxes_adjacent

from tests.conftest import clustered_cloud, uniform_cloud


def _check_invariants(tree):
    """Structural invariants every tree must satisfy."""
    # root covers everything
    root = tree.boxes[0]
    assert root.src_start == 0 and root.src_stop == tree.sources.shape[0]
    for b in tree.boxes:
        # ranges are well-formed
        assert b.src_start <= b.src_stop
        assert b.trg_start <= b.trg_stop
        if b.parent >= 0:
            p = tree.boxes[b.parent]
            assert p.level == b.level - 1
            assert box_contains(p, b)
        if not b.is_leaf:
            # children tile the parent's point ranges
            kids = [tree.boxes[c] for c in b.children]
            assert sum(k.nsrc for k in kids) == b.nsrc
            assert sum(k.ntrg for k in kids) == b.ntrg
            for k in kids:
                assert k.parent == b.index
        # index lookup agrees
        assert tree.index[(b.level, b.anchor)] == b.index
    # every source index appears exactly once across leaves
    leaf_src = np.concatenate(
        [tree.src_indices(i) for i in tree.leaves()]
    ) if tree.leaves() else np.empty(0)
    assert sorted(leaf_src.tolist()) == list(range(tree.sources.shape[0]))
    # points geometrically inside their leaf
    for i in tree.leaves():
        b = tree.boxes[i]
        side = tree.root_side / (1 << b.level)
        lo = tree.root_corner + np.array(b.anchor) * side
        pts = tree.src_points(i)
        if pts.size:
            assert np.all(pts >= lo - 1e-9)
            assert np.all(pts <= lo + side + 1e-9)


class TestConstruction:
    def test_uniform_invariants(self, rng):
        tree = build_tree(uniform_cloud(rng, 800), max_points=30)
        _check_invariants(tree)

    def test_clustered_invariants(self, rng):
        tree = build_tree(clustered_cloud(rng, 800), max_points=25)
        _check_invariants(tree)
        assert tree.depth >= 3  # clustering forces deep refinement

    def test_leaf_capacity(self, rng):
        tree = build_tree(uniform_cloud(rng, 1000), max_points=40)
        for i in tree.leaves():
            b = tree.boxes[i]
            assert b.nsrc <= 40

    def test_single_box_when_few_points(self, rng):
        tree = build_tree(uniform_cloud(rng, 10), max_points=60)
        assert tree.nboxes == 1
        assert tree.boxes[0].is_leaf

    def test_max_depth_respected(self, rng):
        pts = np.zeros((100, 3))
        pts += rng.standard_normal((100, 3)) * 1e-12  # pathological cluster
        tree = build_tree(pts, max_points=10, max_depth=5)
        assert tree.depth <= 5

    def test_separate_targets(self, rng):
        src = uniform_cloud(rng, 300)
        trg = uniform_cloud(rng, 200) * 0.5
        tree = build_tree(src, trg, max_points=20)
        _check_invariants(tree)
        assert not tree.shared_points
        trg_leaf = np.concatenate([tree.trg_indices(i) for i in tree.leaves()])
        assert sorted(trg_leaf.tolist()) == list(range(200))

    def test_deterministic(self, rng):
        pts = uniform_cloud(rng, 500)
        t1 = build_tree(pts, max_points=30)
        t2 = build_tree(pts, max_points=30)
        assert t1.nboxes == t2.nboxes
        assert [b.anchor for b in t1.boxes] == [b.anchor for b in t2.boxes]

    def test_explicit_root(self, rng):
        pts = rng.random((100, 3)) * 0.5 + 0.25
        tree = build_tree(pts, max_points=10, root=(np.zeros(3), 1.0))
        assert tree.root_side == 1.0
        assert np.allclose(tree.root_corner, 0.0)

    def test_levels_ordering(self, rng):
        tree = build_tree(uniform_cloud(rng, 600), max_points=20)
        for level, ids in enumerate(tree.levels):
            for i in ids:
                assert tree.boxes[i].level == level

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_any_point_count(self, n):
        pts = np.random.default_rng(n).random((n, 3))
        tree = build_tree(pts, max_points=17)
        _check_invariants(tree)

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            build_tree(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            build_tree(np.zeros((5, 3)), max_points=0)
        with pytest.raises(ValueError):
            build_tree(np.zeros((5, 3)), max_depth=0)


class TestColleagues:
    def test_against_brute_force(self, rng):
        tree = build_tree(uniform_cloud(rng, 600), max_points=20)
        for b in tree.boxes:
            expected = {
                o.index
                for o in tree.boxes
                if o.level == b.level
                and o.index != b.index
                and all(abs(o.anchor[d] - b.anchor[d]) <= 1 for d in range(3))
            }
            assert set(tree.colleagues(b.index)) == expected

    def test_include_self(self, rng):
        tree = build_tree(uniform_cloud(rng, 200), max_points=20)
        i = tree.leaves()[0]
        assert i in tree.colleagues(i, include_self=True)
        assert i not in tree.colleagues(i)

    def test_colleagues_are_adjacent(self, rng):
        tree = build_tree(clustered_cloud(rng, 500), max_points=20)
        for b in tree.boxes:
            for c in tree.colleagues(b.index):
                assert boxes_adjacent(tree.boxes[c], b)


class TestGeometry:
    def test_center_and_half_width(self, rng):
        tree = build_tree(uniform_cloud(rng, 300), max_points=30)
        root = tree.boxes[0]
        assert np.allclose(
            tree.center(0), tree.root_corner + tree.root_side / 2
        )
        assert tree.half_width(0) == pytest.approx(tree.root_side / 2)
        for b in tree.boxes:
            if b.parent >= 0:
                assert tree.half_width(b.index) == pytest.approx(
                    tree.half_width(b.parent) / 2
                )
        assert root.is_leaf or len(root.children) >= 1

    def test_statistics(self, rng):
        tree = build_tree(uniform_cloud(rng, 400), max_points=25)
        st_ = tree.statistics()
        assert st_["nboxes"] == tree.nboxes
        assert st_["nleaves"] == len(tree.leaves())
        assert st_["max_leaf_src"] <= 25


class TestAdjacency:
    def test_self_adjacent(self, rng):
        tree = build_tree(uniform_cloud(rng, 100), max_points=20)
        b = tree.boxes[0]
        assert boxes_adjacent(b, b)

    def test_parent_child_adjacent(self, rng):
        tree = build_tree(uniform_cloud(rng, 300), max_points=20)
        for b in tree.boxes:
            if b.parent >= 0:
                assert boxes_adjacent(tree.boxes[b.parent], b)

    def test_cross_level_adjacency(self):
        from repro.octree.box import Box

        big = Box(0, 1, (0, 0, 0), -1, 0, 0, 0, 0)
        small_touching = Box(1, 2, (2, 0, 0), -1, 0, 0, 0, 0)
        small_far = Box(2, 2, (3, 3, 3), -1, 0, 0, 0, 0)
        assert boxes_adjacent(big, small_touching)
        assert not boxes_adjacent(big, small_far)
