"""Direct O(N^2) summation baseline for the 2D kernels."""

from __future__ import annotations

import numpy as np

from repro.twod.kernels import Kernel2D


def direct_evaluate_2d(
    kernel: Kernel2D,
    targets: np.ndarray,
    sources: np.ndarray,
    density: np.ndarray,
    block: int = 4096,
) -> np.ndarray:
    """``u_i = sum_j G(x_i, y_j) phi_j`` by direct summation in 2D."""
    return kernel.apply(targets, sources, density, block=block)
