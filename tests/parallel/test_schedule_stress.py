"""Seeded schedule-perturbation stress tests (satellite of the analysis PR).

The ghost exchange and LET gather protocols must be schedule
independent: whatever interleaving the thread scheduler produces, every
rank must end up with bitwise-identical data.  We fuzz 10 perturbed
schedules per protocol (seeded random yields inside every SimComm call)
and compare against an unperturbed reference run.
"""

import numpy as np
import pytest

from repro.analysis import CommTrace, check_trace, compare_traces
from repro.parallel.exchange import exchange_equiv_densities, exchange_source_data
from repro.parallel.let import LETUsage, gather_users
from repro.parallel.simmpi import run_spmd

NRANKS = 4
NBOXES = 24
NSCHEDULES = 10


def _random_topology(rng):
    """Random contributor/user matrices with a consistent owner map."""
    contrib = rng.random((NRANKS, NBOXES)) < 0.45
    contrib[rng.integers(0, NRANKS, size=NBOXES), np.arange(NBOXES)] = True
    users = rng.random((NRANKS, NBOXES)) < 0.45
    owner = np.array([
        rng.choice(np.nonzero(contrib[:, b])[0]) for b in range(NBOXES)
    ])
    return contrib, users, owner


def _ghost_exchange_once(contrib, users, owner, seed):
    boxes = np.arange(NBOXES)

    def main(comm):
        me = comm.rank
        pts = {
            b: np.full((3, 3), 100.0 * me + b)
            for b in range(NBOXES) if contrib[me, b]
        }
        dens = {
            b: np.full((3, 2), 10.0 * me + b)
            for b in range(NBOXES) if contrib[me, b]
        }
        return exchange_source_data(
            comm, boxes, contrib, users, owner, pts, dens
        )

    trace = CommTrace()
    results = run_spmd(
        NRANKS, main, trace=trace, schedule_seed=seed,
    )
    assert check_trace(trace).ok
    return results, trace


def _flatten(results):
    out = []
    for rank_result in results:
        for b in sorted(rank_result):
            pts, dens = rank_result[b]
            out.append((b, pts.tobytes(), dens.tobytes()))
    return out


def test_ghost_exchange_bitwise_identical_across_schedules(rng):
    contrib, users, owner = _random_topology(rng)
    reference, _ = _ghost_exchange_once(contrib, users, owner, seed=None)
    ref_flat = _flatten(reference)
    traces = []
    for seed in range(NSCHEDULES):
        results, trace = _ghost_exchange_once(contrib, users, owner, seed)
        assert _flatten(results) == ref_flat, f"schedule {seed} diverged"
        traces.append(trace)
    assert compare_traces(traces).ok


def test_equiv_density_reduction_bitwise_identical_across_schedules(rng):
    contrib, users, owner = _random_topology(rng)
    boxes = np.arange(NBOXES)
    partials = rng.standard_normal((NRANKS, NBOXES, 6))

    def main(comm):
        me = comm.rank
        has = contrib[me].copy()
        return exchange_equiv_densities(
            comm, boxes, contrib, users, owner, partials[me], has
        )

    def flat(results):
        return [
            (b, r[b].tobytes()) for r in results for b in sorted(r)
        ]

    reference = flat(run_spmd(NRANKS, main))
    for seed in range(NSCHEDULES):
        trace = CommTrace()
        results = run_spmd(NRANKS, main, trace=trace, schedule_seed=seed)
        assert flat(results) == reference, f"schedule {seed} diverged"
        assert check_trace(trace).ok


def test_let_gather_users_bitwise_identical_across_schedules(rng):
    """parallel/let.py: the allgathered usage matrices are schedule free."""
    masks = rng.random((NRANKS, 2, NBOXES)) < 0.5

    def main(comm):
        usage = LETUsage(
            uses_equiv=masks[comm.rank, 0].copy(),
            uses_source=masks[comm.rank, 1].copy(),
        )
        ue, us = gather_users(comm, usage)
        return ue.tobytes(), us.tobytes()

    reference = run_spmd(NRANKS, main)
    assert all(r == reference[0] for r in reference)  # identical everywhere
    for seed in range(NSCHEDULES):
        trace = CommTrace()
        results = run_spmd(NRANKS, main, trace=trace, schedule_seed=seed)
        assert results == reference, f"schedule {seed} diverged"
        report = check_trace(trace)
        assert report.ok, report.summary()


@pytest.mark.parametrize("seed", [0, 1])
def test_perturbation_is_reproducible(seed, rng):
    """Same seed, same trace digests: the fuzzing itself is deterministic."""
    contrib, users, owner = _random_topology(rng)
    _, t1 = _ghost_exchange_once(contrib, users, owner, seed)
    _, t2 = _ghost_exchange_once(contrib, users, owner, seed)
    assert compare_traces([t1, t2]).ok
