"""Communication event traces for the simulated MPI runtime.

Every :class:`~repro.parallel.simmpi.SimComm` operation can be recorded
as a :class:`TraceEvent` carrying logical time — a per-rank Lamport
clock and a full vector clock — plus payload metadata (byte size and a
content digest).  The offline analyzer (:mod:`repro.analysis.commcheck`)
reconstructs the happens-before relation from these clocks and the
explicit send/recv matching, so ordering bugs (dropped messages,
wait-for cycles, diverging collectives) are diagnosed from the trace
alone, without re-running the program.

Blocking operations emit *two* events: a post event when the operation
starts (``recv-post`` / ``coll-enter``) and a completion event when it
finishes (``recv`` / ``coll-exit``).  A rank whose final event is a post
event was blocked there when the run ended — that is exactly the
information the deadlock detector needs.

This module is runtime-agnostic: it only defines the event model and
clock bookkeeping.  The instrumentation hooks live in
``repro/parallel/simmpi.py``; nothing here imports ``threading``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

#: Event kinds emitted by the instrumented runtime.
EVENT_KINDS = ("send", "recv-post", "recv", "coll-enter", "coll-exit")


def payload_digest(obj: Any) -> str:
    """Stable content fingerprint of a message payload.

    Used to compare the message streams of two executions: if the same
    channel carries the same digest sequence under every schedule, the
    communication is observably deterministic.
    """
    h = hashlib.sha1()
    _digest_into(h, obj)
    return h.hexdigest()[:16]


def _digest_into(h: "hashlib._Hash", obj: Any) -> None:
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"nd")
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (tuple, list)):
        h.update(b"seq")
        for x in obj:
            _digest_into(h, x)
    elif isinstance(obj, dict):
        h.update(b"map")
        for k in sorted(obj, key=repr):
            h.update(repr(k).encode())
            _digest_into(h, obj[k])
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"b")
        h.update(bytes(obj))
    else:
        h.update(b"o")
        h.update(repr(obj).encode())


@dataclass
class TraceEvent:
    """One communication event of one rank.

    ``clock`` is the rank's vector clock *after* the event; ``lamport``
    the scalar Lamport time.  ``peer`` is the destination rank for sends
    and the source rank for receives (``None`` for collectives).
    ``match_seq`` on a ``recv`` event is the per-rank event sequence
    number of the matching ``send`` on the sending rank — the edge the
    analyzer uses to stitch the happens-before graph together.
    """

    rank: int
    seq: int
    kind: str
    peer: int | None = None
    tag: Any = None
    nbytes: int = 0
    lamport: int = 0
    clock: tuple[int, ...] = ()
    coll: str | None = None  # barrier / allreduce / allgather
    coll_index: int | None = None
    op: str | None = None
    shape: tuple[int, ...] | None = None
    digest: str | None = None
    match_seq: int | None = None

    def channel(self) -> tuple[int, int, Any] | None:
        """The ``(src, dst, tag)`` channel of a point-to-point event."""
        if self.kind == "send":
            return (self.rank, self.peer, self.tag)
        if self.kind in ("recv", "recv-post"):
            return (self.peer, self.rank, self.tag)
        return None

    def describe(self) -> str:
        if self.kind == "send":
            return f"send {self.rank}->{self.peer} tag={self.tag!r}"
        if self.kind in ("recv", "recv-post"):
            return f"recv {self.peer}->{self.rank} tag={self.tag!r}"
        extra = f" op={self.op!r}" if self.op else ""
        return f"{self.coll}[{self.coll_index}]{extra}"


@dataclass
class Envelope:
    """Wire wrapper carrying clock metadata alongside a traced payload."""

    payload: Any
    src: int
    seq: int
    lamport: int
    clock: tuple[int, ...]
    digest: str


class RankTracer:
    """Per-rank clock state and event emitter.

    Owned by exactly one rank thread; appends to that rank's private
    event list, so no locking is needed.
    """

    def __init__(self, trace: "CommTrace", rank: int, nranks: int) -> None:
        self.trace = trace
        self.rank = rank
        self.lamport = 0
        self.clock = [0] * nranks
        self.coll_index = 0
        self._events = trace.events_by_rank[rank]

    def _emit(self, kind: str, **fields: Any) -> TraceEvent:
        ev = TraceEvent(
            rank=self.rank,
            seq=len(self._events),
            kind=kind,
            lamport=self.lamport,
            clock=tuple(self.clock),
            **fields,
        )
        self._events.append(ev)
        return ev

    def _tick(self) -> None:
        self.lamport += 1
        self.clock[self.rank] += 1

    # -- point to point ----------------------------------------------------

    def on_send(self, dst: int, tag: Any, obj: Any, nbytes: int) -> Envelope:
        """Record a send; returns the envelope to put on the wire."""
        self._tick()
        digest = payload_digest(obj)
        ev = self._emit("send", peer=dst, tag=tag, nbytes=nbytes, digest=digest)
        return Envelope(
            payload=obj,
            src=self.rank,
            seq=ev.seq,
            lamport=self.lamport,
            clock=tuple(self.clock),
            digest=digest,
        )

    def on_recv_post(self, src: int, tag: Any) -> None:
        """Record that a blocking receive was posted (no clock tick)."""
        self._emit("recv-post", peer=src, tag=tag)

    def on_recv(self, src: int, tag: Any, env: Envelope, nbytes: int) -> None:
        """Record a completed receive, merging the sender's clocks."""
        self.lamport = max(self.lamport, env.lamport) + 1
        self.clock[self.rank] += 1
        for i, c in enumerate(env.clock):
            self.clock[i] = max(self.clock[i], c)
        self._emit(
            "recv",
            peer=src,
            tag=tag,
            nbytes=nbytes,
            digest=env.digest,
            match_seq=env.seq,
        )

    # -- collectives -------------------------------------------------------

    def on_coll_enter(
        self,
        coll: str,
        nbytes: int = 0,
        op: str | None = None,
        shape: tuple[int, ...] | None = None,
    ) -> None:
        self._tick()
        self._emit(
            "coll-enter",
            coll=coll,
            coll_index=self.coll_index,
            nbytes=nbytes,
            op=op,
            shape=shape,
        )

    def on_coll_exit(self, coll: str, peer_clocks: list[Any]) -> None:
        """Record collective completion, merging every participant's clock."""
        for pc in peer_clocks:
            if pc is None:
                continue
            self.lamport = max(self.lamport, pc[0])
            for i, c in enumerate(pc[1]):
                self.clock[i] = max(self.clock[i], c)
        self.lamport += 1
        self.clock[self.rank] += 1
        self._emit("coll-exit", coll=coll, coll_index=self.coll_index)
        self.coll_index += 1

    def clock_snapshot(self) -> tuple[int, tuple[int, ...]]:
        """``(lamport, vector clock)`` pair deposited for collective merges."""
        return (self.lamport, tuple(self.clock))

    def position(self) -> int:
        """Number of events emitted so far — this rank's event cursor.

        The race detector stamps each access record with the cursor so
        the offline analysis can locate the communication events that
        surround an access without timestamps.
        """
        return len(self._events)


class CommTrace:
    """A full multi-rank execution trace plus runtime exit metadata.

    Pass an instance to :func:`repro.parallel.simmpi.run_spmd` via
    ``trace=``; the runtime resets and fills it, including on abnormal
    exits (timeouts, deadlocks, rank exceptions), which is when the
    analyzer is most useful.
    """

    def __init__(self) -> None:
        self.nranks = 0
        self.events_by_rank: list[list[TraceEvent]] = []
        #: Messages left in mailboxes at exit: ``((src, dst, tag), count)``.
        self.leaked: list[tuple[tuple[int, int, Any], int]] = []
        #: ``repr`` of the first per-rank exception, if the run failed.
        self.error: str | None = None
        self.completed = False

    def reset(self, nranks: int) -> None:
        self.nranks = nranks
        self.events_by_rank = [[] for _ in range(nranks)]
        self.leaked = []
        self.error = None
        self.completed = False

    def events(self) -> Iterator[TraceEvent]:
        """All events, ordered by Lamport time (ties by rank, seq)."""
        merged = [ev for evs in self.events_by_rank for ev in evs]
        merged.sort(key=lambda e: (e.lamport, e.rank, e.seq))
        return iter(merged)

    def nevents(self) -> int:
        return sum(len(evs) for evs in self.events_by_rank)

    # -- serialisation (CLI / CI artifacts) --------------------------------

    def to_jsonl(self, path: str) -> None:
        """Write the trace as a JSON-lines file (header, then events).

        Tags are serialised via ``repr`` — matching stays consistent on
        load because both send and recv sides serialise identically.
        """
        with open(path, "w", encoding="utf-8") as fh:
            header = {
                "nranks": self.nranks,
                "completed": self.completed,
                "error": self.error,
                "leaked": [
                    {"src": k[0], "dst": k[1], "tag": repr(k[2]), "count": n}
                    for k, n in self.leaked
                ],
            }
            fh.write(json.dumps(header) + "\n")
            for ev in self.events():
                d = {f: getattr(ev, f) for f in (
                    "rank", "seq", "kind", "peer", "nbytes", "lamport",
                    "coll", "coll_index", "op", "digest", "match_seq",
                )}
                d["tag"] = repr(ev.tag) if ev.tag is not None else None
                d["clock"] = list(ev.clock)
                d["shape"] = list(ev.shape) if ev.shape is not None else None
                fh.write(json.dumps(d) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "CommTrace":
        trace = cls()
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            trace.reset(int(header["nranks"]))
            trace.completed = bool(header["completed"])
            trace.error = header["error"]
            trace.leaked = [
                ((d["src"], d["dst"], d["tag"]), d["count"])
                for d in header["leaked"]
            ]
            for line in fh:
                d = json.loads(line)
                ev = TraceEvent(
                    rank=d["rank"],
                    seq=d["seq"],
                    kind=d["kind"],
                    peer=d["peer"],
                    tag=d["tag"],
                    nbytes=d["nbytes"],
                    lamport=d["lamport"],
                    clock=tuple(d["clock"]),
                    coll=d["coll"],
                    coll_index=d["coll_index"],
                    op=d["op"],
                    shape=tuple(d["shape"]) if d["shape"] is not None else None,
                    digest=d["digest"],
                    match_seq=d["match_seq"],
                )
                trace.events_by_rank[ev.rank].append(ev)
        return trace
