"""Table 4.3 — the 3000-processor runs (up to 2.1 billion unknowns).

Laplace at 100K and 230K particles per CPU and Stokes at 230K per CPU,
all on the 512-sphere geometry with s = 120.  Unknowns = particles for
Laplace and 3 x particles for Stokes (velocity components); the paper's
largest run is 700M particles = 2.1B Stokes unknowns.
"""

from __future__ import annotations

import pytest

from repro.geometry import sphere_grid_points
from repro.kernels import LaplaceKernel, StokesKernel
from repro.octree import build_lists, build_tree
from repro.perfmodel import TCS1, simulate_run
from repro.perfmodel.costs import compute_work

from benchmarks.conftest import print_comparison
from benchmarks.paper_data import TABLE43

P = 3000
CASES = [
    # (kernel, particles/cpu, unknowns in billions)
    (LaplaceKernel(), 100_000, 0.300),
    (LaplaceKernel(), 230_000, 0.690),
    (StokesKernel(), 230_000, 2.070),
]
HEADERS = ("unknowns(B)", "Total", "Ratio", "Comm", "Up", "Down",
           "Avg", "Peak", "Gen/Comm")


def _model_rows(cap):
    rows = []
    for kernel, grain, unknowns_b in CASES:
        n_target = grain * P
        n_model = min(n_target, cap)
        pts = sphere_grid_points(n_model)
        tree = build_tree(pts, max_points=120)  # s = 120 in these runs
        lists = build_lists(tree)
        work = compute_work(tree, lists, kernel, 6, m2l="fft")
        r = simulate_run(
            tree, lists, kernel, 6, P, TCS1, m2l="fft", work=work,
            grain_scale=n_target / pts.shape[0], n_override=n_target,
        )
        rows.append(
            (unknowns_b, r.total, round(r.ratio, 1), r.comm, r.up, r.down,
             r.gflops_avg, r.gflops_peak, r.tree_seconds)
        )
    return rows


def test_table43(benchmark, bench_scale):
    rows = benchmark.pedantic(
        _model_rows, args=(bench_scale["cap"],), rounds=1, iterations=1
    )
    print_comparison(
        f"Table 4.3 (3000 processors, s=120, model cap {bench_scale['cap']:,})",
        HEADERS,
        [tuple(r) for r in TABLE43],
        rows,
    )
    # shape: the Stokes run sustains the highest aggregate rate (the
    # paper's 1.13 Tflops/s headline) and the largest total time
    avg_rates = [r[6] for r in rows]
    totals = [r[1] for r in rows]
    assert avg_rates[2] == max(avg_rates)
    assert totals[2] == max(totals)
    # aggregate sustained rate in the sub-Tflops/s..Tflops/s regime
    assert 100.0 < avg_rates[2] < 3000.0
