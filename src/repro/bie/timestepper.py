"""Fluid-structure interaction time stepping — the Figure 4.1 scenario.

"The motion of a sphere under the influence of gravity and viscous forces
exerted by a Stokes fluid which is stirred by a clockwise rotating
propeller.  The solution of this problem requires a time stepping
procedure on an integro-differential system ... At each time step we
solve a linear system that requires tens of interaction calculations."

The driven body ("propeller", modelled as a rotating sphere) has a
prescribed rigid motion; the free body's velocity is determined by the
quasi-static force balance (drag equals gravity).  At every step:

1. With the free body's unknown velocity ``U``, the boundary condition is
   affine in ``U``; three unit-velocity solves plus one inhomogeneous
   solve give the drag as ``F(U) = A U + b`` (each solve is a GMRES loop
   whose matvecs are FMM interaction evaluations).
2. ``U`` solves the force balance ``A U + b = -F_gravity``.
3. Bodies advance (explicit Euler) and the FMM geometry is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bie.mobility import drag_force
from repro.bie.stokes_bie import StokesSingleLayer, solve_single_layer
from repro.bie.surfaces import RigidBody, rotation_matrix


@dataclass
class SimulationFrame:
    """State snapshot after one time step."""

    time: float
    positions: list[np.ndarray]
    free_velocity: np.ndarray
    matvecs: int


class SedimentationSimulation:
    """A free body sedimenting past driven (stirring) bodies.

    Parameters
    ----------
    bodies:
        Exactly one body with ``prescribed=False`` (the sedimenting
        sphere); the rest move with their given velocities/rotations.
    gravity_force:
        Net body force (weight minus buoyancy) on the free body.
    mu:
        Fluid viscosity.
    tol:
        Krylov tolerance of each BIE solve.
    use_fmm:
        Route the matvecs through the KIFMM (default) or directly.
    """

    def __init__(
        self,
        bodies: list[RigidBody],
        gravity_force: np.ndarray,
        mu: float = 1.0,
        tol: float = 1e-5,
        use_fmm: bool = True,
        options=None,
    ) -> None:
        free = [i for i, b in enumerate(bodies) if not b.prescribed]
        if len(free) != 1:
            raise ValueError(f"need exactly one free body, got {len(free)}")
        self.bodies = bodies
        self.free_index = free[0]
        self.gravity_force = np.asarray(gravity_force, dtype=np.float64)
        self.mu = mu
        self.tol = tol
        self.operator = StokesSingleLayer(
            [b.surface for b in bodies], mu=mu, use_fmm=use_fmm, options=options
        )
        self.time = 0.0
        self.frames: list[SimulationFrame] = []

    def _solve_free_velocity(self) -> np.ndarray:
        """Force balance: find U with drag(U) = -gravity_force."""
        op = self.operator
        slices = op.body_slices()
        fs = slices[self.free_index]

        # b: drag on the free body from the prescribed motion alone.
        u_bc = np.zeros((op.n, 3))
        for i, body in enumerate(self.bodies):
            if body.prescribed:
                u_bc[slices[i]] = body.surface_velocity()
        phi = solve_single_layer(op, u_bc, tol=self.tol)
        b = drag_force(op, phi, fs)

        # A: drag response to unit free-body velocities.
        A = np.zeros((3, 3))
        for d in range(3):
            u_unit = np.zeros((op.n, 3))
            u_unit[fs, d] = 1.0
            phi_d = solve_single_layer(op, u_unit, tol=self.tol)
            A[:, d] = drag_force(op, phi_d, fs)

        # A U + b is the force the body exerts on the fluid, so the drag
        # on the body is -(A U + b); the quasi-static balance
        # F_gravity - (A U + b) = 0 gives U.
        return np.linalg.solve(A, self.gravity_force - b)

    def step(self, dt: float) -> SimulationFrame:
        """Advance one time step; returns the recorded frame."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        U = self._solve_free_velocity()
        free = self.bodies[self.free_index]
        free.velocity = U
        for body in self.bodies:
            body.surface.translate(body.velocity * dt)
            omega = np.asarray(body.angular_velocity, dtype=np.float64)
            speed = np.linalg.norm(omega)
            if body.prescribed and speed > 0:
                body.surface.rotate(rotation_matrix(omega, speed * dt))
        self.time += dt
        self.operator.refresh_geometry()
        frame = SimulationFrame(
            time=self.time,
            positions=[b.surface.center.copy() for b in self.bodies],
            free_velocity=U.copy(),
            matvecs=self.operator.matvec_count,
        )
        self.frames.append(frame)
        return frame

    def run(self, nsteps: int, dt: float) -> list[SimulationFrame]:
        """Run ``nsteps`` steps; returns the trajectory frames."""
        for _ in range(nsteps):
            self.step(dt)
        return self.frames
