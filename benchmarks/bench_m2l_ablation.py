"""M2L ablation — FFT-accelerated vs dense vs rSVD-compressed
translations (Section 4, footnote 5).

"We could easily increase the flop rate by switching from the
algorithmically fast, but implementationally slower FFT M2L translations
to the slower direct evaluation.  But the speed gains are negligible
compared to the algorithmic savings."

This bench measures, on the real Python implementation: wall-clock time
of the interaction evaluation under all three M2L backends, their flop
volumes, and confirms the results agree.  The FFT variant needs fewer
flops per translation (the algorithmic saving); the dense variant runs
at a higher achieved flop rate (big matrix-matrix-like products) —
exactly the trade-off the footnote describes.  The rSVD backend sits
between the two: compressed factors cut the dense flop count while
keeping the BLAS-3 shape (and therefore the dense path's flop rate).

``python -m repro bench`` runs the fuller (kernel, p, N) ablation grid
and writes ``BENCH_m2l.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.util.tables import format_table

N = 6000

BACKENDS = ("fft", "dense", "rsvd")


def _run(kernel, m2l, p):
    rng = np.random.default_rng(47)
    pts = rng.uniform(-1, 1, size=(N, 3))
    phi = rng.standard_normal((N, kernel.source_dof))
    fmm = KIFMM(kernel, FMMOptions(p=p, max_points=60, m2l=m2l)).setup(pts)
    fmm.apply(phi)  # warm the operator caches
    fmm.flops.reset()
    t0 = time.perf_counter()
    u = fmm.apply(phi)
    dt = time.perf_counter() - t0
    return u, dt, fmm.flops.get("down_v")


@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
@pytest.mark.parametrize("p", [6, 8])
def test_m2l_ablation(benchmark, kernel, p):
    def run_all():
        return {m2l: _run(kernel, m2l, p) for m2l in BACKENDS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (m2l, t, f / 1e9, f / t / 1e9)
        for m2l, (_, t, f) in results.items()
    ]
    print()
    print(format_table(
        ("M2L", "eval sec", "V-list Gflop", "achieved GF/s"),
        rows,
        title=f"M2L ablation / {kernel.name}, p={p}, N={N}",
    ))
    u_dense, _, f_dense = results["dense"]
    # all backends agree up to roundoff amplified by the regularised
    # inversions (fft) or the compression tolerance ~1e-6 (rsvd) —
    # far below discretisation error either way
    for m2l in ("fft", "rsvd"):
        assert relative_error(results[m2l][0], u_dense) < 1e-5
    # the algorithmic saving: both accelerated backends need fewer
    # V-list flops than the dense operators
    assert results["fft"][2] < f_dense
    assert results["rsvd"][2] < f_dense
