"""Micro-batching asynchronous evaluation service.

The serving front door over the persistent multi-RHS operator: an
asyncio service that accepts single-density evaluation requests,
micro-batches them (max-batch / max-delay policy) into one blocked
multi-RHS apply per batch against a shared operator keyed by
``(kernel, level, p)``, and reports per-request latency percentiles and
throughput under a synthetic load generator.
"""

from repro.serve.load import LoadReport, run_load
from repro.serve.service import (
    EvaluationService,
    OperatorRegistry,
    ServiceStats,
    percentile_summary,
)

__all__ = [
    "EvaluationService",
    "LoadReport",
    "OperatorRegistry",
    "ServiceStats",
    "percentile_summary",
    "run_load",
]
