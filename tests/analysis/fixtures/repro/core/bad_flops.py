"""Fixture: unaccounted matmul in a function that carries a FlopCounter."""


def apply_operator(M, x, flops):
    # seeded violation: flops-accounted (no flops.add* despite matmul)
    return M @ x
