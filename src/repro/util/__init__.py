"""Shared utilities: phase timing, flop accounting, table rendering."""

from repro.util.flops import FlopCounter
from repro.util.timing import PhaseTimer
from repro.util.tables import format_table

__all__ = ["FlopCounter", "PhaseTimer", "format_table"]
