"""Targeted tests of the adaptive (W/X) code paths.

A two-scale distribution — a dense micro-cluster next to a sparse
background — guarantees non-empty W and X lists, so these tests fail
loudly if the adaptive translations regress (a uniform distribution
would never exercise them).
"""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import direct_evaluate, relative_error


@pytest.fixture
def two_scale(rng):
    cluster = np.array([0.9, 0.9, 0.9]) + 1e-3 * rng.standard_normal((200, 3))
    background = rng.uniform(-1, 1, size=(300, 3))
    return np.vstack([cluster, background])


def test_w_and_x_lists_are_exercised(rng, two_scale):
    fmm = KIFMM(LaplaceKernel(), FMMOptions(p=6, max_points=25)).setup(two_scale)
    counts = fmm.lists.counts()
    assert counts["W"] > 0 and counts["X"] > 0
    phi = rng.standard_normal((500, 1))
    fmm.apply(phi)
    flops = fmm.flops.by_phase()
    assert flops.get("down_w", 0) > 0
    assert flops.get("down_x", 0) > 0


@pytest.mark.parametrize("m2l", ["fft", "dense"])
def test_two_scale_accuracy(rng, two_scale, m2l):
    phi = rng.standard_normal((500, 1))
    fmm = KIFMM(
        LaplaceKernel(), FMMOptions(p=6, max_points=25, m2l=m2l)
    ).setup(two_scale)
    u = fmm.apply(phi)
    exact = direct_evaluate(LaplaceKernel(), two_scale, two_scale, phi)
    assert relative_error(u, exact) < 5e-4


def test_two_scale_vector_kernel(rng, two_scale):
    kernel = StokesKernel()
    phi = rng.standard_normal((500, 3))
    fmm = KIFMM(kernel, FMMOptions(p=6, max_points=25)).setup(two_scale)
    u = fmm.apply(phi)
    exact = direct_evaluate(kernel, two_scale, two_scale, phi)
    assert relative_error(u, exact) < 1e-3


def test_w_contribution_actually_matters(rng, two_scale):
    """Zeroing the cluster's sources must change far potentials via W/X.

    Sanity check that the adaptive lists carry real signal: compare the
    full evaluation against one where the micro-cluster is silenced.
    """
    kernel = LaplaceKernel()
    phi = np.ones((500, 1))
    phi_silenced = phi.copy()
    phi_silenced[:200] = 0.0
    fmm = KIFMM(kernel, FMMOptions(p=6, max_points=25)).setup(two_scale)
    u_full = fmm.apply(phi)
    u_sil = fmm.apply(phi_silenced)
    # background targets see the cluster: significant difference
    assert np.abs(u_full[200:] - u_sil[200:]).max() > 1.0
