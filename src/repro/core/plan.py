"""Precomputed level-batched execution plan for the multiplication phase.

The paper's parallel design "is designed to achieve maximum efficiency in
the multiplication phase" (Section 3): the tree and interaction lists are
built once per geometry, then reused across tens of interaction
evaluations (Krylov loops).  The seed evaluator walked boxes one at a
time in Python, so interpreter overhead — not flops — dominated
``KIFMM.apply()``.  This module flattens the tree and the U/V/W/X lists
into *level-major index arrays* once, in ``KIFMM.setup()``, so every
``apply()`` reduces to a short sequence of large vectorized operations:

- **Upward pass** — per level, one batched kernel-matrix block per chunk
  of concatenated leaf sources (S2M via segment-summed columns), one
  stacked GEMM per occupied child octant (M2M), and one stacked GEMM for
  the ``uc2ue`` inversion of every source box at the level.
- **M2L** — V-list pairs grouped by the ≤316 translation-offset classes
  of a level; FFT mode performs one batched ``rfftn`` over all needed
  source boxes, one Hadamard ``einsum`` per class, and one batched
  ``irfftn`` per level; dense mode performs one stacked GEMM per class.
- **Downward pass** — stacked GEMMs per (level, octant) for L2L and per
  level for ``dc2de``; L2T as chunked kernel blocks over concatenated
  leaf targets.
- **Near field** — U/W/X interactions evaluated with one kernel matrix
  per *target box* over the concatenated partner sources (instead of one
  per box *pair*).

The batched S2M/L2T stages shift points into the box-local frame so all
boxes of a level share one check/equivalent surface; this assumes the
kernel is translation invariant (``G(x + t, y + t) = G(x, y)``), which
every kernel of a constant-coefficient elliptic PDE satisfies — see
:attr:`repro.kernels.base.Kernel.translation_invariant`.  Kernels that
declare otherwise fall back to the per-box ("naive") evaluator.

All gating in the plan is *density independent*: a box carries an upward
density iff it holds sources, and carries downward data iff it (or an
ancestor) receives a V- or X-list contribution from a source-bearing
box.  The plan therefore encodes exactly the boxes the per-box evaluator
would have touched, and the two paths produce identical flop statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree.lists import InteractionLists
from repro.octree.tree import Octree

#: Soft cap on the scalar entries of one batched kernel matrix; level-wide
#: S2M/L2T/U blocks are split into chunks that respect it, bounding the
#: transient memory of an ``apply()`` regardless of problem size.
MAX_BLOCK_ENTRIES = 2_000_000

#: Child-anchor offset of each octant (row ``o`` satisfies
#: ``anchor(child) = 2 * anchor(parent) + OCTANT_VECTORS[o]`` for the
#: octant numbering ``o = x | y << 1 | z << 2`` used throughout).
OCTANT_VECTORS = np.array(
    [[o & 1, (o >> 1) & 1, (o >> 2) & 1] for o in range(8)], dtype=np.int64
)


@dataclass(frozen=True)
class StageMeta:
    """Static dataflow declaration of one plan-stage class.

    ``reads``/``writes`` name the *buffer families* the stage touches
    during an apply (``"phi"``, ``"check"``, ``"ue"``, ``"vhat"``,
    ``"dc"``, ``"de"``, ``"ext_phi"``, ``"pot"``); concrete IR regions
    are per level or per ownership split (``"ue@3"``, ``"ue:ghost"``).
    ``dtype`` is the dtype family of the stage's persistent outputs.

    The plan-IR extractor (:mod:`repro.analysis.planir`) cross-checks
    every emitted IR node against its stage's declaration, and the
    ``stage-metadata`` lint rule rejects any :func:`plan_stage` class
    that does not declare a complete ``StageMeta``.
    """

    reads: tuple[str, ...]
    writes: tuple[str, ...]
    dtype: str


#: Registry of plan-stage classes, by class name.  Populated by
#: :func:`plan_stage`; consumed by the static plan verifier.
PLAN_STAGES: dict[str, type] = {}


def plan_stage(cls: type) -> type:
    """Register ``cls`` as a plan stage (requires ``stage_meta``).

    Validation happens at class-creation time so an incomplete stage
    declaration is an import error, not a latent verifier blind spot.
    """
    meta = cls.__dict__.get("stage_meta")
    if not isinstance(meta, StageMeta):
        raise TypeError(
            f"plan stage {cls.__name__!r} must declare a "
            f"`stage_meta = StageMeta(...)` class attribute"
        )
    if not (meta.reads or meta.writes) or not meta.dtype:
        raise TypeError(
            f"plan stage {cls.__name__!r} metadata must name at least one "
            f"read or write buffer family and a dtype"
        )
    PLAN_STAGES[cls.__name__] = cls
    return cls


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], stops[i])`` as one int64 array.

    Empty ranges are skipped.  The classic cumsum construction — no
    Python-level loop over the ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    counts = stops - starts
    keep = counts > 0
    starts, counts = starts[keep], counts[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


def chunk_segments(seg: np.ndarray, max_points: int) -> list[tuple[int, int]]:
    """Split CSR segments into runs of at most ``max_points`` points.

    ``seg`` holds cumulative point offsets (length ``nsegments + 1``).
    Returns ``(lo, hi)`` segment-index ranges; a single segment larger
    than ``max_points`` gets its own run (never split).
    """
    n = len(seg) - 1
    out: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        hi = int(np.searchsorted(seg, seg[lo] + max_points, side="right")) - 1
        hi = min(max(hi, lo + 1), n)
        out.append((lo, hi))
        lo = hi
    return out


class BufferPool:
    """Grow-only scratch buffers, zeroed in place on reuse.

    The per-box evaluator allocated a fresh accumulator per box per
    ``apply()``; the planned evaluator instead draws its level-wide work
    arrays from this pool, which lives on the plan and is reused across
    the many ``apply()`` calls of a Krylov loop.

    Under the sanitizer (``REPRO_SANITIZE=1`` / ``FMMOptions.sanitize``;
    the evaluator toggles :attr:`sanitize` per apply) the pool enforces
    a lifecycle: :meth:`release` poisons a dead buffer with NaN — any
    stale read then trips the evaluator's phase-boundary finite checks —
    and records the release so :meth:`check_live` catches
    use-after-release and a second :meth:`release` is a hard error.
    Drawing a released name again (``zeros``/``empty``) reacquires it.
    """

    def __init__(self) -> None:
        self._store: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._released: set[str] = set()
        #: Toggled by the evaluator at apply entry; lifecycle methods
        #: are no-ops when False so unsanitized runs pay nothing.
        self.sanitize = False

    def zeros(self, name: str, shape: tuple[int, ...], dtype=np.float64):
        """A zeroed array of ``shape`` backed by a reusable buffer."""
        view = self.empty(name, shape, dtype)
        view[...] = 0
        return view

    def empty(self, name: str, shape: tuple[int, ...], dtype=np.float64):
        """Like :meth:`zeros` but uninitialised (caller overwrites fully)."""
        dt = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64))
        self._released.discard(name)
        buf = self._store.get((name, dt))
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 1), dtype=dt)
            self._store[(name, dt)] = buf
        return buf[:size].reshape(shape)

    def release(self, name: str) -> None:
        """Declare ``name`` dead for the rest of this apply.

        Sanitize-only: poisons every dtype variant of the buffer with
        NaN (inexact dtypes; integer scratch cannot carry a poison
        value) and raises
        :class:`~repro.analysis.sanitize.DoubleReleaseError` on a
        repeated release without reacquisition.  Unknown names are
        ignored so callers can release mode-dependent scratch
        unconditionally.
        """
        if not self.sanitize:
            return
        entries = [
            (dt, buf) for (n, dt), buf in self._store.items() if n == name
        ]
        if not entries:
            return
        if name in self._released:
            from repro.analysis.sanitize import DoubleReleaseError

            raise DoubleReleaseError(
                f"pool buffer {name!r} released twice without "
                f"reacquisition"
            )
        for dt, buf in entries:
            if np.issubdtype(dt, np.inexact):
                buf.fill(np.nan)
        self._released.add(name)

    def check_live(self, name: str, context: str = "") -> None:
        """Raise ``UseAfterReleaseError`` if ``name`` is released."""
        if name in self._released:
            from repro.analysis.sanitize import UseAfterReleaseError

            where = f" in {context}" if context else ""
            raise UseAfterReleaseError(
                f"pool buffer {name!r} used{where} after release "
                f"(its contents are NaN-poisoned)"
            )

    def allocations(self):
        """The raw backing buffers (for aliasing/escape checks)."""
        return self._store.values()

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._store.values())


@plan_stage
@dataclass
class UpLevel:
    """Upward-pass work at one level (source boxes only).

    ``boxes`` are the level's source-bearing boxes — the rows of the
    level's stacked check-potential block.  ``s2m_*`` describe the leaf
    rows: concatenated box-frame source coordinates, their positions in
    the Morton-sorted source order, and the per-leaf point offsets.
    ``m2m_groups`` stack the children (at ``level + 1``) by octant;
    ``rows`` are positions into ``boxes`` of the receiving parents.
    """

    level: int
    boxes: np.ndarray
    s2m_rows: np.ndarray
    s2m_pts: np.ndarray
    s2m_src_pos: np.ndarray
    s2m_seg: np.ndarray
    m2m_groups: list[tuple[int, np.ndarray, np.ndarray]]

    stage_meta = StageMeta(
        reads=("phi", "ue"), writes=("check", "ue"), dtype="float64"
    )


@plan_stage
@dataclass
class VLevel:
    """All effective V-list pairs of one level, grouped two ways.

    ``src_boxes``/``trg_boxes`` are the unique source (forward-FFT) and
    target (inverse-FFT / accumulator) boxes.  Each class is
    ``(offset, src_pos, trg_pos)`` with positions into those arrays; for
    a fixed offset every target appears at most once, so class
    accumulation is a plain fancy-indexed ``+=``.

    ``po_groups`` regroup the same pairs by *parent* pair for the blocked
    Hadamard stage: one entry per parent-anchor offset (≤26 directions),
    holding the ``(npp, 8)`` positions of the eight child octants of
    every unique (target-parent, source-parent) pair of that direction.
    Missing or inactive children point at the sentinel rows
    ``len(src_boxes)`` / ``len(trg_boxes)`` (a zero source row and a
    discarded target row), so a block covers exactly the effective pairs.
    Within one group every target parent occurs once, hence every target
    child row occurs at most once and fancy ``+=`` stays exact.
    """

    level: int
    src_boxes: np.ndarray
    trg_boxes: np.ndarray
    classes: list[tuple[tuple[int, int, int], np.ndarray, np.ndarray]]
    po_groups: list[tuple[tuple[int, int, int], np.ndarray, np.ndarray]]

    stage_meta = StageMeta(
        reads=("ue", "vhat"), writes=("vhat", "dc"), dtype="float64"
    )

    @property
    def npairs(self) -> int:
        return sum(len(s) for _, s, _ in self.classes)


@plan_stage
@dataclass
class DownLevel:
    """Downward-pass work at one level (target boxes only).

    ``l2l_groups`` stack the level's boxes by octant against their
    parents; ``dc_boxes`` are the boxes carrying downward data (the
    ``dc2de`` rows); ``l2t_*`` describe the leaf targets (box-frame
    coordinates, sorted-order positions, per-leaf offsets); ``x_*`` hold,
    per X-list target box, the concatenated sorted positions of the
    partner sources.
    """

    level: int
    l2l_groups: list[tuple[int, np.ndarray, np.ndarray]]
    dc_boxes: np.ndarray
    l2t_boxes: np.ndarray
    l2t_pts: np.ndarray
    l2t_trg_pos: np.ndarray
    l2t_seg: np.ndarray
    x_boxes: np.ndarray
    x_seg: np.ndarray
    x_src_pos: np.ndarray

    stage_meta = StageMeta(
        reads=("phi", "ext_phi", "dc", "de"),
        writes=("dc", "de", "pot"),
        dtype="float64",
    )


@dataclass
class ExecutionPlan:
    """Flattened tree + interaction lists, ready for batched evaluation.

    Built once per geometry by :func:`build_plan`; consumed by
    :func:`repro.core.evaluator.evaluate_planned`.  Every array indexes
    either boxes (tree order) or points (Morton-sorted order); densities
    and potentials are carried in sorted order inside the evaluator and
    permuted once at entry/exit.
    """

    nboxes: int
    depth: int
    levels: np.ndarray
    centers: np.ndarray
    sources_sorted: np.ndarray
    targets_sorted: np.ndarray
    up_levels: list[UpLevel]
    v_levels: list[VLevel]
    down_levels: list[DownLevel]
    # U list: per target leaf, concatenated partner sources.
    u_boxes: np.ndarray
    u_trg_start: np.ndarray
    u_trg_stop: np.ndarray
    u_seg: np.ndarray
    u_src_pos: np.ndarray
    # W list: per target leaf, partner boxes (their equivalent surfaces).
    w_boxes: np.ndarray
    w_trg_start: np.ndarray
    w_trg_stop: np.ndarray
    w_seg: np.ndarray
    w_idx: np.ndarray
    buffers: BufferPool = field(default_factory=BufferPool, repr=False)

    def statistics(self) -> dict[str, float]:
        """Plan-shape summary (batch sizes drive achievable throughput)."""
        nclasses = sum(len(vl.classes) for vl in self.v_levels)
        npairs = sum(vl.npairs for vl in self.v_levels)
        nparent = sum(
            sum(len(rows) for _, rows, _ in vl.po_groups)
            for vl in self.v_levels
        )
        return {
            "plan_up_levels": len(self.up_levels),
            "plan_down_levels": len(self.down_levels),
            "plan_v_classes": nclasses,
            "plan_v_pairs": npairs,
            "plan_v_parent_pairs": nparent,
            "plan_u_boxes": int(self.u_boxes.size),
            "plan_u_sources": int(self.u_seg[-1]) if self.u_seg.size else 0,
            "plan_w_pairs": int(self.w_idx.size),
            "plan_buffer_bytes": self.buffers.nbytes(),
        }


@plan_stage
@dataclass
class NearBlocks:
    """Per-target-box grouping of near-field (U/W/X style) pairs.

    ``boxes`` are the unique target boxes; ``seg`` holds cumulative
    partner-point (or partner-box) offsets; ``src_pos`` concatenates the
    partner point positions (U/X) or partner box indices (W).
    """

    boxes: np.ndarray
    trg_start: np.ndarray
    trg_stop: np.ndarray
    seg: np.ndarray
    src_pos: np.ndarray

    stage_meta = StageMeta(
        reads=("phi", "ext_phi", "ue"), writes=("pot",), dtype="float64"
    )


def build_near_blocks(
    trg: np.ndarray,
    src: np.ndarray,
    p_start: np.ndarray,
    p_stop: np.ndarray,
    trg_start: np.ndarray,
    trg_stop: np.ndarray,
) -> NearBlocks:
    """Group (target box, partner box) pairs by target box.

    ``trg``/``src`` must arrive grouped by target (CSR order);
    ``p_start``/``p_stop`` define each partner box's point range in
    whatever point numbering the caller evaluates against (the local
    Morton-sorted sources, or a rank's combined ghost array).
    """
    boxes = np.unique(trg)
    src_pos = multi_arange(p_start[src], p_stop[src])
    counts = np.zeros(boxes.size, dtype=np.int64)
    np.add.at(counts, np.searchsorted(boxes, trg), p_stop[src] - p_start[src])
    seg = np.zeros(boxes.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg[1:])
    return NearBlocks(boxes, trg_start[boxes], trg_stop[boxes], seg, src_pos)


def build_w_blocks(
    trg: np.ndarray,
    partners: np.ndarray,
    trg_start: np.ndarray,
    trg_stop: np.ndarray,
) -> NearBlocks:
    """Group W-list pairs by target box (partners kept as box indices)."""
    boxes = np.unique(trg)
    counts = np.bincount(
        np.searchsorted(boxes, trg), minlength=boxes.size
    ).astype(np.int64)
    seg = np.zeros(boxes.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg[1:])
    return NearBlocks(boxes, trg_start[boxes], trg_stop[boxes], seg, partners)


def build_plan(
    tree: Octree,
    lists: InteractionLists,
    *,
    partner_nsrc: np.ndarray | None = None,
    ext_ranges: tuple[np.ndarray, np.ndarray] | None = None,
) -> ExecutionPlan:
    """Flatten ``tree`` and ``lists`` into an :class:`ExecutionPlan`.

    Parameters
    ----------
    partner_nsrc:
        Optional per-box source counts used to gate *downward* partners
        (V/W/X/U source boxes).  The parallel evaluator passes the
        global counts of its :class:`~repro.parallel.ptree.ParallelTree`
        so a rank's plan covers partners whose sources live on other
        ranks; the upward pass always gates on the tree's own (local)
        counts, matching the paper's partial upward densities.
    ext_ranges:
        Optional ``(start, stop)`` per-box point ranges replacing the
        tree's local source ranges for U/X partner positions.  The
        parallel evaluator passes the layout of its combined
        local+ghost source array; sequential callers omit it.
    """
    nb = tree.nboxes
    boxes = tree.boxes
    level_of = np.fromiter((b.level for b in boxes), np.int64, nb)
    parent = np.fromiter((b.parent for b in boxes), np.int64, nb)
    is_leaf = np.fromiter((b.is_leaf for b in boxes), bool, nb)
    nsrc = np.fromiter((b.nsrc for b in boxes), np.int64, nb)
    ntrg = np.fromiter((b.ntrg for b in boxes), np.int64, nb)
    src_start = np.fromiter((b.src_start for b in boxes), np.int64, nb)
    src_stop = np.fromiter((b.src_stop for b in boxes), np.int64, nb)
    trg_start = np.fromiter((b.trg_start for b in boxes), np.int64, nb)
    trg_stop = np.fromiter((b.trg_stop for b in boxes), np.int64, nb)
    anchors = np.array([b.anchor for b in boxes], dtype=np.int64).reshape(nb, 3)
    octant = (anchors[:, 0] & 1) | ((anchors[:, 1] & 1) << 1) | (
        (anchors[:, 2] & 1) << 2
    )
    side = tree.root_side / np.power(2.0, level_of)
    centers = tree.root_corner[None, :] + (anchors + 0.5) * side[:, None]
    sources_sorted = np.ascontiguousarray(tree.sources[tree.src_perm])
    targets_sorted = np.ascontiguousarray(tree.targets[tree.trg_perm])
    nsrc_act = nsrc if partner_nsrc is None else np.asarray(partner_nsrc)
    p_start, p_stop = (src_start, src_stop) if ext_ranges is None else ext_ranges

    # ---------------- upward pass ----------------
    up_levels: list[UpLevel] = []
    for level in range(tree.depth, -1, -1):
        lvl = np.asarray(tree.levels[level], dtype=np.int64)
        sel = lvl[nsrc[lvl] > 0]  # level arrays are ascending by box index
        if sel.size == 0:
            continue
        leaf_sel = sel[is_leaf[sel]]
        starts, stops = src_start[leaf_sel], src_stop[leaf_sel]
        counts = stops - starts
        s2m_src_pos = multi_arange(starts, stops)
        s2m_seg = np.zeros(leaf_sel.size + 1, dtype=np.int64)
        np.cumsum(counts, out=s2m_seg[1:])
        s2m_pts = sources_sorted[s2m_src_pos] - np.repeat(
            centers[leaf_sel], counts, axis=0
        )
        groups: list[tuple[int, np.ndarray, np.ndarray]] = []
        nonleaf = sel[~is_leaf[sel]]
        if nonleaf.size:
            kids = np.concatenate(
                [np.asarray(boxes[b].children, dtype=np.int64) for b in nonleaf]
            )
            kids = kids[nsrc[kids] > 0]
            rows = np.searchsorted(sel, parent[kids])
            for o in range(8):
                m = octant[kids] == o
                if m.any():
                    groups.append((o, kids[m], rows[m]))
        up_levels.append(
            UpLevel(
                level=level,
                boxes=sel,
                s2m_rows=np.searchsorted(sel, leaf_sel),
                s2m_pts=s2m_pts,
                s2m_src_pos=s2m_src_pos,
                s2m_seg=s2m_seg,
                m2m_groups=groups,
            )
        )

    # ---------------- downward gating ----------------
    v_ptr, v_idx = lists.flat("V")
    x_ptr, x_idx = lists.flat("X")
    v_trg = np.repeat(np.arange(nb), np.diff(v_ptr))
    x_trg = np.repeat(np.arange(nb), np.diff(x_ptr))
    v_good = nsrc_act[v_idx] > 0
    x_good = nsrc_act[x_idx] > 0
    own = np.zeros(nb, dtype=bool)
    if v_trg.size:
        own |= np.bincount(v_trg[v_good], minlength=nb).astype(bool)
    if x_trg.size:
        own |= np.bincount(x_trg[x_good], minlength=nb).astype(bool)
    # A box carries downward data iff it has targets and it — or an
    # ancestor — receives a V/X contribution (the evaluator's has_dc /
    # has_de gating; boxes are in level order, so parents come first).
    has_de = np.zeros(nb, dtype=bool)
    for b in boxes:
        i = b.index
        if b.level >= 1 and ntrg[i] > 0:
            has_de[i] = own[i] or has_de[parent[i]]

    # ---------------- V levels, grouped by translation-offset class ----
    # Child lookup by (parent, octant); -1 where the child is absent.
    child_tab = np.full((nb, 8), -1, dtype=np.int64)
    nonroot = np.flatnonzero(parent >= 0)
    child_tab[parent[nonroot], octant[nonroot]] = nonroot

    vmask = (ntrg[v_trg] > 0) & v_good
    vt_all, vs_all = v_trg[vmask], v_idx[vmask]
    vt_level = level_of[vt_all]
    v_levels: list[VLevel] = []
    for level in range(2, tree.depth + 1):
        m = vt_level == level
        if not m.any():
            continue
        t, s = vt_all[m], vs_all[m]
        src_boxes = np.unique(s)
        trg_boxes = np.unique(t)
        src_pos = np.searchsorted(src_boxes, s)
        trg_pos = np.searchsorted(trg_boxes, t)
        off = anchors[t] - anchors[s]  # components in [-3, 3]
        key = (off[:, 0] + 3) * 49 + (off[:, 1] + 3) * 7 + (off[:, 2] + 3)
        order = np.argsort(key, kind="stable")
        sk = key[order]
        starts = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
        bounds = np.append(starts, sk.size)
        classes = []
        for ci in range(starts.size):
            rows = order[bounds[ci] : bounds[ci + 1]]
            k = int(sk[bounds[ci]])
            offset = (k // 49 - 3, (k % 49) // 7 - 3, k % 7 - 3)
            classes.append((offset, src_pos[rows], trg_pos[rows]))

        # Parent-pair blocks: the unique (parent(t), parent(s)) pairs
        # grouped by their anchor offset.  Every effective pair belongs
        # to exactly one parent pair, and every child pair of a parent
        # pair whose offset is non-adjacent is itself an effective pair
        # (or points at a sentinel row when the child is absent/inactive).
        src_row_of = np.full(nb + 1, src_boxes.size, dtype=np.int64)
        src_row_of[src_boxes] = np.arange(src_boxes.size)
        trg_row_of = np.full(nb + 1, trg_boxes.size, dtype=np.int64)
        trg_row_of[trg_boxes] = np.arange(trg_boxes.size)
        pair_key = parent[t] * nb + parent[s]
        uniq = np.unique(pair_key)
        upt, ups = uniq // nb, uniq % nb
        po = anchors[upt] - anchors[ups]  # components in [-1, 1], never 0
        pkey = (po[:, 0] + 1) * 9 + (po[:, 1] + 1) * 3 + (po[:, 2] + 1)
        porder = np.argsort(pkey, kind="stable")
        spk = pkey[porder]
        pstarts = np.flatnonzero(np.r_[True, spk[1:] != spk[:-1]])
        pbounds = np.append(pstarts, spk.size)
        po_groups = []
        for gi in range(pstarts.size):
            rows = porder[pbounds[gi] : pbounds[gi + 1]]
            k = int(spk[pbounds[gi]])
            po_vec = (k // 9 - 1, (k // 3) % 3 - 1, k % 3 - 1)
            # child_tab == -1 wraps to the last (sentinel) row entry.
            src_rows = src_row_of[child_tab[ups[rows]]]
            trg_rows = trg_row_of[child_tab[upt[rows]]]
            po_groups.append((po_vec, src_rows, trg_rows))
        v_levels.append(VLevel(level, src_boxes, trg_boxes, classes, po_groups))

    # ---------------- downward levels ----------------
    xmask = (ntrg[x_trg] > 0) & x_good
    xt_all, xs_all = x_trg[xmask], x_idx[xmask]  # CSR order: grouped by target
    down_levels: list[DownLevel] = []
    for level in range(1, tree.depth + 1):
        lvl = np.asarray(tree.levels[level], dtype=np.int64)
        act = lvl[ntrg[lvl] > 0]
        if act.size == 0:
            continue
        l2l_sel = act[has_de[parent[act]]]
        groups = []
        for o in range(8):
            m = octant[l2l_sel] == o
            if m.any():
                groups.append((o, l2l_sel[m], parent[l2l_sel[m]]))
        l2t_sel = act[is_leaf[act] & has_de[act]]
        tstarts, tstops = trg_start[l2t_sel], trg_stop[l2t_sel]
        tcounts = tstops - tstarts
        l2t_seg = np.zeros(l2t_sel.size + 1, dtype=np.int64)
        np.cumsum(tcounts, out=l2t_seg[1:])
        l2t_trg_pos = multi_arange(tstarts, tstops)
        l2t_pts = targets_sorted[l2t_trg_pos] - np.repeat(
            centers[l2t_sel], tcounts, axis=0
        )
        lm = level_of[xt_all] == level
        xt, xs = xt_all[lm], xs_all[lm]  # ascending, matching CSR pair order
        xb = build_near_blocks(xt, xs, p_start, p_stop, trg_start, trg_stop)
        down_levels.append(
            DownLevel(
                level=level,
                l2l_groups=groups,
                dc_boxes=act[has_de[act]],
                l2t_boxes=l2t_sel,
                l2t_pts=l2t_pts,
                l2t_trg_pos=l2t_trg_pos,
                l2t_seg=l2t_seg,
                x_boxes=xb.boxes,
                x_seg=xb.seg,
                x_src_pos=xb.src_pos,
            )
        )

    # ---------------- U list (per target leaf) ----------------
    u_ptr, u_idx = lists.flat("U")
    u_trg_rep = np.repeat(np.arange(nb), np.diff(u_ptr))
    um = (ntrg[u_trg_rep] > 0) & (nsrc_act[u_idx] > 0)
    # CSR order: grouped by target leaf
    ub = build_near_blocks(
        u_trg_rep[um], u_idx[um], p_start, p_stop, trg_start, trg_stop
    )

    # ---------------- W list (per target leaf) ----------------
    w_ptr, w_idx_all = lists.flat("W")
    w_trg_rep = np.repeat(np.arange(nb), np.diff(w_ptr))
    wm = (ntrg[w_trg_rep] > 0) & (nsrc_act[w_idx_all] > 0)
    wb = build_w_blocks(w_trg_rep[wm], w_idx_all[wm], trg_start, trg_stop)

    return ExecutionPlan(
        nboxes=nb,
        depth=tree.depth,
        levels=level_of,
        centers=centers,
        sources_sorted=sources_sorted,
        targets_sorted=targets_sorted,
        up_levels=up_levels,
        v_levels=v_levels,
        down_levels=down_levels,
        u_boxes=ub.boxes,
        u_trg_start=ub.trg_start,
        u_trg_stop=ub.trg_stop,
        u_seg=ub.seg,
        u_src_pos=ub.src_pos,
        w_boxes=wb.boxes,
        w_trg_start=wb.trg_start,
        w_trg_stop=wb.trg_stop,
        w_seg=wb.seg,
        w_idx=wb.src_pos,
    )
