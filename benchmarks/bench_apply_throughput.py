"""Throughput of ``setup()`` vs repeated ``apply()`` (PR tracking bench).

The paper's parallel implementation "is designed to achieve maximum
efficiency in the multiplication phase" (Section 3): one geometry setup
is amortised over tens of interaction evaluations inside Krylov loops.
This bench records, for Laplace and Stokes at N in {2k, 20k}:

- ``setup()`` wall-clock (tree + lists + operators + execution plan),
- mean ``apply()`` wall-clock and points/second, per evaluator phase,
- the speedup of the planned ("batched") evaluator over the seed's
  per-box ("naive") path on identical inputs.

Results land in ``BENCH_apply.json`` at the repository root so the
performance trajectory is tracked across PRs.  Run directly::

    python benchmarks/bench_apply_throughput.py [--quick] [--out PATH]

or through pytest (uses --quick sizes)::

    python -m pytest benchmarks/bench_apply_throughput.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.util.tables import format_table

_ROOT = Path(__file__).resolve().parent.parent
_KERNELS = {"laplace": LaplaceKernel, "stokes": StokesKernel}


def _measure(kernel_name: str, n: int, plan: str, napply: int) -> dict:
    """Setup once, apply ``napply`` times; return timings and phases."""
    kernel = _KERNELS[kernel_name]()
    rng = np.random.default_rng(2003)
    pts = rng.random((n, 3))
    phi = rng.standard_normal((n, kernel.source_dof))
    fmm = KIFMM(kernel, FMMOptions(plan=plan))
    t0 = time.perf_counter()
    fmm.setup(pts)
    t_setup = time.perf_counter() - t0
    u = fmm.apply(phi)  # warm operator caches / plan buffers
    fmm.timer.reset()
    t0 = time.perf_counter()
    for _ in range(napply):
        fmm.apply(phi)
    t_apply = (time.perf_counter() - t0) / napply
    phases = {
        k: round(v / napply, 6)
        for k, v in sorted(fmm.timer.by_phase().items())
        if k not in ("tree", "plan")
    }
    return {
        "kernel": kernel_name,
        "n": n,
        "plan": plan,
        "m2l": "fft",
        "applies": napply,
        "setup_seconds": round(t_setup, 4),
        "apply_seconds": round(t_apply, 4),
        "points_per_second": round(n / t_apply, 1),
        "phase_seconds": phases,
        "_potential": u,
    }


def run(quick: bool = False, out: Path | None = None) -> dict:
    sizes = [2_000] if quick else [2_000, 20_000]
    napply = 1 if quick else 3
    results = []
    for kernel_name in ("laplace", "stokes"):
        for n in sizes:
            batched = _measure(kernel_name, n, "batched", napply)
            # One naive apply is enough: it is the slow reference.
            naive = _measure(kernel_name, n, "naive", 1)
            agree = relative_error(
                batched.pop("_potential"), naive.pop("_potential")
            )
            batched["speedup_vs_naive"] = round(
                naive["apply_seconds"] / batched["apply_seconds"], 2
            )
            batched["relative_error_vs_naive"] = float(f"{agree:.3e}")
            results.append(batched)
            results.append(naive)
    report = {
        "bench": "apply_throughput",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "results": results,
    }
    rows = [
        (
            r["kernel"],
            r["n"],
            r["plan"],
            r["setup_seconds"],
            r["apply_seconds"],
            r["points_per_second"],
            r.get("speedup_vs_naive", ""),
        )
        for r in results
    ]
    print(format_table(
        ("kernel", "N", "plan", "setup s", "apply s", "pts/s", "speedup"),
        rows,
        title="apply() throughput (fft M2L, defaults p=6, s=60)",
    ))
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return report


def test_apply_throughput():
    """Bench smoke: the planned path must beat per-box and agree with it."""
    report = run(quick=True)
    for r in report["results"]:
        if r["plan"] == "batched":
            assert r["relative_error_vs_naive"] < 1e-10
            assert r["speedup_vs_naive"] > 1.0


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes, one apply per config")
    ap.add_argument("--out", type=Path, default=_ROOT / "BENCH_apply.json")
    args = ap.parse_args()
    run(quick=args.quick, out=args.out)
