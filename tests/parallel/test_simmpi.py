"""Simulated MPI runtime tests."""

import numpy as np
import pytest

from repro.parallel.simmpi import PerRank, run_spmd


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5))
                return None
            return comm.recv(0)

        results = run_spmd(2, main)
        assert np.array_equal(results[1], np.arange(5))

    def test_tags_demultiplex(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "beta", tag="b")
                comm.send(1, "alpha", tag="a")
                return None
            # receive in the opposite order of sending
            return comm.recv(0, tag="a"), comm.recv(0, tag="b")

        results = run_spmd(2, main)
        assert results[1] == ("alpha", "beta")

    def test_many_messages_preserve_order(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(1, i)
                return None
            return [comm.recv(0) for _ in range(50)]

        assert run_spmd(2, main)[1] == list(range(50))

    def test_invalid_rank_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(5, "x")

        with pytest.raises(ValueError):
            run_spmd(2, main)


class TestCollectives:
    @pytest.mark.parametrize("op,expected", [("sum", 6), ("max", 3), ("min", 0)])
    def test_allreduce_ops(self, op, expected):
        def main(comm):
            return comm.allreduce(np.array([comm.rank]), op=op)

        results = run_spmd(4, main)
        for r in results:
            assert r[0] == expected

    def test_allreduce_array_shape(self):
        def main(comm):
            return comm.allreduce(np.full((2, 3), comm.rank + 1.0))

        results = run_spmd(3, main)
        assert np.all(results[0] == 6.0)
        assert results[0].shape == (2, 3)

    def test_repeated_collectives_generation_safe(self):
        def main(comm):
            out = []
            for i in range(20):
                out.append(int(comm.allreduce(np.array([comm.rank + i]))[0]))
            return out

        results = run_spmd(3, main)
        expected = [3 * i + 3 for i in range(20)]
        assert results[0] == expected
        assert results[1] == expected

    def test_allgather(self):
        def main(comm):
            return comm.allgather(comm.rank * 10)

        results = run_spmd(4, main)
        assert results[2] == [0, 10, 20, 30]

    def test_unknown_op_raises(self):
        def main(comm):
            comm.allreduce(np.zeros(1), op="median")

        with pytest.raises(ValueError):
            run_spmd(2, main)


class TestRunner:
    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.size) == [1]

    def test_per_rank_arguments(self):
        def main(comm, mine, shared):
            return mine + shared

        results = run_spmd(3, main, PerRank([1, 2, 3]), 10)
        assert results == [11, 12, 13]

    def test_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 died"):
            run_spmd(3, main)

    def test_rejects_bad_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)


class TestStats:
    def test_traffic_accounting(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100), phase="ghost")
            else:
                comm.recv(0)
            comm.allreduce(np.zeros(10))
            return comm.stats

        stats = run_spmd(2, main)
        assert stats[0].messages_sent == 1
        assert stats[0].bytes_sent == 800
        assert stats[0].by_phase["ghost"] == 800
        assert stats[1].messages_sent == 0
        assert stats[0].allreduce_calls == 1
        assert stats[0].allreduce_bytes == 80
