"""Accuracy study — the paper's 1e-5 relative-error operating point.

Section 4: "the relative error in all experiments is 1e-5"; the
companion paper [25] controls accuracy through the surface order p.  This
bench sweeps p for every kernel, measuring the error against direct
summation and the *measured* wall time per interaction evaluation — the
accuracy/cost trade-off of the actual Python implementation (no machine
model involved).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import (
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
)
from repro.kernels.direct import direct_evaluate, relative_error
from repro.util.tables import format_table

KERNELS = {
    "laplace": LaplaceKernel(),
    "modified_laplace": ModifiedLaplaceKernel(lam=1.0),
    "stokes": StokesKernel(),
    "navier": NavierKernel(),
}
P_SWEEP = (2, 4, 6, 8)
N = 3000


def _sweep(kernel):
    rng = np.random.default_rng(45)
    pts = rng.uniform(-1, 1, size=(N, 3))
    phi = rng.random((N, kernel.source_dof))  # densities in [0,1], as in §4
    sample = rng.choice(N, size=400, replace=False)
    exact = direct_evaluate(kernel, pts[sample], pts, phi)
    rows = []
    for p in P_SWEEP:
        fmm = KIFMM(kernel, FMMOptions(p=p, max_points=60)).setup(pts)
        t0 = time.perf_counter()
        u = fmm.apply(phi)
        dt = time.perf_counter() - t0
        # subtract the self-interaction the "exact" sampling excludes:
        # both sides exclude coincident pairs, so compare directly
        err = relative_error(u[sample], exact)
        rows.append((p, err, dt))
    return rows


@pytest.mark.parametrize("name", list(KERNELS))
def test_accuracy_sweep(benchmark, name):
    kernel = KERNELS[name]
    rows = benchmark.pedantic(_sweep, args=(kernel,), rounds=1, iterations=1)
    print()
    print(format_table(
        ("p", "rel. error", "eval seconds"),
        rows,
        title=f"Accuracy sweep / {name} (N={N}, vs direct summation)",
    ))
    errs = [r[1] for r in rows]
    assert errs[-1] < errs[0], "error must decrease with p"
    assert errs[2] < 1e-4, "p=6 should deliver the paper's accuracy regime"


def test_paper_operating_point(benchmark):
    """p=6, s=60, Laplace: the configuration of the paper's experiments."""
    kernel = LaplaceKernel()
    rng = np.random.default_rng(46)
    pts = rng.uniform(-1, 1, size=(5000, 3))
    phi = rng.random((5000, 1))

    fmm = KIFMM(kernel, FMMOptions(p=6, max_points=60)).setup(pts)
    u = benchmark.pedantic(fmm.apply, args=(phi,), rounds=1, iterations=1)
    sample = rng.choice(5000, size=300, replace=False)
    exact = direct_evaluate(kernel, pts[sample], pts, phi)
    err = relative_error(u[sample], exact)
    print(f"\nLaplace p=6 s=60: relative error = {err:.2e} (paper: 1e-5)")
    assert err < 1e-5
