"""Stokes (Stokeslet) kernel tests."""

import numpy as np
import pytest

from repro.kernels import StokesKernel


@pytest.fixture
def kern():
    return StokesKernel(mu=1.0)


class TestValues:
    def test_block_structure(self, kern):
        x = np.array([[2.0, 0.0, 0.0]])
        y = np.zeros((1, 3))
        K = kern.matrix(x, y)
        assert K.shape == (3, 3)
        r = 2.0
        pref = 1.0 / (8.0 * np.pi)
        # r along x: G = pref (I/r + diag(r^2,0,0)/r^3)
        assert K[0, 0] == pytest.approx(pref * (1 / r + 1 / r))
        assert K[1, 1] == pytest.approx(pref / r)
        assert K[2, 2] == pytest.approx(pref / r)
        assert K[0, 1] == pytest.approx(0.0)

    def test_tensor_symmetry(self, kern, rng):
        """G_ij(x, y) = G_ji(x, y): the Oseen tensor is symmetric."""
        x = rng.standard_normal((1, 3))
        y = rng.standard_normal((1, 3)) + 4.0
        K = kern.matrix(x, y)
        assert np.allclose(K, K.T)

    def test_reciprocity(self, kern, rng):
        x = rng.standard_normal((4, 3))
        y = rng.standard_normal((5, 3)) + 3.0
        assert np.allclose(kern.matrix(x, y), kern.matrix(y, x).T)

    def test_viscosity_scaling(self, rng):
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((3, 3)) + 2.0
        K1 = StokesKernel(mu=1.0).matrix(x, y)
        K4 = StokesKernel(mu=4.0).matrix(x, y)
        assert np.allclose(K4, K1 / 4.0)

    def test_coincident_pair_is_zero(self, kern):
        pts = np.array([[0.1, 0.2, 0.3]])
        assert np.all(kern.matrix(pts, pts) == 0.0)


class TestPDE:
    def test_incompressibility(self, kern):
        """div_x u = 0 for the flow of a point force (FD check)."""
        y = np.zeros((1, 3))
        force = np.array([0.3, -1.0, 0.7])
        x0 = np.array([0.9, 0.5, -0.4])
        h = 1e-5

        def u(p):
            return kern.matrix(p.reshape(1, 3), y) @ force

        div = sum(
            (u(x0 + h * e)[i] - u(x0 - h * e)[i]) / (2 * h)
            for i, e in enumerate(np.eye(3))
        )
        assert abs(div) < 1e-6

    def test_momentum_balance(self, kern):
        """mu Delta u = grad p with p = r.f/(4 pi r^3) (FD check)."""
        y = np.zeros((1, 3))
        force = np.array([1.0, 0.0, 0.0])
        x0 = np.array([0.6, 0.3, 0.2])
        h = 2e-4

        def u(p):
            return kern.matrix(p.reshape(1, 3), y) @ force

        def pressure(p):
            r = np.linalg.norm(p)
            return p @ force / (4.0 * np.pi * r**3)

        lap_u = sum(
            u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0) for e in np.eye(3)
        ) / h**2
        grad_p = np.array(
            [
                (pressure(x0 + h * e) - pressure(x0 - h * e)) / (2 * h)
                for e in np.eye(3)
            ]
        )
        assert np.allclose(lap_u, grad_p, atol=1e-4)


class TestHomogeneity:
    def test_declared_degree_matches(self, kern, rng):
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((4, 3)) + 2.0
        a = 2.3
        assert np.allclose(
            kern.matrix(a * x, a * y), a**kern.homogeneity * kern.matrix(x, y)
        )


class TestInterface:
    def test_dofs(self, kern):
        assert kern.source_dof == 3
        assert kern.target_dof == 3

    def test_matrix_shape(self, kern, rng):
        K = kern.matrix(rng.standard_normal((4, 3)), rng.standard_normal((7, 3)))
        assert K.shape == (12, 21)

    def test_apply_matches_matrix(self, kern, rng):
        x = rng.standard_normal((6, 3))
        y = rng.standard_normal((5, 3))
        phi = rng.standard_normal((5, 3))
        u = kern.apply(x, y, phi, block=2)
        assert np.allclose(u.ravel(), kern.matrix(x, y) @ phi.ravel())

    def test_point_major_ordering(self, kern, rng):
        """Row t*3+i is component i of target t."""
        x = rng.standard_normal((2, 3))
        y = rng.standard_normal((1, 3)) + 5.0
        K = kern.matrix(x, y)
        K0 = kern.matrix(x[:1], y)
        K1 = kern.matrix(x[1:], y)
        assert np.allclose(K[:3], K0)
        assert np.allclose(K[3:], K1)

    def test_rejects_nonpositive_viscosity(self):
        with pytest.raises(ValueError):
            StokesKernel(mu=0.0)
