"""Exhaustive schedule-space model checking of the exchange protocol.

The static IR (:mod:`repro.analysis.commir`) fixes each rank's op
sequence; the runtime scheduler only chooses how the per-rank programs
interleave.  This module explores that schedule space *completely* for
small rank counts and proves two properties:

* **Deadlock-freedom everywhere** — not just along one schedule (the
  greedy execution of
  :func:`~repro.analysis.commcheck_static.check_deadlock`), but in
  every reachable scheduler state: no reachable non-final state has an
  empty enabled set.
* **Observable determinism** — every complete interleaving delivers
  the same data.  The argument: a channel ``(src, dst, tag)`` has a
  single sender and a single receiver, so the k-th completion on it
  always pairs with the k-th send — FIFO pairing is schedule-invariant,
  hence the payload every receive observes is too.  The explorer
  validates the premise at every state by checking *persistence*: an
  enabled transition of one rank stays enabled after any other rank's
  transition fires (sends/posts are always enabled; a completion's
  enabling condition — enough sends executed on its channel — is
  monotone).  With persistence certified at every reachable state, all
  interleavings are permutations of pairwise-independent transitions:
  one Mazurkiewicz trace class.

The state of the induced transition system is just the tuple of
per-rank program counters (channel send counts are a function of the
PCs), so dynamic-programming over reachable states counts the *exact*
number of interleavings — typically astronomically more than could be
run — while visiting each state once.  This is the sense in which the
check is exhaustive where :mod:`repro.analysis.commcheck` (one traced
schedule per seed) is a spot check.

:func:`bitwise_determinism` complements the model-level proof with an
end-to-end harness: the same problem solved under several randomized
runtime schedules must produce bitwise-identical potentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.commir import CommIR


@dataclass
class DporReport:
    """Result of exhaustively exploring one IR's schedule space."""

    nranks: int
    nops: int
    nstates: int
    ninterleavings: int
    nclasses: int
    deadlocks: list[str]
    persistence_violations: list[str]
    truncated: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (not self.deadlocks and not self.persistence_violations
                and not self.truncated)

    def summary(self) -> str:
        if self.truncated:
            return (
                f"dpor: INCOMPLETE — state budget exhausted after "
                f"{self.nstates} states (shrink the problem)"
            )
        if not self.ok:
            return (
                f"dpor: FAILED ({len(self.deadlocks)} deadlock(s), "
                f"{len(self.persistence_violations)} persistence "
                f"violation(s) in {self.nstates} states)"
            )
        count = self.ninterleavings
        shown = (
            f"{count}" if count < 10**9 else f"~10^{len(str(count)) - 1}"
        )
        return (
            f"dpor: certified — {shown} interleavings over "
            f"{self.nstates} states collapse to {self.nclasses} "
            f"observable class(es), 0 deadlocks"
        )


def _transition(ir: CommIR, pcs: list[int], sent: dict, rank: int):
    """Fire ``rank``'s next op in place; return an undo token."""
    op = ir.programs[rank][pcs[rank]]
    token = None
    if op.kind == "send":
        chan = (rank, op.peer, op.tag)
        sent[chan] = sent.get(chan, 0) + 1
        token = chan
    pcs[rank] += 1
    return token


def _undo(pcs: list[int], sent: dict, rank: int, token) -> None:
    pcs[rank] -= 1
    if token is not None:
        sent[token] -= 1


def _enabled(ir: CommIR, pcs, sent, recvd_by_pc, rank: int) -> bool:
    """Is ``rank``'s next op enabled in the current state?

    Sends and posts always are; a completion needs its FIFO-matched
    send executed.  The completion's ordinal on its channel is a pure
    function of the rank's PC (precomputed in ``recvd_by_pc``).
    """
    prog = ir.programs[rank]
    i = pcs[rank]
    if i >= len(prog):
        return False
    op = prog[i]
    if op.kind != "complete":
        return True
    chan = (op.peer, rank, op.tag)
    return sent.get(chan, 0) > recvd_by_pc[rank][i]


def _describe(ir: CommIR, pcs) -> str:
    parts = []
    for r, prog in enumerate(ir.programs):
        if pcs[r] >= len(prog):
            parts.append(f"rank {r}: done")
        else:
            op = prog[pcs[r]]
            parts.append(
                f"rank {r}: {op.kind} peer {op.peer} tag={op.tag!r}"
            )
    return "; ".join(parts)


def explore(ir: CommIR, *, max_states: int = 2_000_000) -> DporReport:
    """Exhaustively model-check the IR's full schedule space.

    Visits every reachable scheduler state once (memoized DFS over PC
    tuples), counts the exact number of interleavings by dynamic
    programming, records every deadlock state, and certifies
    persistence (see module docstring) at every state along the way.
    """
    import sys

    nranks = ir.nranks
    lens = [len(p) for p in ir.programs]
    depth_need = sum(lens) + 100
    if sys.getrecursionlimit() < depth_need:
        sys.setrecursionlimit(depth_need)
    # Completion ordinal per (rank, op index): how many completes on the
    # same channel precede this one in the rank's own program.
    recvd_by_pc: list[dict[int, int]] = []
    for rank, prog in enumerate(ir.programs):
        seen: dict[tuple, int] = {}
        ords: dict[int, int] = {}
        for i, op in enumerate(prog):
            if op.kind == "complete":
                chan = (op.peer, rank, op.tag)
                ords[i] = seen.get(chan, 0)
                seen[chan] = ords[i] + 1
        recvd_by_pc.append(ords)

    pcs = [0] * nranks
    sent: dict[tuple, int] = {}
    memo: dict[tuple, int] = {}
    deadlocks: list[str] = []
    violations: list[str] = []
    nstates = 0
    truncated = False

    def visit() -> int:
        nonlocal nstates, truncated
        key = tuple(pcs)
        hit = memo.get(key)
        if hit is not None:
            return hit
        nstates += 1
        if truncated or nstates > max_states:
            truncated = True
            memo[key] = 0
            return 0
        enabled = [
            r for r in range(nranks)
            if _enabled(ir, pcs, sent, recvd_by_pc, r)
        ]
        if not enabled:
            if all(pcs[r] == lens[r] for r in range(nranks)):
                memo[key] = 1
                return 1
            if len(deadlocks) < 5:
                deadlocks.append(_describe(ir, pcs))
            memo[key] = 0
            return 0
        # Persistence: firing one rank's transition must not disable
        # another rank's enabled transition (monotone enabling).
        if len(enabled) > 1 and len(violations) < 5:
            for r in enabled:
                token = _transition(ir, pcs, sent, r)
                for q in enabled:
                    if q != r and not _enabled(
                        ir, pcs, sent, recvd_by_pc, q
                    ):
                        violations.append(
                            f"firing rank {r} disabled rank {q} at "
                            f"state {key}"
                        )
                _undo(pcs, sent, r, token)
        total = 0
        for r in enabled:
            token = _transition(ir, pcs, sent, r)
            total += visit()
            _undo(pcs, sent, r, token)
        memo[key] = total
        return total

    count = visit()
    ok = not deadlocks and not violations and not truncated
    return DporReport(
        nranks=nranks,
        nops=sum(lens),
        nstates=nstates,
        ninterleavings=count,
        nclasses=1 if ok and count else (0 if not count else 1),
        deadlocks=deadlocks,
        persistence_violations=violations,
        truncated=truncated,
        meta=dict(ir.meta),
    )


def bitwise_determinism(
    kernel,
    points: np.ndarray,
    density: np.ndarray,
    opts,
    nranks: int,
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    overlap: bool = True,
) -> tuple[bool, float]:
    """End-to-end determinism: the same problem under several
    randomized runtime schedules must give bitwise-equal potentials.

    Returns ``(identical, max_abs_diff)``.
    """
    from repro.parallel.pfmm import run_parallel_fmm

    ref = None
    worst = 0.0
    identical = True
    for seed in seeds:
        pot = run_parallel_fmm(
            nranks, kernel, points, density, opts,
            schedule_seed=seed, overlap=overlap,
        ).potential
        if ref is None:
            ref = pot
            continue
        if not np.array_equal(ref, pot):
            identical = False
            worst = max(worst, float(np.max(np.abs(ref - pot))))
    return identical, worst
