"""A-posteriori accuracy estimation.

The paper reports "the relative error in all experiments is 1e-5",
measured the standard way: evaluate a subsample of targets by direct
summation and compare.  This module packages that procedure.
"""

from __future__ import annotations

import numpy as np

from repro.core.fmm import KIFMM
from repro.kernels.direct import direct_evaluate, relative_error


def estimate_error(
    fmm: KIFMM,
    density: np.ndarray,
    potential: np.ndarray | None = None,
    nsamples: int = 200,
    rng: np.random.Generator | None = None,
) -> float:
    """Relative L2 error of an FMM evaluation on a target subsample.

    Parameters
    ----------
    fmm:
        A set-up :class:`~repro.core.fmm.KIFMM`.
    density:
        The source densities that were (or will be) applied.
    potential:
        The FMM result; recomputed via ``fmm.apply`` when omitted.
    nsamples:
        Number of targets to verify by direct summation (cost is
        ``nsamples * N`` kernel evaluations).
    rng:
        Sampling source; defaults to a fresh default generator.

    Returns
    -------
    ``|u_fmm - u_direct| / |u_direct|`` over the sampled targets.
    """
    if fmm.tree is None:
        raise RuntimeError("call fmm.setup() first")
    if nsamples < 1:
        raise ValueError(f"nsamples must be >= 1, got {nsamples}")
    rng = rng or np.random.default_rng()
    if potential is None:
        potential = fmm.apply(density)
    targets = fmm.tree.targets
    nt = targets.shape[0]
    sample = (
        np.arange(nt)
        if nsamples >= nt
        else rng.choice(nt, size=nsamples, replace=False)
    )
    exact = direct_evaluate(fmm.kernel, targets[sample], fmm.tree.sources, density)
    approx = np.asarray(potential).reshape(nt, fmm.kernel.target_dof)[sample]
    return relative_error(approx, exact)
