"""Equivalent/check surface tests, including the Section 2.1 constraints."""

import numpy as np
import pytest

from repro.core.surfaces import (
    INNER_RADIUS,
    OUTER_RADIUS,
    n_surface_points,
    scaled_surface,
    surface_flat_indices,
    surface_grid,
    surface_lattice_indices,
)


class TestCounts:
    @pytest.mark.parametrize("p", [2, 3, 4, 6, 8, 10])
    def test_node_count_formula(self, p):
        expected = p**3 - (p - 2) ** 3
        assert n_surface_points(p) == expected
        assert surface_grid(p).shape == (expected, 3)
        assert surface_lattice_indices(p).shape == (expected, 3)
        assert surface_flat_indices(p).shape == (expected,)

    def test_p2_is_cube_corners(self):
        assert n_surface_points(2) == 8

    def test_rejects_small_p(self):
        with pytest.raises(ValueError):
            n_surface_points(1)
        with pytest.raises(ValueError):
            surface_grid(1)


class TestGeometry:
    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_all_nodes_on_boundary(self, p):
        g = surface_grid(p)
        on_face = np.isclose(np.abs(g), 1.0).any(axis=1)
        assert on_face.all()

    def test_grid_matches_lattice(self):
        p = 5
        idx = surface_lattice_indices(p)
        g = surface_grid(p)
        assert np.allclose(g, 2.0 * idx / (p - 1) - 1.0)

    def test_flat_indices_consistent(self):
        p = 4
        idx = surface_lattice_indices(p)
        flat = surface_flat_indices(p)
        assert np.array_equal(flat, idx[:, 0] * p * p + idx[:, 1] * p + idx[:, 2])

    def test_scaled_surface(self):
        center = np.array([1.0, 2.0, 3.0])
        pts = scaled_surface(4, center, half_width=0.5, radius=2.0)
        rel = (pts - center) / (0.5 * 2.0)
        assert np.abs(rel).max() == pytest.approx(1.0)
        assert pts.shape == (n_surface_points(4), 3)

    def test_scaled_surface_validation(self):
        with pytest.raises(ValueError):
            scaled_surface(4, np.zeros(3), half_width=0.0, radius=1.0)
        with pytest.raises(ValueError):
            scaled_surface(4, np.zeros(3), half_width=1.0, radius=-1.0)

    def test_cached_arrays_are_readonly(self):
        g = surface_grid(6)
        with pytest.raises(ValueError):
            g[0, 0] = 99.0


class TestPaperConstraints:
    """The placement constraints from the Section 2.1 'Summary'."""

    def test_radii_ordering(self):
        assert 1.0 < INNER_RADIUS < OUTER_RADIUS < 3.0

    def test_up_surfaces_between_box_and_far_range(self):
        # y^{B,u} (inner) and x^{B,u} (outer) lie between B (radius 1)
        # and F^B (radius 3); the check surface encloses the equivalent.
        assert INNER_RADIUS > 1.0 and OUTER_RADIUS < 3.0
        assert OUTER_RADIUS > INNER_RADIUS

    def test_parent_up_equiv_encloses_children(self):
        # child half width r/2 at offset r/2: its equivalent surface
        # reaches (0.5 + 0.5 * INNER) * r, which must be < INNER * r.
        child_extent = 0.5 + 0.5 * INNER_RADIUS
        assert child_extent < INNER_RADIUS

    def test_up_equiv_disjoint_from_v_list_down_check(self):
        # nearest V-list box center is 4r away; the target's downward
        # check surface (inner) and source's upward equivalent surface
        # (inner) must not intersect.
        assert INNER_RADIUS + INNER_RADIUS < 4.0

    def test_child_down_equiv_inside_parent_down_equiv(self):
        # child down equiv reaches (0.5 + 0.5 * OUTER) * R from the parent
        # center (R = parent half width); parent's is OUTER * R.
        child_extent = 0.5 + 0.5 * OUTER_RADIUS
        assert child_extent < OUTER_RADIUS

    def test_down_equiv_encloses_down_check(self):
        assert OUTER_RADIUS > INNER_RADIUS
