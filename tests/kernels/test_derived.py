"""Derived kernel tests: gradients and dipoles."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel
from repro.kernels.derived import (
    LaplaceDipoleKernel,
    LaplaceGradientKernel,
    ModifiedLaplaceDipoleKernel,
    ModifiedLaplaceGradientKernel,
    dipole_kernel_for,
    gradient_kernel_for,
)


def _fd_gradient(kernel, x0, y, h=1e-6):
    """Finite-difference gradient of the scalar kernel at the target."""
    g = np.zeros(3)
    for i, e in enumerate(np.eye(3)):
        up = kernel.matrix((x0 + h * e).reshape(1, 3), y)[0, 0]
        dn = kernel.matrix((x0 - h * e).reshape(1, 3), y)[0, 0]
        g[i] = (up - dn) / (2 * h)
    return g


class TestGradientKernels:
    @pytest.mark.parametrize(
        "base,grad",
        [
            (LaplaceKernel(), LaplaceGradientKernel()),
            (ModifiedLaplaceKernel(1.3), ModifiedLaplaceGradientKernel(1.3)),
        ],
        ids=["laplace", "modified_laplace"],
    )
    def test_matches_finite_differences(self, base, grad, rng):
        x0 = np.array([0.7, -0.3, 0.5])
        y = rng.standard_normal((1, 3)) + 3.0
        analytic = grad.matrix(x0.reshape(1, 3), y).ravel()
        assert np.allclose(analytic, _fd_gradient(base, x0, y), atol=1e-7)

    def test_shape_and_ordering(self, rng):
        k = LaplaceGradientKernel()
        x = rng.standard_normal((4, 3))
        y = rng.standard_normal((5, 3)) + 4.0
        K = k.matrix(x, y)
        assert K.shape == (12, 5)
        # row t*3+i is component i at target t
        single = k.matrix(x[2:3], y)
        assert np.allclose(K[6:9], single)

    def test_homogeneity(self, rng):
        k = LaplaceGradientKernel()
        x = rng.standard_normal((2, 3))
        y = rng.standard_normal((2, 3)) + 3.0
        assert np.allclose(k.matrix(2 * x, 2 * y), k.matrix(x, y) / 4.0)


class TestDipoleKernels:
    @pytest.mark.parametrize(
        "base,dip",
        [
            (LaplaceKernel(), LaplaceDipoleKernel()),
            (ModifiedLaplaceKernel(0.8), ModifiedLaplaceDipoleKernel(0.8)),
        ],
        ids=["laplace", "modified_laplace"],
    )
    def test_matches_finite_difference_dipole(self, base, dip, rng):
        """A dipole is the limit of two opposite charges."""
        x = rng.standard_normal((1, 3)) + 3.0
        y0 = np.zeros(3)
        d = np.array([0.3, -0.5, 0.8])
        h = 1e-6
        plus = base.matrix(x, (y0 + h * d / 2).reshape(1, 3))[0, 0]
        minus = base.matrix(x, (y0 - h * d / 2).reshape(1, 3))[0, 0]
        fd = (plus - minus) / h
        analytic = dip.matrix(x, y0.reshape(1, 3)) @ d
        assert analytic[0] == pytest.approx(fd, abs=1e-7)

    def test_gradient_dipole_duality(self, rng):
        """grad_y G = -grad_x G for translation-invariant kernels."""
        x = rng.standard_normal((3, 3))
        y = rng.standard_normal((4, 3)) + 4.0
        grad = LaplaceGradientKernel().matrix(x, y)  # (3nt, ns)
        dip = LaplaceDipoleKernel().matrix(x, y)  # (nt, 3ns)
        nt, ns = 3, 4
        g = grad.reshape(nt, 3, ns)
        d = dip.reshape(nt, ns, 3)
        assert np.allclose(d, -g.transpose(0, 2, 1))

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            ModifiedLaplaceDipoleKernel(lam=0.0)
        with pytest.raises(ValueError):
            ModifiedLaplaceGradientKernel(lam=-1.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(
            gradient_kernel_for(LaplaceKernel()), LaplaceGradientKernel
        )
        k = dipole_kernel_for(ModifiedLaplaceKernel(2.0))
        assert isinstance(k, ModifiedLaplaceDipoleKernel)
        assert k.lam == 2.0

    def test_unregistered_kernel_raises(self):
        with pytest.raises(ValueError):
            gradient_kernel_for(StokesKernel())
        with pytest.raises(ValueError):
            dipole_kernel_for(StokesKernel())
