"""Randomized SVD tests — determinism, accuracy, degenerate inputs.

The M2L compression path relies on three properties: a fixed seed makes
the factorisation bitwise reproducible (operator caches on different
ranks must agree exactly), the truncation satisfies the same relative
tolerance contract as :func:`repro.linalg.truncated_svd`, and degenerate
inputs (zero or empty matrices) produce well-typed rank-0 factors
instead of raising.
"""

import numpy as np
import pytest

from repro.linalg import randomized_svd, truncated_svd


def _low_rank(rng, m, n, rank, decay=0.5):
    """A matrix with geometrically decaying spectrum beyond ``rank``."""
    u, _ = np.linalg.qr(rng.standard_normal((m, m)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    k = min(m, n)
    s = np.ones(k)
    s[rank:] = decay ** np.arange(1, k - rank + 1) * 1e-10
    return (u[:, :k] * s) @ v[:, :k].T


class TestAccuracy:
    def test_reconstructs_low_rank_matrix(self, rng):
        A = _low_rank(rng, 40, 30, rank=8)
        u, s, vt = randomized_svd(A, tol=1e-8, seed=3)
        assert s.size >= 8
        assert np.linalg.norm((u * s) @ vt - A) < 1e-7 * np.linalg.norm(A)

    def test_tolerance_contract_matches_truncated_svd(self, rng):
        """Kept ranks agree with the deterministic SVD's inclusive keep."""
        A = _low_rank(rng, 25, 25, rank=5)
        _, s_full, _ = truncated_svd(A, rcond=0.0)
        for tol in (1e-4, 1e-8):
            _, s, _ = randomized_svd(A, tol=tol, seed=1)
            expected = int(np.count_nonzero(s_full >= tol * s_full[0]))
            assert s.size == expected

    def test_full_width_falls_back_to_exact_svd(self, rng):
        """A spectrum the sketch cannot truncate ends in truncated_svd."""
        A = rng.standard_normal((12, 12))  # roughly flat spectrum
        u, s, vt = randomized_svd(A, tol=1e-15, seed=2)
        ue, se, vte = truncated_svd(A, rcond=1e-15)
        assert np.array_equal(s, se)
        assert np.allclose((u * s) @ vt, (ue * se) @ vte, atol=1e-12)

    def test_orthonormal_factors(self, rng):
        A = _low_rank(rng, 30, 20, rank=6)
        u, s, vt = randomized_svd(A, tol=1e-8, seed=9)
        assert np.allclose(u.T @ u, np.eye(s.size), atol=1e-10)
        assert np.allclose(vt @ vt.T, np.eye(s.size), atol=1e-10)
        assert np.all(np.diff(s) <= 1e-12)  # non-increasing


class TestDeterminism:
    def test_bitwise_reproducible_across_calls(self, rng):
        A = _low_rank(rng, 35, 28, rank=7)
        runs = [randomized_svd(A, tol=1e-8, seed=11) for _ in range(3)]
        for u, s, vt in runs[1:]:
            assert np.array_equal(u, runs[0][0])
            assert np.array_equal(s, runs[0][1])
            assert np.array_equal(vt, runs[0][2])

    def test_seed_changes_sketch_not_answer(self, rng):
        A = _low_rank(rng, 30, 30, rank=5)
        _, s1, _ = randomized_svd(A, tol=1e-8, seed=1)
        _, s2, _ = randomized_svd(A, tol=1e-8, seed=2)
        assert s1.size == s2.size
        assert np.allclose(s1, s2, rtol=1e-9)


class TestDegenerate:
    @pytest.mark.parametrize(
        "matrix",
        [np.zeros((4, 6)), np.zeros((0, 5)), np.zeros((5, 0))],
        ids=["zero", "no-rows", "no-cols"],
    )
    def test_rank0_factors(self, matrix):
        u, s, vt = randomized_svd(matrix, tol=1e-8, seed=0)
        m, n = matrix.shape
        assert u.shape == (m, 0) and s.shape == (0,) and vt.shape == (0, n)
        assert u.dtype == s.dtype == vt.dtype == np.float64

    def test_float32_input_promotes(self):
        A = np.eye(4, dtype=np.float32)
        u, s, vt = randomized_svd(A, tol=1e-6, seed=0)
        assert u.dtype == np.float64
        assert np.allclose((u * s) @ vt, np.eye(4), atol=1e-6)
