"""The kernel-independent FMM core (Section 2 of the paper).

Equivalent densities on cube surfaces replace analytic multipole/local
expansions; the M2M/M2L/L2L translations of classical FMM become kernel
evaluations followed by regularised integral-equation inversions
(equations 2.1–2.5).  The M2L translations are additionally accelerated
with local FFTs, exploiting the regular-grid structure of the surface
discretisation (Section 1).
"""

from repro.core.fmm import KIFMM, FMMOptions
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.surfaces import surface_grid, surface_lattice_indices
from repro.core.precompute import OperatorCache

__all__ = [
    "KIFMM",
    "FMMOptions",
    "ExecutionPlan",
    "OperatorCache",
    "build_plan",
    "surface_grid",
    "surface_lattice_indices",
]
