"""Accuracy of the 2D instantiation (Section 2 poses the method for
d = 2, 3).

Same protocol as ``bench_accuracy.py`` in the plane: sweep the surface
order for all 2D kernels against direct summation, plus a timing check
that the FMM beats O(N^2) at moderate N.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.twod import (
    FMM2DOptions,
    KIFMM2D,
    Laplace2DKernel,
    ModifiedLaplace2DKernel,
    Stokes2DKernel,
    direct_evaluate_2d,
)
from repro.util.tables import format_table

KERNELS = {
    "laplace2d": Laplace2DKernel(),
    "modified_laplace2d": ModifiedLaplace2DKernel(lam=1.0),
    "stokes2d": Stokes2DKernel(),
}
P_SWEEP = (4, 6, 8, 12)
N = 4000


def _sweep(kernel):
    rng = np.random.default_rng(60)
    pts = rng.uniform(-1, 1, size=(N, 2))
    phi = rng.random((N, kernel.source_dof))
    sample = rng.choice(N, size=400, replace=False)
    exact = direct_evaluate_2d(kernel, pts[sample], pts, phi)
    rows = []
    for p in P_SWEEP:
        fmm = KIFMM2D(kernel, FMM2DOptions(p=p, max_points=40)).setup(pts)
        t0 = time.perf_counter()
        u = fmm.apply(phi)
        dt = time.perf_counter() - t0
        err = float(
            np.linalg.norm(u[sample] - exact) / np.linalg.norm(exact)
        )
        rows.append((p, err, dt))
    return rows


@pytest.mark.parametrize("name", list(KERNELS))
def test_accuracy_sweep_2d(benchmark, name):
    kernel = KERNELS[name]
    rows = benchmark.pedantic(_sweep, args=(kernel,), rounds=1, iterations=1)
    print()
    print(format_table(
        ("p", "rel. error", "eval seconds"),
        rows,
        title=f"2D accuracy sweep / {name} (N={N}, vs direct summation)",
    ))
    errs = {r[0]: r[1] for r in rows}
    assert errs[8] < errs[4]
    assert errs[8] < 1e-5
