"""Repo-invariant AST lint.

A small framework of ``ast``-based rules encoding invariants this
codebase relies on but Python cannot express.  Run it as::

    python -m repro.analysis.lint src/

Exit status is non-zero iff any violation is found.  Each rule carries a
documented rationale (``--list-rules`` prints the catalog) and every
violation can be locally waived with a trailing comment on the offending
line::

    x = fancy_matmul(a, b)  # lint: allow(flops-accounted)

Rule catalog (details in ``docs/architecture.md``):

- ``flops-accounted`` — evaluation-core functions that carry a
  ``FlopCounter`` must account every matmul/einsum/solve they perform.
- ``thread-confinement`` — ``threading``/``queue``/``multiprocessing``
  imports are confined to ``repro/parallel/simmpi.py``.
- ``dtype-width`` — no narrowing numpy dtypes in ``core/``/``linalg/``.
- ``bufferpool-escape`` — ``BufferPool`` scratch buffers must not be
  returned from the function that drew them.
- ``mutable-default`` — no mutable default argument values.
- ``request-waited`` — every ``irecv`` Request in ``repro/parallel/``
  must reach ``wait()``/``waitall()`` or escape to a caller.
- ``stage-metadata`` — every ``@plan_stage`` class must declare a
  literal ``stage_meta = StageMeta(reads=..., writes=..., dtype=...)``
  with all three named keywords (the plan verifier's dataflow source).
- ``tag-registry`` — every message tag in ``repro/parallel/`` must be
  minted by ``mk_tag`` (the structured-tag registry in ``simmpi.py``)
  or be a plain variable carrying one; ad-hoc literal/constructed tags
  are invisible to the static communication verifier.

Paths are scoped by the file's position inside the ``repro`` package
(the path segment from the last ``repro`` component), so fixture trees
that mirror the package layout are linted identically.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


@dataclass
class Violation:
    rule: str
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Module:
    """A parsed source file plus the metadata rules need."""

    path: Path
    rel: str  # package-relative posix path, e.g. "repro/core/plan.py"
    tree: ast.Module
    allows: dict[int, set[str]]  # line -> rule names waived on that line

    def in_package(self, *parts: str) -> bool:
        return self.rel.startswith("repro/" + "/".join(parts))


def _package_rel(path: Path) -> str:
    parts = path.parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return path.name


def parse_module(path: Path) -> Module:
    text = path.read_text(encoding="utf-8")
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            allows[lineno] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return Module(
        path=path,
        rel=_package_rel(path),
        tree=ast.parse(text, filename=str(path)),
        allows=allows,
    )


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function/class bodies.

    Nested defs are yielded themselves (so rules can see they exist) but
    their bodies belong to their own scope.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _arg_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = func.args
    return {
        arg.arg
        for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs, a.vararg, a.kwarg]
        if arg is not None
    }


class Rule:
    """Base class: subclasses set ``name``/``rationale`` and ``check``."""

    name = "abstract"
    rationale = ""

    def check(self, mod: Module) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def _v(self, mod: Module, line: int, message: str) -> Violation:
        return Violation(rule=self.name, path=mod.path, line=line, message=message)


class FlopsAccountedRule(Rule):
    name = "flops-accounted"
    rationale = (
        "The paper's tables report per-phase Gflop/s; the repo's "
        "performance model and benchmarks trust FlopCounter to be "
        "complete.  Any core/ function that carries a FlopCounter (a "
        "`flops` parameter or local) and performs a matmul, einsum or "
        "solve without a flops.add*() call silently under-reports work.  "
        "Leaf helpers without a counter in scope are accounted by their "
        "callers and are exempt."
    )

    _NUMERIC_ATTRS = {"einsum", "solve", "lstsq", "tensordot"}

    def check(self, mod: Module) -> Iterator[Violation]:
        if not mod.in_package("core"):
            return
        for func in functions(mod.tree):
            nodes = list(own_nodes(func))
            has_counter = "flops" in _arg_names(func) or any(
                isinstance(n, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "flops"
                    for t in n.targets
                )
                for n in nodes
            )
            if not has_counter:
                continue
            accounted = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr.startswith("add")
                and (
                    (isinstance(n.func.value, ast.Name)
                     and n.func.value.id == "flops")
                    or (isinstance(n.func.value, ast.Attribute)
                        and n.func.value.attr == "flops")
                )
                for n in nodes
            )
            if accounted:
                continue
            for n in nodes:
                numeric = (
                    (isinstance(n, ast.BinOp) and isinstance(n.op, ast.MatMult))
                    or (isinstance(n, ast.AugAssign)
                        and isinstance(n.op, ast.MatMult))
                    or (isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)
                        and n.func.attr in self._NUMERIC_ATTRS)
                )
                if numeric:
                    yield self._v(
                        mod, n.lineno,
                        f"function {func.name!r} holds a FlopCounter but "
                        f"performs unaccounted numerical work (matmul/"
                        f"einsum/solve without flops.add*)",
                    )
                    break


class ThreadConfinementRule(Rule):
    name = "thread-confinement"
    rationale = (
        "All concurrency lives in the simulated MPI transport "
        "(parallel/simmpi.py); numerics, tree code and the analyzers are "
        "single-threaded by contract, which is what makes the comm-trace "
        "analysis sound (per-rank event lists need no locks) and keeps "
        "the rest of the codebase schedule independent."
    )

    _MODULES = {"threading", "queue", "multiprocessing", "concurrent"}
    _ALLOWED = "repro/parallel/simmpi.py"

    def check(self, mod: Module) -> Iterator[Violation]:
        if mod.rel == self._ALLOWED:
            return
        for node in ast.walk(mod.tree):
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                root = name.split(".")[0]
                if root in self._MODULES:
                    yield self._v(
                        mod, node.lineno,
                        f"import of {root!r} outside {self._ALLOWED} — "
                        f"concurrency is confined to the simulated MPI "
                        f"runtime",
                    )


class DtypeWidthRule(Rule):
    name = "dtype-width"
    rationale = (
        "The solver stack (regularised pseudo-inverses, FFT M2L, GMRES) "
        "assumes float64/complex128 end to end; a narrowing constructor "
        "in core/ or linalg/ silently degrades the 1e-5 accuracy target "
        "of the paper's experiments.  Narrow dtypes are fine elsewhere "
        "(e.g. the uint8 usage-mask compression in parallel/let.py)."
    )

    _NARROW = {
        "float16", "float32", "complex64", "int8", "int16", "int32",
        "uint8", "uint16", "uint32", "half", "single", "csingle",
    }

    def _narrow_name(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute) and node.attr in self._NARROW:
            return node.attr
        if isinstance(node, ast.Name) and node.id in self._NARROW:
            return node.id
        if isinstance(node, ast.Constant) and node.value in self._NARROW:
            return str(node.value)
        return None

    def check(self, mod: Module) -> Iterator[Violation]:
        if not (mod.in_package("core") or mod.in_package("linalg")):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates: list[ast.AST] = [
                kw.value for kw in node.keywords if kw.arg == "dtype"
            ]
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                candidates.append(node.args[0])
            for cand in candidates:
                narrow = self._narrow_name(cand)
                if narrow:
                    yield self._v(
                        mod, node.lineno,
                        f"narrowing dtype {narrow!r} in the float64 "
                        f"solver core",
                    )


class BufferPoolEscapeRule(Rule):
    name = "bufferpool-escape"
    rationale = (
        "BufferPool scratch arrays are recycled on the next apply(): a "
        "buffer (or a view of one) returned to a caller aliases memory "
        "that will be silently overwritten, corrupting results one "
        "evaluation later.  Results that outlive a plan stage must be "
        "copied into fresh arrays (as the planned evaluator does for "
        "its output potential).  Tracking is function-local and follows "
        "direct bindings plus subscript/reshape/view aliases."
    )

    _VIEW_ATTRS = {"reshape", "view", "ravel", "transpose", "swapaxes"}

    def _is_pool_receiver(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return "pool" in node.id.lower()
        if isinstance(node, ast.Attribute):
            return "pool" in node.attr.lower() or node.attr == "buffers"
        return False

    def _is_pool_draw(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("zeros", "empty")
            and self._is_pool_receiver(node.func.value)
        )

    def _base_name(self, node: ast.AST) -> str | None:
        """The root Name of a subscript/view-method chain, if any."""
        while True:
            if isinstance(node, ast.Name):
                return node.id
            if isinstance(node, ast.Subscript):
                node = node.value
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._VIEW_ATTRS
            ):
                node = node.func.value
            elif isinstance(node, ast.Attribute) and node.attr == "T":
                node = node.value
            else:
                return None

    def check(self, mod: Module) -> Iterator[Violation]:
        for func in functions(mod.tree):
            tracked: set[str] = set()
            nodes = [
                n for n in own_nodes(func)
                if isinstance(n, (ast.Assign, ast.Return, ast.Yield))
            ]
            nodes.sort(key=lambda n: (n.lineno, n.col_offset))
            for n in nodes:
                if isinstance(n, ast.Assign):
                    value_tracked = self._is_pool_draw(n.value) or (
                        self._base_name(n.value) in tracked
                    )
                    for t in n.targets:
                        if isinstance(t, ast.Name):
                            if value_tracked:
                                tracked.add(t.id)
                            else:
                                tracked.discard(t.id)  # rebound to fresh data
                elif n.value is not None:
                    escapes = self._is_pool_draw(n.value) or (
                        self._base_name(n.value) in tracked
                    )
                    if escapes:
                        kind = "returns" if isinstance(n, ast.Return) else "yields"
                        yield self._v(
                            mod, n.lineno,
                            f"function {func.name!r} {kind} a BufferPool "
                            f"scratch buffer (or a view of one); it will "
                            f"be overwritten on the next apply()",
                        )


class MutableDefaultRule(Rule):
    name = "mutable-default"
    rationale = (
        "A mutable default is created once at def time and shared across "
        "calls — state leaks between FMM evaluations and between "
        "simulated ranks.  Use None plus an in-body default, or "
        "dataclasses.field(default_factory=...)."
    )

    def check(self, mod: Module) -> Iterator[Violation]:
        for func in functions(mod.tree):
            defaults = [*func.args.defaults, *func.args.kw_defaults]
            for d in defaults:
                if d is None:
                    continue
                mutable = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(d, ast.Call)
                    and isinstance(d.func, ast.Name)
                    and d.func.id in ("list", "dict", "set", "bytearray")
                    and not d.args
                    and not d.keywords
                )
                if mutable:
                    yield self._v(
                        mod, d.lineno,
                        f"mutable default argument in {func.name!r}",
                    )


class RequestWaitedRule(Rule):
    name = "request-waited"
    rationale = (
        "A nonblocking irecv whose Request is dropped leaves the posted "
        "receive dangling: the matching send is consumed by nobody, the "
        "mailbox leaks (MailboxLeakError at best, a silent lost message "
        "at worst) and the happens-before edge the wait() would have "
        "merged never forms — exactly the ordering gap the race "
        "detector flags.  Every Request bound in repro/parallel/ must "
        "reach wait() or waitall() in the same function, or escape to a "
        "caller (returned, yielded, stored on an object, or passed to "
        "another callable) that assumes the completion obligation."
    )

    _WAIT_ATTRS = {"wait", "waitall"}

    def _is_irecv(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "irecv"
        )

    def _contains_irecv(self, node: ast.AST) -> bool:
        return any(self._is_irecv(n) for n in ast.walk(node))

    @staticmethod
    def _names_in(node: ast.AST) -> set[str]:
        return {
            n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }

    def check(self, mod: Module) -> Iterator[Violation]:
        if not mod.in_package("parallel"):
            return
        for func in functions(mod.tree):
            nodes = list(own_nodes(func))
            # Requests bound to a local name: name -> irecv line.
            pending: dict[str, int] = {}
            waited: set[str] = set()   # names with a direct x.wait()
            escaped: set[str] = set()  # names whose obligation moved on
            aliases: dict[str, str] = {}  # loop/comprehension var -> iterable
            for n in nodes:
                if isinstance(n, ast.Assign) and self._contains_irecv(n.value):
                    for t in n.targets:
                        targets = t.elts if isinstance(t, ast.Tuple) else [t]
                        for el in targets:
                            if isinstance(el, ast.Name):
                                pending.setdefault(el.id, n.lineno)
                            else:  # stored on an object: caller's duty
                                pass
                elif isinstance(n, ast.Expr) and self._is_irecv(n.value):
                    yield self._v(
                        mod, n.lineno,
                        f"function {func.name!r} discards an irecv Request; "
                        f"the posted receive can never be waited",
                    )
            for n in nodes:
                if isinstance(n, ast.Call):
                    if (
                        isinstance(n.func, ast.Attribute)
                        and n.func.attr in self._WAIT_ATTRS
                    ):
                        if isinstance(n.func.value, ast.Name):
                            waited.add(n.func.value.id)
                        for arg in n.args:
                            waited |= self._names_in(arg)
                    else:
                        # Passing a Request (or a container holding one)
                        # to any other callable hands off the obligation.
                        for arg in [*n.args, *(k.value for k in n.keywords)]:
                            escaped |= self._names_in(arg)
                elif isinstance(n, (ast.Return, ast.Yield)) and n.value:
                    escaped |= self._names_in(n.value)
                elif isinstance(n, ast.Assign):
                    if any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in n.targets
                    ):
                        escaped |= self._names_in(n.value)
                elif isinstance(n, (ast.For, ast.comprehension)):
                    if isinstance(n.target, ast.Name) and isinstance(
                        n.iter, ast.Name
                    ):
                        aliases[n.target.id] = n.iter.id
            for name in waited:
                escaped.add(name)
                escaped.add(aliases.get(name, name))
            for name, lineno in sorted(pending.items(), key=lambda kv: kv[1]):
                if name not in escaped:
                    yield self._v(
                        mod, lineno,
                        f"Request {name!r} from irecv in {func.name!r} "
                        f"never reaches wait()/waitall() and never escapes "
                        f"the function",
                    )


class StageMetadataRule(Rule):
    name = "stage-metadata"
    rationale = (
        "The static plan verifier (repro plancheck) reconstructs the "
        "dataflow of compiled plans from each stage class's StageMeta "
        "declaration; a @plan_stage class without a literal "
        "`stage_meta = StageMeta(reads=..., writes=..., dtype=...)` "
        "assignment — all three as named keywords — leaves the IR "
        "extractor blind to that stage's buffer traffic, so no plan "
        "containing it can be certified.  The runtime registry rejects "
        "a missing attribute at import time; this rule enforces the "
        "full shape statically, before anything is imported."
    )

    _REQUIRED = ("reads", "writes", "dtype")

    @staticmethod
    def _is_plan_stage(dec: ast.AST) -> bool:
        return (isinstance(dec, ast.Name) and dec.id == "plan_stage") or (
            isinstance(dec, ast.Attribute) and dec.attr == "plan_stage"
        )

    @staticmethod
    def _is_stage_meta_call(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and (
            (isinstance(node.func, ast.Name) and node.func.id == "StageMeta")
            or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "StageMeta"
            )
        )

    def check(self, mod: Module) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(self._is_plan_stage(d) for d in node.decorator_list):
                continue
            assign: ast.Assign | ast.AnnAssign | None = None
            for stmt in node.body:
                targets: list[ast.AST] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                if any(
                    isinstance(t, ast.Name) and t.id == "stage_meta"
                    for t in targets
                ):
                    assign = stmt
            if assign is None or assign.value is None:
                yield self._v(
                    mod, node.lineno,
                    f"plan stage {node.name!r} has no "
                    f"`stage_meta = StageMeta(...)` class attribute",
                )
                continue
            call = assign.value
            if not self._is_stage_meta_call(call):
                yield self._v(
                    mod, assign.lineno,
                    f"plan stage {node.name!r}: stage_meta must be a "
                    f"literal StageMeta(...) call",
                )
                continue
            present = {kw.arg for kw in call.keywords if kw.arg}
            missing = [k for k in self._REQUIRED if k not in present]
            if missing:
                yield self._v(
                    mod, assign.lineno,
                    f"plan stage {node.name!r}: StageMeta missing named "
                    f"keyword(s) {', '.join(missing)} — positional or "
                    f"absent arguments hide the dataflow declaration",
                )
            for kw in call.keywords:
                if (
                    kw.arg == "dtype"
                    and isinstance(kw.value, ast.Constant)
                    and not kw.value.value
                ):
                    yield self._v(
                        mod, kw.value.lineno,
                        f"plan stage {node.name!r}: StageMeta dtype must "
                        f"name the stage's output dtype",
                    )


class TagRegistryRule(Rule):
    name = "tag-registry"
    rationale = (
        "The static communication verifier (repro commir) certifies "
        "tag-space disjointness from the mk_tag registry in "
        "repro/parallel/simmpi.py: every family declares its id arity "
        "once and every tag is the structured tuple the registry "
        "mints.  An ad-hoc tag — a bare string/int literal, a "
        "hand-built tuple, or string arithmetic — bypasses the "
        "registry, so nothing stops it colliding with a registered "
        "family's tag on the same channel, where a concurrently "
        "posted receive of the other phase can steal the message.  "
        "Every `tag=` handed to a send/recv/collective in "
        "repro/parallel/ must be a direct mk_tag(...) call or a plain "
        "variable that carries one (parameter passthrough; the mint "
        "site is checked where the tag is created)."
    )

    _COMM_OPS = {
        "send", "isend", "recv", "irecv",
        "tree_reduce", "tree_bcast", "bcast", "reduce",
    }

    @staticmethod
    def _is_mk_tag(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and (
            (isinstance(node.func, ast.Name) and node.func.id == "mk_tag")
            or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "mk_tag"
            )
        )

    def check(self, mod: Module) -> Iterator[Violation]:
        if not mod.in_package("parallel"):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = None
            if isinstance(node.func, ast.Attribute):
                fname = node.func.attr
            elif isinstance(node.func, ast.Name):
                fname = node.func.id
            if fname not in self._COMM_OPS:
                continue
            for kw in node.keywords:
                if kw.arg != "tag":
                    continue
                val = kw.value
                if self._is_mk_tag(val) or isinstance(
                    val, (ast.Name, ast.Attribute)
                ):
                    continue
                yield self._v(
                    mod, val.lineno,
                    f"tag passed to {fname}() is not minted by the "
                    f"mk_tag registry (ad-hoc "
                    f"{type(val).__name__}) — unregistered tags "
                    f"can collide across concurrent phases",
                )


RULES: tuple[Rule, ...] = (
    FlopsAccountedRule(),
    ThreadConfinementRule(),
    DtypeWidthRule(),
    BufferPoolEscapeRule(),
    MutableDefaultRule(),
    RequestWaitedRule(),
    StageMetadataRule(),
    TagRegistryRule(),
)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_module(mod: Module, rules: Sequence[Rule] = RULES) -> list[Violation]:
    """Run every rule over one parsed module, honouring line waivers."""
    violations: list[Violation] = []
    for rule in rules:
        for v in rule.check(mod):
            if rule.name in mod.allows.get(v.line, ()):
                continue
            violations.append(v)
    return violations


def run_lint(
    paths: Iterable[str | Path], rules: Sequence[Rule] = RULES
) -> list[Violation]:
    """Lint every ``*.py`` under ``paths``; returns surviving violations.

    Violations on a line carrying ``# lint: allow(<rule>)`` are waived.
    """
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_module(parse_module(path), rules))
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Exit status: 0 clean, 1 violations found, 2 usage error — a named
    path that does not exist, a file that cannot be read or parsed, or a
    path set that matches no Python files at all.  Every skipped input
    is reported; a lint run that silently linted nothing must not be
    mistakable for a clean one.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in args:
        for rule in RULES:
            print(f"{rule.name}:")
            print(f"    {rule.rationale}")
        return 0
    if not args:
        print("usage: python -m repro.analysis.lint [--list-rules] PATH...")
        return 2
    usage_error = False
    existing: list[str] = []
    for arg in args:
        if Path(arg).exists():
            existing.append(arg)
        else:
            print(f"lint: error: path {arg!r} does not exist",
                  file=sys.stderr)
            usage_error = True
    files = list(iter_python_files(existing))
    if not files:
        print("lint: error: no Python files found under "
              f"{', '.join(repr(a) for a in args)}", file=sys.stderr)
        return 2
    violations: list[Violation] = []
    for path in files:
        try:
            mod = parse_module(path)
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            print(f"lint: error: skipped {path}: {exc}", file=sys.stderr)
            usage_error = True
            continue
        violations.extend(lint_module(mod))
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
    for v in violations:
        print(v)
    status = "clean" if not violations else f"{len(violations)} violation(s)"
    print(f"lint: {len(files)} file(s), {len(RULES)} rule(s) — {status}")
    if usage_error:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests/CI
    sys.exit(main())
