"""Modified Laplace (screened Coulomb / Yukawa) kernel.

Appendix A: for ``alpha u - Delta u = 0`` the single-layer kernel is
``S(x, y) = exp(-lambda r) / (4 pi r)`` with ``lambda = sqrt(alpha)``.
This models screened Coulombic interactions in molecular dynamics — one
of the applications motivating the kernel-independent approach, since
dedicated analytic expansions for it appeared only with Greengard-Huang
(2002, ref. [8] of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_FOUR_PI = 4.0 * np.pi


class ModifiedLaplaceKernel(Kernel):
    """Fundamental solution of ``alpha u - Delta u = 0`` in 3D.

    Parameters
    ----------
    lam:
        Screening parameter ``lambda = sqrt(alpha) > 0``.  The kernel is
        *not* homogeneous, so translation operators are precomputed per
        tree level instead of being rescaled.
    """

    name = "modified_laplace"
    source_dof = 1
    target_dof = 1
    homogeneity = None
    # Laplace cost plus the exponential: exp costs ~15-20 cycles even
    # with the CXML fast math library the paper uses, which is why the
    # paper reports ~200K cycles/particle vs Laplace's 160K.
    flops_per_pair = 30

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise ValueError(f"screening parameter must be positive, got {lam}")
        self.lam = float(lam)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        _, inv_r = self._displacements(targets, sources)
        # exp(-lam * r): recover r from inv_r, guarding coincident pairs.
        with np.errstate(divide="ignore"):
            r = np.where(inv_r > 0.0, 1.0 / inv_r, 0.0)
        return np.exp(-self.lam * r) * inv_r / _FOUR_PI

    def __repr__(self) -> str:
        return f"ModifiedLaplaceKernel(lam={self.lam})"
