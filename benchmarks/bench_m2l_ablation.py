"""M2L ablation — FFT-accelerated vs dense translations (Section 4,
footnote 5).

"We could easily increase the flop rate by switching from the
algorithmically fast, but implementationally slower FFT M2L translations
to the slower direct evaluation.  But the speed gains are negligible
compared to the algorithmic savings."

This bench measures, on the real Python implementation: wall-clock time
of the interaction evaluation under both M2L variants, their flop
volumes, and confirms the results agree.  The FFT variant needs fewer
flops per translation (the algorithmic saving); the dense variant runs at
a higher achieved flop rate (big matrix-matrix-like products) — exactly
the trade-off the footnote describes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.util.tables import format_table

N = 6000


def _run(kernel, m2l, p):
    rng = np.random.default_rng(47)
    pts = rng.uniform(-1, 1, size=(N, 3))
    phi = rng.standard_normal((N, kernel.source_dof))
    fmm = KIFMM(kernel, FMMOptions(p=p, max_points=60, m2l=m2l)).setup(pts)
    fmm.apply(phi)  # warm the operator caches
    fmm.flops.reset()
    t0 = time.perf_counter()
    u = fmm.apply(phi)
    dt = time.perf_counter() - t0
    return u, dt, fmm.flops.get("down_v")


@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
@pytest.mark.parametrize("p", [6, 8])
def test_m2l_ablation(benchmark, kernel, p):
    def run_both():
        u_fft, t_fft, f_fft = _run(kernel, "fft", p)
        u_dense, t_dense, f_dense = _run(kernel, "dense", p)
        return u_fft, t_fft, f_fft, u_dense, t_dense, f_dense

    u_fft, t_fft, f_fft, u_dense, t_dense, f_dense = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        ("fft", t_fft, f_fft / 1e9, f_fft / t_fft / 1e9),
        ("dense", t_dense, f_dense / 1e9, f_dense / t_dense / 1e9),
    ]
    print()
    print(format_table(
        ("M2L", "eval sec", "V-list Gflop", "achieved GF/s"),
        rows,
        title=f"M2L ablation / {kernel.name}, p={p}, N={N}",
    ))
    # FFT and dense agree up to roundoff amplified by the regularised
    # inversions (condition grows with p); far below discretisation error
    assert relative_error(u_fft, u_dense) < 1e-5
    # the algorithmic saving: FFT needs fewer V-list flops
    assert f_fft < f_dense
