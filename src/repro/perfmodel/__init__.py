"""Performance model of the paper's evaluation platform (Section 4).

The paper measures wall-clock times, Gflop/s rates and parallel
efficiencies on the Pittsburgh Supercomputing Center TCS-1 AlphaServer
(750 quad EV-68 nodes at 1 GHz, Quadrics interconnect) on up to 3000
processors and 2.1 billion unknowns.  Neither the machine nor that scale
is reachable here, so — per the substitution policy in DESIGN.md — this
package computes the *work and communication volumes the algorithm
actually generates* (from real trees and interaction lists built by
:mod:`repro.octree`) and converts them to time with a calibrated machine
model.  Shape conclusions (scalability curves, phase breakdowns, where
communication starts to dominate, load imbalance of non-uniform
distributions) derive from the measured volumes; only the unit
conversions are calibrated constants.
"""

from repro.perfmodel.machine import MachineModel, TCS1
from repro.perfmodel.costs import PhaseWork, compute_work
from repro.perfmodel.simulate import (
    RunReport,
    TreeTopPoint,
    project_scaling,
    simulate_run,
    simulate_tree_time,
    tree_top_model,
)
from repro.perfmodel.metrics import (
    cycles_per_particle,
    flop_rate_efficiency,
    work_efficiency,
)

__all__ = [
    "MachineModel",
    "TCS1",
    "PhaseWork",
    "compute_work",
    "RunReport",
    "TreeTopPoint",
    "simulate_run",
    "simulate_tree_time",
    "tree_top_model",
    "project_scaling",
    "cycles_per_particle",
    "work_efficiency",
    "flop_rate_efficiency",
]
