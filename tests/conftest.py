"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    LaplaceKernel,
    ModifiedLaplaceKernel,
    NavierKernel,
    StokesKernel,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(200301)


@pytest.fixture(
    params=[
        LaplaceKernel(),
        ModifiedLaplaceKernel(lam=1.5),
        StokesKernel(mu=0.7),
        NavierKernel(mu=1.0, nu=0.3),
    ],
    ids=["laplace", "modified_laplace", "stokes", "navier"],
)
def kernel(request):
    """All four kernels — used to assert kernel independence."""
    return request.param


@pytest.fixture(
    params=[LaplaceKernel(), StokesKernel(mu=0.7)], ids=["laplace", "stokes"]
)
def fast_kernel(request):
    """A scalar and a vector kernel, for the more expensive tests."""
    return request.param


def uniform_cloud(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=(n, 3))


def clustered_cloud(rng: np.random.Generator, n: int) -> np.ndarray:
    """Corner-clustered points: deep adaptive trees, non-empty W/X lists."""
    corners = np.array(
        [[i & 1, (i >> 1) & 1, (i >> 2) & 1] for i in range(8)], dtype=np.float64
    )
    per = max(1, -(-n // 8))  # ceil division so at least n points exist
    blocks = [
        c + 0.08 * np.abs(rng.standard_normal((per, 3))) for c in corners
    ]
    return np.vstack(blocks)[:n]
