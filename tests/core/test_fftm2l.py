"""FFT M2L must agree with the dense M2L operator to machine precision."""

import numpy as np
import pytest

from repro.core.fftm2l import FFTM2L
from repro.core.precompute import OperatorCache
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel

OFFSETS = [(2, 0, 0), (0, -2, 1), (3, 3, 3), (-3, 2, -1), (0, 0, 2)]


@pytest.mark.parametrize(
    "kernel",
    [LaplaceKernel(), ModifiedLaplaceKernel(lam=1.0), StokesKernel()],
    ids=["laplace", "modified_laplace", "stokes"],
)
@pytest.mark.parametrize("offset", OFFSETS)
def test_fft_matches_dense(kernel, offset, rng):
    p = 4
    cache = OperatorCache(kernel, p, root_side=2.0)
    fft = FFTM2L(cache)
    level = 2
    ue = rng.standard_normal(cache.n_surf * kernel.source_dof)
    dense = cache.m2l_check(level, offset) @ ue
    nfreq = fft.m * fft.m * (fft.m // 2 + 1)
    acc = np.zeros((kernel.target_dof, nfreq), dtype=np.complex128)
    fft.accumulate(acc, fft.kernel_tensor_hat(level, offset), fft.density_hat(ue))
    via_fft = fft.check_potential(acc)
    assert np.allclose(via_fft, dense, atol=1e-10 * max(1.0, np.abs(dense).max()))


def test_accumulation_is_additive(rng):
    """Hadamard accumulation over two sources equals sum of singles."""
    kernel = LaplaceKernel()
    cache = OperatorCache(kernel, 4, root_side=1.0)
    fft = FFTM2L(cache)
    level = 3
    ue1 = rng.standard_normal(cache.n_surf)
    ue2 = rng.standard_normal(cache.n_surf)
    o1, o2 = (2, 0, 0), (0, 3, -1)
    acc = np.zeros((1, fft.m * fft.m * (fft.m // 2 + 1)), dtype=np.complex128)
    fft.accumulate(acc, fft.kernel_tensor_hat(level, o1), fft.density_hat(ue1))
    fft.accumulate(acc, fft.kernel_tensor_hat(level, o2), fft.density_hat(ue2))
    combined = fft.check_potential(acc)
    expected = (
        cache.m2l_check(level, o1) @ ue1 + cache.m2l_check(level, o2) @ ue2
    )
    assert np.allclose(combined, expected)


def test_homogeneous_level_scaling(rng):
    kernel = LaplaceKernel()
    cache = OperatorCache(kernel, 3, root_side=2.0)
    fft = FFTM2L(cache)
    t2 = fft.kernel_tensor_hat(2, (2, 1, 0))
    t5 = fft.kernel_tensor_hat(5, (2, 1, 0))
    # degree -1 homogeneity: level 5 boxes are 8x smaller -> kernel 8x larger
    assert np.allclose(t5, t2 * 8.0)


def test_inhomogeneous_tensors_cached_per_level():
    kernel = ModifiedLaplaceKernel(lam=1.0)
    cache = OperatorCache(kernel, 3, root_side=2.0)
    fft = FFTM2L(cache)
    fft.kernel_tensor_hat(2, (2, 0, 0))
    fft.kernel_tensor_hat(3, (2, 0, 0))
    assert len(fft._tensors) == 2


def test_rejects_adjacent_offset():
    fft = FFTM2L(OperatorCache(LaplaceKernel(), 3, 1.0))
    with pytest.raises(ValueError):
        fft.kernel_tensor_hat(2, (1, 1, 0))


def test_flop_estimates_positive():
    fft = FFTM2L(OperatorCache(StokesKernel(), 4, 1.0))
    assert fft.flops_per_pair() > 0
    assert fft.flops_per_fft() > 0
