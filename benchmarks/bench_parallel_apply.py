"""Persistent parallel operator: amortization and overlap (PR bench).

The tentpole claims of the setup/apply split, measured for real on the
simulated-MPI runtime: a :class:`~repro.parallel.pfmm.ParallelFMM` sets
up once (parallel tree, LET, owners, LET-local execution plan, ghost
geometry) and each subsequent ``apply`` exchanges only densities through
the overlapped nonblocking protocol.  For ranks in {1, 2, 4} this bench
records:

- setup wall-clock and the amortized per-apply wall-clock (>= 3 applies),
- the per-call time of the seed's ``parallel_evaluate`` path, which
  rebuilds tree/LET/owners/cache on every call — the amortization
  baseline,
- overlap on vs off: identical potentials, compared ``wait``-phase
  seconds.

Results land in ``BENCH_papply.json`` at the repository root so the
performance trajectory is tracked across PRs.  Run directly::

    python benchmarks/bench_parallel_apply.py [--quick] [--out PATH]

or through pytest (uses --quick sizes)::

    python -m pytest benchmarks/bench_parallel_apply.py -q

With ``--nrhs 8`` (a comma-separated width list) the bench instead
measures blocked multi-RHS applies on the persistent operator: one
overlapped exchange carries the whole block, timed against ``nrhs``
looped single-RHS applies on the same operator.  These results feed the
combined ``BENCH_multirhs.json`` artifact written by
``bench_apply_throughput.py --nrhs``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel
from repro.parallel.pfmm import ParallelFMM, run_parallel_fmm
from repro.util.tables import format_table

_ROOT = Path(__file__).resolve().parent.parent


def _wait_seconds(op: ParallelFMM) -> float:
    return float(np.mean([t.by_phase().get("wait", 0.0) for t in op.timers]))


def _measure_ranks(
    nranks: int, pts: np.ndarray, phi: np.ndarray, opts: FMMOptions,
    napply: int,
) -> dict:
    kernel = LaplaceKernel()
    op = ParallelFMM(nranks, kernel, opts, overlap=True)
    t0 = time.perf_counter()
    op.setup(pts)
    t_setup = time.perf_counter() - t0
    pot = op.apply(phi)  # warm the plan buffers and operator entries
    for t in op.timers:
        t.reset()
    t0 = time.perf_counter()
    for _ in range(napply):
        op.apply(phi)
    t_apply = (time.perf_counter() - t0) / napply
    wait_on = _wait_seconds(op) / napply

    off = ParallelFMM(nranks, kernel, opts, overlap=False)
    off.cache, off.fft = op.cache, op.fft  # same operators, fair timing
    off.setup(pts)
    off.apply(phi)
    for t in off.timers:
        t.reset()
    t0 = time.perf_counter()
    for _ in range(napply):
        pot_off = off.apply(phi)
    t_apply_off = (time.perf_counter() - t0) / napply
    wait_off = _wait_seconds(off) / napply
    assert np.array_equal(pot, pot_off), "overlap must not change bits"

    # The seed path: every call rebuilds tree, LET, owners and plan.
    t0 = time.perf_counter()
    legacy = run_parallel_fmm(
        nranks, kernel, pts, phi,
        FMMOptions(p=opts.p, max_points=opts.max_points, plan="naive"),
        cache=op.cache,
    )
    t_percall = time.perf_counter() - t0
    err = float(
        np.linalg.norm(legacy.potential - pot) / np.linalg.norm(pot)
    )
    return {
        "ranks": nranks,
        "n": int(pts.shape[0]),
        "applies": napply,
        "setup_seconds": round(t_setup, 4),
        "apply_seconds": round(t_apply, 4),
        "apply_seconds_no_overlap": round(t_apply_off, 4),
        "per_call_evaluate_seconds": round(t_percall, 4),
        "amortized_speedup_vs_per_call": round(t_percall / t_apply, 2),
        "wait_seconds_overlap_on": round(wait_on, 5),
        "wait_seconds_overlap_off": round(wait_off, 5),
        "relative_error_vs_per_call": float(f"{err:.3e}"),
    }


def run(quick: bool = False, out: Path | None = None) -> dict:
    n = 2_000 if quick else 20_000
    napply = 3
    rng = np.random.default_rng(2003)
    pts = rng.random((n, 3))
    phi = rng.standard_normal((n, 1))
    opts = FMMOptions(p=4 if quick else 6, max_points=40 if quick else 60)
    results = [
        _measure_ranks(nranks, pts, phi, opts, napply)
        for nranks in (1, 2, 4)
    ]
    report = {
        "bench": "parallel_apply",
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "results": results,
    }
    rows = [
        (
            r["ranks"],
            r["setup_seconds"],
            r["apply_seconds"],
            r["per_call_evaluate_seconds"],
            r["amortized_speedup_vs_per_call"],
            r["wait_seconds_overlap_on"],
            r["wait_seconds_overlap_off"],
        )
        for r in results
    ]
    print(format_table(
        ("ranks", "setup s", "apply s", "per-call s", "speedup",
         "wait on", "wait off"),
        rows,
        title=f"persistent ParallelFMM apply (N={n}, Laplace)",
    ))
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return report


def _measure_multirhs_ranks(
    nranks: int, pts: np.ndarray, block: np.ndarray, opts: FMMOptions,
    repeats: int,
) -> dict:
    """Blocked apply vs looped single applies on one persistent operator."""
    from repro.kernels.direct import relative_error

    kernel = LaplaceKernel()
    nrhs = block.shape[2]
    cols = [np.ascontiguousarray(block[:, :, r]) for r in range(nrhs)]
    op = ParallelFMM(nranks, kernel, opts, overlap=True)
    op.setup(pts)
    op.apply(block)  # warm block-width plan buffers and operator caches
    op.apply(cols[0])  # warm single-width plan buffers

    # interleave the arms so CPU-speed drift hits both ratios alike
    t_loop = t_batch = np.inf
    singles = out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        outs = [op.apply(c) for c in cols]
        t = time.perf_counter() - t0
        if t < t_loop:
            t_loop = t
            singles = [np.array(o, copy=True) for o in outs]
        t0 = time.perf_counter()
        o = op.apply(block)
        t = time.perf_counter() - t0
        if t < t_batch:
            t_batch = t
            out = np.array(o, copy=True)
    parity = max(
        relative_error(out[:, :, r], s) for r, s in enumerate(singles)
    )
    return {
        "ranks": nranks,
        "n": int(pts.shape[0]),
        "nrhs": nrhs,
        "p": opts.p,
        "max_points": opts.max_points,
        "repeats": repeats,
        "batched_seconds": round(t_batch, 4),
        "looped_seconds": round(t_loop, 4),
        "speedup_vs_looped": round(t_loop / t_batch, 2),
        "rhs_per_second": round(nrhs / t_batch, 1),
        "max_column_rel_error": float(f"{parity:.3e}"),
    }


def multirhs_sweep(
    quick: bool = False,
    nrhs_list: tuple[int, ...] = (8,),
    ranks: tuple[int, ...] | None = None,
) -> list[dict]:
    """Blocked-vs-looped results per (ranks, nrhs); printed as a table."""
    n = 2_000 if quick else 20_000
    rng = np.random.default_rng(2003)
    pts = rng.random((n, 3))
    opts = FMMOptions(p=4 if quick else 6, max_points=40 if quick else 60)
    repeats = 1 if quick else 2
    if ranks is None:
        ranks = (2,) if quick else (2, 4)
    results = [
        _measure_multirhs_ranks(
            nranks, pts, rng.standard_normal((n, 1, nrhs)), opts, repeats
        )
        for nranks in ranks
        for nrhs in nrhs_list
    ]
    rows = [
        (
            r["ranks"],
            r["nrhs"],
            r["batched_seconds"],
            r["looped_seconds"],
            r["speedup_vs_looped"],
            r["max_column_rel_error"],
        )
        for r in results
    ]
    print(format_table(
        ("ranks", "nrhs", "batched s", "looped s", "speedup", "col err"),
        rows,
        title=(f"blocked parallel apply vs looped singles "
               f"(Laplace, N={n}, overlap on)"),
    ))
    return results


def test_parallel_apply():
    """Bench smoke: amortized applies must beat per-call evaluation."""
    report = run(quick=True)
    for r in report["results"]:
        assert r["relative_error_vs_per_call"] < 1e-9
        assert r["amortized_speedup_vs_per_call"] > 1.0


def test_parallel_multirhs():
    """Bench smoke: blocked applies beat looped singles, columns agree."""
    for r in multirhs_sweep(quick=True, nrhs_list=(4,)):
        assert r["max_column_rel_error"] < 1e-12
        assert r["speedup_vs_looped"] > 1.0


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small size, coarser discretisation")
    ap.add_argument("--out", type=Path, default=_ROOT / "BENCH_papply.json")
    ap.add_argument("--nrhs", type=str, default=None, metavar="LIST",
                    help="comma-separated block widths: run the blocked "
                         "multi-RHS sweep instead of the amortization bench")
    args = ap.parse_args()
    if args.nrhs is not None:
        widths = tuple(int(w) for w in args.nrhs.split(","))
        multirhs_sweep(quick=args.quick, nrhs_list=widths)
    else:
        run(quick=args.quick, out=args.out)
