"""The three-stage parallel interaction calculation (Section 3.2).

"The interaction calculation part of our algorithm is logically separated
into three stages.  The first stage is a computation step which performs
the upward computation.  Each processor P builds the upward equivalent
densities for the LET nodes to which it contributes (ignoring the
existence of the other processors).  The second stage [communicates ghost
sources and reduces/scatters equivalent densities].  The third stage
performs the downward computation ... (ignoring the existence of the
other processors again)."

The redundant computation this design accepts near the root (every rank
computes partial upward densities and full downward passes for the
ancestors of its boxes) is reproduced faithfully; as the paper notes, the
number of such boxes is small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fftm2l import FFTM2L
from repro.core.fmm import FMMOptions
from repro.core.precompute import OperatorCache
from repro.kernels.base import Kernel
from repro.octree.lists import build_lists
from repro.octree.tree import Octree
from repro.parallel.exchange import exchange_equiv_densities, exchange_source_data
from repro.parallel.let import classify_let, gather_users
from repro.parallel.owners import assign_owners, gather_contributors
from repro.parallel.partition import partition_points
from repro.parallel.ptree import ParallelTree, parallel_build_tree
from repro.parallel.simmpi import CommStats, PerRank, SimComm, run_spmd
from repro.util.timing import PhaseTimer


def _octant(box) -> int:
    return (
        (box.anchor[0] & 1)
        | ((box.anchor[1] & 1) << 1)
        | ((box.anchor[2] & 1) << 2)
    )


def _upward_local(
    tree: Octree,
    kernel: Kernel,
    cache: OperatorCache,
    phi: np.ndarray,
    src_k: Kernel | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stage 1: partial upward equivalent densities from local sources."""
    src_k = src_k if src_k is not None else kernel
    n_surf = cache.n_surf
    md = kernel.source_dof
    nb = tree.nboxes
    ue = np.zeros((nb, n_surf * md))
    has_ue = np.zeros(nb, dtype=bool)
    for level in range(tree.depth, -1, -1):
        for bi in tree.levels[level]:
            b = tree.boxes[bi]
            if b.nsrc == 0:  # no *local* sources in the subtree
                continue
            center = tree.center(bi)
            if b.is_leaf or not any(has_ue[c] for c in b.children):
                # a non-leaf whose local sources all sit in globally-pruned
                # octants cannot occur (children cover all occupied
                # octants globally), so local sources imply a child with a
                # partial density; the leaf branch handles true leaves.
                K = src_k.matrix(
                    cache.up_check_points(center, level), tree.src_points(bi)
                )
                check = K @ phi[tree.src_indices(bi)].reshape(-1)
            else:
                check = np.zeros(n_surf * kernel.target_dof)
                for ci in b.children:
                    if not has_ue[ci]:
                        continue
                    child = tree.boxes[ci]
                    check += cache.m2m_check(child.level, _octant(child)) @ ue[ci]
            ue[bi] = cache.uc2ue(level) @ check
            has_ue[bi] = True
    return ue, has_ue


def _downward_local(
    ptree: ParallelTree,
    lists,
    kernel: Kernel,
    cache: OperatorCache,
    phi: np.ndarray,
    global_ue: dict[int, np.ndarray],
    ghost_src: dict[int, tuple[np.ndarray, np.ndarray]],
    m2l_mode: str,
    src_k: Kernel | None = None,
    trg_k: Kernel | None = None,
    dir_k: Kernel | None = None,
) -> np.ndarray:
    """Stage 3: downward computation for boxes with local targets."""
    src_k = src_k if src_k is not None else kernel
    trg_k = trg_k if trg_k is not None else kernel
    dir_k = dir_k if dir_k is not None else kernel
    tree = ptree.tree
    boxes = tree.boxes
    n_surf = cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    out_dof = trg_k.target_dof
    nb = tree.nboxes
    dc = np.zeros((nb, n_surf * qd))
    has_dc = np.zeros(nb, dtype=bool)
    de = np.zeros((nb, n_surf * md))
    has_de = np.zeros(nb, dtype=bool)
    potential = np.zeros((tree.targets.shape[0], out_dof))
    has_global_src = ptree.global_nsrc > 0

    fft = FFTM2L(cache) if m2l_mode == "fft" else None
    if fft is not None:
        _fft_v_list_parallel(ptree, lists, fft, global_ue, dc, has_dc)

    for level in range(1, tree.depth + 1):
        for bi in tree.levels[level]:
            b = boxes[bi]
            if b.ntrg == 0:  # no local targets in the subtree
                continue
            center = tree.center(bi)
            if has_de[b.parent]:
                dc[bi] += cache.l2l_check(level, _octant(b)) @ de[b.parent]
                has_dc[bi] = True
            if m2l_mode == "dense":
                for ai in lists.V[bi]:
                    if not has_global_src[ai]:
                        continue
                    a = boxes[ai]
                    offset = tuple(b.anchor[d] - a.anchor[d] for d in range(3))
                    dc[bi] += cache.m2l_check(level, offset) @ global_ue[int(ai)]
                    has_dc[bi] = True
            if len(lists.X[bi]):
                check_pts = cache.down_check_points(center, level)
                for ai in lists.X[bi]:
                    if not has_global_src[ai]:
                        continue
                    pts, dens = ghost_src[int(ai)]
                    dc[bi] += src_k.matrix(check_pts, pts) @ dens.reshape(-1)
                    has_dc[bi] = True
            if has_dc[bi]:
                de[bi] = cache.dc2de(level) @ dc[bi]
                has_de[bi] = True
            if not b.is_leaf:
                continue
            trg_pts = tree.trg_points(bi)
            trg_idx = tree.trg_indices(bi)
            local = np.zeros(b.ntrg * out_dof)
            if has_de[bi]:
                K = trg_k.matrix(trg_pts, cache.down_equiv_points(center, level))
                local += K @ de[bi]
            for ai in lists.U[bi]:
                if not has_global_src[ai]:
                    continue
                pts, dens = ghost_src[int(ai)]
                local += dir_k.matrix(trg_pts, pts) @ dens.reshape(-1)
            for ai in lists.W[bi]:
                if not has_global_src[ai]:
                    continue
                a = boxes[ai]
                K = trg_k.matrix(
                    trg_pts, cache.up_equiv_points(tree.center(ai), a.level)
                )
                local += K @ global_ue[int(ai)]
            potential[trg_idx] += local.reshape(b.ntrg, out_dof)

    root = boxes[0]
    if root.is_leaf and root.ntrg > 0 and has_global_src[0]:
        pts, dens = ghost_src[0]
        K = dir_k.matrix(tree.trg_points(0), pts)
        potential[tree.trg_indices(0)] += (
            K @ dens.reshape(-1)
        ).reshape(root.ntrg, out_dof)
    return potential


def _fft_v_list_parallel(
    ptree: ParallelTree,
    lists,
    fft: FFTM2L,
    global_ue: dict[int, np.ndarray],
    dc: np.ndarray,
    has_dc: np.ndarray,
) -> None:
    """FFT-accelerated V-list pass over the rank's LET."""
    tree = ptree.tree
    boxes = tree.boxes
    has_global_src = ptree.global_nsrc > 0
    for level in range(2, tree.depth + 1):
        level_boxes = tree.levels[level]
        needed: set[int] = set()
        for bi in level_boxes:
            if boxes[bi].ntrg == 0:
                continue
            for ai in lists.V[bi]:
                if has_global_src[ai]:
                    needed.add(int(ai))
        if not needed:
            continue
        phi_hat = {ai: fft.density_hat(global_ue[ai]) for ai in needed}
        for bi in level_boxes:
            b = boxes[bi]
            if b.ntrg == 0 or not len(lists.V[bi]):
                continue
            acc = None
            for ai in lists.V[bi]:
                if not has_global_src[ai]:
                    continue
                a = boxes[ai]
                offset = tuple(b.anchor[d] - a.anchor[d] for d in range(3))
                tensor = fft.kernel_tensor_hat(level, offset)
                if acc is None:
                    acc = np.zeros(
                        tensor.shape[0:1] + tensor.shape[2:], dtype=np.complex128
                    )
                fft.accumulate(acc, tensor, phi_hat[int(ai)])
            if acc is not None:
                dc[bi] += fft.check_potential(acc)
                has_dc[bi] = True


def parallel_evaluate(
    comm: SimComm,
    kernel: Kernel,
    local_sources: np.ndarray,
    local_density: np.ndarray,
    options: FMMOptions | None = None,
    root: tuple[np.ndarray, float] | None = None,
    timer: PhaseTimer | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
) -> np.ndarray:
    """SPMD entry point: each rank passes its local particles.

    Sources and targets are the identical local point set (the paper's
    experimental setup).  Returns the potentials at this rank's local
    points, in local order.  The variable source/target kernels follow
    the same rules as the sequential evaluator (see
    :func:`repro.core.evaluator.evaluate`).
    """
    opts = options or FMMOptions()
    timer = timer if timer is not None else PhaseTimer()
    src_k = source_kernel if source_kernel is not None else kernel
    trg_k = target_kernel if target_kernel is not None else kernel
    if direct_kernel is not None:
        dir_k = direct_kernel
    elif src_k is kernel:
        dir_k = trg_k
    elif trg_k is kernel:
        dir_k = src_k
    else:
        raise ValueError(
            "direct_kernel is required when both source_kernel and "
            "target_kernel are custom"
        )
    local_sources = np.asarray(local_sources, dtype=np.float64)
    phi = np.asarray(local_density, dtype=np.float64).reshape(
        local_sources.shape[0], src_k.source_dof
    )

    with timer.phase("tree"):
        ptree = parallel_build_tree(
            comm,
            local_sources,
            max_points=opts.max_points,
            max_depth=opts.max_depth,
            root=root,
        )
        tree = ptree.tree
        lists = build_lists(tree)
        contrib_src, contrib_trg = gather_contributors(
            comm, ptree.local_contributes_src(), ptree.local_contributes_trg()
        )
        owner = assign_owners(contrib_src | contrib_trg)
        usage = classify_let(tree, lists, ptree.local_contributes_trg())
        # data is only needed for boxes that globally hold sources
        usage.uses_equiv &= ptree.global_nsrc > 0
        usage.uses_source &= ptree.global_nsrc > 0
        users_equiv, users_src = gather_users(comm, usage)

    cache = OperatorCache(
        kernel, opts.p, tree.root_side,
        inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
    )

    with timer.phase("up"):
        partial_ue, has_ue = _upward_local(tree, kernel, cache, phi, src_k=src_k)

    with timer.phase("comm"):
        src_boxes = np.nonzero(users_src.any(axis=0))[0]
        local_pts = {
            int(b): tree.src_points(int(b))
            for b in src_boxes
            if contrib_src[comm.rank, b]
        }
        local_dens = {
            int(b): phi[tree.src_indices(int(b))]
            for b in src_boxes
            if contrib_src[comm.rank, b]
        }
        ghost_src = exchange_source_data(
            comm, src_boxes, contrib_src, users_src, owner, local_pts, local_dens
        )
        ue_boxes = np.nonzero(users_equiv.any(axis=0))[0]
        global_ue = exchange_equiv_densities(
            comm, ue_boxes, contrib_src, users_equiv, owner, partial_ue, has_ue
        )

    with timer.phase("down"):
        potential = _downward_local(
            ptree, lists, kernel, cache, phi, global_ue, ghost_src, opts.m2l,
            src_k=src_k, trg_k=trg_k, dir_k=dir_k,
        )
    return potential


@dataclass
class ParallelFMMResult:
    """Aggregate result of a driver-level parallel run."""

    potential: np.ndarray
    comm_stats: list[CommStats]
    timers: list[dict[str, float]]
    nranks: int


def run_parallel_fmm(
    nranks: int,
    kernel: Kernel,
    points: np.ndarray,
    density: np.ndarray,
    options: FMMOptions | None = None,
    source_kernel: Kernel | None = None,
    target_kernel: Kernel | None = None,
    direct_kernel: Kernel | None = None,
    trace=None,
    schedule_seed: int | None = None,
) -> ParallelFMMResult:
    """Convenience driver: partition, run SPMD, reassemble.

    Partitions ``points`` over ``nranks`` logical ranks with Morton-curve
    partitioning, runs the full three-stage parallel algorithm, and
    returns the potentials in the original point order together with
    per-rank communication statistics.

    ``trace`` (a :class:`repro.analysis.trace.CommTrace`) records the
    full communication event trace for
    :func:`repro.analysis.commcheck.check_trace`; ``schedule_seed``
    perturbs the rank interleaving with seeded yields (the result must
    be — and is asserted by tests to be — schedule independent).
    """
    points = np.asarray(points, dtype=np.float64)
    density = np.asarray(density, dtype=np.float64).reshape(points.shape[0], -1)
    parts = partition_points(points, nranks)
    timers = [PhaseTimer() for _ in range(nranks)]

    def rank_main(comm: SimComm, idx: np.ndarray):
        pot = parallel_evaluate(
            comm, kernel, points[idx], density[idx],
            options=options, timer=timers[comm.rank],
            source_kernel=source_kernel, target_kernel=target_kernel,
            direct_kernel=direct_kernel,
        )
        return pot, comm.stats

    outputs = run_spmd(
        nranks, rank_main, PerRank(parts),
        trace=trace, schedule_seed=schedule_seed,
    )
    qd = (target_kernel or kernel).target_dof
    potential = np.zeros((points.shape[0], qd))
    for idx, (pot, _) in zip(parts, outputs):
        potential[idx] = pot
    return ParallelFMMResult(
        potential=potential,
        comm_stats=[stats for _, stats in outputs],
        timers=[t.by_phase() for t in timers],
        nranks=nranks,
    )
