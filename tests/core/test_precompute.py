"""Operator cache tests: shapes, homogeneous rescaling, validation."""

import numpy as np
import pytest

from repro.core.precompute import OperatorCache, octant_offset
from repro.core.surfaces import n_surface_points
from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel, StokesKernel


def _fresh_cache(kernel, p=4, root=2.0, **kw):
    return OperatorCache(kernel, p, root, **kw)


class TestOctantOffset:
    def test_all_octants_distinct(self):
        offsets = {tuple(octant_offset(c)) for c in range(8)}
        assert len(offsets) == 8

    def test_magnitude(self):
        for c in range(8):
            assert np.all(np.abs(octant_offset(c)) == 0.5)

    def test_bit_convention(self):
        assert np.allclose(octant_offset(0), [-0.5, -0.5, -0.5])
        assert np.allclose(octant_offset(1), [0.5, -0.5, -0.5])
        assert np.allclose(octant_offset(2), [-0.5, 0.5, -0.5])
        assert np.allclose(octant_offset(4), [-0.5, -0.5, 0.5])

    def test_rejects_bad_octant(self):
        with pytest.raises(ValueError):
            octant_offset(8)
        with pytest.raises(ValueError):
            octant_offset(-1)


class TestShapes:
    @pytest.mark.parametrize(
        "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
    )
    def test_operator_shapes(self, kernel):
        p = 4
        n = n_surface_points(p)
        m, q = kernel.source_dof, kernel.target_dof
        cache = _fresh_cache(kernel, p=p)
        assert cache.uc2ue(2).shape == (n * m, n * q)
        assert cache.dc2de(2).shape == (n * m, n * q)
        assert cache.m2m_check(2, 3).shape == (n * q, n * m)
        assert cache.l2l_check(2, 5).shape == (n * q, n * m)
        assert cache.m2l_check(2, (2, 0, -1)).shape == (n * q, n * m)

    def test_surface_points(self):
        cache = _fresh_cache(LaplaceKernel(), p=4, root=2.0)
        c = np.array([0.5, 0.5, 0.5])
        r = cache.half_width(1)  # 0.5
        up_e = cache.up_equiv_points(c, 1)
        up_c = cache.up_check_points(c, 1)
        assert np.abs(up_e - c).max() == pytest.approx(cache.inner * r)
        assert np.abs(up_c - c).max() == pytest.approx(cache.outer * r)
        dn_e = cache.down_equiv_points(c, 1)
        dn_c = cache.down_check_points(c, 1)
        assert np.abs(dn_e - c).max() == pytest.approx(cache.outer * r)
        assert np.abs(dn_c - c).max() == pytest.approx(cache.inner * r)


class TestHomogeneousScaling:
    """Scaled operators must equal direct computation at that level."""

    @pytest.mark.parametrize(
        "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
    )
    def test_scaling_matches_direct(self, kernel):
        p = 3
        cache = _fresh_cache(kernel, p=p)
        # force direct computation by masquerading as inhomogeneous
        direct = _fresh_cache(kernel, p=p)
        direct.kernel = _Inhomog(kernel)
        for level in (1, 3):
            assert np.allclose(cache.uc2ue(level), direct.uc2ue(level), atol=1e-10)
            assert np.allclose(cache.dc2de(level), direct.dc2de(level))
            assert np.allclose(
                cache.m2l_check(level, (0, 2, 0)),
                direct.m2l_check(level, (0, 2, 0)),
            )
        for child_level in (1, 2):
            for octant in (0, 7):
                assert np.allclose(
                    cache.m2m_check(child_level, octant),
                    direct.m2m_check(child_level, octant),
                )
                assert np.allclose(
                    cache.l2l_check(child_level, octant),
                    direct.l2l_check(child_level, octant),
                )

    def test_inhomogeneous_kernel_differs_by_level(self):
        cache = _fresh_cache(ModifiedLaplaceKernel(lam=2.0), p=3)
        m0 = cache.m2l_check(1, (2, 0, 0))
        m1 = cache.m2l_check(3, (2, 0, 0))
        # no scalar multiple relates the two levels
        ratio = m1 / m0
        assert ratio.std() / abs(ratio.mean()) > 1e-3


class _Inhomog:
    """Wrapper hiding a kernel's homogeneity (forces per-level compute)."""

    def __init__(self, kernel):
        self._k = kernel
        self.homogeneity = None

    def __getattr__(self, name):
        return getattr(self._k, name)


class TestValidation:
    def test_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            OperatorCache(LaplaceKernel(), 4, 1.0, inner=0.9, outer=2.9)
        with pytest.raises(ValueError):
            OperatorCache(LaplaceKernel(), 4, 1.0, inner=1.1, outer=3.5)
        with pytest.raises(ValueError):
            OperatorCache(LaplaceKernel(), 4, 1.0, inner=2.0, outer=1.5)

    def test_rejects_bad_root(self):
        with pytest.raises(ValueError):
            OperatorCache(LaplaceKernel(), 4, -1.0)

    def test_rejects_adjacent_m2l_offset(self):
        cache = _fresh_cache(LaplaceKernel())
        with pytest.raises(ValueError):
            cache.m2l_check(2, (1, 0, 0))
        with pytest.raises(ValueError):
            cache.m2l_check(2, (1, 1, 1))

    def test_rejects_bad_levels(self):
        cache = _fresh_cache(LaplaceKernel())
        with pytest.raises(ValueError):
            cache.m2m_check(0, 0)
        with pytest.raises(ValueError):
            cache.half_width(-1)


class TestInversionQuality:
    def test_uc2ue_reconstructs_far_field(self, rng):
        """An equivalent density from uc2ue reproduces the far potential.

        This is equation (2.1) end to end: random interior sources, solve
        for the equivalent density, compare potentials at far points.
        """
        kernel = LaplaceKernel()
        cache = _fresh_cache(kernel, p=6, root=2.0)
        level = 1
        center = np.zeros(3)
        r = cache.half_width(level)
        src = rng.uniform(-r, r, size=(20, 3))
        phi = rng.standard_normal(20)
        check = kernel.matrix(cache.up_check_points(center, level), src) @ phi
        ue = cache.uc2ue(level) @ check
        far = rng.standard_normal((15, 3))
        far = center + (far / np.linalg.norm(far, axis=1, keepdims=True)) * (6 * r)
        exact = kernel.matrix(far, src) @ phi
        approx = kernel.matrix(far, cache.up_equiv_points(center, level)) @ ue
        assert np.allclose(approx, exact, rtol=1e-6)
