"""Benchmark configuration.

Scale knobs (environment variables):

- ``REPRO_BENCH_N``      — model-tree particle count for the fixed-size
  table (default 150_000; the paper's full 3.2M works but takes minutes).
- ``REPRO_BENCH_CAP``    — isogranular model cap (default 300_000).
- ``REPRO_BENCH_FULL=1`` — run everything at paper scale.

Each benchmark regenerates one paper table/figure: the *model* rows are
computed from real trees and the calibrated TCS-1 machine model, printed
next to the paper's published rows so shape agreement is inspectable.
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
BENCH_N = 3_200_000 if FULL else _env_int("REPRO_BENCH_N", 150_000)
MODEL_CAP = 1_600_000 if FULL else _env_int("REPRO_BENCH_CAP", 300_000)


@pytest.fixture(scope="session")
def bench_scale():
    return {"N": BENCH_N, "cap": MODEL_CAP, "full": FULL}


def print_comparison(title, headers, paper_rows, model_rows):
    """Print paper and model tables side by side."""
    from repro.util.tables import format_table

    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(format_table(headers, paper_rows, title="-- paper --"))
    print()
    print(format_table(headers, model_rows, title="-- this reproduction (model) --"))
    print()
