"""Restarted GMRES for matrix-free operators.

The paper's applications solve boundary integral equations with a Krylov
method whose matrix-vector product *is* the FMM interaction evaluation
("at each time step we solve a linear system that requires tens of
interaction calculations", Section 3).  This module provides that Krylov
loop: a standard Arnoldi/Givens restarted GMRES taking an arbitrary
``matvec`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    history: list[float]


def gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 200,
) -> GMRESResult:
    """Solve ``A x = b`` with restarted GMRES.

    Parameters
    ----------
    matvec:
        Callable applying the (square) operator to a flat vector.
    b:
        Right-hand side; flattened internally.
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual target ``|b - A x| <= tol * |b|``.
    restart:
        Krylov subspace dimension between restarts.
    maxiter:
        Total matvec budget.

    Returns
    -------
    :class:`GMRESResult`; ``history`` holds the relative residual after
    every inner iteration, useful for convergence plots.
    """
    b = np.asarray(b, dtype=np.float64).ravel()
    n = b.size
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).ravel().copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), converged=True, iterations=0,
                           residual=0.0, history=[0.0])

    history: list[float] = []
    total_iters = 0
    while total_iters < maxiter:
        r = b - matvec(x)
        beta = np.linalg.norm(r)
        if beta / bnorm <= tol:
            return GMRESResult(x, True, total_iters, beta / bnorm, history)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((m + 1, n))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[0] = r / beta
        g[0] = beta
        k_used = 0
        for k in range(m):
            # copy: a matvec may return its input (e.g. the identity),
            # and the in-place orthogonalisation below must not corrupt V
            w = np.array(matvec(V[k]), dtype=np.float64, copy=True).ravel()
            # modified Gram-Schmidt Arnoldi
            for j in range(k + 1):
                H[j, k] = V[j] @ w
                w -= H[j, k] * V[j]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-14 * beta:
                V[k + 1] = w / H[k + 1, k]
            # apply previous Givens rotations to the new column
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k] = t
            # new rotation annihilating H[k+1, k]
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_used = k + 1
            history.append(abs(g[k + 1]) / bnorm)
            if history[-1] <= tol:
                break
        # solve the triangular system and update x
        y = np.linalg.solve(H[:k_used, :k_used], g[:k_used]) if k_used else np.zeros(0)
        x = x + V[:k_used].T @ y
        if history and history[-1] <= tol:
            r = b - matvec(x)
            return GMRESResult(x, True, total_iters,
                               float(np.linalg.norm(r) / bnorm), history)
    r = b - matvec(x)
    res = float(np.linalg.norm(r) / bnorm)
    return GMRESResult(x, res <= tol, total_iters, res, history)


@dataclass
class BlockGMRESResult:
    """Outcome of a lockstep block GMRES solve."""

    x: np.ndarray  # (n, nrhs) solutions, one column per right-hand side
    converged: bool  # every column reached the tolerance
    matvecs: int  # BLOCKED operator applications (not column applies)
    residuals: np.ndarray  # (nrhs,) final relative residuals
    histories: list[list[float]]  # per-column inner-iteration residuals


def gmres_block(
    matvec: Callable[[np.ndarray], np.ndarray],
    B: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 200,
) -> BlockGMRESResult:
    """Solve ``A X = B`` for a block of right-hand sides in lockstep.

    Runs one restarted-GMRES recurrence per column but issues ONE
    blocked ``matvec`` per Arnoldi step carrying every live column's
    Krylov vector — with an FMM operator behind ``matvec`` that is a
    multi-RHS batched apply, so an iteration costs barely more than a
    single-RHS one.  Columns that converge mid-cycle freeze (their slot
    carries zeros, whose output is ignored) while the rest iterate on.

    Parameters
    ----------
    matvec:
        Callable applying the operator to an ``(n, k)`` block,
        returning ``(n, k)`` — e.g. ``KIFMM.matvec`` or
        ``ParallelFMM.matvec``.
    B:
        ``(n, nrhs)`` right-hand sides (a 1-D vector is treated as one
        column).
    maxiter:
        Budget of *blocked* matvecs.

    Returns
    -------
    :class:`BlockGMRESResult`; ``matvecs`` counts blocked applies, so
    the saving over ``nrhs`` independent solves is roughly
    ``nrhs * single_matvecs / matvecs`` applied at batched-apply cost.
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        B = B[:, None]
    n, nrhs = B.shape
    if x0 is None:
        X = np.zeros((n, nrhs))
    else:
        X = np.array(x0, dtype=np.float64, copy=True).reshape(n, nrhs)
    bnorm = np.linalg.norm(B, axis=0)
    safe = np.where(bnorm > 0.0, bnorm, 1.0)
    active = bnorm > 0.0
    histories: list[list[float]] = [[] for _ in range(nrhs)]
    matvecs = 0
    residuals = np.zeros(nrhs)
    while active.any() and matvecs < maxiter:
        R = B - matvec(X)
        matvecs += 1
        beta = np.linalg.norm(R, axis=0)
        residuals = beta / safe
        active &= residuals > tol
        if not active.any() or matvecs >= maxiter:
            break
        m = min(restart, maxiter - matvecs)
        V = np.zeros((m + 1, n, nrhs))
        H = np.zeros((m + 1, m, nrhs))
        cs = np.zeros((m, nrhs))
        sn = np.zeros((m, nrhs))
        g = np.zeros((m + 1, nrhs))
        cols = np.flatnonzero(active)
        for c in cols:
            V[0, :, c] = R[:, c] / beta[c]
            g[0, c] = beta[c]
        live = active.copy()
        k_used = np.zeros(nrhs, dtype=np.int64)
        for k in range(m):
            # frozen columns ride along as zeros; their output is unused
            W = np.array(
                matvec(V[k] * live[None, :]), dtype=np.float64, copy=True
            )
            matvecs += 1
            for c in np.flatnonzero(live):
                w = W[:, c]
                for j in range(k + 1):
                    H[j, k, c] = V[j, :, c] @ w
                    w -= H[j, k, c] * V[j, :, c]
                H[k + 1, k, c] = np.linalg.norm(w)
                if H[k + 1, k, c] > 1e-14 * g[0, c]:
                    V[k + 1, :, c] = w / H[k + 1, k, c]
                for j in range(k):
                    t = cs[j, c] * H[j, k, c] + sn[j, c] * H[j + 1, k, c]
                    H[j + 1, k, c] = (
                        -sn[j, c] * H[j, k, c] + cs[j, c] * H[j + 1, k, c]
                    )
                    H[j, k, c] = t
                denom = np.hypot(H[k, k, c], H[k + 1, k, c])
                if denom == 0.0:
                    cs[k, c], sn[k, c] = 1.0, 0.0
                else:
                    cs[k, c] = H[k, k, c] / denom
                    sn[k, c] = H[k + 1, k, c] / denom
                H[k, k, c] = denom
                H[k + 1, k, c] = 0.0
                g[k + 1, c] = -sn[k, c] * g[k, c]
                g[k, c] = cs[k, c] * g[k, c]
                k_used[c] = k + 1
                histories[c].append(abs(g[k + 1, c]) / safe[c])
                if histories[c][-1] <= tol:
                    live[c] = False
            if not live.any() or matvecs >= maxiter:
                break
        for c in cols:
            ku = int(k_used[c])
            if ku:
                y = np.linalg.solve(H[:ku, :ku, c], g[:ku, c])
                X[:, c] += V[:ku, :, c].T @ y
    R = B - matvec(X)
    matvecs += 1
    residuals = np.linalg.norm(R, axis=0) / safe
    return BlockGMRESResult(
        x=X,
        converged=bool(np.all(residuals <= tol)),
        matvecs=matvecs,
        residuals=residuals,
        histories=histories,
    )
