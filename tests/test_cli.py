"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--kernel", "warp", "--n", "10"])


class TestEvaluate:
    def test_basic(self, capsys):
        rc = main(["evaluate", "--n", "500", "--p", "3", "--s", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel=laplace" in out
        assert "tree:" in out

    def test_check_reports_error(self, capsys):
        rc = main(
            ["evaluate", "--n", "400", "--p", "4", "--check",
             "--samples", "50"]
        )
        assert rc == 0
        assert "relative error" in capsys.readouterr().out

    def test_stokes_corners(self, capsys):
        rc = main(
            ["evaluate", "--kernel", "stokes", "--workload", "corners",
             "--n", "300", "--p", "3"]
        )
        assert rc == 0
        assert "kernel=stokes" in capsys.readouterr().out


class TestAccuracy:
    def test_sweep(self, capsys):
        rc = main(
            ["accuracy", "--n", "400", "--orders", "2,4", "--p", "4",
             "--samples", "50"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy sweep" in out
        assert out.count("\n") >= 4

    def test_bad_orders(self):
        with pytest.raises(SystemExit):
            main(["accuracy", "--n", "100", "--orders", "2,x"])


class TestScaling:
    def test_fixed(self, capsys):
        rc = main(
            ["scaling", "--mode", "fixed", "--n", "100000",
             "--model-n", "5000", "--procs", "1,4", "--p", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fixed-size scaling" in out

    def test_isogranular(self, capsys):
        rc = main(
            ["scaling", "--mode", "isogranular", "--grain", "2000",
             "--cap", "4000", "--procs", "1,4", "--p", "4"]
        )
        assert rc == 0
        assert "isogranular scaling" in capsys.readouterr().out
