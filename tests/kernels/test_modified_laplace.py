"""Modified Laplace (Yukawa) kernel tests."""

import numpy as np
import pytest

from repro.kernels import LaplaceKernel, ModifiedLaplaceKernel


class TestValues:
    def test_point_value(self):
        kern = ModifiedLaplaceKernel(lam=2.0)
        x = np.array([[1.0, 0.0, 0.0]])
        y = np.zeros((1, 3))
        expected = np.exp(-2.0) / (4.0 * np.pi)
        assert kern.matrix(x, y)[0, 0] == pytest.approx(expected)

    def test_small_lambda_approaches_laplace(self, rng):
        x = rng.standard_normal((5, 3))
        y = rng.standard_normal((6, 3)) + 3.0
        tiny = ModifiedLaplaceKernel(lam=1e-8).matrix(x, y)
        laplace = LaplaceKernel().matrix(x, y)
        assert np.allclose(tiny, laplace, rtol=1e-6)

    def test_screening_faster_decay(self):
        kern = ModifiedLaplaceKernel(lam=1.0)
        y = np.zeros((1, 3))
        near = kern.matrix(np.array([[1.0, 0, 0]]), y)[0, 0]
        far = kern.matrix(np.array([[10.0, 0, 0]]), y)[0, 0]
        # screened interaction decays much faster than 1/r
        assert far < near / 10.0 / 100.0

    def test_coincident_pair_is_zero(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        assert ModifiedLaplaceKernel().matrix(pts, pts)[0, 0] == 0.0


class TestPDE:
    def test_satisfies_modified_helmholtz(self):
        """FD check of alpha*u - Delta u = 0 with alpha = lambda^2."""
        lam = 1.3
        kern = ModifiedLaplaceKernel(lam=lam)
        y = np.zeros((1, 3))
        x0 = np.array([0.8, -0.2, 0.5])
        h = 1e-4

        def u(p):
            return kern.matrix(p.reshape(1, 3), y)[0, 0]

        lap = sum(
            u(x0 + h * e) + u(x0 - h * e) - 2 * u(x0) for e in np.eye(3)
        ) / h**2
        assert lam**2 * u(x0) - lap == pytest.approx(0.0, abs=1e-4)


class TestInterface:
    def test_not_homogeneous(self):
        assert ModifiedLaplaceKernel().homogeneity is None

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ValueError):
            ModifiedLaplaceKernel(lam=0.0)
        with pytest.raises(ValueError):
            ModifiedLaplaceKernel(lam=-1.0)

    def test_repr_mentions_lambda(self):
        assert "2.5" in repr(ModifiedLaplaceKernel(lam=2.5))

    def test_distinct_lambdas_not_equal(self):
        assert ModifiedLaplaceKernel(1.0) != ModifiedLaplaceKernel(2.0)
        assert ModifiedLaplaceKernel(1.5) == ModifiedLaplaceKernel(1.5)
