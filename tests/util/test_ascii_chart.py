"""ASCII chart rendering tests."""

import pytest

from repro.util.ascii_chart import bar_chart, stacked_chart


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_unit(self):
        out = bar_chart(["x"], [3.0], title="T", unit="s")
        assert out.splitlines()[0] == "T"
        assert "3s" in out

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0])
        assert "#" not in out

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestStackedChart:
    def test_glyphs_proportional(self):
        out = stacked_chart(
            ["p1"], {"up": [2.0], "down": [2.0]}, width=10
        )
        row = out.splitlines()[-1]
        assert row.count("#") == 5
        assert row.count("=") == 5

    def test_legend(self):
        out = stacked_chart(["x"], {"alpha": [1.0]})
        assert "legend: #=alpha" in out

    def test_totals_shown(self):
        out = stacked_chart(["x"], {"a": [1.5], "b": [0.5]})
        assert "2" in out.splitlines()[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            stacked_chart(["a", "b"], {"s": [1.0]})
        too_many = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ValueError):
            stacked_chart(["a"], too_many)
