"""Package-level API surface tests."""

import numpy as np
import pytest

import repro


class TestPublicAPI:
    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_end_to_end_one_liner(self):
        """The README quickstart, miniaturised."""
        rng = np.random.default_rng(1)
        points = rng.random((300, 3))
        density = rng.random((300, 3))
        fmm = repro.KIFMM(
            repro.StokesKernel(mu=1.0),
            repro.FMMOptions(p=4, max_points=40),
        )
        fmm.setup(points)
        velocity = fmm.apply(density)
        exact = repro.direct_evaluate(
            repro.StokesKernel(mu=1.0), points, points, density
        )
        rel = np.linalg.norm(velocity - exact) / np.linalg.norm(exact)
        assert rel < 1e-3


class TestPerfmodelRobustness:
    def test_more_ranks_than_leaves(self, rng):
        """Idle ranks must not break the simulation (finite ratio)."""
        from repro.kernels import LaplaceKernel
        from repro.octree import build_lists, build_tree
        from repro.perfmodel import TCS1, simulate_run

        tree = build_tree(rng.uniform(-1, 1, (400, 3)), max_points=40)
        lists = build_lists(tree)
        r = simulate_run(tree, lists, LaplaceKernel(), 4, 128, TCS1)
        assert np.isfinite(r.total)
        assert np.isfinite(r.ratio)
        assert r.total > 0
