"""Simulated MPI runtime tests."""

import time

import numpy as np
import pytest

from repro.parallel.simmpi import (
    CommStats,
    MailboxLeakError,
    PerRank,
    run_spmd,
)


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5))
                return None
            return comm.recv(0)

        results = run_spmd(2, main)
        assert np.array_equal(results[1], np.arange(5))

    def test_tags_demultiplex(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "beta", tag="b")
                comm.send(1, "alpha", tag="a")
                return None
            # receive in the opposite order of sending
            return comm.recv(0, tag="a"), comm.recv(0, tag="b")

        results = run_spmd(2, main)
        assert results[1] == ("alpha", "beta")

    def test_many_messages_preserve_order(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(1, i)
                return None
            return [comm.recv(0) for _ in range(50)]

        assert run_spmd(2, main)[1] == list(range(50))

    def test_invalid_rank_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(5, "x")

        with pytest.raises(ValueError):
            run_spmd(2, main)


class TestCollectives:
    @pytest.mark.parametrize("op,expected", [("sum", 6), ("max", 3), ("min", 0)])
    def test_allreduce_ops(self, op, expected):
        def main(comm):
            return comm.allreduce(np.array([comm.rank]), op=op)

        results = run_spmd(4, main)
        for r in results:
            assert r[0] == expected

    def test_allreduce_array_shape(self):
        def main(comm):
            return comm.allreduce(np.full((2, 3), comm.rank + 1.0))

        results = run_spmd(3, main)
        assert np.all(results[0] == 6.0)
        assert results[0].shape == (2, 3)

    def test_repeated_collectives_generation_safe(self):
        def main(comm):
            out = []
            for i in range(20):
                out.append(int(comm.allreduce(np.array([comm.rank + i]))[0]))
            return out

        results = run_spmd(3, main)
        expected = [3 * i + 3 for i in range(20)]
        assert results[0] == expected
        assert results[1] == expected

    def test_allgather(self):
        def main(comm):
            return comm.allgather(comm.rank * 10)

        results = run_spmd(4, main)
        assert results[2] == [0, 10, 20, 30]

    def test_unknown_op_raises(self):
        def main(comm):
            comm.allreduce(np.zeros(1), op="median")

        with pytest.raises(ValueError):
            run_spmd(2, main)

    def test_unknown_op_error_lists_supported_reductions(self):
        """Validation happens up front, before any synchronisation."""

        def main(comm):
            if comm.rank == 0:
                comm.allreduce(np.zeros(1), op="prod")
            # rank 1 never reaches a collective; rank 0 must still fail fast
            return None

        with pytest.raises(ValueError, match=r"max, min, sum"):
            run_spmd(2, main)

    def test_mismatched_shapes_raise_clear_error(self):
        def main(comm):
            return comm.allreduce(np.zeros(2 if comm.rank == 0 else (2, 2)))

        with pytest.raises(ValueError, match="shape mismatch") as exc:
            run_spmd(2, main)
        assert "(2,)" in str(exc.value)
        assert "(2, 2)" in str(exc.value)

    def test_allreduce_message_pattern_is_logarithmic(self):
        """The tree collective sends O(log P) point-to-point messages
        per rank — never the O(P) fan-in of a flat root reduce."""

        def main(comm):
            comm.allreduce(np.zeros(4))
            return comm.stats

        nranks = 8
        stats = run_spmd(nranks, main)
        # Rank 0 is the tree root: log2(8) = 3 receives, 3 bcast sends.
        assert stats[0].messages_received == 3
        assert stats[0].messages_sent == 3
        for s in stats:
            assert s.messages_sent <= 3
            assert s.messages_received <= 3
        total = CommStats.total(stats)
        assert total.messages_sent == total.messages_received == 2 * (nranks - 1)

    def test_bcast(self):
        def main(comm):
            payload = np.arange(6.0) if comm.rank == 1 else None
            out = comm.bcast(payload, root=1)
            out[0] = comm.rank  # returned buffers are private per rank
            return out

        results = run_spmd(4, main)
        for r, out in enumerate(results):
            assert out[0] == r
            assert np.array_equal(out[1:], np.arange(6.0)[1:])

    def test_bcast_counts_per_primitive(self):
        def main(comm):
            comm.bcast(np.zeros(10), root=0)
            return comm.stats

        stats = run_spmd(4, main)
        for s in stats:
            assert s.bcast_calls == 1
            assert s.bcast_bytes == 80
            assert s.allreduce_calls == 0

    def test_bcast_invalid_root(self):
        def main(comm):
            comm.bcast(1, root=9)

        with pytest.raises(ValueError, match="root"):
            run_spmd(2, main)

    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8])
    def test_reduce_scatter(self, nranks):
        def main(comm):
            block = np.arange(comm.size * 3.0).reshape(comm.size, 3)
            out = comm.reduce_scatter(block * (comm.rank + 1))
            assert comm.stats.reduce_scatter_calls == 1
            return out

        results = run_spmd(nranks, main)
        scale = sum(range(1, nranks + 1))
        full = np.arange(nranks * 3.0).reshape(nranks, 3) * scale
        for r, out in enumerate(results):
            assert np.array_equal(out, full[r])

    def test_reduce_scatter_needs_per_rank_rows(self):
        def main(comm):
            comm.reduce_scatter(np.zeros((comm.size + 1, 2)))

        with pytest.raises(ValueError, match="one row per rank"):
            run_spmd(3, main)

    @pytest.mark.parametrize("nranks,root", [(1, 0), (4, 2), (7, 5)])
    def test_tree_reduce_and_bcast_subset(self, nranks, root):
        from repro.parallel.simmpi import combine_tree

        def main(comm):
            parts = [r for r in range(comm.size) if r != 1 or comm.size < 3]
            if comm.rank not in parts and comm.rank != root:
                return None
            mine = np.full(2, float(comm.rank + 1))
            total = comm.tree_reduce(mine, root, parts, tag="tr")
            got = comm.tree_bcast(total, root, parts, tag="tb")
            return np.array(got)

        results = run_spmd(nranks, main)
        parts = sorted({r for r in range(nranks) if r != 1 or nranks < 3} | {root})
        expected = combine_tree(
            [np.full(2, float(r + 1)) for r in parts], lambda a, b: a + b
        )
        for r in range(nranks):
            if r in parts:
                assert np.array_equal(results[r], expected)
            else:
                assert results[r] is None

    def test_tree_reduce_matches_combine_tree_bitwise(self):
        """The message-passing reduction and the local simulation use
        the identical association — bit-for-bit, not just to roundoff."""
        from repro.parallel.simmpi import combine_tree, tree_order

        root = 3
        parts = [0, 2, 3, 4, 6]

        def main(comm):
            if comm.rank not in parts:
                return None
            rng = np.random.default_rng(comm.rank)
            mine = rng.standard_normal(5)
            return comm.tree_reduce(mine, root, parts, tag="x")

        results = run_spmd(7, main)
        pieces = [
            np.random.default_rng(r).standard_normal(5)
            for r in tree_order(parts, root)
        ]
        expected = combine_tree(pieces, lambda a, b: a + b)
        assert np.array_equal(results[root], expected)
        assert all(results[r] is None for r in parts if r != root)

    def test_tree_reduce_none_contribution(self):
        """A root that holds no local piece still collects the total."""

        def main(comm):
            mine = None if comm.rank == 0 else np.array([float(comm.rank)])
            return comm.tree_reduce(mine, 0, range(comm.size), tag="n")

        results = run_spmd(4, main)
        assert results[0] == np.array([6.0])


class TestRunner:
    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.size) == [1]

    def test_per_rank_arguments(self):
        def main(comm, mine, shared):
            return mine + shared

        results = run_spmd(3, main, PerRank([1, 2, 3]), 10)
        assert results == [11, 12, 13]

    def test_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 died"):
            run_spmd(3, main)

    def test_rejects_bad_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_failure_aborts_ranks_blocked_in_recv_promptly(self):
        """A dying rank must not leave its peers to hit the recv
        timeout: they are aborted and its real error is raised."""

        def main(comm):
            if comm.rank == 2:
                raise ValueError("rank 2 exploded")
            comm.recv(2, tag="never-sent")  # would block forever

        start = time.monotonic()
        with pytest.raises(ValueError, match="rank 2 exploded"):
            run_spmd(3, main, timeout=30.0)
        assert time.monotonic() - start < 10.0

    def test_first_error_by_rank_order_wins_deterministically(self):
        """With several failing ranks the propagated exception is the
        lowest rank's, independent of thread scheduling."""

        def main(comm, delay):
            time.sleep(delay)
            if comm.rank == 0:
                raise KeyError("rank 0")
            if comm.rank == 2:
                raise ValueError("rank 2")
            comm.barrier()

        # rank 2 fails *first* in wall-clock; rank 0 still wins
        for _ in range(3):
            with pytest.raises(KeyError, match="rank 0"):
                run_spmd(3, main, PerRank([0.2, 0.0, 0.0]))

    def test_secondary_abort_errors_are_suppressed(self):
        """Ranks killed by the abort (RankAbortedError / broken
        barriers) never mask the primary exception."""

        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("the real bug")
            if comm.rank == 0:
                comm.recv(1, tag="x")  # aborted mid-recv
            else:
                comm.barrier()  # broken barrier

        for _ in range(3):
            with pytest.raises(RuntimeError, match="the real bug"):
                run_spmd(3, main)


class TestStats:
    def test_traffic_accounting(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100), phase="ghost")
            else:
                comm.recv(0)
            comm.allreduce(np.zeros(10))
            return comm.stats

        stats = run_spmd(2, main)
        # Collective-internal messages are first-class accounted sends:
        # the 2-rank allreduce adds one reduce send on rank 1 and one
        # broadcast send on rank 0 (none of them phase-tagged).
        assert stats[0].messages_sent == 2
        assert stats[0].bytes_sent == 880
        assert stats[0].by_phase["ghost"] == 800
        assert stats[1].messages_sent == 1
        assert stats[0].allreduce_calls == 1
        assert stats[0].allreduce_bytes == 80

    def test_receive_side_accounting_symmetric_to_sends(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(50), phase="gather")
                comm.send(1, np.zeros(25))
            else:
                comm.recv(0, phase="gather")
                comm.recv(0)
            return comm.stats

        stats = run_spmd(2, main)
        assert stats[1].messages_received == 2
        assert stats[1].bytes_received == 600
        assert stats[1].by_phase["gather"] == 400
        assert stats[0].messages_received == 0
        # world totals balance exactly when nothing is dropped
        total = CommStats.total(stats)
        assert total.messages_sent == total.messages_received == 2
        assert total.bytes_sent == total.bytes_received == 600

    def test_total_merges_phases(self):
        a = CommStats()
        a.record_send(10, "x")
        b = CommStats()
        b.record_send(5, "x")
        b.record_recv(10, "y")
        total = CommStats.total([a, b])
        assert total.messages_sent == 2
        assert total.bytes_sent == 15
        assert total.messages_received == 1
        assert dict(total.by_phase) == {"x": 15, "y": 10}


class TestMailboxDrain:
    def test_leaked_message_raises_with_keys(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "orphan", tag=("src", 7))

        with pytest.raises(MailboxLeakError) as exc:
            run_spmd(2, main)
        assert exc.value.leaked == [((0, 1, ("src", 7)), 1)]
        assert "('src', 7)" in str(exc.value)

    def test_multiple_leaks_all_reported(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag="a")
                comm.send(1, 2, tag="a")
                comm.send(2, 3, tag="b")

        with pytest.raises(MailboxLeakError) as exc:
            run_spmd(3, main)
        leaked = dict(exc.value.leaked)
        assert leaked == {(0, 1, "a"): 2, (0, 2, "b"): 1}

    def test_rank_error_takes_precedence_over_leak(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "never read")
            raise RuntimeError("rank died")

        with pytest.raises(RuntimeError, match="rank died"):
            run_spmd(2, main)

    def test_drained_world_passes(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "x")
                return None
            return comm.recv(0)

        assert run_spmd(2, main)[1] == "x"


class TestNonblockingReceive:
    def test_irecv_wait_returns_payload(self):
        def main(comm):
            if comm.rank == 0:
                comm.isend(1, np.arange(4))
                return None
            req = comm.irecv(0)
            return req.wait()

        results = run_spmd(2, main)
        assert np.array_equal(results[1], np.arange(4))

    def test_irecv_posts_before_send_arrives(self):
        """A posted receive completes even when the send comes later."""
        def main(comm):
            if comm.rank == 1:
                req = comm.irecv(0, tag="late")
                comm.send(0, "go", tag="sync")
                return req.wait()
            comm.recv(1, tag="sync")
            comm.send(1, "payload", tag="late")
            return None

        assert run_spmd(2, main)[1] == "payload"

    def test_wait_is_idempotent(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, 42)
                return None
            req = comm.irecv(0)
            return req.wait(), req.wait()

        assert run_spmd(2, main)[1] == (42, 42)

    def test_waits_in_posting_order_respect_fifo(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.isend(1, i)
                return None
            reqs = [comm.irecv(0) for _ in range(5)]
            return [r.wait() for r in reqs]

        assert run_spmd(2, main)[1] == list(range(5))

    def test_recv_wait_seconds_accounted(self):
        def main(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send(1, "x")
                return None
            req = comm.irecv(0)
            comm.barrier()
            req.wait()
            return comm.stats

        stats = run_spmd(2, main)[1]
        assert stats.recv_wait_seconds >= 0.0
        assert stats.messages_received == 1

    def test_unwaited_request_leaks_mailbox(self):
        def main(comm):
            if comm.rank == 0:
                comm.isend(1, "never waited")
                return None
            comm.irecv(0)  # posted but never completed
            return None

        with pytest.raises(MailboxLeakError):
            run_spmd(2, main)
