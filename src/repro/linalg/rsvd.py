"""Deterministic randomized SVD for M2L operator compression.

The rSVD-compressed M2L backend (Kailasa, Betcke & El Kazdadi,
arXiv:2408.07436) stores each offset-class translation operator as
low-rank factors and evaluates V-lists as two stacked BLAS-3 GEMMs.
This module provides the compressor: the Halko–Martinsson–Tropp
randomized range sketch with power iteration, truncated at a relative
singular-value tolerance with the same inclusive-keep boundary as
:func:`repro.linalg.pinv.svd_rank`.

Determinism contract: the Gaussian test matrix is regenerated from the
caller-provided ``seed`` on every adaptive sketch attempt, so the
accepted factorisation is a pure function of ``(matrix, tol, seed,
oversample, power_iters)`` — independent of call order, of how many
rank-doubling attempts ran, and of any process-global RNG state.  Two
setups with the same seed produce bitwise-identical factors, which is
what makes rsvd-backed applies bitwise reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.pinv import svd_rank, truncated_svd


def randomized_svd(
    matrix: np.ndarray,
    tol: float,
    *,
    seed: int,
    oversample: int = 8,
    power_iters: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD factors via a fixed-seed randomized range sketch.

    Parameters
    ----------
    matrix:
        ``(m, n)`` real matrix; coerced to float64.
    tol:
        Relative singular-value cutoff; like ``rcond`` elsewhere in
        :mod:`repro.linalg`, the boundary is inclusive-keep.
    seed:
        RNG seed of the Gaussian test matrix (keyword-only: the
        determinism contract is the point of this function).
    oversample:
        Extra sketch columns beyond the current rank guess.
    power_iters:
        Subspace (power) iterations sharpening the sketch for slowly
        decaying spectra.

    Returns
    -------
    ``(u, s, vt)`` float64 factors, exactly the shapes of
    :func:`~repro.linalg.pinv.truncated_svd`.  Degenerate inputs (empty
    or exactly-zero matrices) yield rank-0 float64 factors.

    The sketch width starts at 16 and doubles until the truncation
    boundary is resolved *inside* the sketched spectrum (``rank < sketch
    width``); if the sketch would be as wide as the matrix, the exact
    :func:`~repro.linalg.pinv.truncated_svd` is used instead — same
    boundary, same contract, no sketching noise.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {a.shape}")
    if tol < 0:
        raise ValueError(f"tol must be non-negative, got {tol}")
    m, n = a.shape
    full = min(m, n)
    if full == 0 or not np.any(a):
        return (
            np.zeros((m, 0), dtype=np.float64),
            np.zeros(0, dtype=np.float64),
            np.zeros((0, n), dtype=np.float64),
        )
    k = min(16, full)
    while True:
        width = min(k + oversample, full)
        if width >= full:
            return truncated_svd(a, tol)
        rng = np.random.default_rng(seed)
        sketch = a @ rng.standard_normal((n, width))
        q, _ = np.linalg.qr(sketch)
        for _ in range(power_iters):
            q, _ = np.linalg.qr(a.T @ q)
            q, _ = np.linalg.qr(a @ q)
        ub, s, vt = np.linalg.svd(q.T @ a, full_matrices=False)
        keep = svd_rank(s, tol)
        if keep < width:
            return (
                np.ascontiguousarray(q @ ub[:, :keep]),
                np.ascontiguousarray(s[:keep]),
                np.ascontiguousarray(vt[:keep]),
            )
        k = min(2 * k, full)
